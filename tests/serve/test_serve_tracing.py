"""Serve-layer tracing: span topology through the shard pipeline, the
critical-path/e2e reconciliation acceptance check, degraded-latency
separation, and the traced bench doc."""

from __future__ import annotations

import asyncio

import pytest

from repro.cache.lru import LRUCache
from repro.obs.sinks import RingBufferSink
from repro.obs.span import TraceConfig, Tracer
from repro.serve import (
    CacheService,
    OriginConfig,
    RetryPolicy,
    SimulatedOrigin,
    run_loadgen,
    serve_bench_async,
)
from repro.sim.request import Request


def _service(**kw):
    kw.setdefault(
        "origin", SimulatedOrigin(OriginConfig(latency_mean=kw.pop("latency", 0.001)))
    )
    kw.setdefault("retry", RetryPolicy(timeout=0.5, max_retries=1, backoff_base=0.001))
    kw.setdefault("n_shards", 1)
    capacity = kw.pop("capacity", 1_000_000)
    return CacheService(LRUCache, capacity, **kw)


def _by_trace(sink):
    out = {}
    for rec in sink.as_list():
        out.setdefault(rec["trace"], []).append(rec)
    return out


class TestSpanTopology:
    def test_miss_leader_gets_origin_fetch_not_flight_wait(self):
        async def run():
            sink = RingBufferSink()
            tracer = Tracer(sinks=[sink])
            service = _service()
            async with service:
                root = tracer.start_trace("request", key=1)
                await service.get(Request(0, 1, 100), root)
                root.end()
            tracer.close()
            return _by_trace(sink)

        traces = asyncio.run(run())
        (records,) = traces.values()
        names = {r["name"] for r in records}
        assert {"request", "queue_wait", "policy", "origin_fetch",
                "origin_attempt"} <= names
        assert "flight_wait" not in names  # the leader fetches, never waits
        fetch = next(r for r in records if r["name"] == "origin_fetch")
        assert fetch["tags"]["attempts"] == 1
        attempt = next(r for r in records if r["name"] == "origin_attempt")
        assert attempt["parent"] == fetch["span"]

    def test_concurrent_followers_get_flight_wait(self):
        async def run():
            sink = RingBufferSink()
            tracer = Tracer(sinks=[sink])
            service = _service(latency=0.01)
            async with service:
                roots = [tracer.start_trace("request", n=i) for i in range(4)]
                outs = await asyncio.gather(
                    *(service.get(Request(0, 5, 100), s) for s in roots)
                )
                for root in roots:
                    root.end()
            tracer.close()
            return _by_trace(sink), outs

        traces, outs = asyncio.run(run())
        assert len(traces) == 4
        waits = [
            t for t in traces.values() if any(r["name"] == "flight_wait" for r in t)
        ]
        fetches = [
            t for t in traces.values() if any(r["name"] == "origin_fetch" for r in t)
        ]
        assert len(fetches) == 1  # single-flight: one leader
        assert len(waits) == 3  # everyone else coalesces onto the flight

    def test_shed_request_span_ends_with_shed_status(self):
        async def run():
            sink = RingBufferSink()
            tracer = Tracer(sinks=[sink])
            service = _service(queue_depth=2, latency=0.01)
            async with service:
                roots = [tracer.start_trace("request", n=i) for i in range(20)]
                outs = await asyncio.gather(
                    *(service.get(Request(0, i, 100), s)
                      for i, s in enumerate(roots))
                )
                for out, root in zip(outs, roots):
                    root.end("shed" if out.shed else "ok")
            tracer.close()
            return _by_trace(sink), outs

        traces, outs = asyncio.run(run())
        shed = [o for o in outs if o.shed]
        assert shed  # the tiny queue must shed under this burst
        shed_q = [
            r
            for t in traces.values()
            for r in t
            if r["name"] == "queue_wait" and r["status"] == "shed"
        ]
        assert len(shed_q) == len(shed)

    def test_untraced_path_passes_none_everywhere(self):
        async def run():
            service = _service()
            async with service:
                out = await service.get(Request(0, 1, 100))
            return out

        out = asyncio.run(run())
        assert out.error is None and not out.shed


class TestTracedBench:
    def test_critical_path_reconciles_with_e2e_latency(self):
        """Acceptance: summed critical-path stage time ≈ summed e2e latency
        (within 5%).  Spans time the same wall-clock interval the loadgen
        histogram does, so the per-stage attribution must re-assemble it."""
        doc = asyncio.run(
            serve_bench_async(
                workload="CDN-W",
                n_requests=4_000,
                concurrency=32,
                n_shards=2,
                origin_latency=0.002,
                seed=11,
                trace_sample=1.0,
            )
        )
        tracing = doc["tracing"]
        assert tracing["traces"]["orphan_spans"] == 0
        assert tracing["traces"]["unclosed_spans"] == 0
        crit_sum_us = sum(
            s["critical_total_us"] for s in tracing["stages"].values()
        )
        # e2e wall time: every request's latency, success or degraded.
        e2e_us = doc["latency"]["sum_us"] + doc["degraded_latency"]["sum_us"]
        assert crit_sum_us == pytest.approx(e2e_us, rel=0.05)

    def test_sampling_still_aggregates_everything(self):
        doc = asyncio.run(
            serve_bench_async(
                workload="CDN-W",
                n_requests=1_500,
                concurrency=16,
                n_shards=2,
                origin_latency=0.001,
                seed=3,
                trace_sample=0.05,
            )
        )
        tracing = doc["tracing"]
        stats = tracing["traces"]
        assert stats["traces_started"] == doc["loadgen"]["requests"]
        assert stats["traces_kept"] < stats["traces_started"]
        # Aggregation is sampling-independent: every request has a span.
        assert tracing["stages"]["request"]["count"] == stats["traces_finished"]

    def test_slo_summary_present_and_sane(self):
        doc = asyncio.run(
            serve_bench_async(
                workload="CDN-W",
                n_requests=1_000,
                concurrency=16,
                n_shards=1,
                origin_latency=0.001,
                seed=5,
                trace_sample=1.0,
            )
        )
        slo = doc["tracing"]["slo"]
        assert "request" in slo and "origin_fetch" in slo
        req = slo["request"]
        assert req["total"] == doc["loadgen"]["requests"]
        assert 0.0 <= req["breach_ratio"] <= 1.0

    def test_tracing_off_leaves_doc_untouched(self):
        doc = asyncio.run(
            serve_bench_async(
                workload="CDN-W",
                n_requests=800,
                concurrency=8,
                n_shards=1,
                origin_latency=0.001,
                trace_sample=0.0,
            )
        )
        assert "tracing" not in doc


class TestDegradedLatency:
    def test_shed_latency_lands_in_degraded_histogram(self):
        async def run():
            service = _service(queue_depth=2, latency=0.01)
            async with service:
                reqs = [Request(0, i, 100) for i in range(30)]
                await run_loadgen(service, reqs, concurrency=30)
                return (
                    service.metrics.latency_us.count,
                    service.metrics.degraded_latency_us.count,
                )

        ok_count, degraded_count = asyncio.run(run())
        assert degraded_count > 0  # sheds happened and were recorded apart
        assert ok_count + degraded_count == 30
