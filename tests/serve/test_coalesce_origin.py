"""Single-flight coalescing and the simulated origin's failure machinery.

Covers the PR's acceptance criteria directly: a stampede on one cold key
costs exactly one origin fetch per key *generation*, and injected origin
failures/timeouts are retried with backoff and surfaced in metrics instead
of crashing the service.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.cache.lru import LRUCache
from repro.serve import (
    CacheService,
    OriginConfig,
    OriginError,
    RetryPolicy,
    SimulatedOrigin,
    SingleFlight,
    fetch_with_retry,
)
from repro.serve.loadgen import stampede_probe
from repro.sim.request import Request

import random


def _service(
    capacity=1_000_000,
    n_shards=1,
    latency=0.001,
    queue_depth=0,
    retry=None,
    origin=None,
    probe=None,
):
    return CacheService(
        LRUCache,
        capacity,
        n_shards=n_shards,
        origin=origin or SimulatedOrigin(OriginConfig(latency_mean=latency)),
        retry=retry or RetryPolicy(timeout=0.5, max_retries=3, backoff_base=0.001),
        queue_depth=queue_depth,
        probe=probe,
    )


class TestSingleFlightUnit:
    def test_lease_join_resolve_lifecycle(self):
        async def run():
            sf = SingleFlight()
            fut, leader = sf.lease("k")
            assert leader and len(sf) == 1 and sf.generations == 1
            fut2, leader2 = sf.lease("k")
            assert fut2 is fut and not leader2 and sf.coalesced == 1
            assert sf.join("k") is fut and sf.coalesced == 2
            assert sf.peek("k") is fut and sf.coalesced == 2  # peek is free
            sf.resolve("k", "done")
            assert await fut == "done"
            assert len(sf) == 0 and sf.join("k") is None
            # A second lease after resolve is a NEW generation.
            _, leader3 = sf.lease("k")
            assert leader3 and sf.generations == 2

        asyncio.run(run())

    def test_resolve_unknown_key_is_noop(self):
        async def run():
            sf = SingleFlight()
            sf.resolve("ghost", None)  # must not raise
            assert sf.inflight_keys() == []

        asyncio.run(run())


class TestStampede:
    def test_one_origin_fetch_per_cold_key(self):
        async def run():
            service = _service(latency=0.002)
            async with service:
                probe = await stampede_probe(service, 50, key=123, size=1000)
            return probe, service

        probe, service = asyncio.run(run())
        assert probe["origin_fetches"] == 1
        assert probe["coalesced"] == 49
        assert probe["errors"] == 0 and probe["shed"] == 0
        assert service.metrics.coalesced.value == 49
        assert service.unhandled_exceptions == 0

    def test_new_generation_after_eviction_refetches(self):
        """Evict-then-re-request is a fresh generation: the origin is asked
        again — coalescing saves stampedes, it is not a second cache."""

        async def run():
            # Capacity fits exactly one 600-byte object at a time.
            service = _service(capacity=1_000, latency=0.0)
            async with service:
                await service.get(Request(0, 1, 600))  # miss + fetch
                await service.get(Request(1, 2, 600))  # evicts key 1
                await service.get(Request(2, 1, 600))  # miss again → refetch
            return service

        service = asyncio.run(run())
        assert service.origin.fetches_started == 3
        assert service.flight_stats()["generations"] == 3
        assert service.flight_stats()["coalesced"] == 0

    def test_sequential_hits_do_not_touch_origin(self):
        async def run():
            service = _service(latency=0.0)
            async with service:
                first = await service.get(Request(0, 7, 100))
                second = await service.get(Request(1, 7, 100))
                third = await service.get(Request(2, 7, 100))
            return first, second, third, service

        first, second, third, service = asyncio.run(run())
        assert not first.hit and second.hit and third.hit
        # The fetch resolved before the later gets: no coalesced waits.
        assert not second.coalesced and not third.coalesced
        assert service.origin.fetches_started == 1


class TestRetryAndFailure:
    def test_injected_failures_are_retried_to_success(self):
        async def run():
            origin = SimulatedOrigin(OriginConfig(latency_mean=0.0))
            origin.inject_failures(2)
            service = _service(
                origin=origin,
                retry=RetryPolicy(timeout=0.5, max_retries=3, backoff_base=0.001),
            )
            async with service:
                out = await service.get(Request(0, 1, 100))
            return out, origin, service

        out, origin, service = asyncio.run(run())
        assert out.error is None and not out.hit
        assert origin.fetches_failed == 2 and origin.fetches_ok == 1
        assert service.metrics.origin_retries.value == 2
        assert service.metrics.origin_failures.value == 0
        assert service.metrics.errors.value == 0

    def test_hang_trips_timeout_then_retry_succeeds(self):
        async def run():
            origin = SimulatedOrigin(OriginConfig(latency_mean=0.0))
            origin.inject_hangs(1, seconds=30.0)
            service = _service(
                origin=origin,
                retry=RetryPolicy(timeout=0.02, max_retries=2, backoff_base=0.001),
            )
            async with service:
                out = await service.get(Request(0, 1, 100))
            return out, service

        out, service = asyncio.run(run())
        assert out.error is None
        assert service.metrics.origin_timeouts.value == 1
        assert service.metrics.origin_retries.value == 1
        assert service.unhandled_exceptions == 0

    def test_terminal_failure_surfaces_error_and_drops_metadata(self):
        async def run():
            origin = SimulatedOrigin(OriginConfig(latency_mean=0.0))
            origin.inject_failures(2)  # exactly first attempt + its retry
            service = _service(
                origin=origin,
                retry=RetryPolicy(timeout=0.5, max_retries=1, backoff_base=0.001),
            )
            async with service:
                out = await service.get(Request(0, 1, 100))
                # The failed object must not linger as a phantom hit…
                resident = service.shards[0].policy.contains(1)
                # …and a later request opens a fresh generation (succeeds
                # now that the injected failures are exhausted).
                again = await service.get(Request(1, 1, 100))
            return out, resident, again, service

        out, resident, again, service = asyncio.run(run())
        assert out.error is not None and not out.hit
        assert not resident
        assert service.metrics.origin_failures.value == 1
        assert service.metrics.errors.value == 1
        # Second generation: a miss again (metadata was dropped), fetch ok.
        assert not again.hit and again.error is None
        assert service.flight_stats()["generations"] == 2
        assert service.unhandled_exceptions == 0

    def test_failure_propagates_to_every_coalesced_waiter(self):
        async def run():
            origin = SimulatedOrigin(OriginConfig(latency_mean=0.005))
            origin.inject_failures(2)  # first attempt + its single retry
            service = _service(
                origin=origin,
                retry=RetryPolicy(timeout=0.5, max_retries=1, backoff_base=0.001),
            )
            async with service:
                outs = await asyncio.gather(
                    *(service.get(Request(0, 9, 100)) for _ in range(10))
                )
            return outs, service

        outs, service = asyncio.run(run())
        assert all(o.error is not None for o in outs)
        assert service.origin.fetches_started == 2  # one generation, one retry
        assert service.metrics.errors.value == 10
        assert service.unhandled_exceptions == 0

    def test_fetch_with_retry_backoff_is_jittered_and_bounded(self):
        rng = random.Random(1)
        retry = RetryPolicy(backoff_base=0.01, backoff_cap=0.04, jitter=0.5)
        delays = [retry.backoff(a, rng) for a in range(1, 6)]
        assert all(0 < d <= 0.04 for d in delays)
        # Cap engaged from attempt 3 on (0.01 * 2**2 = 0.04).
        assert max(delays) <= 0.04

    def test_fetch_with_retry_never_raises(self):
        async def run():
            origin = SimulatedOrigin(OriginConfig(latency_mean=0.0))
            origin.inject_failures(5)
            out = await fetch_with_retry(
                origin,
                "k",
                10,
                RetryPolicy(timeout=0.1, max_retries=2, backoff_base=0.0),
                random.Random(0),
            )
            return out

        out = asyncio.run(run())
        assert not out.ok and out.attempts == 3 and out.error


class TestOriginPool:
    def test_bounded_concurrency_is_respected(self):
        async def run():
            origin = SimulatedOrigin(
                OriginConfig(latency_mean=0.005, concurrency=4, latency_jitter=0.0)
            )
            await asyncio.gather(*(origin.fetch(i, 10) for i in range(20)))
            return origin

        origin = asyncio.run(run())
        assert origin.fetches_ok == 20
        assert origin.inflight_peak <= 4

    def test_failure_rate_draws_are_seeded(self):
        async def run(seed):
            origin = SimulatedOrigin(
                OriginConfig(latency_mean=0.0, failure_rate=0.5, seed=seed)
            )
            flags = []
            for i in range(50):
                try:
                    await origin.fetch(i, 1)
                    flags.append(True)
                except OriginError:
                    flags.append(False)
            return flags

        a = asyncio.run(run(3))
        b = asyncio.run(run(3))
        assert a == b and not all(a) and any(a)
