"""Live policy swap on running shards — the orchestration serve path.

Pins the regression surface of :meth:`CacheService.swap_policy`:

* a mid-run swap preserves the resident set (queue-structured policies
  migrate LRU → MRU, exactly like ``StorageNode.swap_policy``);
* in-flight coalesced fetches are never dropped and never double-resolved
  across a swap — the single-flight map is shard state, not policy state;
* a terminal origin failure that lands *after* a swap drops the metadata
  from the **new** policy (no phantom hits from a stale reference);
* the swap executes on the worker task, queued behind pending requests.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.cache.gdsf import GDSFCache
from repro.cache.lru import LRUCache
from repro.core.scip import SCIPCache
from repro.obs.probe import Probe
from repro.serve import CacheService, OriginConfig, RetryPolicy, SimulatedOrigin
from repro.sim.request import Request


class _ListSink:
    def __init__(self):
        self.records = []

    def write(self, rec):
        self.records.append(rec)


def _service(capacity=1_000_000, n_shards=1, latency=0.0, probe=None, origin=None,
             retry=None):
    return CacheService(
        LRUCache,
        capacity,
        n_shards=n_shards,
        origin=origin or SimulatedOrigin(OriginConfig(latency_mean=latency)),
        retry=retry or RetryPolicy(timeout=0.5, max_retries=2, backoff_base=0.001),
        queue_depth=0,
        probe=probe,
    )


class TestResidentSetMigration:
    def test_swap_preserves_residents_and_recency(self):
        """LRU → SCIP (both queue-structured): every resident object stays
        resident, byte accounting carries over, and subsequent requests for
        migrated keys are hits."""

        async def run():
            service = _service()
            async with service:
                for i in range(20):
                    await service.get(Request(i, i, 1_000))
                before = {
                    "used": service.shards[0].policy.used,
                    "resident": len(service.shards[0].policy),
                }
                await service.swap_policy(SCIPCache)
                after_policy = service.shards[0].policy
                outs = [await service.get(Request(100 + i, i, 1_000)) for i in range(20)]
            return before, after_policy, outs, service

        before, after_policy, outs, service = asyncio.run(run())
        assert isinstance(after_policy, SCIPCache)
        assert len(after_policy) == before["resident"] == 20
        assert after_policy.used == before["used"] == 20_000
        assert all(o.hit for o in outs)
        assert service.unhandled_exceptions == 0

    def test_swap_to_non_queue_policy_restarts_cold(self):
        """GDSF is not queue-structured: the swap is a cold restart (what a
        production rollout without state migration does)."""

        async def run():
            service = _service()
            async with service:
                for i in range(10):
                    await service.get(Request(i, i, 1_000))
                await service.swap_policy(GDSFCache)
                policy = service.shards[0].policy
                out = await service.get(Request(50, 3, 1_000))
            return policy, out, service

        policy, out, service = asyncio.run(run())
        assert isinstance(policy, GDSFCache)
        assert not out.hit  # cold restart: previously-resident key misses
        assert service.unhandled_exceptions == 0

    def test_swap_capacity_matches_shard_slice(self):
        """Each shard's replacement policy gets that shard's budget, not the
        service total."""

        async def run():
            service = _service(capacity=1_000_000, n_shards=4)
            async with service:
                await service.swap_policy(SCIPCache)
                return [s.policy.capacity for s in service.shards]

        capacities = asyncio.run(run())
        assert capacities == [250_000] * 4


class TestInFlightFetches:
    def test_coalesced_fetch_survives_swap(self):
        """A stampede's waiters all resolve exactly once even when the swap
        lands while the leader fetch is still on the wire."""

        async def run():
            service = _service(latency=0.02)
            async with service:
                # 30 concurrent gets on one cold key: 1 leader + 29 coalesced,
                # all parked on the same single-flight generation.
                gets = [
                    asyncio.ensure_future(service.get(Request(0, 7, 500)))
                    for _ in range(30)
                ]
                await asyncio.sleep(0.005)  # fetch in flight, swap now
                await service.swap_policy(SCIPCache)
                outs = await asyncio.gather(*gets)
            return outs, service

        outs, service = asyncio.run(run())
        assert len(outs) == 30
        assert all(o.error is None for o in outs)
        assert sum(1 for o in outs if o.coalesced) == 29
        assert service.origin.fetches_started == 1  # swap caused no refetch
        assert service.metrics.errors.value == 0
        assert service.unhandled_exceptions == 0
        # The migrated metadata survived: the key is resident post-swap.
        assert service.shards[0].policy.contains(7)

    def test_terminal_failure_after_swap_cleans_new_policy(self):
        """The failure path reads ``self.policy`` at failure time, so the
        write-on-miss metadata is dropped from the policy actually serving —
        the one installed by the swap — and no phantom hit survives."""

        async def run():
            origin = SimulatedOrigin(OriginConfig(latency_mean=0.02))
            origin.inject_failures(2)  # first attempt + its single retry
            service = _service(
                origin=origin,
                retry=RetryPolicy(timeout=0.5, max_retries=1, backoff_base=0.02),
            )
            async with service:
                get = asyncio.ensure_future(service.get(Request(0, 1, 100)))
                await asyncio.sleep(0.005)  # fetch in flight (will fail)
                await service.swap_policy(SCIPCache)
                out = await get
                resident = service.shards[0].policy.contains(1)
            return out, resident, service

        out, resident, service = asyncio.run(run())
        assert out.error is not None and not out.hit
        assert not resident
        assert service.unhandled_exceptions == 0

    def test_swap_queued_behind_pending_requests(self):
        """The control message travels the data queue: requests submitted
        before the swap are served by the old policy, requests after by the
        new one."""

        async def run():
            service = _service(latency=0.0)
            async with service:
                shard = service.shards[0]
                # Submit directly (no await): these sit in the queue ahead
                # of the swap control message.
                before = [shard.submit(Request(i, i, 100)) for i in range(5)]
                swap = asyncio.ensure_future(shard.request_swap(SCIPCache))
                new_policy = await swap
                outs = await asyncio.gather(*before)
                # The old policy served (and admitted) all five; migration
                # carried them into the new one.
                assert all(not o.hit for o in outs)
                return new_policy, len(new_policy), service

        new_policy, resident, service = asyncio.run(run())
        assert isinstance(new_policy, SCIPCache)
        assert resident == 5
        assert service.unhandled_exceptions == 0


class TestSwapObservability:
    def test_swap_emits_policy_switch_probe_per_shard(self):
        sink = _ListSink()
        probe = Probe(sinks=[sink])

        async def run():
            service = _service(capacity=1_000_000, n_shards=2, probe=probe)
            async with service:
                await service.get(Request(0, 1, 100))
                await service.swap_policy(SCIPCache)
            return service

        asyncio.run(run())
        switches = [r for r in sink.records if r["event"] == "policy_switch"]
        assert len(switches) == 2
        assert sorted(r["shard"] for r in switches) == [0, 1]
        assert all(r["frm"] == "LRU" and r["to"].startswith("SCIP") for r in switches)

    def test_swap_before_start_raises(self):
        async def run():
            service = _service()
            with pytest.raises(RuntimeError):
                await service.swap_policy(SCIPCache)

        asyncio.run(run())
