"""Tenant quota invariants on the live serve path.

The satellite acceptance for the tenancy PR, at the service level:

* an under-quota tenant never loses bytes to a neighbour's pressure, even
  through the full async get path with sharding and origin fetches;
* :meth:`CacheService.set_tenant_quotas` re-splits on the worker tasks
  and evicts only from the shrunk tenant;
* a live :meth:`swap_policy` between tenant-partitioned policies carries
  every tenant's residents and preserves per-tenant byte accounting.
"""

from __future__ import annotations

import asyncio

from repro.serve import CacheService, OriginConfig, RetryPolicy, SimulatedOrigin
from repro.sim.request import Request
from repro.tenancy import TenantPartitionedCache
from repro.traces.drift import TENANT_STRIDE


def _key(tenant: int, i: int) -> int:
    return tenant * TENANT_STRIDE + i


def _service(capacity=8_000, n_shards=2, n_tenants=2):
    return CacheService(
        lambda cap: TenantPartitionedCache(cap, n_tenants=n_tenants),
        capacity,
        n_shards=n_shards,
        origin=SimulatedOrigin(OriginConfig(latency_mean=0.0)),
        retry=RetryPolicy(timeout=0.5, max_retries=2, backoff_base=0.001),
        queue_depth=0,
    )


def _tenant_used(service, tenant: int) -> int:
    return sum(s.policy.inners[tenant].used for s in service.shards)


class TestServeIsolation:
    def test_neighbour_pressure_never_evicts_under_quota_tenant(self):
        async def run():
            service = _service()
            async with service:
                # Tenant 0 parks a small resident set, well under quota.
                for i in range(6):
                    await service.get(Request(i, _key(0, i), 100))
                parked = _tenant_used(service, 0)
                # Tenant 1 churns far past its own quota on every shard.
                for i in range(400):
                    await service.get(Request(100 + i, _key(1, i), 100))
                # Tenant 0's bytes are untouched and still resident.
                assert _tenant_used(service, 0) == parked
                for i in range(6):
                    outcome = await service.get(Request(900 + i, _key(0, i), 100))
                    assert outcome.hit, f"tenant 0 lost key {i} to tenant 1"
                for shard in service.shards:
                    shard.policy.check_invariants()

        asyncio.run(run())

    def test_set_tenant_quotas_shrinks_only_the_over_quota_tenant(self):
        async def run():
            service = _service()
            async with service:
                for i in range(12):
                    await service.get(Request(i, _key(0, i), 100))
                    await service.get(Request(i, _key(1, i), 100))
                t1_before = _tenant_used(service, 1)
                ok = await service.set_tenant_quotas({0: 1_000, 1: 7_000})
                assert ok
                # Every shard now enforces its slice of the new split.
                for shard in service.shards:
                    quotas = shard.policy.quotas()
                    assert quotas == {0: 500, 1: 3_500}
                    shard.policy.check_invariants()
                # The grown tenant lost nothing.
                assert _tenant_used(service, 1) == t1_before

        asyncio.run(run())

    def test_quota_control_reports_unsupported_policies(self):
        async def run():
            from repro.cache.lru import LRUCache

            service = CacheService(
                LRUCache,
                8_000,
                n_shards=2,
                origin=SimulatedOrigin(OriginConfig(latency_mean=0.0)),
                queue_depth=0,
            )
            async with service:
                return await service.set_tenant_quotas({0: 1_000, 1: 7_000})

        assert asyncio.run(run()) is False


class TestSwapPreservesTenantAccounting:
    def test_live_swap_carries_every_tenants_residents(self):
        async def run():
            service = _service()
            async with service:
                for i in range(8):
                    await service.get(Request(i, _key(0, i), 100))
                for i in range(5):
                    await service.get(Request(50 + i, _key(1, i), 100))
                before = {t: _tenant_used(service, t) for t in (0, 1)}
                await service.swap_policy(
                    lambda cap: TenantPartitionedCache(cap, n_tenants=2)
                )
                after = {t: _tenant_used(service, t) for t in (0, 1)}
                assert after == before, "swap changed per-tenant byte accounting"
                # Residents are live in the new policy: all hits, no refetch.
                fetches_before = service.origin.fetches_started
                for i in range(8):
                    assert (await service.get(Request(900 + i, _key(0, i), 100))).hit
                for i in range(5):
                    assert (await service.get(Request(950 + i, _key(1, i), 100))).hit
                assert service.origin.fetches_started == fetches_before
                for shard in service.shards:
                    shard.policy.check_invariants()

        asyncio.run(run())

    def test_fill_path_respects_tenant_quotas(self):
        async def run():
            service = _service()
            async with service:
                # A replication fill that fits the shard but not the
                # tenant's quota is dropped by the partition, never
                # force-fitted by draining the tenant.
                await service.fill(Request(0, _key(0, 1), 3_000))
                assert _tenant_used(service, 0) == 0
                admitted = await service.fill(Request(0, _key(0, 2), 100))
                assert admitted
                assert _tenant_used(service, 0) == 100
                assert _tenant_used(service, 1) == 0

        asyncio.run(run())
