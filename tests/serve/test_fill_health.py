"""CacheService replication hooks: ``fill``, ``health``, ``resident_entries``.

The cluster layer's contract with the serve layer: fills admit metadata
through the owning shard's worker (never shed, never stats-polluting),
``health()`` is a cheap liveness snapshot, and ``resident_entries()``
walks the resident set for warm handoffs.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.cache.lru import LRUCache
from repro.serve import CacheService, OriginConfig, SimulatedOrigin
from repro.sim.request import Request


def _service(capacity=100_000, n_shards=2):
    return CacheService(
        LRUCache,
        capacity,
        n_shards=n_shards,
        origin=SimulatedOrigin(OriginConfig(latency_mean=0.0)),
    )


class TestFill:
    def test_fill_admits_then_reports_resident(self):
        async def run():
            async with _service() as service:
                first = await service.fill(Request(0, 1, 1000))
                second = await service.fill(Request(0, 1, 1000))
                resident = list(service.resident_entries())
            return first, second, resident

        first, second, resident = asyncio.run(run())
        assert first is True and second is False
        assert resident == [(1, 1000)]

    def test_fill_does_not_touch_stats(self):
        async def run():
            async with _service() as service:
                for i in range(20):
                    await service.fill(Request(0, i, 500))
                return service.cache_stats()

        stats = asyncio.run(run())
        # A fill is not traffic: no hit/miss recorded, but bytes resident.
        assert stats["requests"] == 0
        assert stats["resident_objects"] == 20
        assert stats["used_bytes"] == 20 * 500

    def test_filled_object_serves_as_hit(self):
        async def run():
            async with _service() as service:
                await service.fill(Request(0, 7, 1000))
                out = await service.get(Request(1, 7, 1000))
                return out, service.origin.fetches_started

        out, fetches = asyncio.run(run())
        assert out.hit and fetches == 0

    def test_oversized_fill_refused(self):
        async def run():
            async with _service(capacity=2_000, n_shards=2) as service:
                # Per-shard slice is 1000 bytes; a 5000-byte object can't fit.
                return await service.fill(Request(0, 1, 5_000))

        assert asyncio.run(run()) is False

    def test_fill_before_start_raises(self):
        service = _service()
        with pytest.raises(RuntimeError, match="before start"):
            asyncio.run(service.fill(Request(0, 1, 100)))


class TestHealth:
    def test_health_snapshot_shape(self):
        async def run():
            async with _service(n_shards=3) as service:
                for i in range(50):
                    await service.get(Request(i, i, 100))
                return service.health()

        health = asyncio.run(run())
        assert health["started"] is True
        assert health["n_shards"] == 3
        assert len(health["queue_depths"]) == 3
        assert health["shed"] == 0
        assert health["unhandled_exceptions"] == 0

    def test_health_cheap_when_stopped(self):
        health = _service().health()
        assert health["started"] is False
