"""Serve ↔ engine equivalence: the serving path changes *when* requests
happen, never *what the cache decides*.

A 1-shard service driven by a single closed-loop client sees requests in
trace order, one at a time — exactly the engine's replay loop.  The
per-request hit/miss sequence, the aggregate counters, and the resident
set must therefore be bit-identical to :func:`repro.sim.engine.simulate`
on the same trace, for a plain policy (LRU) and for the paper's learned
policy (SCIP, whose bandit draws depend on the request sequence alone).
"""

from __future__ import annotations

import asyncio

import pytest

from repro.cache.lru import LRUCache
from repro.core.scip import SCIPCache
from repro.serve import (
    CacheService,
    OriginConfig,
    RetryPolicy,
    SimulatedOrigin,
    run_loadgen,
)
from repro.sim.engine import simulate

POLICIES = {"LRU": LRUCache, "SCIP": SCIPCache}


def _serial_service(factory, capacity):
    """The equivalence configuration: one shard, instant origin, no retry
    timers, unbounded queue (nothing shed, nothing reordered)."""
    return CacheService(
        factory,
        capacity,
        n_shards=1,
        origin=SimulatedOrigin(OriginConfig(latency_mean=0.0)),
        retry=RetryPolicy(timeout=None, max_retries=0),
        queue_depth=0,
    )


async def _serve_decisions(factory, capacity, requests):
    service = _serial_service(factory, capacity)
    decisions: list = []
    async with service:
        summary = await run_loadgen(service, requests, concurrency=1, decisions=decisions)
    return decisions, summary, service


@pytest.mark.parametrize("pname", sorted(POLICIES))
def test_serial_serve_matches_engine_decisions(pname, cdn_t_small):
    """Per-request hit/miss booleans match the engine's bulk replay exactly."""
    trace = cdn_t_small
    capacity = max(int(trace.working_set_size * 0.02), 1)
    factory = POLICIES[pname]

    engine_policy = factory(capacity)
    engine_out: list = []
    engine_policy.replay(trace.requests, engine_out)

    decisions, summary, service = asyncio.run(
        _serve_decisions(factory, capacity, trace.requests)
    )

    assert len(decisions) == len(trace)
    assert decisions == engine_out
    st = service.cache_stats()
    assert st["hits"] == engine_policy.stats.hits
    assert st["misses"] == engine_policy.stats.misses
    assert st["evictions"] == engine_policy.stats.evictions
    assert st["byte_miss_ratio"] == engine_policy.stats.byte_miss_ratio
    # Resident sets agree too (same admissions, same evictions, same order).
    assert service.shards[0].policy.resident_keys() == engine_policy.resident_keys()
    # Nothing was shed or errored in the serial configuration.
    assert summary["shed"] == 0 and summary["errors"] == 0
    assert service.unhandled_exceptions == 0


def test_serial_serve_matches_simulate_aggregates(cdn_t_small):
    """The SimResult aggregates (the paper-table numbers) are reproduced."""
    trace = cdn_t_small
    capacity = max(int(trace.working_set_size * 0.02), 1)
    res = simulate(SCIPCache(capacity), trace)

    _, _, service = asyncio.run(_serve_decisions(SCIPCache, capacity, trace.requests))
    st = service.cache_stats()
    assert st["miss_ratio"] == res.miss_ratio
    assert st["byte_miss_ratio"] == res.byte_miss_ratio


def test_sharded_serve_preserves_aggregate_shape(cdn_t_small):
    """Sharding changes per-shard capacities, not correctness: every request
    is decided by exactly one policy and the counters add up."""
    trace = cdn_t_small
    capacity = max(int(trace.working_set_size * 0.02), 4)

    async def run():
        service = CacheService(
            LRUCache,
            capacity,
            n_shards=4,
            origin=SimulatedOrigin(OriginConfig(latency_mean=0.0)),
            retry=RetryPolicy(timeout=None, max_retries=0),
            queue_depth=0,
        )
        async with service:
            summary = await run_loadgen(service, trace.requests, concurrency=8)
        return summary, service

    summary, service = asyncio.run(run())
    st = service.cache_stats()
    assert st["requests"] == len(trace)
    assert st["hits"] + st["misses"] == len(trace)
    assert summary["hits"] == st["hits"]
    # Each key is pinned to one shard: summed residents never exceed uniques.
    assert st["resident_objects"] <= trace.unique_objects
    assert service.unhandled_exceptions == 0
