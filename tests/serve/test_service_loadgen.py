"""Service-level behaviour: backpressure/shedding, worker resilience,
probe wiring, the closed-loop load generator, and the bench document.
"""

from __future__ import annotations

import asyncio
import json

from repro.cache.base import CachePolicy
from repro.cache.lru import LRUCache
from repro.obs.probe import Probe
from repro.obs.sinks import RingBufferSink
from repro.serve import (
    CacheService,
    OriginConfig,
    Pacer,
    RetryPolicy,
    SERVE_BENCH_SCHEMA,
    SimulatedOrigin,
    format_serve_doc,
    run_loadgen,
    run_serve_bench,
)
from repro.sim.request import Request

import pytest


def _service(**kw):
    kw.setdefault("origin", SimulatedOrigin(OriginConfig(latency_mean=kw.pop("latency", 0.001))))
    kw.setdefault("retry", RetryPolicy(timeout=0.5, max_retries=1, backoff_base=0.001))
    kw.setdefault("n_shards", 1)
    capacity = kw.pop("capacity", 1_000_000)
    return CacheService(LRUCache, capacity, **kw)


class TestBackpressure:
    def test_overflow_beyond_queue_depth_is_shed(self):
        """A burst larger than the queue bound sheds the excess: counted,
        resolved immediately, and invisible to the policy."""

        async def run():
            service = _service(queue_depth=8, latency=0.005)
            async with service:
                outs = await asyncio.gather(
                    *(service.get(Request(0, i, 100)) for i in range(30))
                )
            return outs, service

        outs, service = asyncio.run(run())
        shed = [o for o in outs if o.shed]
        served = [o for o in outs if not o.shed]
        # All 30 gets enqueue before the worker runs once, so exactly the
        # overflow beyond the bound is rejected.
        assert len(shed) == 30 - 8
        assert len(served) == 8
        assert service.metrics.shed.value == 22
        assert all(not o.hit and o.error is None for o in shed)
        # Shed requests never reached the policy.
        assert service.cache_stats()["requests"] == 8
        # The labelled per-shard counter agrees with the aggregate.
        assert (
            service.metrics.registry.counter("serve_shed_by_shard", shard="0").value == 22
        )

    def test_unbounded_queue_never_sheds(self):
        async def run():
            service = _service(queue_depth=0, latency=0.002)
            async with service:
                outs = await asyncio.gather(
                    *(service.get(Request(0, i, 100)) for i in range(200))
                )
            return outs

        outs = asyncio.run(run())
        assert not any(o.shed for o in outs)


class TestWorkerResilience:
    def test_policy_exception_degrades_one_request_not_the_shard(self):
        class BombPolicy(CachePolicy):
            name = "bomb"

            def __init__(self, capacity):
                super().__init__(capacity)
                self.calls = 0

            def _lookup(self, key):
                self.calls += 1
                if self.calls == 2:
                    raise RuntimeError("boom")
                return False

            def _hit(self, req):
                pass

            def _miss(self, req):
                pass

            def __len__(self):
                return 0

        async def run():
            service = CacheService(
                BombPolicy,
                1_000_000,
                n_shards=1,
                origin=SimulatedOrigin(OriginConfig(latency_mean=0.0)),
                retry=RetryPolicy(timeout=None, max_retries=0),
            )
            async with service:
                first = await service.get(Request(0, 1, 10))
                second = await service.get(Request(1, 2, 10))  # the bomb
                third = await service.get(Request(2, 3, 10))
            return first, second, third, service

        first, second, third, service = asyncio.run(run())
        assert first.error is None and third.error is None
        assert second.error is not None and "boom" in second.error
        assert service.unhandled_exceptions == 1

    def test_get_before_start_raises(self):
        async def run():
            service = _service()
            with pytest.raises(RuntimeError, match="before start"):
                await service.get(Request(0, 1, 10))

        asyncio.run(run())

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="n_shards"):
            _service(n_shards=0)
        with pytest.raises(ValueError, match="split"):
            CacheService(LRUCache, 2, n_shards=4)


class TestProbeWiring:
    def test_serve_events_reach_the_sink(self):
        ring = RingBufferSink(maxlen=256)
        probe = Probe([ring])

        async def run():
            origin = SimulatedOrigin(OriginConfig(latency_mean=0.004))
            # 4 served keys × (1 attempt + 1 retry) — every fetch retries
            # once and then fails terminally.
            origin.inject_failures(8)
            service = _service(
                origin=origin,
                retry=RetryPolicy(timeout=0.5, max_retries=1, backoff_base=0.001),
                queue_depth=4,
                probe=probe,
            )
            async with service:
                await asyncio.gather(
                    *(service.get(Request(0, i, 100)) for i in range(10))
                )
            return service

        asyncio.run(run())
        events = {rec["event"] for rec in ring.as_list()}
        assert "fetch" in events
        assert "fetch_retry" in events
        assert "fetch_error" in events
        assert "shed" in events


class TestLoadgen:
    def test_pacer_enforces_arrival_rate(self):
        async def run():
            service = _service(latency=0.0, retry=RetryPolicy(timeout=None, max_retries=0))
            reqs = [Request(i, i % 5, 100) for i in range(40)]
            async with service:
                summary = await run_loadgen(service, reqs, concurrency=4, rate=2_000)
            return summary

        summary = asyncio.run(run())
        assert summary["requests"] == 40
        # 40 requests at 2 kHz need ≥ ~20 ms of schedule.
        assert summary["elapsed_s"] >= 0.015
        assert summary["rate_target"] == 2_000

    def test_pacer_validates_rate(self):
        with pytest.raises(ValueError, match="rate"):
            Pacer(0)

    def test_loadgen_validates_concurrency(self):
        async def run():
            service = _service()
            async with service:
                with pytest.raises(ValueError, match="concurrency"):
                    await run_loadgen(service, [], concurrency=0)

        asyncio.run(run())

    def test_clients_share_the_trace_exactly_once(self):
        async def run():
            service = _service(latency=0.0005)
            reqs = [Request(i, i, 100) for i in range(100)]  # all unique → all miss
            async with service:
                summary = await run_loadgen(service, reqs, concurrency=16)
            return summary, service

        summary, service = asyncio.run(run())
        assert summary["requests"] == 100
        assert service.cache_stats()["requests"] == 100
        assert service.cache_stats()["misses"] == 100


class TestServeBenchDoc:
    def test_quick_bench_document_shape(self, tmp_path):
        out = tmp_path / "BENCH_serve.json"
        doc = run_serve_bench(
            output=str(out),
            quick=True,
            n_requests=3_000,
            n_shards=2,
            concurrency=16,
            origin_latency=0.001,
            timeout=0.5,
        )
        on_disk = json.loads(out.read_text())
        assert on_disk["schema"] == SERVE_BENCH_SCHEMA
        assert on_disk["config"]["n_shards"] == 2
        assert on_disk["unhandled_exceptions"] == 0
        assert on_disk["stampede"]["origin_fetches"] == 1
        assert on_disk["origin"]["coalesced_waits"] > 0
        assert on_disk["loadgen"]["requests"] == on_disk["config"]["n_requests"]
        assert on_disk["latency"]["count"] > 0
        # The embedded manifest makes the artifact self-describing.
        assert on_disk["manifest"]["schema"] >= 1
        assert on_disk["manifest"]["extra"]["serve_config"]["policy"] == "SCIP"
        # The formatter renders every headline block.
        text = format_serve_doc(doc)
        assert "serve bench" in text and "stampede probe" in text

    def test_bench_rejects_unknown_policy(self):
        with pytest.raises(KeyError, match="unknown policy"):
            run_serve_bench(output=None, policy="NOPE", n_requests=100)
