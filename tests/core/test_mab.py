"""PositionBandit (two-expert MAB) unit tests."""

from __future__ import annotations

import random

import pytest

from repro.cache.base import LRU_POS, MRU_POS
from repro.core.mab import PositionBandit


class TestWeights:
    def test_initial_normalised(self):
        b = PositionBandit(initial_w_mru=0.9)
        assert b.w_mru + b.w_lru == pytest.approx(1.0)

    def test_penalize_mru_decreases_w_mru(self):
        b = PositionBandit(initial_w_mru=0.5)
        b.penalize_mru(0.5)
        assert b.w_mru < 0.5
        assert b.w_mru + b.w_lru == pytest.approx(1.0)

    def test_penalize_lru_increases_w_mru(self):
        b = PositionBandit(initial_w_mru=0.5)
        b.penalize_lru(0.5)
        assert b.w_mru > 0.5

    def test_floor_keeps_both_alive(self):
        b = PositionBandit(initial_w_mru=0.5)
        for _ in range(200):
            b.penalize_mru(1.0)
        assert b.w_mru >= 0.01
        # And it can recover.
        for _ in range(200):
            b.penalize_lru(1.0)
        assert b.w_mru > 0.5

    def test_penalty_counters(self):
        b = PositionBandit()
        b.penalize_mru(0.1)
        b.penalize_lru(0.1)
        assert b.penalties_mru == 1 and b.penalties_lru == 1

    def test_invalid_initial(self):
        with pytest.raises(ValueError):
            PositionBandit(initial_w_mru=0.0)
        with pytest.raises(ValueError):
            PositionBandit(initial_w_mru=1.0)

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            PositionBandit(mode="coin-flip")


class TestSelect:
    def test_threshold_mode_deterministic(self):
        b = PositionBandit(initial_w_mru=0.9, mode="threshold")
        assert all(b.select() == MRU_POS for _ in range(20))
        b.w_mru, b.w_lru = 0.3, 0.7
        assert all(b.select() == LRU_POS for _ in range(20))

    def test_bernoulli_mode_frequency(self):
        b = PositionBandit(initial_w_mru=0.7, rng=random.Random(0), mode="bernoulli")
        picks = [b.select() for _ in range(5_000)]
        frac_mru = sum(p == MRU_POS for p in picks) / len(picks)
        assert 0.65 < frac_mru < 0.75

    def test_promotion_threshold_asymmetric(self):
        b = PositionBandit(initial_w_mru=0.3, mode="threshold")
        # Insertion at w=0.3 goes LRU, but promotion (threshold 0.2) stays MRU.
        assert b.select() == LRU_POS
        assert b.select_promotion(0.2) == MRU_POS
        b.w_mru = 0.1
        assert b.select_promotion(0.2) == LRU_POS

    def test_promotion_threshold_zero_never_demotes(self):
        b = PositionBandit(initial_w_mru=0.011, mode="threshold")
        assert b.select_promotion(0.0) == MRU_POS

    def test_promotion_bernoulli_rescaled(self):
        b = PositionBandit(initial_w_mru=0.9, rng=random.Random(1), mode="bernoulli")
        assert all(b.select_promotion(0.2) == MRU_POS for _ in range(50))
