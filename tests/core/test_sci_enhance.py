"""SCI (Algorithm 3) and the Figure 12 enhancement wrappers."""

from __future__ import annotations

import pytest

from repro.cache.lrb import LRBCache
from repro.cache.lruk import LRUKCache
from repro.core.enhance import ASCIPLRB, ASCIPLRUK, SCIPLRB, SCIPLRUK, enhance
from repro.core.sci import SCICache
from repro.core.scip import SCIPCache
from repro.sim.request import Request


def feed(p, keys, size=10, t0=0):
    for i, k in enumerate(keys):
        p.request(Request(t0 + i, k, size))


class TestSCI:
    def test_hits_always_promote_to_mru(self):
        p = SCICache(1_000, update_interval=10**9)
        feed(p, [1, 2, 3])
        p.request(Request(3, 1, 10))
        assert p.queue.head.key == 1
        assert p.index[1].inserted_mru is True

    def test_shares_insertion_machinery_with_scip(self):
        """SCI inherits SCIP's ghost-driven insertion (Algorithm 3 L6-21)."""
        p = SCICache(50, update_interval=10**9, escape=0.0)
        p.request(Request(0, 7, 10))
        feed(p, range(900, 905), t0=1)
        for i in range(int(p._tenure_ewma * p.deny_gap_factor) + 50):
            p.request(Request(10 + i, 800, 10))
        before = p.zro_denials
        p.request(Request(p.clock + 1, 7, 10))
        assert p.zro_denials == before + 1

    def test_never_demotes_hits(self, cdn_t_small):
        p = SCICache(int(cdn_t_small.working_set_size * 0.02))
        for r in cdn_t_small:
            p.request(r)
        assert p.pzro_demotions == 0


class TestEnhanceFactory:
    def test_known_hosts(self):
        assert isinstance(enhance("LRU-K", 1_000), SCIPLRUK)
        assert isinstance(enhance("LRB", 1_000), SCIPLRB)

    def test_multichain_refused(self):
        for host in ["ARC", "S4LRU", "CACHEUS"]:
            with pytest.raises(ValueError, match="multi-chain"):
                enhance(host, 1_000)

    def test_unknown_host(self):
        with pytest.raises(ValueError, match="no SCIP enhancement"):
            enhance("NOPE", 1_000)


class TestSCIPLRUK:
    def test_victim_prefers_sub_k_history(self):
        p = SCIPLRUK(30, k=2, update_interval=10**9)
        feed(p, [1, 1, 2, 2, 3])
        p.request(Request(5, 4, 10))
        assert not p.contains(3)  # infinite K-distance victim
        assert p.contains(1) and p.contains(2)

    def test_runs_clean_on_cdn(self, cdn_t_small):
        p = SCIPLRUK(int(cdn_t_small.working_set_size * 0.02))
        for r in cdn_t_small:
            p.request(r)
            assert p.used <= p.capacity
        p.check_invariants()

    def test_improves_plain_lruk(self, cdn_t_small):
        cap = int(cdn_t_small.working_set_size * 0.02)
        host = LRUKCache(cap)
        enhanced = SCIPLRUK(cap)
        for r in cdn_t_small:
            host.request(r)
            enhanced.request(r)
        assert enhanced.stats.miss_ratio <= host.stats.miss_ratio + 0.01


class TestSCIPLRB:
    def test_runs_clean(self, cdn_t_small):
        p = SCIPLRB(
            int(cdn_t_small.working_set_size * 0.02),
            learner_kwargs={"memory_window": 3_000, "retrain_interval": 4_000},
        )
        for r in cdn_t_small:
            p.request(r)
            assert p.used <= p.capacity
        assert p.learner.trainings >= 1

    def test_pool_consistent_with_index(self, cdn_t_small):
        p = SCIPLRB(
            int(cdn_t_small.working_set_size * 0.03),
            learner_kwargs={"memory_window": 3_000, "retrain_interval": 4_000},
        )
        for r in cdn_t_small:
            p.request(r)
        assert set(p.learner._key_pos) == set(p.index)


class TestASCIPVariants:
    def test_ascip_lruk_runs(self, cdn_t_small):
        p = ASCIPLRUK(int(cdn_t_small.working_set_size * 0.02))
        for r in cdn_t_small:
            p.request(r)
        assert 0.0 < p.stats.miss_ratio < 1.0

    def test_ascip_lrb_runs(self, cdn_t_small):
        p = ASCIPLRB(
            int(cdn_t_small.working_set_size * 0.02),
            learner_kwargs={"memory_window": 3_000, "retrain_interval": 4_000},
        )
        for r in cdn_t_small:
            p.request(r)
        assert 0.0 < p.stats.miss_ratio < 1.0

    def test_names_match_figure12(self):
        assert SCIPLRUK(100).name == "LRU-K-SCIP"
        assert ASCIPLRUK(100).name == "LRU-K-ASCIP"
        assert SCIPLRB(100).name == "LRB-SCIP"
        assert ASCIPLRB(100).name == "LRB-ASCIP"
