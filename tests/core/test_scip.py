"""SCIP state-machine unit tests (Algorithm 1 + the per-object layer)."""

from __future__ import annotations

import pytest

from repro.cache.base import LRU_POS, MRU_POS
from repro.core.scip import DEMOTED, DENIED, NORMAL, SUSPECT, SCIPCache
from repro.sim.request import Request


def scip(capacity=1_000, **kw):
    kw.setdefault("update_interval", 10**9)  # freeze λ updates in unit tests
    return SCIPCache(capacity, **kw)


def feed(p, keys, size=10, t0=0):
    for i, k in enumerate(keys):
        p.request(Request(t0 + i, k, size))


class TestBasicFlow:
    def test_fresh_miss_inserts_mru_with_high_w(self):
        p = scip()
        p.request(Request(0, 1, 10))
        assert p.index[1].inserted_mru is True

    def test_eviction_routes_by_insert_pos(self):
        p = scip(capacity=30)
        feed(p, [1, 2, 3, 4])  # all MRU inserts; 1 evicted
        assert 1 in p.h_m
        assert 1 not in p.h_l

    def test_ghost_hit_deletes_entry(self):
        p = scip(capacity=30)
        feed(p, [1, 2, 3, 4])  # 1 evicted into H_m
        p.request(Request(10, 1, 10))
        assert 1 not in p.h_m

    def test_promotion_is_remove_then_insert(self):
        p = scip(capacity=100)
        feed(p, [1, 2, 3])
        p.request(Request(3, 1, 10))
        # Hit on 1 with high w → re-inserted at MRU, no history record.
        assert p.queue.head.key == 1
        assert 1 not in p.h_m and 1 not in p.h_l

    def test_history_budget_fraction(self):
        p = SCIPCache(1_000, history_fraction=0.5)
        assert p.h_m.capacity == 500
        assert p.h_l.capacity == 500

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SCIPCache(100, history_fraction=-1)
        with pytest.raises(ValueError):
            SCIPCache(100, update_interval=0)
        with pytest.raises(ValueError):
            SCIPCache(100, escape=1.5)


class TestZRODenial:
    def _one_zro_cycle(self, p, key, t0):
        """Insert key, flood it out unused, then return it much later."""
        p.request(Request(t0, key, 10))
        feed(p, range(900, 905), t0=t0 + 1)  # flood the 50-byte cache
        # Long gap: advance the clock with hot traffic.
        for i in range(int(p._tenure_ewma * p.deny_gap_factor) + 50):
            p.request(Request(t0 + 10 + i, 800, 10))

    def test_recurring_zro_denied(self):
        p = scip(capacity=50, escape=0.0)
        self._one_zro_cycle(p, key=7, t0=0)
        clock0 = p.clock
        before = p.zro_denials
        p.request(Request(clock0 + 1, 7, 10))  # the return: ghost hit in H_m
        assert p.zro_denials == before + 1
        assert p.index[7].inserted_mru is False
        assert p.index[7].data & DENIED

    def test_denied_eviction_goes_to_h_l_with_flag(self):
        p = scip(capacity=50, escape=0.0)
        self._one_zro_cycle(p, key=7, t0=0)
        p.request(Request(p.clock + 1, 7, 10))  # denied insert at tail
        p.request(Request(p.clock + 1, 801, 10))  # evicts the tail (7)
        entry = p.h_l.pop(7)
        assert entry is not None
        assert entry[2] == DENIED

    def test_quick_return_is_not_denied(self):
        """An H_m ghost that comes back within a cache lifetime gets MRU."""
        p = scip(capacity=50, escape=0.0)
        p._tenure_ewma = 10_000  # huge lifetime: every gap is 'short'
        p.request(Request(0, 7, 10))
        feed(p, range(900, 905), t0=1)  # 7 evicted unused → H_m
        p.request(Request(20, 7, 10))
        assert p.index[7].inserted_mru is True
        assert p.zro_denials == 0

    def test_escape_gives_reconciliation_tenure(self):
        p = scip(capacity=50, escape=1.0)  # always escape
        self._one_zro_cycle(p, key=7, t0=0)
        p.request(Request(p.clock + 1, 7, 10))
        assert p.index[7].inserted_mru is True  # escaped to MRU
        assert p.zro_denials == 0


class TestPZROSuspicion:
    def _pzro_cycle(self, p, key, t0):
        """Insert, hit once, flood out, long gap — the P-ZRO signature."""
        p.request(Request(t0, key, 10))
        p.request(Request(t0 + 1, key, 10))  # the single hit
        feed(p, range(900, 905), t0=t0 + 2)  # flush
        for i in range(int(p._tenure_ewma * p.deny_gap_factor) + 50):
            p.request(Request(t0 + 10 + i, 800, 10))

    def test_single_hit_episode_arms_suspicion(self):
        p = scip(capacity=50, escape=0.0)
        self._pzro_cycle(p, key=7, t0=0)
        p.request(Request(p.clock + 1, 7, 10))  # return: H_m ghost, hits==1
        assert p.index[7].inserted_mru is True  # MRU (it earns its hit)
        assert p.index[7].data & SUSPECT

    def test_suspect_hit_is_demoted(self):
        p = scip(capacity=50, escape=0.0)
        self._pzro_cycle(p, key=7, t0=0)
        p.request(Request(p.clock + 1, 7, 10))  # return, suspect armed
        before = p.pzro_demotions
        p.request(Request(p.clock + 1, 7, 10))  # the hit → demote
        assert p.pzro_demotions == before + 1
        assert p.queue.tail.key == 7
        assert p.index[7].data == DEMOTED

    def test_multi_hit_episode_not_suspected(self):
        p = scip(capacity=50, escape=0.0)
        p.request(Request(0, 7, 10))
        p.request(Request(1, 7, 10))
        p.request(Request(2, 7, 10))  # two hits this tenure
        feed(p, range(900, 905), t0=3)
        for i in range(int(p._tenure_ewma * p.deny_gap_factor) + 50):
            p.request(Request(10 + i, 800, 10))
        p.request(Request(p.clock + 1, 7, 10))
        assert p.index[7].inserted_mru is True
        assert not (p.index[7].data or 0) & SUSPECT

    def test_disproved_suspicion_lowers_confidence(self):
        p = scip(capacity=50, escape=0.0)
        self._pzro_cycle(p, key=7, t0=0)
        p.request(Request(p.clock + 1, 7, 10))  # suspect armed
        p.request(Request(p.clock + 1, 7, 10))  # demoted on hit
        # Re-hit while at the tail: suspicion disproved in place.
        p.request(Request(p.clock + 1, 7, 10))
        assert p._pzro_conf.get(7, 0) < 0

    def test_negative_confidence_blocks_arming(self):
        p = scip(capacity=50, escape=0.0)
        p._pzro_conf[7] = -2
        self._pzro_cycle(p, key=7, t0=0)
        p.request(Request(p.clock + 1, 7, 10))
        assert not (p.index[7].data or 0) & SUSPECT


class TestWeightsAndLR:
    def test_ghost_hits_update_weights(self):
        p = scip(capacity=50, escape=0.0)
        w0 = p.w_mru
        # Recurring-ZRO cycle penalises the MRU expert.
        p.request(Request(0, 7, 10))
        feed(p, range(900, 905), t0=1)
        for i in range(int(p._tenure_ewma * p.deny_gap_factor) + 50):
            p.request(Request(10 + i, 800, 10))
        p.request(Request(p.clock + 1, 7, 10))
        assert p.w_mru < w0

    def test_lambda_updates_on_interval(self, cdn_t_small):
        p = SCIPCache(int(cdn_t_small.working_set_size * 0.02), update_interval=500)
        for r in cdn_t_small:
            p.request(r)
        assert p.lr.updates >= len(cdn_t_small) // 500 - 1

    def test_weights_always_normalised(self, cdn_t_small):
        p = SCIPCache(int(cdn_t_small.working_set_size * 0.02))
        for i, r in enumerate(cdn_t_small):
            p.request(r)
            if i % 1000 == 0:
                assert abs(p.bandit.w_mru + p.bandit.w_lru - 1.0) < 1e-9

    def test_metadata_accounting(self):
        p = scip(capacity=1_000)
        feed(p, range(20))
        assert p.metadata_bytes() >= 110 * len(p)

    def test_invariants_on_cdn_trace(self, cdn_t_small):
        p = SCIPCache(int(cdn_t_small.working_set_size * 0.02))
        for i, r in enumerate(cdn_t_small):
            p.request(r)
            if i % 2_000 == 0:
                p.check_invariants()


class TestInterpretationAblations:
    def test_literal_algorithm1_runs(self, cdn_t_small):
        p = SCIPCache(int(cdn_t_small.working_set_size * 0.02), per_object=False)
        for r in cdn_t_small:
            p.request(r)
        # The per-object layer is off: no denials or demotions can occur.
        assert p.zro_denials == 0
        assert p.pzro_demotions == 0
        assert 0 < p.stats.miss_ratio < 1

    def test_literal_weights_still_move(self, cdn_t_small):
        p = SCIPCache(int(cdn_t_small.working_set_size * 0.02), per_object=False)
        for r in cdn_t_small:
            p.request(r)
        assert p.bandit.penalties_mru + p.bandit.penalties_lru > 0

    def test_token_blind_denies_more(self, cdn_t_small):
        cap = int(cdn_t_small.working_set_size * 0.02)
        full = SCIPCache(cap)
        blind = SCIPCache(cap, use_hit_token=False)
        for r in cdn_t_small:
            full.request(r)
            blind.request(r)
        assert blind.pzro_demotions == 0, "token-blind has no suspicion channel"
        assert blind.zro_denials >= full.zro_denials

    def test_full_beats_literal_on_sweep_traffic(self, cdn_t_small):
        cap = int(cdn_t_small.working_set_size * 0.02)
        full = SCIPCache(cap)
        literal = SCIPCache(cap, per_object=False)
        for r in cdn_t_small:
            full.request(r)
            literal.request(r)
        assert full.stats.miss_ratio <= literal.stats.miss_ratio + 0.01
