"""Property-based tests of the Algorithm 2 controller and the bandit."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.learning import LAMBDA_MAX, LAMBDA_MIN, LearningRateController
from repro.core.mab import PositionBandit

rates = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@settings(max_examples=150, deadline=None)
@given(st.lists(st.tuples(rates, rates), min_size=1, max_size=120), st.integers(0, 2**16))
def test_lambda_always_in_bounds(updates, seed):
    c = LearningRateController(initial=0.1, rng=random.Random(seed))
    for now, prev in updates:
        lam = c.update(now, prev)
        assert LAMBDA_MIN <= lam <= LAMBDA_MAX
        assert c.unlearn_count <= c.unlearn_limit


@settings(max_examples=150, deadline=None)
@given(
    st.lists(st.sampled_from(["m", "l"]), min_size=1, max_size=300),
    st.floats(min_value=0.001, max_value=1.0),
)
def test_bandit_normalised_under_any_penalty_stream(events, lam):
    b = PositionBandit(initial_w_mru=0.5)
    for e in events:
        if e == "m":
            b.penalize_mru(lam)
        else:
            b.penalize_lru(lam)
        assert abs(b.w_mru + b.w_lru - 1.0) < 1e-9
        assert 0.0 < b.w_mru < 1.0


@settings(max_examples=80, deadline=None)
@given(st.integers(1, 60), st.integers(1, 60))
def test_bandit_monotone_in_evidence(n_m, n_l):
    """More MRU penalties (relative to LRU ones) never raise ω_m."""
    def final_w(nm, nl):
        b = PositionBandit(initial_w_mru=0.5)
        for _ in range(nm):
            b.penalize_mru(0.2)
        for _ in range(nl):
            b.penalize_lru(0.2)
        return b.w_mru

    assert final_w(n_m + 1, n_l) <= final_w(n_m, n_l) + 1e-9


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 2**16))
def test_restart_draws_are_in_range_and_seeded(seed):
    a = LearningRateController(initial=0.1, unlearn_limit=1, rng=random.Random(seed))
    b = LearningRateController(initial=0.1, unlearn_limit=1, rng=random.Random(seed))
    for _ in range(3):
        la = a.update(0.0, 0.0)
        lb = b.update(0.0, 0.0)
        assert la == lb  # same seed → same restart draws
        assert LAMBDA_MIN <= la <= LAMBDA_MAX
    assert a.restarts >= 1
