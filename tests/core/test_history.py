"""HistoryList (shadow list) unit + property tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.history import HistoryList


class TestBasics:
    def test_add_and_lookup(self):
        h = HistoryList(100)
        h.add(1, 30)
        assert 1 in h
        assert len(h) == 1
        assert h.bytes == 30

    def test_fifo_trim_at_budget(self):
        h = HistoryList(100)
        h.add(1, 40)
        h.add(2, 40)
        h.add(3, 40)  # evicts 1 (oldest)
        assert 1 not in h
        assert 2 in h and 3 in h
        assert h.bytes == 80

    def test_oversized_entry_dropped(self):
        h = HistoryList(50)
        h.add(1, 100)
        assert 1 not in h
        assert h.bytes == 0

    def test_delete_returns_presence(self):
        h = HistoryList(100)
        h.add(1, 10)
        assert h.delete(1) is True
        assert h.delete(1) is False
        assert h.bytes == 0

    def test_pop_returns_entry(self):
        h = HistoryList(100)
        h.add(1, 10, was_hit=2, flag=1, time=42)
        entry = h.pop(1)
        assert entry == (10, 2, 1, 42)
        assert h.pop(1) is None

    def test_readd_refreshes(self):
        h = HistoryList(100)
        h.add(1, 10)
        h.add(2, 10)
        h.add(1, 20)  # re-add: moves to MRU end, updates size
        assert h.bytes == 30
        assert h.keys() == [2, 1]

    def test_zero_capacity(self):
        h = HistoryList(0)
        h.add(1, 10)
        assert 1 not in h

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            HistoryList(-1)

    def test_clear(self):
        h = HistoryList(100)
        h.add(1, 10)
        h.clear()
        assert len(h) == 0 and h.bytes == 0

    def test_metadata_accounting(self):
        h = HistoryList(1000)
        for k in range(5):
            h.add(k, 10)
        assert h.metadata_bytes() == 32 * 5


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from(["add", "delete", "pop"]), st.integers(0, 20), st.integers(1, 50)),
        max_size=200,
    ),
    st.integers(10, 500),
)
def test_budget_and_accounting_invariants(ops, capacity):
    """Property: byte accounting is exact and the budget is never exceeded,
    under arbitrary add/delete/pop interleavings."""
    h = HistoryList(capacity)
    for op, key, size in ops:
        if op == "add":
            h.add(key, size)
        elif op == "delete":
            h.delete(key)
        else:
            h.pop(key)
        h.check_invariants()
        assert h.bytes <= capacity
