"""Property-based invariant tests for SCIP's learned components.

Hypothesis drives arbitrary request streams and update sequences; at every
step the paper-mandated invariants must hold:

* the bandit's execution probabilities satisfy ``ω_m + ω_l = 1`` with both
  weights in ``[0, 1]`` (Algorithm 1 keeps a normalised pair; the EXP3
  exploration floor additionally keeps both ≥ 0.01),
* the learning rate stays inside ``[λ_min, λ_max]`` through every
  hill-climbing step and random restart (Algorithm 2's clamps),
* the FIFO history lists ``H_m`` / ``H_l`` never exceed their byte budgets
  (Algorithm 1, L34-38 trims before appending),
* the cache itself never holds more than ``capacity`` bytes.

These complement the scenario tests in ``test_scip*.py``: those check that
specific traffic patterns produce specific adaptations; these check that *no*
input sequence can corrupt the learner state.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.history import HistoryList
from repro.core.learning import LAMBDA_MAX, LAMBDA_MIN, LearningRateController
from repro.core.mab import PositionBandit
from repro.core.scip import SCIPCache
from repro.sim.request import Request

#: Request streams over a small hot key space so ghosts recur often.
streams = st.lists(
    st.tuples(st.integers(0, 40), st.integers(1, 500)), min_size=1, max_size=500
)


@settings(max_examples=50, deadline=None)
@given(streams, st.integers(500, 5_000), st.integers(0, 2**31 - 1))
def test_scip_invariants_hold_at_every_request(data, capacity, seed):
    # A tiny update interval forces many UPDATELR calls per example.
    p = SCIPCache(capacity, update_interval=16, seed=seed)
    for i, (key, size) in enumerate(data):
        p.request(Request(i, key, size))
        b = p.bandit
        assert abs(b.w_mru + b.w_lru - 1.0) < 1e-9
        assert 0.0 <= b.w_mru <= 1.0 and 0.0 <= b.w_lru <= 1.0
        assert LAMBDA_MIN <= p.lr.value <= LAMBDA_MAX
        assert p.h_m.bytes <= p.h_m.capacity
        assert p.h_l.bytes <= p.h_l.capacity
        assert p.used <= p.capacity
    # Full structural audit (queue links, history accounting, weight pair).
    p.check_invariants()


@settings(max_examples=100, deadline=None)
@given(
    st.floats(min_value=0.01, max_value=0.99),
    st.lists(
        st.tuples(st.booleans(), st.floats(min_value=LAMBDA_MIN, max_value=LAMBDA_MAX)),
        max_size=200,
    ),
)
def test_bandit_weights_stay_a_floored_probability_pair(w0, penalties):
    b = PositionBandit(initial_w_mru=w0)
    for hit_mru, lam in penalties:
        (b.penalize_mru if hit_mru else b.penalize_lru)(lam)
        assert abs(b.w_mru + b.w_lru - 1.0) < 1e-9
        # The EXP3 exploration floor keeps both experts alive.
        assert 0.01 - 1e-12 <= b.w_mru <= 0.99 + 1e-12
        assert 0.01 - 1e-12 <= b.w_lru <= 0.99 + 1e-12


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=1.0),
            st.floats(min_value=0.0, max_value=1.0),
        ),
        max_size=150,
    ),
    st.integers(0, 2**31 - 1),
    st.integers(1, 5),
)
def test_learning_rate_stays_in_bounds(hit_rate_pairs, seed, unlearn_limit):
    lr = LearningRateController(rng=random.Random(seed), unlearn_limit=unlearn_limit)
    for now, prev in hit_rate_pairs:
        lr.update(now, prev)
        assert LAMBDA_MIN <= lr.value <= LAMBDA_MAX


#: (op, key, size): op 0 = add, 1 = ghost pop, 2 = delete.
history_ops = st.lists(
    st.tuples(st.integers(0, 2), st.integers(0, 30), st.integers(1, 400)), max_size=300
)


@settings(max_examples=100, deadline=None)
@given(history_ops, st.integers(0, 2_000))
def test_history_list_never_exceeds_its_byte_budget(ops, capacity):
    h = HistoryList(capacity)
    shadow: dict = {}  # key -> size, the expected contents modulo FIFO trims
    for op, key, size in ops:
        if op == 0:
            h.add(key, size, was_hit=bool(size % 2), flag=size % 3, time=size)
            if size <= capacity:
                shadow[key] = size
        elif op == 1:
            entry = h.pop(key)
            if entry is not None:
                assert shadow.pop(key, None) == entry[0]
        else:
            present = key in h
            assert h.delete(key) == present
            shadow.pop(key, None)
        assert h.bytes <= capacity
        assert h.bytes == sum(s for s, _, _, _ in h._entries.values())
        h.check_invariants()
        # Everything resident must still be shadow-known (FIFO trims only
        # ever remove entries, never invent them).
        for k in h.keys():
            assert k in shadow
