"""SCIP dynamics on structured micro-workloads — the mechanisms the paper
claims, demonstrated in isolation.

Each test constructs a minimal stream exhibiting exactly one phenomenon
(a recurring sweep, a paired revalidation chain, a hot set, a flood) and
asserts SCIP's response: denial of recurring ZROs, targeted demotion of
recurring P-ZROs, no interference with plain hot traffic.
"""

from __future__ import annotations

import pytest

from repro.cache.lru import LRUCache
from repro.core.sci import SCICache
from repro.core.scip import SCIPCache
from repro.sim.request import Request


def build_sweep_stream(
    n_cycles=8, sweep_objs=40, hot_objs=8, fill_rate=3, period=600, paired=False
):
    """Interleave: a hot set (constant re-hits), a one-shot fill stream, and
    a sweep population visiting once (or as a miss+hit pair) per period."""
    reqs = []
    t = 0
    fresh = 10_000
    for cycle in range(n_cycles):
        for step in range(period):
            reqs.append(Request(t, step % hot_objs, 10))
            t += 1
            for _ in range(fill_rate):
                reqs.append(Request(t, fresh, 10))
                fresh += 1
                t += 1
            if step < sweep_objs:
                key = 1_000 + step
                reqs.append(Request(t, key, 10))
                t += 1
                if paired:
                    reqs.append(Request(t, key, 10))
                    t += 1
    return reqs


def run(policy, reqs):
    for r in reqs:
        policy.request(r)
    return policy


class TestRecurringZRODenial:
    def test_scip_denies_and_beats_lru(self):
        reqs = build_sweep_stream()
        cap = 600  # holds the hot set + a few dozen others
        scip = run(SCIPCache(cap, update_interval=10**9, seed=0), reqs)
        lru = run(LRUCache(cap), reqs)
        assert scip.zro_denials > 50, "sweeps must be recognised"
        assert scip.stats.miss_ratio <= lru.stats.miss_ratio

    def test_hot_set_unharmed(self):
        reqs = build_sweep_stream()
        cap = 600
        scip = SCIPCache(cap, update_interval=10**9, seed=0)
        hot_misses = 0
        for r in reqs:
            hit = scip.request(r)
            if r.key < 8 and not hit:
                hot_misses += 1
        # The hot set misses only on first touches (8), never after.
        assert hot_misses <= 16


class TestRecurringPZRODemotion:
    def test_paired_sweeps_get_demoted(self):
        reqs = build_sweep_stream(paired=True)
        cap = 600
        scip = run(SCIPCache(cap, update_interval=10**9, seed=0), reqs)
        assert scip.pzro_demotions > 30, "paired sweeps must arm suspicion"

    def test_scip_at_least_matches_sci(self):
        reqs = build_sweep_stream(paired=True, n_cycles=10)
        cap = 600
        scip = run(SCIPCache(cap, update_interval=10**9, seed=0), reqs)
        sci = run(SCICache(cap, update_interval=10**9, seed=0), reqs)
        assert scip.stats.miss_ratio <= sci.stats.miss_ratio + 0.005

    def test_pair_hits_still_served(self):
        """Demotion happens ON the pair hit, never before it.  With a hot
        set large enough that sweeps can never survive a full period, the
        pair hit-stream must not shrink versus SCI.  (With *cacheable*
        sweeps the demotions would be wrong and SCIP pays a bounded
        learning cost instead — covered by test_wrong_suspicion below.)"""
        reqs = build_sweep_stream(paired=True, n_cycles=6, hot_objs=50)
        cap = 600  # hot set fills ~80 % of the cache: sweep tenures short

        def sweep_hits(policy):
            return sum(
                policy.request(r) and 1_000 <= r.key < 2_000 for r in reqs
            )

        scip_hits = sweep_hits(SCIPCache(cap, update_interval=10**9, seed=0))
        sci_hits = sweep_hits(SCICache(cap, update_interval=10**9, seed=0))
        assert scip_hits >= sci_hits - 5


class TestMisjudgmentRecovery:
    def test_escaped_denial_can_rehabilitate(self):
        """An object wrongly classified ZRO (its behaviour changes to hot)
        must eventually regain residency via escape + hit-clearing."""
        cap = 400
        scip = SCIPCache(cap, update_interval=10**9, seed=3, escape=0.25)
        t = 0
        fresh = 50_000
        # Phase 1: key 7 behaves like a sweep (3 long-gap ZRO cycles).
        for _ in range(3):
            scip.request(Request(t, 7, 10)); t += 1
            for _ in range(1_500):
                scip.request(Request(t, fresh, 10)); fresh += 1; t += 1
        # Phase 2: key 7 turns hot.
        hits = 0
        for i in range(400):
            hits += scip.request(Request(t, 7, 10))
            t += 1
            scip.request(Request(t, fresh, 10)); fresh += 1; t += 1
        assert hits > 300, "a re-hot object must recover from denial"

    def test_wrong_suspicion_self_corrects(self):
        """A multi-hit object that once showed a single-hit tenure loses at
        most a bounded number of hits to demotion gambles (confidence
        blocks re-arming after disproofs)."""
        cap = 400
        scip = SCIPCache(cap, update_interval=10**9, seed=1, escape=0.0)
        t = 0
        fresh = 90_000
        total_hits = 0
        for cycle in range(8):
            # Key 5 arrives and is hit 3 times quickly (multi-hit pattern),
            # then floods out and stays away for a long gap.
            for _ in range(4):
                total_hits += scip.request(Request(t, 5, 10)); t += 1
            for _ in range(1_500):
                scip.request(Request(t, fresh, 10)); fresh += 1; t += 1
        # Of 8×3 potential in-cycle hits, at most a few may be lost.
        assert total_hits >= 20


class TestAlgorithmOneBookkeeping:
    def test_promote_never_writes_history(self):
        p = SCIPCache(1_000, update_interval=10**9)
        p.request(Request(0, 1, 10))
        for i in range(20):
            p.request(Request(1 + i, 1, 10))
        assert 1 not in p.h_m and 1 not in p.h_l

    def test_eviction_always_writes_exactly_one_list(self):
        p = SCIPCache(50, update_interval=10**9)
        for i in range(200):
            p.request(Request(i, i, 10))
        evicted = p.stats.evictions
        assert len(p.h_m) + len(p.h_l) <= evicted
        assert len(p.h_m) + len(p.h_l) > 0

    def test_ghost_hit_is_consumed(self):
        p = SCIPCache(30, update_interval=10**9)
        for i in range(10):
            p.request(Request(i, i, 10))
        ghosts = p.h_m.keys() + p.h_l.keys()
        assert ghosts, "the flood must have produced ghost entries"
        ghost = ghosts[0]
        p.request(Request(100, ghost, 10))
        assert ghost not in p.h_m and ghost not in p.h_l
