"""Algorithm 2 (UPDATELR) unit tests."""

from __future__ import annotations

import random

import pytest

from repro.core.learning import LAMBDA_MAX, LAMBDA_MIN, LearningRateController


class TestUpdateLR:
    def test_amplifies_on_positive_gradient(self):
        """λ went up and the hit rate went up → amplify the move."""
        c = LearningRateController(initial=0.1)
        # Manufacture δ ≠ 0: force the internal λ history.
        c._prev, c._prev2 = 0.2, 0.1  # δ = +0.1
        new = c.update(hit_rate_now=0.5, hit_rate_prev=0.4)  # Δ = +0.1
        # ratio = 1.0 → λ = min(0.2 + 0.2·1.0, 1) = 0.4
        assert new == pytest.approx(0.4)

    def test_reverses_on_negative_gradient(self):
        c = LearningRateController(initial=0.1)
        c._prev, c._prev2 = 0.2, 0.1  # δ = +0.1
        new = c.update(hit_rate_now=0.3, hit_rate_prev=0.4)  # Δ = −0.1
        # ratio = −1 → λ = max(0.2 − 0.2, λ_min) = λ_min
        assert new == pytest.approx(LAMBDA_MIN)

    def test_clamped_at_max(self):
        c = LearningRateController(initial=0.9)
        c._prev, c._prev2 = 0.9, 0.1  # δ = 0.8
        new = c.update(hit_rate_now=0.9, hit_rate_prev=0.0)  # huge Δ
        assert new == LAMBDA_MAX

    def test_stagnation_counts_unlearn(self):
        c = LearningRateController(initial=0.1, unlearn_limit=3)
        for _ in range(2):
            c.update(0.2, 0.2)  # δ=0 and Δ=0 → stagnant
        assert c.unlearn_count == 2
        assert c.restarts == 0

    def test_random_restart_after_limit(self):
        c = LearningRateController(initial=0.1, unlearn_limit=3, rng=random.Random(5))
        for _ in range(3):
            c.update(0.0, 0.0)  # zero hit rate → stagnant
        assert c.restarts == 1
        assert LAMBDA_MIN <= c.value <= LAMBDA_MAX
        assert c.unlearn_count == 0

    def test_improving_hit_rate_breaks_stagnation_count(self):
        c = LearningRateController(initial=0.1, unlearn_limit=2)
        c.update(0.3, 0.2)  # δ=0 but Δ>0 and HR>0 → not stagnant
        assert c.unlearn_count == 0

    def test_gradient_step_resets_unlearn(self):
        c = LearningRateController(initial=0.1, unlearn_limit=10)
        c.update(0.0, 0.0)
        assert c.unlearn_count == 1
        c._prev, c._prev2 = 0.2, 0.1
        c.update(0.5, 0.4)
        assert c.unlearn_count == 0

    def test_lambda_bounds_always_hold(self):
        rng = random.Random(0)
        c = LearningRateController(initial=0.5, rng=rng)
        for _ in range(500):
            c.update(rng.random(), rng.random())
            assert LAMBDA_MIN <= c.value <= LAMBDA_MAX

    def test_invalid_initial_rejected(self):
        with pytest.raises(ValueError):
            LearningRateController(initial=0.0)
        with pytest.raises(ValueError):
            LearningRateController(initial=1.5)

    def test_history_shifts(self):
        c = LearningRateController(initial=0.1)
        c.update(0.1, 0.1)
        assert c._prev2 == pytest.approx(0.1)
        assert c.updates == 1
