"""Stateful property testing of SCIP via a hypothesis rule machine.

The machine issues arbitrary interleavings of requests (hot keys, fresh
keys, ghosts re-requested from the history lists) and checks the global
invariants after every step: byte accounting, queue/index coherence,
history budgets, weight normalisation, and the "resident xor ghost"
exclusion (an object the cache reports resident must not simultaneously be
in a history list).
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.core.scip import SCIPCache
from repro.sim.request import Request


class SCIPMachine(RuleBasedStateMachine):
    @initialize(
        capacity=st.integers(200, 3_000),
        history_fraction=st.sampled_from([0.5, 2.0, 16.0]),
        escape=st.sampled_from([0.0, 0.125, 1.0]),
    )
    def setup(self, capacity, history_fraction, escape):
        self.scip = SCIPCache(
            capacity,
            history_fraction=history_fraction,
            escape=escape,
            update_interval=64,
            seed=7,
        )
        self.t = 0
        self.shadow = set()  # keys believed resident (mirrors hits/misses)

    def _req(self, key: int, size: int) -> None:
        hit = self.scip.request(Request(self.t, key, size))
        self.t += 1
        if hit:
            assert key in self.shadow, "hit on a key the shadow saw evicted"
        if size <= self.scip.capacity:
            self.shadow.add(key)
        # Reconcile: drop shadow keys no longer resident.
        self.shadow = {k for k in self.shadow if self.scip.contains(k)}

    @rule(key=st.integers(0, 5), size=st.integers(1, 200))
    def hot_request(self, key, size):
        self._req(key, size)

    @rule(size=st.integers(1, 400))
    def fresh_request(self, size):
        self._req(10_000 + self.t, size)

    @rule(which=st.sampled_from(["h_m", "h_l"]), size=st.integers(1, 200))
    def ghost_comeback(self, which, size):
        ghosts = getattr(self.scip, which).keys()
        if ghosts:
            self._req(ghosts[0], size)

    @rule(size=st.integers(1, 100))
    def giant_then_small(self, size):
        self._req(77_777, self.scip.capacity + 1)  # bypassed
        self._req(88_000 + self.t, size)

    @invariant()
    def structures_coherent(self):
        if not hasattr(self, "scip"):
            return
        self.scip.check_invariants()

    @invariant()
    def resident_not_ghost(self):
        if not hasattr(self, "scip"):
            return
        for key in list(self.scip.index):
            assert key not in self.scip.h_m, f"{key} resident AND in H_m"
            assert key not in self.scip.h_l, f"{key} resident AND in H_l"

    @invariant()
    def weights_normalised(self):
        if not hasattr(self, "scip"):
            return
        b = self.scip.bandit
        assert abs(b.w_mru + b.w_lru - 1.0) < 1e-9
        assert 0.0 < b.w_mru < 1.0


SCIPMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=60, deadline=None
)
TestSCIPStateMachine = SCIPMachine.TestCase
