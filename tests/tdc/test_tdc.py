"""TDC substrate: node, latency model, monitor, cluster, deployment."""

from __future__ import annotations

import pytest

from repro.cache.lru import LRUCache
from repro.core.scip import SCIPCache
from repro.sim.request import Request, Trace
from repro.tdc.cluster import TDCCluster
from repro.tdc.deploy import run_deployment
from repro.tdc.latency import LatencyModel
from repro.tdc.monitor import Monitor
from repro.tdc.node import StorageNode


class TestStorageNode:
    def test_get_delegates_to_policy(self):
        n = StorageNode("n0", LRUCache(100))
        assert n.get(Request(0, 1, 10)) is False
        assert n.get(Request(1, 1, 10)) is True

    def test_inode_accounting(self):
        n = StorageNode("n0", LRUCache(1_000))
        for i in range(4):
            n.get(Request(i, i, 10))
        assert n.inode_bytes() == 110 * 4

    def test_policy_swap_preserves_residents(self):
        n = StorageNode("n0", LRUCache(1_000))
        for i in range(5):
            n.get(Request(i, i, 10))
        n.swap_policy(lambda cap: SCIPCache(cap))
        assert n.policy.name == "SCIP"
        assert n.policy.capacity == 1_000
        for i in range(5):
            assert n.policy.contains(i), f"object {i} lost in the swap"

    def test_swap_preserves_recency_order(self):
        n = StorageNode("n0", LRUCache(1_000))
        for i in range(3):
            n.get(Request(i, i, 10))
        n.get(Request(3, 0, 10))  # touch 0 → MRU
        n.swap_policy(lambda cap: LRUCache(cap))
        assert n.policy.resident_keys()[0] == 0


class TestLatencyModel:
    def test_tier_ordering(self):
        m = LatencyModel(seed=1)
        oc = sum(m.oc_hit() for _ in range(200)) / 200
        dc = sum(m.dc_hit() for _ in range(200)) / 200
        origin = sum(m.origin_fetch(10_000) for _ in range(200)) / 200
        assert oc < dc < origin

    def test_origin_transfer_scales_with_size(self):
        m = LatencyModel(sigma=0.0, seed=1)
        small = m.origin_fetch(1_000)
        large = m.origin_fetch(100_000_000)
        assert large > small + 100  # ≥100 ms extra at 1 Gbps

    def test_rejects_nonpositive_latency(self):
        with pytest.raises(ValueError):
            LatencyModel(oc_ms=0)


class TestMonitor:
    def test_bucketing(self):
        m = Monitor(bucket_requests=2)
        m.record(False, 10, 5.0)
        m.record(True, 20, 50.0)
        m.record(False, 10, 5.0)
        m.flush()
        assert len(m.buckets) == 2
        assert m.buckets[0].bto_ratio == 0.5
        assert m.buckets[0].avg_latency_ms == pytest.approx(27.5)

    def test_gbps_units(self):
        m = Monitor(bucket_requests=10, requests_per_second=10.0)
        for _ in range(10):
            m.record(True, 125_000_000, 1.0)  # 1 Gb each, 1 second window
        m.flush()
        assert m.bto_gbps_series()[0] == pytest.approx(10.0)

    def test_summary_split(self):
        m = Monitor(bucket_requests=1)
        m.record(True, 100, 10.0)
        m.record(False, 100, 1.0)
        m.flush()
        s = m.summary(split_at_bucket=1)
        assert s["before"]["bto_ratio"] == 1.0
        assert s["after"]["bto_ratio"] == 0.0


class TestCluster:
    def make(self, factory=None):
        return TDCCluster(
            oc_nodes=2,
            dc_nodes=1,
            oc_capacity=1_000,
            dc_capacity=2_000,
            policy_factory=factory or (lambda cap: LRUCache(cap)),
        )

    def test_miss_goes_to_origin_once(self):
        c = self.make()
        c.serve(Request(0, 1, 100))
        assert c.origin_fetches == 1
        # Now cached at both layers: no more origin traffic for this key.
        c.serve(Request(1, 1, 100))
        assert c.origin_fetches == 1

    def test_oc_miss_dc_hit_path(self):
        c = self.make()
        c.serve(Request(0, 1, 100))
        # Evict from the OC node only (flood its 1 000-byte cache with
        # same-routing keys); DC (2 000 B) keeps it longer.
        oc = c._route(c.oc, 1)
        k = 2
        flooded = 0
        while flooded < 12:
            if c._route(c.oc, k) is oc:
                c.serve(Request(10 + k, k, 90))
                flooded += 1
            k += 1
        before = c.origin_fetches
        c.serve(Request(99, 1, 100))
        # Either DC still has it (no origin fetch) or it aged out of both;
        # the request must never hit origin twice in this window.
        assert c.origin_fetches - before <= 1

    def test_routing_is_stable(self):
        c = self.make()
        assert c._route(c.oc, 42) is c._route(c.oc, 42)

    def test_deploy_policy_layers(self):
        c = self.make()
        c.deploy_policy(lambda cap: SCIPCache(cap), layer="oc")
        assert all(n.policy.name == "SCIP" for n in c.oc)
        assert all(n.policy.name == "LRU" for n in c.dc)
        with pytest.raises(ValueError):
            c.deploy_policy(lambda cap: LRUCache(cap), layer="edge")

    def test_run_records_monitoring(self):
        c = self.make()
        tr = Trace([Request(i, i % 5, 50) for i in range(100)])
        c.run(tr)
        assert sum(b.requests for b in c.monitor.buckets) == 100

    def test_requires_nodes(self):
        with pytest.raises(ValueError):
            TDCCluster(0, 1, 100, 100, lambda cap: LRUCache(cap))


class TestDeployment:
    def test_rollout_improves_all_three_metrics(self, cdn_t_small):
        res = run_deployment(cdn_t_small, bucket_requests=2_000)
        assert res.bto_ratio_delta < 0, "BTO ratio must drop after SCIP"
        assert res.bto_gbps_rel_change < 0, "origin bandwidth must drop"
        assert res.latency_rel_change < 0, "latency must drop"

    def test_invalid_switch_point(self, cdn_t_small):
        with pytest.raises(ValueError):
            run_deployment(cdn_t_small, switch_at_frac=1.5)

    def test_result_dict_keys(self, cdn_t_small):
        res = run_deployment(cdn_t_small, bucket_requests=5_000)
        d = res.as_dict()
        assert {"before_bto_ratio", "after_bto_ratio", "latency_rel_change"} <= set(d)
