"""Regression coverage for :meth:`repro.tdc.node.StorageNode.swap_policy`.

The TDC deployment story swaps LRU's insertion policy for SCIP on a live
node: the resident set must survive the hot swap, in recency order, with
byte accounting intact — no cold restart, no phantom evictions.
"""

from __future__ import annotations

from repro.cache.fifo import FIFOCache
from repro.cache.lru import LRUCache
from repro.core.scip import SCIPCache
from repro.sim.request import Request
from repro.tdc.node import StorageNode


def _warm_node(capacity=10_000, n=40):
    node = StorageNode("n0", LRUCache(capacity))
    # Distinct sizes so byte accounting mismatches would be visible; a
    # second pass over the odd keys scrambles recency away from insertion
    # order, which is what the swap must reproduce.
    for i in range(n):
        node.get(Request(i, i, 100 + i))
    for j, i in enumerate(range(1, n, 2)):
        node.get(Request(n + j, i, 100 + i))
    return node


class TestSwapPolicy:
    def test_residents_survive_in_recency_order(self):
        node = _warm_node()
        before_keys = node.policy.resident_keys()  # MRU → LRU
        before_used = node.policy.used

        node.swap_policy(LRUCache)

        assert isinstance(node.policy, LRUCache)
        assert node.policy.resident_keys() == before_keys
        assert node.policy.used == before_used
        assert node.capacity == 10_000

    def test_lru_to_scip_preserves_membership_and_bytes(self):
        node = _warm_node()
        before = set(node.policy.resident_keys())
        before_used = node.policy.used

        node.swap_policy(SCIPCache)

        assert isinstance(node.policy, SCIPCache)
        assert set(node.policy.resident_keys()) == before
        assert node.policy.used == before_used
        # The migrated objects answer hits, not misses, on the new policy.
        hot = node.policy.resident_keys()[0]
        assert node.get(Request(10_000, hot, 100))

    def test_swap_does_not_pollute_new_policy_stats(self):
        node = _warm_node()
        node.swap_policy(SCIPCache)
        # Migration re-inserts via _miss directly; the request/hit/miss
        # counters of the fresh policy must start clean.
        assert node.policy.stats.requests == 0
        assert node.policy.stats.evictions == 0

    def test_swap_to_non_queue_policy_restarts_cold(self):
        class DictCache:
            """Minimal non-QueueCache stand-in."""

            name = "dict"

            def __init__(self, capacity):
                self.capacity = capacity
                self.store = {}

            def __len__(self):
                return len(self.store)

        node = _warm_node()
        node.swap_policy(DictCache)
        assert isinstance(node.policy, DictCache)
        assert len(node.policy) == 0  # no state migration possible → cold

    def test_swap_preserves_eviction_order_under_pressure(self):
        """After the swap, evictions proceed LRU-first exactly as they
        would have on the original policy."""
        node = _warm_node(capacity=5_000, n=20)
        before = node.policy.resident_keys()  # MRU → LRU
        node.swap_policy(LRUCache)
        # Force one eviction: the victim must be the pre-swap LRU tail.
        tail = before[-1]
        node.get(Request(99_999, 777_777, 4_000))
        assert not node.policy.contains(tail)
        assert node.policy.contains(before[0])

    def test_fifo_to_lru_round_trip(self):
        node = StorageNode("n1", FIFOCache(10_000))
        for i in range(10):
            node.get(Request(i, i, 200))
        before = node.policy.resident_keys()
        node.swap_policy(LRUCache)
        assert node.policy.resident_keys() == before
