"""Consistent-hash ring tests."""

from __future__ import annotations

import pytest

from repro.tdc.hashring import HashRing


class TestHashRing:
    def test_routing_stable(self):
        ring = HashRing(["a", "b", "c"])
        assert all(ring.route(k) == ring.route(k) for k in range(100))

    def test_all_nodes_get_load(self):
        ring = HashRing(["a", "b", "c"], vnodes=64)
        dist = ring.load_distribution(range(3_000))
        assert all(v > 0 for v in dist.values())
        # Virtual nodes keep imbalance moderate.
        assert max(dist.values()) < 3 * min(dist.values())

    def test_node_removal_moves_only_its_keys(self):
        ring = HashRing(["a", "b", "c", "d"], vnodes=64)
        before = {k: ring.route(k) for k in range(2_000)}
        ring.remove_node("c")
        moved = sum(1 for k, owner in before.items() if ring.route(k) != owner)
        owned_by_c = sum(1 for owner in before.values() if owner == "c")
        assert moved == owned_by_c, "only the removed node's keys may move"

    def test_node_addition_bounded_reshuffle(self):
        ring = HashRing(["a", "b", "c"], vnodes=64)
        before = {k: ring.route(k) for k in range(2_000)}
        ring.add_node("d")
        moved = sum(1 for k, owner in before.items() if ring.route(k) != owner)
        # The newcomer should take roughly 1/4 of the keyspace, not most.
        assert moved < len(before) * 0.45

    def test_reshuffle_fraction_bounded_across_ring_sizes(self):
        """Property pin: on a join or a leave, the moved-key fraction stays
        within ~2× the ideal 1/n share — the bound that makes consistent
        hashing worth its complexity over modulo routing — and holds across
        ring sizes, not just one lucky configuration."""
        keys = range(4_000)
        for n in (4, 6, 8, 12):
            nodes = [f"n{i}" for i in range(n)]
            ring = HashRing(nodes, vnodes=128)
            before = {k: ring.route(k) for k in keys}

            # Join: the newcomer ideally absorbs 1/(n+1) of the keyspace.
            ring.add_node("joiner")
            moved = {k for k, owner in before.items() if ring.route(k) != owner}
            assert len(moved) <= len(before) * 2.0 / (n + 1), (n, len(moved))
            # No collateral movement: every moved key went TO the joiner.
            assert all(ring.route(k) == "joiner" for k in moved)

            # Leave is the exact inverse: draining the joiner restores the
            # previous assignment bit-for-bit (ring points are deterministic).
            ring.remove_node("joiner")
            assert all(ring.route(k) == owner for k, owner in before.items())

            # Draining an original node moves only its keys, and its share
            # was itself bounded by ~2/n.
            victim = nodes[n // 2]
            owned = {k for k, owner in before.items() if owner == victim}
            ring.remove_node(victim)
            moved = {k for k, owner in before.items() if ring.route(k) != owner}
            assert moved == owned
            assert len(owned) <= len(before) * 2.0 / n, (n, len(owned))

    def test_add_idempotent(self):
        ring = HashRing(["a"])
        n = len(ring._ring)
        ring.add_node("a")
        assert len(ring._ring) == n

    def test_guards(self):
        with pytest.raises(ValueError):
            HashRing([])
        ring = HashRing(["a"])
        with pytest.raises(ValueError):
            ring.remove_node("a")
        with pytest.raises(KeyError):
            ring.remove_node("zzz")

    def test_cluster_integration(self, cdn_t_small):
        from repro.cache.lru import LRUCache
        from repro.tdc.cluster import TDCCluster

        cluster = TDCCluster(
            3, 2, 1_000_000, 2_000_000,
            lambda cap: LRUCache(cap), use_hashring=True,
        )
        for r in list(cdn_t_small)[:3_000]:
            cluster.serve(r)
        served = sum(n.policy.stats.requests for n in cluster.oc)
        assert served == 3_000
        assert all(n.policy.stats.requests > 0 for n in cluster.oc)


class TestPreferenceList:
    def test_primary_matches_route(self):
        ring = HashRing(["a", "b", "c", "d"])
        for key in range(500):
            assert ring.preference_list(key, 2)[0] == ring.route(key)

    def test_distinct_owners(self):
        ring = HashRing(["a", "b", "c", "d"])
        for key in range(500):
            owners = ring.preference_list(key, 3)
            assert len(owners) == len(set(owners)) == 3

    def test_deterministic(self):
        ring = HashRing(["a", "b", "c"])
        assert all(
            ring.preference_list(k, 2) == ring.preference_list(k, 2)
            for k in range(200)
        )

    def test_shorter_when_ring_small(self):
        ring = HashRing(["a", "b"])
        owners = ring.preference_list(7, 5)
        assert sorted(owners) == ["a", "b"]

    def test_n_must_be_positive(self):
        ring = HashRing(["a"])
        with pytest.raises(ValueError):
            ring.preference_list(1, 0)

    def test_replica_stable_under_unrelated_removal(self):
        # Dynamo property: removing a node not on a key's preference list
        # leaves that key's owners untouched.
        ring = HashRing(["a", "b", "c", "d", "e"], vnodes=64)
        before = {k: ring.preference_list(k, 2) for k in range(2_000)}
        ring.remove_node("e")
        for k, owners in before.items():
            if "e" not in owners:
                assert ring.preference_list(k, 2) == owners
