"""Monitor bucket arithmetic: partial-tail Gbps, summary splits, quantiles."""

from __future__ import annotations

import pytest

from repro.tdc.monitor import Monitor


def _fill(monitor: Monitor, n: int, size: int = 1000, latency: float = 10.0):
    for _ in range(n):
        monitor.record(origin_fetch=True, size=size, latency_ms=latency)


class TestPartialBucketGbps:
    def test_partial_tail_bucket_uses_its_own_duration(self):
        """A flushed tail bucket holding half the requests spans half the
        wall time — its Gbps must match a full bucket with the same rate."""
        m = Monitor(bucket_requests=100, requests_per_second=100.0)
        _fill(m, 100)  # full bucket: 100 req = 1 s
        _fill(m, 50)   # partial tail: 50 req = 0.5 s
        m.flush()
        gbps = m.bto_gbps_series()
        assert len(gbps) == 2
        # Same per-request byte rate → same bandwidth, full or partial.
        assert gbps[1] == pytest.approx(gbps[0])
        assert gbps[0] == pytest.approx(100 * 1000 * 8 / 1e9 / 1.0)

    def test_empty_bucket_guard(self):
        m = Monitor(bucket_requests=10)
        m.buckets.append(m._current.__class__(0))  # synthetic zero-request bucket
        assert m.bto_gbps_series() == [0.0]

    def test_flush_is_noop_when_current_empty(self):
        m = Monitor(bucket_requests=10)
        _fill(m, 10)
        m.flush()
        m.flush()
        assert len(m.buckets) == 1
        assert sum(b.requests for b in m.buckets) == 10


class TestSummarySplit:
    def _monitor(self):
        m = Monitor(bucket_requests=10, requests_per_second=10.0)
        _fill(m, 30, latency=20.0)  # three full buckets
        return m

    def test_split_at_zero_puts_everything_after(self):
        s = self._monitor().summary(split_at_bucket=0)
        assert s["before"] == {"bto_ratio": 0.0, "bto_gbps": 0.0, "latency_ms": 0.0}
        assert s["after"]["bto_ratio"] == pytest.approx(1.0)
        assert s["after"]["latency_ms"] == pytest.approx(20.0)

    def test_split_past_the_end_puts_everything_before(self):
        s = self._monitor().summary(split_at_bucket=99)
        assert s["after"] == {"bto_ratio": 0.0, "bto_gbps": 0.0, "latency_ms": 0.0}
        assert s["before"]["bto_ratio"] == pytest.approx(1.0)

    def test_negative_split_rejected(self):
        with pytest.raises(ValueError, match="split_at_bucket"):
            self._monitor().summary(split_at_bucket=-1)

    def test_no_split_has_no_before_after(self):
        s = self._monitor().summary()
        assert "before" not in s and "after" not in s


class TestSharedHistogram:
    def test_latency_quantiles_in_summary(self):
        m = Monitor(bucket_requests=10)
        for _ in range(99):
            m.record(origin_fetch=False, size=100, latency_ms=3.0)
        m.record(origin_fetch=False, size=100, latency_ms=500.0)
        s = m.summary()
        # log2-bucket upper bounds: 3 ms → bucket [2,4) → 4; tail caught by p99.
        assert s["latency_p50_ms"] == pytest.approx(4.0)
        assert s["latency_p99_ms"] >= 4.0
        assert m.latency_hist.count == 100

    def test_histogram_is_the_shared_obs_type(self):
        from repro.obs.metrics import Histogram

        assert isinstance(Monitor().latency_hist, Histogram)
