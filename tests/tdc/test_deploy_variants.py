"""Additional TDC deployment-experiment coverage: layer-scoped rollouts,
alternative policies, and monitor arithmetic under the rollout."""

from __future__ import annotations

import pytest

from repro.cache.ascip import ASCIPCache
from repro.cache.lru import LRUCache
from repro.sim.request import Request, Trace
from repro.tdc.cluster import TDCCluster
from repro.tdc.deploy import run_deployment
from repro.tdc.monitor import Monitor


class TestLayerScopedRollout:
    def _cluster(self):
        return TDCCluster(
            2, 1, 50_000, 80_000, lambda cap: LRUCache(cap),
            monitor=Monitor(bucket_requests=1_000),
        )

    def test_oc_only_rollout(self):
        c = self._cluster()
        c.deploy_policy(lambda cap: ASCIPCache(cap), layer="oc")
        assert {n.policy.name for n in c.oc} == {"ASC-IP"}
        assert {n.policy.name for n in c.dc} == {"LRU"}

    def test_dc_only_rollout(self):
        c = self._cluster()
        c.deploy_policy(lambda cap: ASCIPCache(cap), layer="dc")
        assert {n.policy.name for n in c.oc} == {"LRU"}
        assert {n.policy.name for n in c.dc} == {"ASC-IP"}

    def test_rollout_preserves_in_flight_traffic(self):
        """Requests served across the rollout boundary must all be counted
        exactly once by the monitor."""
        c = self._cluster()
        reqs = [Request(i, i % 40, 500) for i in range(4_000)]
        for i, r in enumerate(reqs):
            if i == 2_000:
                c.deploy_policy(lambda cap: ASCIPCache(cap))
            c.serve(r)
        c.monitor.flush()
        assert sum(b.requests for b in c.monitor.buckets) == 4_000


class TestDeploymentKnobs:
    def test_alternative_new_policy(self, cdn_t_small):
        res = run_deployment(
            cdn_t_small,
            new_policy=lambda cap: ASCIPCache(cap),
            bucket_requests=2_000,
        )
        # An ASC-IP rollout on this workload must also cut the BTO ratio.
        # The bandwidth panel is noise at this scale: with duration-correct
        # per-bucket Gbps (the old math understated the partial tail bucket,
        # which happened to drag the "after" average below "before"), the
        # ±few-percent drift of request sizes over a 20k-request trace
        # dominates — so bound it to noise rather than require a cut.
        assert res.bto_ratio_delta < 0
        assert res.bto_gbps_rel_change < 0.05

    def test_switch_point_respected(self, cdn_t_small):
        res = run_deployment(cdn_t_small, switch_at_frac=0.25, bucket_requests=2_000)
        d = res.as_dict()
        assert d["before_bto_ratio"] > 0

    def test_explicit_capacities(self, cdn_t_small):
        res = run_deployment(
            cdn_t_small,
            oc_capacity=2_000_000,
            dc_capacity=3_000_000,
            bucket_requests=2_000,
        )
        assert all(n.policy.capacity == 2_000_000 for n in res.cluster.oc)
        assert all(n.policy.capacity == 3_000_000 for n in res.cluster.dc)
