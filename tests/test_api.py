"""SmartCache facade tests."""

from __future__ import annotations

import pytest

from repro.api import SmartCache
from repro.cache.lru import LRUCache


class TestSmartCache:
    def test_get_put_roundtrip(self):
        c = SmartCache(10_000)
        assert c.get("a") is None
        c.put("a", b"x" * 100)
        assert c.get("a") == b"x" * 100
        assert "a" in c

    def test_default_on_miss(self):
        c = SmartCache(1_000)
        assert c.get("nope", default=42) == 42

    def test_eviction_under_pressure(self):
        c = SmartCache(1_000, policy="LRU")
        for i in range(50):
            c.put(f"k{i}", b"v" * 100)
        assert len(c) <= 10
        s = c.stats()
        assert s["evictions"] > 0
        assert s["used_bytes"] <= s["capacity_bytes"]

    def test_get_or_load(self):
        c = SmartCache(10_000)
        calls = []

        def loader():
            calls.append(1)
            return b"payload"

        assert c.get_or_load("x", loader) == b"payload"
        assert c.get_or_load("x", loader) == b"payload"
        assert len(calls) == 1, "second access must be served from cache"

    def test_explicit_size(self):
        c = SmartCache(1_000, policy="LRU")
        c.put("big", object(), size=900)
        c.put("other", object(), size=200)  # must evict 'big'
        assert "big" not in c

    def test_invalidate(self):
        c = SmartCache(10_000)
        c.put("a", b"v")
        assert c.invalidate("a") is True
        assert "a" not in c
        assert c.invalidate("a") is False

    def test_custom_sizeof(self):
        c = SmartCache(100, sizeof=lambda v: 60, policy="LRU")
        c.put("a", "anything")
        c.put("b", "anything")  # 120 > 100 → a evicted
        assert "b" in c and "a" not in c

    def test_prebuilt_policy_instance(self):
        c = SmartCache(0, policy=LRUCache(5_000))
        c.put("a", b"x")
        assert "a" in c
        with pytest.raises(ValueError):
            SmartCache(0, policy=LRUCache(100), seed=3)

    def test_unknown_policy_name(self):
        with pytest.raises(KeyError, match="unknown policy"):
            SmartCache(1_000, policy="MAGIC")

    def test_stats_shape(self):
        c = SmartCache(1_000)
        c.put("a", b"x")
        c.get("a")
        s = c.stats()
        assert s["policy"] == "SCIP"
        assert s["hits"] == 1

    def test_value_store_swept(self):
        c = SmartCache(500, policy="LRU")
        for i in range(600):
            c.put(i, b"v" * 50)
        # The value map must not grow unboundedly past the resident set.
        assert len(c._values) <= 2 * len(c) + 129

    def test_scip_policy_kwargs_forwarded(self):
        c = SmartCache(1_000, policy="SCIP", update_interval=7)
        assert c._policy.update_interval == 7
