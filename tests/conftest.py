"""Shared fixtures: small deterministic traces and request builders."""

from __future__ import annotations

import random

import pytest

from repro.sim.request import Request, Trace, annotate_next_access


def make_requests(pairs, start_time=0):
    """Build requests from (key, size) pairs with sequential times."""
    return [Request(start_time + i, k, s) for i, (k, s) in enumerate(pairs)]


@pytest.fixture
def tiny_trace():
    """A hand-checkable 10-request trace over 4 keys (unit sizes vary)."""
    pairs = [
        (1, 10),
        (2, 10),
        (3, 10),
        (1, 10),
        (4, 10),
        (2, 10),
        (1, 10),
        (5, 10),
        (3, 10),
        (1, 10),
    ]
    return Trace(make_requests(pairs), name="tiny")


@pytest.fixture
def zipf_trace():
    """A 5 000-request skewed random trace, seeded."""
    rng = random.Random(7)
    reqs = []
    for i in range(5_000):
        # Crude Zipf-ish: low keys much hotter.
        key = min(int(rng.paretovariate(1.2)), 400)
        size = rng.randint(1, 2_000)
        reqs.append(Request(i, key, size))
    return Trace(reqs, name="zipfish")


@pytest.fixture
def scan_trace():
    """A loop-scan trace (sequential sweep repeated) — LRU's worst case."""
    reqs = []
    t = 0
    for _ in range(6):
        for key in range(120):
            reqs.append(Request(t, key, 100))
            t += 1
    return Trace(reqs, name="scan")


@pytest.fixture
def annotated_zipf(zipf_trace):
    return annotate_next_access(zipf_trace)


@pytest.fixture(scope="session")
def cdn_t_small():
    """A session-cached small CDN-T workload (generation is ~100 ms)."""
    from repro.traces.cdn import make_workload

    return make_workload("CDN-T", n_requests=20_000)


@pytest.fixture(scope="session")
def cdn_w_small():
    from repro.traces.cdn import make_workload

    return make_workload("CDN-W", n_requests=20_000)


@pytest.fixture(scope="session")
def cdn_a_small():
    from repro.traces.cdn import make_workload

    return make_workload("CDN-A", n_requests=20_000)
