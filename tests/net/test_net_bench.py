"""net-bench document: schema, acceptance flags, manifest round-trip."""

from __future__ import annotations

import json

import pytest

from repro.net.bench import (
    NET_BENCH_SCHEMA,
    config_from_doc,
    format_net_doc,
    run_net_bench,
    write_net_doc,
)

BENCH_KWARGS = dict(
    n_requests=6_000,
    branching=(2, 2),
    edge_policies=("LRU", "SCIP"),
    placements=("LCE", "LCD", "PROB"),
    n_receivers=8,
    window=500,
    output=None,
    quick=True,
)


@pytest.fixture(scope="module")
def doc():
    return run_net_bench(**BENCH_KWARGS)


class TestNetBenchDoc:
    def test_schema_and_shape(self, doc):
        assert doc["schema"] == NET_BENCH_SCHEMA
        assert set(doc["scenarios"]) == {
            "LRU+LCE", "LRU+LCD", "LRU+PROB",
            "SCIP+LCE", "SCIP+LCD", "SCIP+PROB",
        }
        for s in doc["scenarios"].values():
            assert s["requests"] > 0
            assert set(s["tier_miss_ratios"]) == {"edge", "mid1", "root"}
            assert s["unhandled_exceptions"] == 0

    def test_popkill_scenario(self, doc):
        pk = doc["popkill"]
        assert pk["served_error_rate"] == 0.0
        assert pk["errors"] == 0
        assert pk["victim"].startswith("edge")
        assert "dip_depth" in pk and "recovery_requests" in pk
        assert pk["grid_cell"] in doc["scenarios"]

    def test_comparison_flags(self, doc):
        cmp_ = doc["comparison"]
        assert cmp_["errors_zero"] is True
        assert cmp_["unhandled_exceptions_zero"] is True
        # the CI smoke gate: LCD strictly reduces copies vs LCE
        assert all(v >= 1 for v in cmp_["lcd_copy_reduction"].values())
        assert cmp_["best_cell"] in doc["scenarios"]

    def test_edge_wss_rows(self, doc):
        rows = doc["edge_wss"]
        assert len(rows) == 4  # branching (2, 2)
        total_requests = sum(r["requests"] for r in rows)
        assert total_requests == next(iter(doc["scenarios"].values()))["requests"]
        for row in rows:
            assert row["wss_lower_bytes"] <= row["wss_upper_bytes"]

    def test_manifest_round_trip(self, doc):
        cfg = config_from_doc(doc)
        # every run_net_bench keyword the bench varies must be rebuildable
        assert cfg["trace"] == "CDN-T"
        assert cfg["branching"] == [2, 2]
        assert cfg["edge_policies"] == ["LRU", "SCIP"]
        assert cfg["placements"] == ["LCE", "LCD", "PROB"]
        # derived fields are recomputed, not replayed
        for derived in ("capacities", "victim", "kill_at", "restart_at"):
            assert derived not in cfg
        # and the keywords are actually accepted by the entry point
        import inspect

        params = set(inspect.signature(run_net_bench).parameters)
        assert set(cfg) <= params

    def test_round_trip_reproduces_bit_exact(self, doc):
        cfg = config_from_doc(doc)
        cfg["n_receivers"] = cfg.pop("n_receivers")
        redo = run_net_bench(**{**cfg, "output": None})
        assert redo["scenarios"] == doc["scenarios"]
        assert redo["popkill"] == doc["popkill"]

    def test_write_and_format(self, doc, tmp_path):
        path = tmp_path / "BENCH_net.json"
        write_net_doc(doc, str(path))
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == NET_BENCH_SCHEMA
        text = format_net_doc(loaded)
        assert "net bench" in text
        assert "popkill" in text
        assert "per-edge receiver WSS" in text
