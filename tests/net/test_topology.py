"""Topology structure, validation, routing and (de)serialisation.

The property tests are the satellite pin: on *arbitrary* random DAGs
(not just the builders' trees), every request path is acyclic and
terminates at origin, and routing is a pure function of (topology seed,
edge, key).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.topology import (
    ORIGIN,
    Topology,
    fat_tree_topology,
    tree_topology,
)


def two_node_chain() -> Topology:
    topo = Topology()
    topo.add_node("oc", 10_000, tier="oc")
    topo.add_node("dc", 20_000, tier="dc")
    topo.add_link("oc", "dc", 5.0)
    topo.add_link("dc", ORIGIN, 50.0)
    topo.validate()
    return topo


class TestConstruction:
    def test_duplicate_node_rejected(self):
        topo = Topology().add_node("a", 100)
        with pytest.raises(ValueError, match="duplicate node"):
            topo.add_node("a", 100)

    def test_origin_name_reserved(self):
        with pytest.raises(ValueError, match="reserved"):
            Topology().add_node(ORIGIN, 100)

    def test_unknown_policy_fails_fast(self):
        with pytest.raises(KeyError, match="unknown policy"):
            Topology().add_node("a", 100, policy="NOPE")

    def test_self_link_rejected(self):
        topo = Topology().add_node("a", 100)
        with pytest.raises(ValueError, match="self-link"):
            topo.add_link("a", "a")

    def test_cycle_detected(self):
        topo = Topology()
        topo.add_node("a", 100).add_node("b", 100)
        topo.add_link("a", "b").add_link("b", "a")
        with pytest.raises(ValueError, match="routing cycle"):
            topo.validate()

    def test_stranded_node_detected(self):
        topo = Topology().add_node("a", 100)
        with pytest.raises(ValueError, match="no path to"):
            topo.validate()

    def test_edge_nodes_are_link_targets_complement(self):
        topo = two_node_chain()
        assert topo.edge_nodes == ["oc"]

    def test_round_trip_as_dict(self):
        topo = fat_tree_topology(branching=(2, 2), seed=9)
        clone = Topology.from_dict(topo.as_dict())
        assert clone.as_dict() == topo.as_dict()
        # routing survives the round trip, salt and all
        for key in range(50):
            assert [link.dst for link in clone.path("edge0", key)] == [
                link.dst for link in topo.path("edge0", key)
            ]


class TestBuilders:
    def test_tree_shape(self):
        topo = tree_topology(branching=(4, 2))
        tiers = topo.tiers()
        assert len(tiers["edge"]) == 8
        assert len(tiers["mid1"]) == 2
        assert len(tiers["root"]) == 1
        # single-parent: every edge has exactly one uplink
        assert all(len(topo.uplinks(e)) == 1 for e in tiers["edge"])

    def test_fat_tree_links_every_parent(self):
        topo = fat_tree_topology(branching=(4, 2))
        assert all(len(topo.uplinks(e)) == 2 for e in topo.tiers()["edge"])

    def test_capacity_arity_checked(self):
        with pytest.raises(ValueError, match="per-tier capacities"):
            tree_topology(branching=(4, 2), capacities=(100, 200))

    def test_fat_tree_spreads_keys_across_parents(self):
        topo = fat_tree_topology(branching=(4, 2))
        parents = {topo.next_hop("edge0", key).dst for key in range(200)}
        assert parents == {"mid10", "mid11"}


# Arbitrary DAGs: nodes 0..n-1, each node links to >=1 higher-numbered
# node or origin — guaranteed acyclic by construction of the *candidate*,
# but the path/termination properties are checked via the public API.
@st.composite
def random_dags(draw):
    n = draw(st.integers(2, 8))
    topo = Topology(seed=draw(st.integers(0, 2**32)))
    for i in range(n):
        topo.add_node(f"n{i}", capacity=1_000, tier=f"t{i % 3}")
    for i in range(n):
        targets = [f"n{j}" for j in range(i + 1, n)] + [ORIGIN]
        chosen = draw(
            st.lists(st.sampled_from(targets), min_size=1, max_size=len(targets), unique=True)
        )
        for dst in chosen:
            topo.add_link(f"n{i}", dst, latency_ms=draw(st.floats(0.1, 50.0)))
    topo.validate()
    return topo


class TestRoutingProperties:
    @settings(max_examples=50, deadline=None)
    @given(random_dags(), st.integers(0, 2**63 - 1))
    def test_paths_acyclic_and_terminate_at_origin(self, topo, key):
        for edge in topo.edge_nodes:
            links = topo.path(edge, key)
            nodes = [edge] + [link.dst for link in links]
            assert nodes[-1] == ORIGIN
            assert len(set(nodes)) == len(nodes), "path revisited a node"
            assert all(name in topo.nodes for name in nodes[:-1])

    @settings(max_examples=20, deadline=None)
    @given(random_dags(), st.integers(0, 2**63 - 1))
    def test_routing_is_deterministic(self, topo, key):
        clone = Topology.from_dict(topo.as_dict())
        for edge in topo.edge_nodes:
            assert [link.dst for link in topo.path(edge, key)] == [
                link.dst for link in clone.path(edge, key)
            ]

    def test_different_seeds_may_route_differently(self):
        # Not a guarantee per key, but over many keys the fat-tree split
        # must differ between seeds (the salt is live).
        a = fat_tree_topology(branching=(4, 2), seed=1)
        b = fat_tree_topology(branching=(4, 2), seed=2)
        routes_a = [a.next_hop("edge0", k).dst for k in range(100)]
        routes_b = [b.next_hop("edge0", k).dst for k in range(100)]
        assert routes_a != routes_b
