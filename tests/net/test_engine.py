"""NetEngine behaviour: accounting, spans, faults, placement wiring.

The satellite pins live here:

* hop latency sums equal the per-span ``net_hop`` ``sim_ms`` totals;
* removing nodes via FaultPlan never raises — including killing every
  node on a path, killing unknown nodes, and restarting cold.
"""

from __future__ import annotations

from collections import Counter, defaultdict

from repro.cluster.faults import FaultPlan
from repro.net.engine import NetEngine
from repro.net.receivers import ZipfReceivers
from repro.net.topology import ORIGIN, Topology, tree_topology
from repro.obs.metrics import MetricsRegistry
from repro.obs.probe import Probe
from repro.obs.span import TraceConfig, Tracer
from repro.sim.request import Request
from repro.traces.cdn import make_workload


class Collect:
    def __init__(self):
        self.recs = []

    def write(self, rec):
        self.recs.append(rec)


def small_tree(**overrides):
    kwargs = dict(branching=(2, 2), capacities=(300_000, 600_000, 1_200_000))
    kwargs.update(overrides)
    return tree_topology(**kwargs)


def small_trace(n=6_000, seed=5):
    return make_workload("CDN-T", n_requests=n, seed=seed)


class TestAccounting:
    def test_every_request_served_once(self):
        sink = Collect()
        eng = NetEngine(
            small_tree(),
            "LCE",
            receivers=ZipfReceivers(8, beta=0.8),
            probe=Probe([sink]),
        )
        res = eng.run(small_trace())
        counts = Counter(r["event"] for r in sink.recs)
        assert res.errors == 0
        assert res.cache_hits + res.origin_fetches == res.requests
        assert counts["net_tier_hit"] == res.cache_hits
        assert counts["net_origin_fetch"] == res.origin_fetches
        assert len(res.hit_flags) == res.requests
        assert sum(res.hit_flags) == res.cache_hits

    def test_tier_lookups_nest(self):
        # Upper tiers only see what the tier below missed.
        eng = NetEngine(small_tree(), "LCE", receivers=ZipfReceivers(4))
        res = eng.run(small_trace())
        t = res.tiers
        assert t["edge"]["lookups"] == res.requests
        assert t["mid1"]["lookups"] == t["edge"]["lookups"] - t["edge"]["hits"]
        assert t["root"]["lookups"] == t["mid1"]["lookups"] - t["mid1"]["hits"]
        assert res.origin_fetches == t["root"]["lookups"] - t["root"]["hits"]

    def test_registry_counters_match_result(self):
        reg = MetricsRegistry()
        eng = NetEngine(
            small_tree(), "LCD", receivers=ZipfReceivers(4), registry=reg
        )
        res = eng.run(small_trace())
        snap = reg.snapshot()
        hits = sum(p["value"] for p in snap["net_tier_hits"].values())
        assert hits == res.cache_hits
        assert (
            snap["net_origin_fetches"][""]["value"] == res.origin_fetches
        )
        assert snap["net_copies_placed"][""]["value"] == res.copies_placed
        assert snap["net_request_latency_ms"][""]["count"] == res.requests

    def test_lce_lcd_copy_counts_differ(self):
        trace = small_trace()
        runs = {}
        for place in ("LCE", "LCD"):
            eng = NetEngine(small_tree(), place, receivers=ZipfReceivers(4))
            runs[place] = eng.run(trace)
        assert runs["LCE"].copies_placed > runs["LCD"].copies_placed

    def test_single_receiver_defaults_to_first_edge(self):
        eng = NetEngine(small_tree(), "LCE")
        res = eng.run(small_trace(n=500))
        # only edge0's subtree sees traffic
        assert res.tiers["edge"]["lookups"] == res.requests


class TestSpanLatencyProperty:
    def test_net_hop_sim_ms_sums_to_request_latency(self):
        # With no slow faults the latency model is exactly the hop sum, so
        # per-trace: sum(net_hop.sim_ms) == request.sim_ms, and globally:
        # sum over spans == engine latency_ms_sum.
        sink = Collect()
        tracer = Tracer(sinks=[sink], config=TraceConfig(sample=1.0))
        eng = NetEngine(
            small_tree(),
            "LCD",
            receivers=ZipfReceivers(8, beta=0.8),
            tracer=tracer,
        )
        res = eng.run(small_trace(n=2_000))
        tracer.close()
        hop_by_trace = defaultdict(float)
        root_by_trace = {}
        for rec in sink.recs:
            if rec["name"] == "net_hop":
                hop_by_trace[rec["trace"]] += rec["tags"]["sim_ms"]
            elif rec["parent"] is None:
                root_by_trace[rec["trace"]] = rec["tags"]["sim_ms"]
        assert len(root_by_trace) == res.requests
        for trace_id, total in root_by_trace.items():
            assert abs(hop_by_trace.get(trace_id, 0.0) - total) < 1e-9
        assert abs(sum(root_by_trace.values()) - res.latency_ms_sum) < 1e-6
        assert abs(res.hop_latency_ms_sum - res.latency_ms_sum) < 1e-9

    def test_slow_fault_latency_is_outside_hop_sum(self):
        sink = Collect()
        tracer = Tracer(sinks=[sink], config=TraceConfig(sample=1.0))
        plan = FaultPlan().slow("edge0", at=0, extra_latency_s=0.004)
        eng = NetEngine(small_tree(), "LCE", fault_plan=plan, tracer=tracer)
        res = eng.run(small_trace(n=300))
        tracer.close()
        assert res.latency_ms_sum > res.hop_latency_ms_sum
        # every request paid the 4 ms lookup penalty at the slow edge
        assert res.latency_ms_sum - res.hop_latency_ms_sum == 4.0 * res.requests


class TestFaultPlanNeverRaises:
    def test_kill_restart_mid_trace(self):
        sink = Collect()
        plan = (
            FaultPlan()
            .kill("edge0", at=1_000)
            .kill("mid10", at=1_500)
            .restart("edge0", at=3_000)
            .restart("mid10", at=3_500)
        )
        eng = NetEngine(
            small_tree(),
            "LCE",
            receivers=ZipfReceivers(8),
            fault_plan=plan,
            probe=Probe([sink]),
        )
        res = eng.run(small_trace())
        assert res.errors == 0
        counts = Counter(r["event"] for r in sink.recs)
        assert counts["net_node_down"] == 2
        assert counts["net_node_up"] == 2

    def test_kill_every_cache_node_still_serves(self):
        topo = small_tree()
        plan = FaultPlan()
        for i, name in enumerate(sorted(topo.nodes)):
            plan.kill(name, at=10 + i)
        eng = NetEngine(topo, "LCE", receivers=ZipfReceivers(4), fault_plan=plan)
        trace = small_trace(n=1_000)
        res = eng.run(trace)
        assert res.errors == 0
        assert res.requests == len(trace.requests)
        # after the massacre everything is an origin fetch
        assert res.origin_fetches > res.requests * 0.9

    def test_unknown_node_in_plan_is_ignored(self):
        plan = FaultPlan().kill("no-such-pop", at=5).restart("no-such-pop", at=9)
        eng = NetEngine(small_tree(), "LCE", fault_plan=plan)
        res = eng.run(small_trace(n=100))
        assert res.errors == 0

    def test_kill_discards_state_restart_is_cold(self):
        key_req = [Request(t, 42, 1_000) for t in range(10)]
        topo = Topology()
        topo.add_node("e", 100_000, tier="edge")
        topo.add_link("e", ORIGIN, 10.0)
        plan = FaultPlan().kill("e", at=5).restart("e", at=7)
        eng = NetEngine(topo, "LCE", fault_plan=plan)
        res = eng.run(key_req)
        # warm hits 1-4, dead at 5-6 (origin), cold miss at 7, hits 8-9
        assert list(res.hit_flags) == [0, 1, 1, 1, 1, 0, 0, 0, 1, 1]

    def test_dead_node_skips_placement(self):
        topo = small_tree()
        plan = FaultPlan().kill("mid10", at=0).kill("mid11", at=0)
        eng = NetEngine(topo, "LCE", receivers=ZipfReceivers(8), fault_plan=plan)
        res = eng.run(small_trace(n=2_000))
        assert res.errors == 0
        assert res.tiers["mid1"]["lookups"] == 0
