"""Zipf-rated receivers: determinism, skew, and SHARDS WSS estimates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.net.receivers import (
    ZipfReceivers,
    receiver_wss,
    receiver_wss_from_trace,
)
from repro.traces.cdn import make_workload


class TestAssignment:
    def test_scalar_matches_vectorised(self):
        rx = ZipfReceivers(16, beta=0.8, seed=3)
        idx = np.arange(0, 5_000, dtype=np.int64)
        vec = rx.assign_array(idx)
        for i in (0, 1, 17, 999, 4_999):
            assert rx.assign(i) == vec[i]

    def test_deterministic_across_instances(self):
        a = ZipfReceivers(16, beta=0.8, seed=3)
        b = ZipfReceivers(16, beta=0.8, seed=3)
        idx = np.arange(0, 10_000, dtype=np.int64)
        assert (a.assign_array(idx) == b.assign_array(idx)).all()

    def test_seed_changes_assignment(self):
        idx = np.arange(0, 10_000, dtype=np.int64)
        a = ZipfReceivers(16, beta=0.8, seed=0).assign_array(idx)
        b = ZipfReceivers(16, beta=0.8, seed=1).assign_array(idx)
        assert (a != b).any()

    def test_rates_are_zipf_skewed(self):
        rx = ZipfReceivers(32, beta=0.8)
        assert rx.rates[0] > rx.rates[-1]
        assert abs(rx.rates.sum() - 1.0) < 1e-9
        idx = np.arange(0, 50_000, dtype=np.int64)
        who = rx.assign_array(idx)
        counts = np.bincount(who, minlength=32)
        # empirical shares track the rates (law of large numbers, loose)
        assert counts[0] > counts[-1]
        assert abs(counts[0] / 50_000 - rx.rates[0]) < 0.02

    def test_beta_zero_is_uniform(self):
        rx = ZipfReceivers(4, beta=0.0)
        assert (rx.rates == 0.25).all()

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one receiver"):
            ZipfReceivers(0)
        with pytest.raises(ValueError, match="beta"):
            ZipfReceivers(4, beta=-1.0)

    def test_all_ids_in_range(self):
        rx = ZipfReceivers(5, beta=1.2, seed=9)
        who = rx.assign_array(np.arange(0, 20_000, dtype=np.int64))
        assert who.min() >= 0 and who.max() < 5


class TestReceiverWSS:
    def test_counts_partition_the_trace(self):
        trace = make_workload("CDN-T", n_requests=8_000, seed=2)
        rx = ZipfReceivers(8, beta=0.8, seed=2)
        rows = receiver_wss_from_trace(trace, rx)
        assert sum(r["requests"] for r in rows) == len(trace.requests)
        assert [r["receiver"] for r in rows] == list(range(8))

    def test_estimates_bracket_truth_roughly(self):
        trace = make_workload("CDN-T", n_requests=8_000, seed=2)
        rx = ZipfReceivers(4, beta=0.5, seed=2)
        rows = receiver_wss_from_trace(trace, rx)
        whole_wss = trace.working_set_size
        for row in rows:
            assert 0 < row["wss_estimate"]
            # a single receiver's working set cannot exceed the trace's
            # (SHARDS sampling error bound: allow 2x slack)
            assert row["wss_estimate"] < whole_wss * 2

    def test_chunking_invariance(self):
        trace = make_workload("CDN-T", n_requests=4_000, seed=7)
        rx = ZipfReceivers(4, beta=0.8, seed=7)
        small = receiver_wss_from_trace(trace, rx, chunk_size=64)
        big = receiver_wss_from_trace(trace, rx, chunk_size=1 << 16)
        assert small == big

    def test_streaming_chunks_api(self):
        keys = np.arange(0, 1_000, dtype=np.int64)
        sizes = np.full(1_000, 100, dtype=np.int64)
        rx = ZipfReceivers(2, beta=0.0, seed=0)
        rows = receiver_wss(
            [(keys[:500], sizes[:500]), (keys[500:], sizes[500:])], rx
        )
        assert sum(r["requests"] for r in rows) == 1_000
