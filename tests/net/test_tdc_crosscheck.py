"""tdc ↔ net cross-validation: the satellite pin against silent divergence.

The TDC cluster's OC→DC chain with write-on-miss **is** a two-node
`repro.net` topology under LCE: every request checks OC then DC then
origin, and both layers admit the object on the way back.  Expressing
one layer in terms of the other and pinning the hit ratios means the two
implementations cannot drift apart without a test going red.

The per-node request *ordering* differs (TDC admits at OC before looking
at DC; the net engine places copies after the lookup walk), but each
node sees the identical per-request call sequence, so per-node policy
state — and therefore hit counts — match exactly for deterministic
policies.  The assertion is equality, with a small tolerance retained
only to keep the pin robust to future float-ratio refactors.
"""

from __future__ import annotations

import pytest

from repro.cache.registry import make_policy
from repro.net.engine import NetEngine
from repro.net.topology import ORIGIN, Topology
from repro.tdc.cluster import TDCCluster
from repro.traces.cdn import make_workload

OC_CAP = 2_000_000
DC_CAP = 8_000_000
TOLERANCE = 1e-9


def golden_trace():
    return make_workload("CDN-T", n_requests=12_000, seed=11)


def two_node_topology(policy: str) -> Topology:
    topo = Topology()
    topo.add_node("oc", OC_CAP, policy=policy, tier="oc")
    topo.add_node("dc", DC_CAP, policy=policy, tier="dc")
    topo.add_link("oc", "dc", 5.0)
    topo.add_link("dc", ORIGIN, 50.0)
    topo.validate()
    return topo


@pytest.mark.parametrize("policy", ["LRU", "SCIP"])
class TestCrossValidation:
    def test_lce_chain_reproduces_tdc_layer_miss_ratios(self, policy):
        trace = golden_trace()

        tdc = TDCCluster(
            oc_nodes=1,
            dc_nodes=1,
            oc_capacity=OC_CAP,
            dc_capacity=DC_CAP,
            policy_factory=lambda cap: make_policy(policy, cap),
        )
        tdc.run(trace)
        tdc_ratios = tdc.layer_miss_ratios()

        eng = NetEngine(two_node_topology(policy), placement="LCE")
        res = eng.run(trace)
        net_ratios = res.tier_miss_ratios()

        assert net_ratios["oc"] == pytest.approx(tdc_ratios["oc"], abs=TOLERANCE)
        assert net_ratios["dc"] == pytest.approx(tdc_ratios["dc"], abs=TOLERANCE)
        assert res.origin_fetches == tdc.origin_fetches

    def test_per_node_policy_state_matches(self, policy):
        trace = golden_trace()
        tdc = TDCCluster(
            1, 1, OC_CAP, DC_CAP, policy_factory=lambda cap: make_policy(policy, cap)
        )
        tdc.run(trace)
        eng = NetEngine(two_node_topology(policy), placement="LCE")
        eng.run(trace)

        for net_name, tdc_node in (("oc", tdc.oc[0]), ("dc", tdc.dc[0])):
            net_policy = eng.policies[net_name]
            assert net_policy.stats.requests == tdc_node.policy.stats.requests
            assert net_policy.stats.hits == tdc_node.policy.stats.hits
            assert len(net_policy) == len(tdc_node.policy)
            assert net_policy.used == tdc_node.policy.used
