"""Placement-strategy semantics and the strategy registry."""

from __future__ import annotations

import pytest

from repro.net.placement import (
    LCD,
    LCE,
    PlacementStrategy,
    ProbPlacement,
    available_placements,
    make_placement,
    register_placement,
)

PATH = ["root0", "mid10", "edge0"]  # top -> bottom


class TestBuiltins:
    def test_lce_copies_everywhere(self):
        assert LCE().copy_nodes(PATH, key=1, size=10, clock=0) == PATH

    def test_lcd_copies_one_below_serving_point(self):
        assert LCD().copy_nodes(PATH, key=1, size=10, clock=0) == ["root0"]

    def test_lcd_empty_downstream(self):
        assert LCD().copy_nodes([], key=1, size=10, clock=0) == []

    def test_prob_subset_and_deterministic(self):
        strat = ProbPlacement(p=0.7, seed=3)
        for clock in range(200):
            chosen = strat.copy_nodes(PATH, key=clock * 7, size=10, clock=clock)
            assert set(chosen) <= set(PATH)
            assert chosen == strat.copy_nodes(PATH, key=clock * 7, size=10, clock=clock)

    def test_prob_varies_with_clock(self):
        # Independent per-request decisions: the same key must not always
        # get the same answer across requests.
        strat = ProbPlacement(p=0.5, seed=0)
        answers = {
            tuple(strat.copy_nodes(PATH, key=42, size=10, clock=c))
            for c in range(100)
        }
        assert len(answers) > 1

    def test_prob_depth_gradient(self):
        # The edge (deepest) must admit more often than the top node.
        strat = ProbPlacement(p=0.7, seed=1)
        counts = {name: 0 for name in PATH}
        for clock in range(2_000):
            for name in strat.copy_nodes(PATH, key=clock, size=10, clock=clock):
                counts[name] += 1
        assert counts["edge0"] > counts["mid10"] > counts["root0"]

    def test_prob_validates_p(self):
        with pytest.raises(ValueError, match="probability"):
            ProbPlacement(p=0.0)
        with pytest.raises(ValueError, match="probability"):
            ProbPlacement(p=1.5)


class TestRegistry:
    def test_menu(self):
        assert set(available_placements()) >= {"LCE", "LCD", "PROB"}

    def test_make_placement_kwargs(self):
        strat = make_placement("PROB", p=0.3, seed=7)
        assert strat.p == 0.3 and strat.seed == 7

    def test_unknown_name_lists_menu(self):
        with pytest.raises(KeyError, match="unknown placement.*available"):
            make_placement("nope")

    def test_register_and_duplicate_guard(self):
        class Nowhere(PlacementStrategy):
            name = "NONE"

            def copy_nodes(self, downstream, key, size, clock):
                return []

        register_placement("X-NONE", Nowhere)
        try:
            assert isinstance(make_placement("X-NONE"), Nowhere)
            with pytest.raises(ValueError, match="already registered"):
                register_placement("X-NONE", Nowhere)
        finally:
            from repro.net.placement import _PLACEMENTS

            _PLACEMENTS.pop("X-NONE", None)

    def test_as_dict_round_trips_knobs(self):
        doc = ProbPlacement(p=0.4, seed=2).as_dict()
        clone = make_placement(doc["name"], p=doc["p"], seed=doc["seed"])
        assert clone.as_dict() == doc
