"""The tenancy control loop: SLO accounting, burn-forced reallocation."""

from __future__ import annotations

import pytest

from repro.obs.probe import Probe
from repro.orchestrate.controller import ControllerConfig
from repro.sim.request import Request
from repro.tenancy import TenancyController, TenantPartitionedCache
from repro.traces.drift import TENANT_STRIDE


class ListSink:
    def __init__(self):
        self.records = []

    def write(self, rec):
        self.records.append(rec)


FAST = ControllerConfig(
    hysteresis=0.02, min_gap=0.001, cooldown=500, min_samples=20, eval_every=100
)


def _key(tenant: int, i: int) -> int:
    return tenant * TENANT_STRIDE + i


class TestAccounting:
    def test_slo_ledgers_match_request_counts_exactly(self):
        ctl = TenancyController(10_000, 2, rate=1.0, config=FAST)
        # Tenant 0 all misses (cold scan), tenant 1 mostly hits.
        for i in range(400):
            ctl.record(Request(i, _key(0, i), 100), hit=False)
            ctl.record(Request(i, _key(1, i % 5), 100), hit=(i >= 5))
        assert ctl.accounting_errors() == 0
        assert ctl.tenant_requests == {0: 400, 1: 400}
        assert ctl.tenant_hits[0] == 0 and ctl.tenant_hits[1] == 395
        s = ctl.summary()
        assert s["tenants"]["0"]["miss_ratio"] == 1.0
        assert s["accounting_errors"] == 0

    def test_sentinel_keys_account_to_tenant_zero(self):
        ctl = TenancyController(10_000, 2, rate=1.0, config=FAST)
        ctl.record(Request(0, "weird-key", 100), hit=False)
        ctl.record(Request(1, -3, 100), hit=True)
        assert ctl.tenant_requests == {0: 2, 1: 0}
        assert ctl.accounting_errors() == 0


class TestReallocation:
    def test_starved_tenant_triggers_burn_forced_realloc(self):
        sink = ListSink()
        applied = []
        ctl = TenancyController(
            100_000,
            2,
            apply=lambda q: applied.append(q) or {},
            mr_slo=0.3,
            burn_threshold=1.5,
            rate=1.0,
            window=200,
            config=FAST,
            probe=Probe([sink]),
        )
        # Tenant 0 misses constantly over a wide set (burning its SLO and
        # showing a steep live MRC); tenant 1 is all hits on a tiny set.
        for i in range(2_000):
            ctl.record(Request(i, _key(0, i % 600), 100), hit=False)
            ctl.record(Request(i, _key(1, i % 3), 100), hit=True)
        assert ctl.breaches, "burning tenant never flagged"
        assert any(b["tenant"] == 0 for b in ctl.breaches)
        assert ctl.reallocations, "no reallocation despite SLO pressure"
        assert applied, "accepted proposal never applied"
        events = {r["event"] for r in sink.records}
        assert "slo_breach" in events and "tenant_realloc" in events
        assert ctl.accounting_errors() == 0

    def test_applied_split_always_sums_to_capacity(self):
        ctl = TenancyController(100_000, 3, rate=1.0, window=200, config=FAST)
        for i in range(3_000):
            # Tenant 0 scans wide and misses; 1 and 2 sit on tiny hot sets.
            ctl.record(Request(i, _key(0, i % 700), 100), hit=False)
            ctl.record(Request(i, _key(1, i % 3), 100), hit=True)
            ctl.record(Request(i, _key(2, i % 5), 100), hit=True)
        assert ctl.reallocations, "workload skew should move the split"
        for event in ctl.reallocations:
            assert sum(event.alloc.values()) == 100_000
        assert sum(ctl.alloc.values()) == 100_000

    def test_observer_mode_logs_but_moves_nothing(self):
        ctl = TenancyController(100_000, 2, apply=None, rate=1.0,
                                window=200, config=FAST)
        for i in range(1_500):
            ctl.record(Request(i, _key(0, i % 500), 100), hit=False)
            ctl.record(Request(i, _key(1, i % 3), 100), hit=True)
        # Decisions may fire; every event carries an empty evicted map.
        for event in ctl.reallocations:
            assert event.evicted == {}

    def test_realloc_drives_partition_quotas_end_to_end(self):
        part = TenantPartitionedCache(50_000, 2)
        ctl = TenancyController(
            50_000,
            2,
            apply=part.set_quotas,
            initial=part.quotas(),
            rate=1.0,
            window=200,
            config=FAST,
        )
        for i in range(4_000):
            req0 = Request(i, _key(0, i % 700), 100)
            req1 = Request(i, _key(1, i % 3), 100)
            ctl.record(req0, part.request(req0))
            ctl.record(req1, part.request(req1))
        assert ctl.reallocations, "controller never moved the split"
        # The partition enforces exactly the controller's latest split.
        assert part.quotas() == ctl.alloc
        part.check_invariants()


class TestValidation:
    def test_rejects_bad_slo_and_threshold(self):
        with pytest.raises(ValueError, match="mr_slo"):
            TenancyController(1_000, 2, mr_slo=1.5)
        with pytest.raises(ValueError, match="mr_slo"):
            TenancyController(1_000, 2, mr_slo={0: 0.5, 1: 0.0})
        with pytest.raises(ValueError, match="burn_threshold"):
            TenancyController(1_000, 2, burn_threshold=0.0)

    def test_per_tenant_slo_mapping(self):
        ctl = TenancyController(1_000, 2, mr_slo={0: 0.2, 1: 0.8})
        assert ctl.mr_slo == {0: 0.2, 1: 0.8}
