"""Live MRC estimation and the waterfilling allocator."""

from __future__ import annotations

import pytest

from repro.orchestrate.controller import ControllerConfig
from repro.sim.request import Request
from repro.tenancy import CapacityAllocator, TenantMRCEstimator


def _drive(est, keys, size=100):
    for i, k in enumerate(keys):
        est.observe(Request(i, k, size))


class TestEstimator:
    def test_curve_is_anchored_and_monotone_under_noise(self):
        est = TenantMRCEstimator(0, 100_000, rate=0.5, window=500)
        # Cyclic scan over a set larger than the smallest grid points:
        # small shadows thrash, large ones hold — a real MRC shape.
        keys = list(range(300)) * 20
        _drive(est, keys)
        curve = est.curve()
        assert curve[0] == (0, 1.0)
        mrs = [m for _, m in curve]
        assert all(a >= b for a, b in zip(mrs, mrs[1:])), "curve not monotone"
        assert mrs[-1] < mrs[1], "largest shadow should beat the smallest"

    def test_interpolation_is_piecewise_linear_and_clamped(self):
        est = TenantMRCEstimator(0, 1_000, rate=1.0)
        # Force known ratios by hand.
        for ratio, value in zip(est.ratios, [0.8, 0.6, 0.5, 0.4, 0.3, 0.2]):
            ratio.update(value)
        points = est.curve()
        (c0, m0), (c1, m1) = points[1], points[2]
        mid = (c0 + c1) // 2
        expected = m0 + (m1 - m0) * (mid - c0) / (c1 - c0)
        assert est.miss_ratio_at(mid) == pytest.approx(expected)
        assert est.miss_ratio_at(0) == 1.0
        assert est.miss_ratio_at(10 ** 9) == points[-1][1]

    def test_sampling_rate_bounds_shadow_work(self):
        est = TenantMRCEstimator(0, 100_000, rate=0.05, seed=3)
        _drive(est, range(5_000))
        assert est.requests == 5_000
        # SHARDS keeps ~rate of the key population; allow generous slack.
        assert 0.01 < est.sampled_requests / est.requests < 0.15
        # Shadows are scaled to rate x grid point.
        assert est.shadows[-1].capacity == est.sampler.scaled_capacity(100_000)

    def test_tenant_id_decorrelates_the_sampled_population(self):
        a = TenantMRCEstimator(0, 10_000, rate=0.2, seed=1)
        b = TenantMRCEstimator(1, 10_000, rate=0.2, seed=1)
        keys = range(2_000)
        picked_a = {k for k in keys if a.sampler.sampled(k)}
        picked_b = {k for k in keys if b.sampler.sampled(k)}
        assert picked_a != picked_b

    def test_rejects_bad_grids(self):
        with pytest.raises(ValueError, match="grid_fractions"):
            TenantMRCEstimator(0, 1_000, grid_fractions=(0.5, 0.5))
        with pytest.raises(ValueError, match="grid_fractions"):
            TenantMRCEstimator(0, 1_000, grid_fractions=(0.5, 1.5))
        with pytest.raises(ValueError, match="capacity"):
            TenantMRCEstimator(0, 0)


class _Curve:
    """Deterministic stand-in: mr falls linearly to a floor at ``knee``."""

    def __init__(self, knee: int, floor: float = 0.1):
        self.knee = knee
        self.floor = floor

    def miss_ratio_at(self, capacity: int) -> float:
        if capacity >= self.knee:
            return self.floor
        return 1.0 - (1.0 - self.floor) * capacity / self.knee


class _Flat:
    def miss_ratio_at(self, capacity: int) -> float:
        return 0.5


class TestWaterfilling:
    def test_split_sums_exactly_to_capacity(self):
        alloc = CapacityAllocator(10_000, 3)
        out = alloc.solve(
            {0: _Curve(4_000), 1: _Curve(2_000), 2: _Curve(8_000)},
            {0: 1.0, 1: 1.0, 2: 1.0},
        )
        assert sum(out.values()) == 10_000
        assert all(v >= alloc.floor for v in out.values())

    def test_all_flat_curves_still_sum_to_capacity(self):
        alloc = CapacityAllocator(10_000, 2, quantum=3_000)
        out = alloc.solve({0: _Flat(), 1: _Flat()}, {0: 1.0, 1: 1.0})
        assert sum(out.values()) == 10_000

    def test_fairness_feeds_the_worst_off_tenant(self):
        # Tenant 0 needs far more bytes to reach its floor than tenant 1:
        # max-min waterfilling must give it the larger share.
        alloc = CapacityAllocator(10_000, 2, objective="fairness")
        out = alloc.solve({0: _Curve(9_000), 1: _Curve(1_000)}, {0: 1.0, 1: 1.0})
        assert out[0] > out[1]

    def test_utilization_weighs_gain_by_rate(self):
        # Identical curves; tenant 1 carries 10x the traffic, so the
        # rate-weighted objective concentrates capacity there.
        alloc = CapacityAllocator(10_000, 2, objective="utilization")
        out = alloc.solve({0: _Curve(8_000), 1: _Curve(8_000)}, {0: 0.1, 1: 1.0})
        assert out[1] > out[0]

    def test_floor_protects_starved_tenants(self):
        alloc = CapacityAllocator(10_000, 2, min_share=0.2, objective="utilization")
        out = alloc.solve({0: _Flat(), 1: _Curve(8_000)}, {0: 0.0, 1: 1.0})
        assert out[0] >= 2_000

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="objective"):
            CapacityAllocator(1_000, 2, objective="greed")
        with pytest.raises(ValueError, match="min_share"):
            CapacityAllocator(1_000, 2, min_share=0.6)
        with pytest.raises(ValueError, match="capacity"):
            CapacityAllocator(0, 2)


class TestGatedDecisions:
    CONFIG = ControllerConfig(
        hysteresis=0.10, min_gap=0.01, cooldown=1_000, min_samples=10
    )

    def _alloc(self):
        return CapacityAllocator(10_000, 2, config=self.CONFIG, quantum=1_000)

    def test_holds_until_evidence_and_improvement(self):
        alloc = self._alloc()
        curves = {0: _Curve(8_000), 1: _Curve(1_000)}
        rates = {0: 1.0, 1: 1.0}
        current = {0: 5_000, 1: 5_000}
        # Not enough samples yet.
        assert alloc.consider(100, 5, curves, rates, current) is None
        # Evidence in hand and the re-split clearly wins: fires.
        out = alloc.consider(200, 500, curves, rates, current)
        assert out is not None and sum(out.values()) == 10_000

    def test_cooldown_blocks_consecutive_fires(self):
        alloc = self._alloc()
        curves = {0: _Curve(8_000), 1: _Curve(1_000)}
        rates = {0: 1.0, 1: 1.0}
        first = alloc.consider(200, 500, curves, rates, {0: 5_000, 1: 5_000})
        assert first is not None
        # A very different current split would be improved again, but the
        # cooldown holds — even when forced by an SLO burn.
        again = alloc.consider(300, 900, curves, rates, {0: 5_000, 1: 5_000})
        assert again is None
        forced = alloc.consider(
            400, 900, curves, rates, {0: 5_000, 1: 5_000}, force=True
        )
        assert forced is None
        # After the cooldown the gate opens again.
        late = alloc.consider(1_500, 1_800, curves, rates, {0: 5_000, 1: 5_000})
        assert late is not None

    def test_identical_proposal_is_a_hold(self):
        alloc = self._alloc()
        curves = {0: _Curve(8_000), 1: _Curve(1_000)}
        rates = {0: 1.0, 1: 1.0}
        proposal = alloc.solve(curves, rates)
        assert alloc.consider(200, 500, curves, rates, proposal) is None

    def test_force_skips_margins_but_never_accepts_a_worse_split(self):
        alloc = self._alloc()
        curves = {0: _Curve(5_000, floor=0.4), 1: _Curve(5_000, floor=0.4)}
        rates = {0: 1.0, 1: 1.0}
        # Proposal ~= equal split; a slightly-off current split gives a
        # tiny gain — below the hysteresis margin, so a normal consider
        # holds but a burn-forced one acts.
        current = {0: 4_000, 1: 6_000}
        assert alloc.consider(200, 500, curves, rates, current) is None
        forced = alloc.consider(300, 500, curves, rates, current, force=True)
        assert forced is not None
