"""The tenancy bench doc: structure, fairness math, manifest round-trip."""

from __future__ import annotations

import json

import pytest

from repro.tenancy import (
    TENANCY_BENCH_SCHEMA,
    config_from_doc,
    format_tenancy_doc,
    run_tenancy_bench,
)


@pytest.fixture(scope="module")
def doc():
    # Small but real: enough requests for the flash phases to exist,
    # cheap enough for tier-1.
    return run_tenancy_bench(
        n_requests=9_000,
        window=200,
        cooldown=1_500,
        min_samples=50,
        eval_every=200,
        hysteresis=0.02,
        min_gap=0.001,
        output=None,
    )


class TestDocShape:
    def test_schema_config_and_sections(self, doc):
        assert doc["schema"] == TENANCY_BENCH_SCHEMA
        assert doc["config"]["tenants"] == ["churn", "flash", "diurnal"]
        for section in ("static", "online"):
            rows = doc[section]["tenants"]
            assert set(rows) == {"0", "1", "2"}
            for row in rows.values():
                assert 0.0 <= row["miss_ratio"] <= 1.0
                assert row["used_bytes"] <= row["quota_bytes"]
        assert "controller" in doc["online"]
        assert doc["online"]["controller"]["accounting_errors"] == 0

    def test_comparison_block_is_consistent(self, doc):
        cmp_ = doc["comparison"]
        static_worst = max(
            row["miss_ratio"] for row in doc["static"]["tenants"].values()
        )
        online_worst = max(
            row["miss_ratio"] for row in doc["online"]["tenants"].values()
        )
        assert cmp_["static_worst_tenant_mr"] == pytest.approx(static_worst)
        assert cmp_["online_worst_tenant_mr"] == pytest.approx(online_worst)
        expected = (static_worst - online_worst) / static_worst
        assert cmp_["worst_tenant_improvement"] == pytest.approx(expected)
        assert cmp_["n_reallocations"] == len(
            doc["online"]["controller"]["reallocations"]
        )

    def test_doc_is_json_serialisable(self, doc):
        json.dumps(doc)

    def test_formatter_summarises_the_comparison(self, doc):
        text = format_tenancy_doc(doc)
        assert "worst tenant mr" in text
        assert "3 tenants" in text


class TestManifestRoundTrip:
    def test_config_from_doc_rebuilds_the_run_kwargs(self, doc):
        cfg = config_from_doc(doc)
        assert cfg["tenants"] == doc["config"]["tenants"]
        assert cfg["n_requests"] == doc["config"]["n_requests"]
        assert cfg["fraction"] == doc["config"]["cache_fraction"]
        assert "capacity_bytes" not in cfg
        # The rebuilt kwargs are accepted verbatim by the runner.
        run_tenancy_bench(**{**cfg, "n_requests": 3_000, "output": None})

    def test_manifest_embeds_the_tenancy_extra(self, doc):
        extra = doc["manifest"]["extra"]["tenancy"]
        assert extra["tenants"] == doc["config"]["tenants"]


class TestKnobs:
    def test_quick_caps_the_request_budget(self):
        doc = run_tenancy_bench(
            n_requests=200_000, quick=True, output=None, window=200,
            eval_every=500,
        )
        assert doc["config"]["n_requests"] <= 45_000

    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            run_tenancy_bench(tenants=("churn",), output=None)
        with pytest.raises(ValueError):
            run_tenancy_bench(
                tenants=("churn", "diurnal"), mr_slo=0.0,
                n_requests=2_000, output=None,
            )
