"""Quota invariants of :class:`TenantPartitionedCache`.

The two properties the tentpole leans on, pinned at the composite level:

* *isolation* — a tenant's admissions evict only that tenant's own bytes;
  an under-quota tenant never loses residents to a neighbour's pressure;
* *scoped victim selection* — ``set_quotas`` shrinks evict from the
  over-quota tenant alone, via its inner policy's own LRU order.
"""

from __future__ import annotations

import pytest

from repro.obs.probe import Probe
from repro.sim.request import Request
from repro.tenancy import TenantPartitionedCache
from repro.traces.drift import TENANT_STRIDE


class ListSink:
    def __init__(self):
        self.records = []

    def write(self, rec):
        self.records.append(rec)


def _key(tenant: int, i: int) -> int:
    return tenant * TENANT_STRIDE + i


def _fill(cache, tenant, n, size=100, start=0):
    for i in range(start, start + n):
        cache.request(Request(i, _key(tenant, i), size))


class TestIsolation:
    def test_neighbour_pressure_never_evicts_under_quota_tenant(self):
        cache = TenantPartitionedCache(2_000, n_tenants=2)  # 1000 bytes each
        _fill(cache, 0, 5, size=100)  # tenant 0 at 500/1000 — under quota
        resident = [_key(0, i) for i in range(5)]
        # Tenant 1 hammers far past its own quota.
        _fill(cache, 1, 200, size=100)
        for key in resident:
            assert cache.contains(key), "under-quota tenant lost a resident"
        assert cache.inners[1].used <= cache.inners[1].capacity
        cache.check_invariants()

    def test_admission_evicts_only_the_admitting_tenant(self):
        cache = TenantPartitionedCache(2_000, n_tenants=2)
        _fill(cache, 0, 10, size=100)  # tenant 0 exactly at quota
        _fill(cache, 1, 10, size=100)  # tenant 1 exactly at quota
        evictions_t0 = cache.inners[0].stats.evictions
        _fill(cache, 1, 50, size=100, start=10)  # tenant 1 churns
        assert cache.inners[0].stats.evictions == evictions_t0
        assert cache.inners[1].stats.evictions >= 50
        cache.check_invariants()

    def test_object_larger_than_quota_is_never_force_fitted(self):
        cache = TenantPartitionedCache(2_000, n_tenants=2)
        _fill(cache, 0, 5, size=100)
        cache.request(Request(99, _key(0, 999), 5_000))  # > tenant quota
        assert not cache.contains(_key(0, 999))
        assert all(cache.contains(_key(0, i)) for i in range(5))

    def test_out_of_namespace_keys_route_to_tenant_zero(self):
        cache = TenantPartitionedCache(2_000, n_tenants=2)
        assert cache.tenant_of(-5) == 0
        assert cache.tenant_of("sentinel") == 0
        assert cache.tenant_of(7 * TENANT_STRIDE) == 0  # beyond K
        assert cache.tenant_of(TENANT_STRIDE + 3) == 1


class TestQuotaResplit:
    def test_shrink_evicts_from_the_shrunk_tenant_only_in_lru_order(self):
        sink = ListSink()
        cache = TenantPartitionedCache(2_000, n_tenants=2)
        cache._probe = Probe([sink])
        _fill(cache, 0, 10, size=100)
        _fill(cache, 1, 10, size=100)
        evicted = cache.set_quotas({0: 400, 1: 1_600})
        # Only tenant 0 lost bytes, and exactly down to its new quota.
        assert set(evicted) == {0} and evicted[0] == 600
        assert cache.inners[0].used == 400
        assert cache.inners[1].used == 1_000  # untouched
        # LRU order: the oldest six went, the newest four stayed.
        assert all(not cache.contains(_key(0, i)) for i in range(6))
        assert all(cache.contains(_key(0, i)) for i in range(6, 10))
        # The shrink emitted a quota_evict event for the loser only.
        evs = [r for r in sink.records if r["event"] == "quota_evict"]
        assert len(evs) == 1 and evs[0]["tenant"] == 0
        assert evs[0]["freed_bytes"] == 600 and evs[0]["evicted"] == 6
        cache.check_invariants()

    def test_resplit_preserves_per_tenant_byte_accounting(self):
        cache = TenantPartitionedCache(3_000, n_tenants=3)
        for t in range(3):
            _fill(cache, t, 8, size=100)
        before = {t: cache.inners[t].used for t in range(3)}
        evicted = cache.set_quotas({0: 500, 1: 1_500, 2: 1_000})
        for t in range(3):
            assert cache.inners[t].used == before.get(t, 0) - evicted.get(t, 0)
            assert cache.inners[t].used <= cache.inners[t].capacity
        assert cache.quotas() == {0: 500, 1: 1_500, 2: 1_000}
        assert cache.quota_evicted_bytes == sum(evicted.values())
        cache.check_invariants()

    def test_transient_state_never_exceeds_capacity(self):
        # Shrinks run before grows, so a crossing re-split stays legal.
        cache = TenantPartitionedCache(2_000, n_tenants=2)
        _fill(cache, 0, 10, size=100)
        _fill(cache, 1, 10, size=100)
        cache.set_quotas({0: 1_800, 1: 200})
        cache.check_invariants()
        cache.set_quotas({0: 200, 1: 1_800})
        cache.check_invariants()

    def test_quotas_summing_over_capacity_rejected(self):
        cache = TenantPartitionedCache(2_000, n_tenants=2)
        with pytest.raises(ValueError, match="capacity"):
            cache.set_quotas({0: 1_500, 1: 1_000})
        with pytest.raises(ValueError, match="missing"):
            cache.set_quotas({0: 1_000})


class TestAggregation:
    def test_stats_and_len_aggregate_across_tenants(self):
        cache = TenantPartitionedCache(2_000, n_tenants=2)
        _fill(cache, 0, 5)
        _fill(cache, 1, 7)
        # Re-request tenant 0's set: hits.
        _fill(cache, 0, 5)
        st = cache.stats
        assert st.requests == 17 and st.hits == 5
        assert len(cache) == 12
        rows = cache.tenant_stats()
        assert rows[0]["requests"] == 10 and rows[1]["requests"] == 7
        assert rows[0]["used_bytes"] == 500 and rows[0]["quota_bytes"] == 1_000

    def test_derived_properties_reject_assignment(self):
        cache = TenantPartitionedCache(2_000, n_tenants=2)
        with pytest.raises(AttributeError):
            cache.used = 0
        with pytest.raises(AttributeError):
            cache.stats = None

    def test_export_import_round_trip_lands_in_owner_partitions(self):
        src = TenantPartitionedCache(2_000, n_tenants=2)
        _fill(src, 0, 4)
        _fill(src, 1, 3)
        dst = TenantPartitionedCache(2_000, n_tenants=2)
        for key, size in src.export_residents():
            assert dst.import_resident(key, size)
        for t in (0, 1):
            assert dst.inners[t].used == src.inners[t].used
        dst.check_invariants()
