"""End-to-end integration tests: the paper's headline orderings on small
CDN workloads, exercised through the public API exactly as a user would.

These are the contract the benchmarks verify at larger scale; here they run
at the 20 k-request smoke scale so the main suite stays fast.
"""

from __future__ import annotations

import pytest

from repro.cache import POLICIES
from repro.core import SCICache, SCIPCache, SCIPLRUK
from repro.sim import annotate_next_access, simulate
from repro.traces import make_workload

FRACTIONS = {"CDN-T": 0.020, "CDN-W": 0.068, "CDN-A": 0.014}


@pytest.fixture(scope="module")
def workloads(request):
    return {
        name: make_workload(name, n_requests=20_000) for name in FRACTIONS
    }


def mr(policy, trace):
    # Post-warm-up measurement, as in the experiment harness (the paper's
    # 100 M-request replays make warm-up negligible; ours do not).
    return simulate(policy, trace, warmup=int(len(trace) * 0.3)).miss_ratio


class TestHeadlineOrderings:
    def test_scip_beats_lru_everywhere(self, workloads):
        wins = 0
        for name, tr in workloads.items():
            cap = int(tr.working_set_size * FRACTIONS[name])
            scip, lru = mr(SCIPCache(cap), tr), mr(POLICIES["LRU"](cap), tr)
            # Never meaningfully worse, even at this smoke scale …
            assert scip <= lru + 0.003, name
            wins += scip < lru
        # … and strictly better on most workloads (all three at full scale).
        assert wins >= 2

    def test_scip_beats_lip_everywhere(self, workloads):
        for name, tr in workloads.items():
            cap = int(tr.working_set_size * FRACTIONS[name])
            assert mr(SCIPCache(cap), tr) < mr(POLICIES["LIP"](cap), tr), name

    def test_belady_floors_scip(self, workloads):
        for name, tr in workloads.items():
            cap = int(tr.working_set_size * FRACTIONS[name])
            annotate_next_access(tr)
            assert mr(POLICIES["Belady"](cap), tr) < mr(SCIPCache(cap), tr), name

    def test_scip_close_to_or_better_than_ascip(self, workloads):
        """Paper: SCIP beats ASC-IP.  At smoke scale (20 k requests, most
        of it inside SCIP's learning window and below CDN-W's sweep period)
        ASC-IP's stateless size heuristic converges faster, so we assert
        SCIP is ahead or within a learning-phase band; the benches assert
        leadership at full scale."""
        for name, tr in workloads.items():
            cap = int(tr.working_set_size * FRACTIONS[name])
            scip = mr(SCIPCache(cap), tr)
            asc = mr(POLICIES["ASC-IP"](cap), tr)
            assert scip <= asc + 0.12, name

    def test_enhancement_value_on_lruk(self, workloads):
        tr = workloads["CDN-A"]
        cap = int(tr.working_set_size * FRACTIONS["CDN-A"])
        host = mr(POLICIES["LRU-K"](cap), tr)
        enhanced = mr(SCIPLRUK(cap), tr)
        assert enhanced < host, "SCIP must improve LRU-K (Figure 12)"

    def test_sci_between_lru_and_scip_on_average(self, workloads):
        """SCI carries the insertion-side gains; averaged across workloads
        it lands at or below LRU and at or above (within noise) SCIP."""
        scip_t = sci_t = lru_t = 0.0
        for name, tr in workloads.items():
            cap = int(tr.working_set_size * FRACTIONS[name])
            scip_t += mr(SCIPCache(cap), tr)
            sci_t += mr(SCICache(cap), tr)
            lru_t += mr(POLICIES["LRU"](cap), tr)
        assert sci_t < lru_t
        assert scip_t <= sci_t + 0.02


class TestCrossComponent:
    def test_engine_policy_trace_roundtrip(self, workloads, tmp_path):
        """Trace → disk → back → simulate gives identical results."""
        from repro.traces.io import read_lrb, write_lrb

        tr = workloads["CDN-T"]
        path = tmp_path / "t.tr"
        write_lrb(tr, path)
        back = read_lrb(path, name="CDN-T")
        cap = int(tr.working_set_size * 0.02)
        assert mr(SCIPCache(cap), tr) == pytest.approx(mr(SCIPCache(cap), back))

    def test_tdc_cluster_consistent_with_flat_policy(self, workloads):
        """A 1+1-node cluster's end-to-end BTO ratio matches what its two
        cache layers' stats imply (no requests lost in routing)."""
        from repro.tdc import Monitor, TDCCluster
        from repro.cache import LRUCache

        tr = workloads["CDN-T"]
        cluster = TDCCluster(
            1, 1, 10_000_000, 10_000_000, lambda cap: LRUCache(cap),
            monitor=Monitor(bucket_requests=10_000),
        )
        cluster.run(tr)
        oc = cluster.oc[0].policy.stats
        assert oc.requests == len(tr)
        assert cluster.origin_fetches <= oc.misses

    def test_fig4_pipeline_from_public_api(self, workloads):
        from repro.ml.evaluate import build_dataset, evaluate_models

        tr = workloads["CDN-W"]
        ds = build_dataset(tr, int(tr.working_set_size * 0.068), "both")
        acc = evaluate_models(ds, train_frac=0.5)
        assert acc["MAB"] >= 0.5
