"""Smoke tests for the engine replay micro-benchmark subsystem."""

from __future__ import annotations

import json

import pytest

from repro.cache.registry import available_policies
from repro.perf.bench import (
    BENCH_SCHEMA,
    DEFAULT_BENCH_POLICIES,
    format_bench,
    run_engine_bench,
)


def test_registry_covers_the_default_policy_set():
    names = available_policies()
    for name in DEFAULT_BENCH_POLICIES:
        assert name in names
    assert "SCI" in names  # the paper's insertion-only variant is benchable too


def test_engine_bench_writes_a_versioned_document(tmp_path):
    out = tmp_path / "BENCH_engine.json"
    doc = run_engine_bench(
        policies=["LRU"], n_requests=5_000, repeats=1, output=str(out)
    )
    assert out.exists()
    on_disk = json.loads(out.read_text())
    assert on_disk == doc
    assert doc["schema"] == BENCH_SCHEMA
    assert doc["workload"] == "CDN-T"
    assert doc["capacity_bytes"] >= 1
    r = doc["results"]["LRU"]
    assert r["tps_legacy"] > 0 and r["tps_fast"] > 0
    assert r["speedup"] == r["tps_fast"] / r["tps_legacy"]
    assert 0.0 <= r["miss_ratio"] <= 1.0
    assert doc["headline"]["policy"] == "LRU"
    assert doc["headline"]["speedup"] == r["speedup"]


def test_engine_bench_measures_tracing_cost(tmp_path):
    doc = run_engine_bench(policies=["LRU"], n_requests=5_000, repeats=1, output=None)
    r = doc["results"]["LRU"]
    assert r["tps_traced"] > 0
    assert r["trace_cost"] == r["tps_fast"] / r["tps_traced"]
    assert doc["headline"]["trace_cost"] == r["trace_cost"]
    # First run: nothing to compare the fast path against.
    assert doc["headline"]["fast_tps_prev"] is None


def test_engine_bench_tracks_fast_path_vs_previous_run(tmp_path):
    out = tmp_path / "BENCH_engine.json"
    first = run_engine_bench(
        policies=["LRU"], n_requests=5_000, repeats=1, output=str(out)
    )
    second = run_engine_bench(
        policies=["LRU"], n_requests=5_000, repeats=1, output=str(out)
    )
    h = second["headline"]
    assert h["fast_tps_prev"] == first["results"]["LRU"]["tps_fast"]
    assert h["fast_change_vs_prev"] == pytest.approx(
        second["results"]["LRU"]["tps_fast"] / h["fast_tps_prev"] - 1.0
    )
    assert "fast path vs previous run" in format_bench(second)


def test_engine_bench_output_none_writes_nothing(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    doc = run_engine_bench(policies=["LRU"], n_requests=2_000, repeats=1, output=None)
    assert list(tmp_path.iterdir()) == []
    assert "LRU" in doc["results"]


def test_engine_bench_rejects_unknown_policy():
    with pytest.raises(KeyError, match="NOPE"):
        run_engine_bench(policies=["NOPE"], output=None)


def test_quick_mode_caps_the_workload():
    doc = run_engine_bench(
        policies=["LRU"], n_requests=500_000, repeats=5, output=None, quick=True
    )
    assert doc["repeats"] == 1
    assert doc["n_requests"] < 50_000  # 30 k nominal, generator is approximate


def test_format_bench_mentions_every_policy(tmp_path):
    doc = run_engine_bench(policies=["LRU"], n_requests=2_000, repeats=1, output=None)
    text = format_bench(doc)
    assert "LRU" in text
    assert "headline" in text
