"""The unified bench surface: envelope, registry, CLI verb, shims."""

from __future__ import annotations

import json
import warnings

import pytest

from repro.bench import (
    BENCH_RESULT_SCHEMA,
    BenchResult,
    bench_registry,
    config_from_doc,
    load_bench_doc,
    run_bench,
)
from repro.cli import _rewrite_legacy_bench_argv, main


class TestEnvelope:
    def _result(self):
        return BenchResult(
            target="serve",
            target_schema=1,
            config={"n_shards": 2},
            results={"loadgen": {"throughput_rps": 100.0}},
            manifest={"extra": {"serve": {}}},
        )

    def test_doc_round_trip(self, tmp_path):
        result = self._result()
        doc = result.as_doc()
        assert doc["schema"] == BENCH_RESULT_SCHEMA
        back = BenchResult.from_doc(doc)
        assert back.results == result.results
        assert back.config == result.config
        path = tmp_path / "env.json"
        path.write_text(json.dumps(doc))
        loaded = load_bench_doc(str(path))
        assert loaded.path == str(path)
        assert loaded.results == result.results

    def test_from_doc_rejects_legacy_layout_loudly(self):
        with pytest.raises(ValueError, match="schema 2"):
            BenchResult.from_doc({"schema": 2, "results": {}})
        with pytest.raises(ValueError, match="not a unified bench doc"):
            BenchResult.from_doc({"loadgen": {}})

    def test_legacy_doc_reconstructs_the_target_shape(self):
        legacy = self._result().legacy_doc()
        # The subsystem shape: its own schema, config and manifest inline.
        assert legacy["schema"] == 1
        assert legacy["config"] == {"n_shards": 2}
        assert legacy["manifest"] == {"extra": {"serve": {}}}
        assert legacy["loadgen"]["throughput_rps"] == 100.0


class TestRegistry:
    def test_six_targets_each_fully_specified(self):
        registry = bench_registry()
        assert sorted(registry) == [
            "cluster", "engine", "net", "orchestrate", "serve", "tenancy",
        ]
        for target, spec in registry.items():
            assert spec.target == target
            assert spec.default_output == f"BENCH_{target}.json"
            assert callable(spec.runner) and callable(spec.formatter)
            assert callable(spec.lift)

    def test_unknown_target_lists_the_menu(self):
        with pytest.raises(KeyError, match="unknown bench target.*available"):
            run_bench("warp-drive", output=None)


class TestRunBench:
    @pytest.fixture(scope="class")
    def tenancy_result(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("bench") / "BENCH_tenancy.json"
        return run_bench(
            "tenancy",
            output=str(out),
            n_requests=9_000,
            window=200,
            cooldown=1_500,
            min_samples=50,
            eval_every=200,
        )

    def test_envelope_written_and_typed(self, tenancy_result):
        assert tenancy_result.schema == BENCH_RESULT_SCHEMA
        assert tenancy_result.target == "tenancy"
        on_disk = json.loads(open(tenancy_result.path).read())
        assert on_disk == tenancy_result.as_doc()
        assert on_disk["results"]["comparison"]["accounting_errors"] == 0
        # The inner doc carries neither schema nor config nor manifest —
        # those are envelope blocks now.
        for hoisted in ("schema", "config", "manifest"):
            assert hoisted not in on_disk["results"]

    def test_manifest_travels_unchanged_for_reproduction(self, tenancy_result):
        doc = tenancy_result.as_doc()
        cfg = config_from_doc(doc)
        assert cfg["tenants"] == doc["config"]["tenants"]
        assert cfg["n_requests"] == 9_000

    def test_seed_none_keeps_the_targets_default(self, tenancy_result):
        # seed was not passed, so the runner used its own default (0).
        assert tenancy_result.config["seed"] == 0

    def test_engine_lift_synthesises_config_and_manifest(self):
        result = run_bench(
            "engine",
            output=None,
            quick=True,
            policies=["LRU"],
            n_requests=3_000,
            repeats=1,
        )
        assert result.target_schema is not None
        assert result.config["policies"] == ["LRU"]
        assert result.manifest["extra"]["engine"] == result.config
        cfg = config_from_doc(result.as_doc())
        assert cfg["policies"] == ["LRU"] and "capacity_bytes" not in cfg


class TestLegacyArgvShims:
    def test_legacy_commands_warn_and_forward(self):
        for legacy, target in (
            ("serve-bench", "serve"),
            ("orchestrate-bench", "orchestrate"),
            ("cluster-bench", "cluster"),
            ("net-bench", "net"),
        ):
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                argv = _rewrite_legacy_bench_argv([legacy, "--quick"])
            assert argv == ["bench", target, "--quick"]
            assert any(w.category is DeprecationWarning for w in caught)

    def test_bare_bench_defaults_to_engine_with_a_warning(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            argv = _rewrite_legacy_bench_argv(["bench", "-n", "1000"])
        assert argv == ["bench", "engine", "-n", "1000"]
        assert any(w.category is DeprecationWarning for w in caught)

    def test_new_spelling_passes_through_untouched(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            argv = _rewrite_legacy_bench_argv(["bench", "tenancy", "--quick"])
        assert argv == ["bench", "tenancy", "--quick"]
        assert not caught

    def test_unrelated_commands_untouched(self):
        assert _rewrite_legacy_bench_argv(["simulate", "--policy", "LRU"]) == [
            "simulate", "--policy", "LRU",
        ]

    def test_cli_end_to_end_writes_the_envelope(self, tmp_path, capsys):
        out = tmp_path / "BENCH_engine.json"
        rc = main([
            "bench", "engine", "--quick", "--policies", "LRU",
            "-n", "2000", "--repeats", "1", "-o", str(out),
        ])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert doc["schema"] == BENCH_RESULT_SCHEMA
        assert doc["target"] == "engine"
        assert "LRU" in doc["results"]["results"]
        assert f"wrote {out}" in capsys.readouterr().out
