"""Bench guards for the span-tracing cost model on the serve path.

Two invariants pinned here:

* the *disabled* path (no tracer attached — one ``is None`` branch per
  hook point) must hold the committed quick-mode throughput floor, and
* an *enabled* tracer, whose aggregation intentionally sees every trace,
  must stay within a bounded multiple of the disabled throughput.

Both are wall-clock throughput measurements, so they are ``slow``-marked
and use best-of-N to ride out runner contention (which only ever slows a
run down, never speeds it up).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.serve.loadgen import run_serve_bench

REPO_ROOT = Path(__file__).resolve().parents[2]
QUICK_BASELINE = REPO_ROOT / "BENCH_serve.quick.json"


def _best_rps(repeats: int, **kwargs) -> float:
    best = 0.0
    for _ in range(repeats):
        doc = run_serve_bench(output=None, quick=True, **kwargs)
        best = max(best, doc["loadgen"]["throughput_rps"])
    return best


@pytest.mark.slow
class TestServeTracingOverhead:
    def test_disabled_path_holds_committed_throughput_floor(self):
        # The <2% criterion vs the pre-PR baseline was validated when the
        # tracing hooks landed (+0.3% on the full bench); this standing
        # guard uses a 12% floor so runner noise cannot flake it while a
        # real hot-path regression (an always-on span, a per-request
        # allocation) still trips it.
        # The committed baseline is a unified envelope (repro bench serve):
        # the serve doc sits under "results", the knobs under "config".
        committed = json.loads(QUICK_BASELINE.read_text())
        baseline_rps = committed["results"]["loadgen"]["throughput_rps"]
        floor = baseline_rps * 0.88
        # Measure under the baseline's own shard count — the committed doc
        # is the CI gate's 2-shard configuration, not the 4-shard default.
        best = _best_rps(3, trace_sample=0.0, n_shards=committed["config"]["n_shards"])
        assert best >= floor, (
            f"tracing-disabled serve throughput {best:,.0f} rps fell below "
            f"{floor:,.0f} (committed {baseline_rps:,.0f} "
            f"- 12%); the disabled path is no longer one branch per hook"
        )

    def test_enabled_tracer_within_bounded_multiple(self, tmp_path):
        # Aggregation sees every trace, so an enabled tracer has real
        # per-request cost; the docs promise "roughly halves throughput".
        # Guard against it degrading to an order-of-magnitude cliff.
        # Single-core runners measure ~5x (no core for the sink to hide
        # on), so the bound sits above that, not at it.
        disabled = _best_rps(2, trace_sample=0.0)
        traced = _best_rps(
            2,
            trace_sample=1.0,
            span_out=str(tmp_path / "spans.jsonl.gz"),
        )
        assert traced >= disabled / 6.5, (
            f"full-sampling tracing costs {disabled / traced:.1f}x "
            f"({disabled:,.0f} -> {traced:,.0f} rps); expected <= 6.5x"
        )
