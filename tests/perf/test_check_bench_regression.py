"""The CI regression gate tool: dotted paths, repeatable metrics."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_bench_regression",
    Path(__file__).resolve().parents[2] / "tools" / "check_bench_regression.py",
)
tool = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(tool)


@pytest.fixture
def docs(tmp_path):
    def write(name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return str(path)

    return write


class TestResolve:
    def test_dotted_path_with_list_index(self):
        doc = {"results": [{"tps": 12.5}]}
        assert tool.resolve(doc, "results.0.tps") == 12.5

    def test_missing_key_names_alternatives(self):
        with pytest.raises(KeyError, match="no key 'nope'"):
            tool.resolve({"a": 1}, "nope")

    def test_non_numeric_leaf_rejected(self):
        with pytest.raises(TypeError, match="not a number"):
            tool.resolve({"a": "fast"}, "a")


class TestMain:
    def test_single_metric_pass_and_fail(self, docs):
        base = docs("base.json", {"headline": {"tps": 100.0}})
        ok = docs("ok.json", {"headline": {"tps": 95.0}})
        bad = docs("bad.json", {"headline": {"tps": 50.0}})
        common = ["--metric", "headline.tps", "--max-drop", "0.15"]
        assert tool.main(["--baseline", base, "--candidate", ok] + common) == 0
        assert tool.main(["--baseline", base, "--candidate", bad] + common) == 1

    def test_repeatable_metrics_worst_verdict_wins(self, docs):
        base = docs("base.json", {"a": 100.0, "b": 100.0})
        cand = docs("cand.json", {"a": 99.0, "b": 10.0})
        argv = [
            "--baseline", base, "--candidate", cand,
            "--metric", "a", "--metric", "b", "--max-drop", "0.15",
        ]
        assert tool.main(argv) == 1
        good = docs("good.json", {"a": 99.0, "b": 101.0})
        argv = [
            "--baseline", base, "--candidate", good,
            "--metric", "a", "--metric", "b", "--max-drop", "0.15",
        ]
        assert tool.main(argv) == 0

    def test_lower_is_better(self, docs):
        base = docs("base.json", {"lat": 10.0})
        worse = docs("worse.json", {"lat": 20.0})
        argv = [
            "--baseline", base, "--candidate", worse,
            "--metric", "lat", "--max-drop", "0.15", "--lower-is-better",
        ]
        assert tool.main(argv) == 1

    def test_unknown_metric_is_config_error(self, docs):
        base = docs("base.json", {"a": 1.0})
        cand = docs("cand.json", {"a": 1.0})
        argv = ["--baseline", base, "--candidate", cand, "--metric", "zz"]
        assert tool.main(argv) == 2


class TestSchemaAssertion:
    def test_matching_schema_compares(self, docs):
        base = docs("base.json", {"schema": 1, "results": {"tps": 100.0}})
        cand = docs("cand.json", {"schema": 1, "results": {"tps": 99.0}})
        argv = [
            "--baseline", base, "--candidate", cand,
            "--schema", "1", "--metric", "results.tps",
        ]
        assert tool.main(argv) == 0

    def test_mismatch_fails_loudly_before_metrics(self, docs, capsys):
        # A legacy-layout candidate must not be silently compared: even
        # though the metric path would resolve in both docs, the schema
        # gate rejects the pair with a config error.
        base = docs("base.json", {"schema": 1, "results": {"tps": 100.0}})
        cand = docs("cand.json", {"schema": 2, "results": {"tps": 100.0}})
        argv = [
            "--baseline", base, "--candidate", cand,
            "--schema", "1", "--metric", "results.tps",
        ]
        assert tool.main(argv) == 2
        out = capsys.readouterr().out
        assert "schema mismatch" in out and "candidate" in out

    def test_missing_schema_key_is_mismatch(self, docs):
        base = docs("base.json", {"results": {"tps": 100.0}})
        cand = docs("cand.json", {"schema": 1, "results": {"tps": 100.0}})
        argv = [
            "--baseline", base, "--candidate", cand,
            "--schema", "1", "--metric", "results.tps",
        ]
        assert tool.main(argv) == 2

    def test_no_schema_flag_skips_the_gate(self, docs):
        base = docs("base.json", {"schema": 1, "results": {"tps": 100.0}})
        cand = docs("cand.json", {"schema": 2, "results": {"tps": 100.0}})
        argv = ["--baseline", base, "--candidate", cand, "--metric", "results.tps"]
        assert tool.main(argv) == 0
