"""Resource meters for the Figure 9/11 comparisons."""

from __future__ import annotations

from repro.cache.lru import LRUCache
from repro.core.scip import SCIPCache
from repro.perf.meters import profile_many, profile_policy


class TestProfile:
    def test_fields_populated(self, zipf_trace):
        p = profile_policy(lambda cap: LRUCache(cap), zipf_trace, 20_000)
        assert p.tps > 0
        assert p.cpu_us_per_request >= 0
        assert 0 <= p.cpu_percent <= 100
        assert p.metadata_bytes > 0
        assert p.peak_alloc_bytes > 0

    def test_scip_memory_above_lru(self, zipf_trace):
        """SCIP carries ghost metadata LRU doesn't (Fig 9's memory gap)."""
        profiles = profile_many(
            {"LRU": lambda c: LRUCache(c), "SCIP": lambda c: SCIPCache(c)},
            zipf_trace,
            20_000,
        )
        assert profiles["SCIP"].metadata_bytes >= profiles["LRU"].metadata_bytes

    def test_as_dict(self, zipf_trace):
        p = profile_policy(lambda cap: LRUCache(cap), zipf_trace, 10_000)
        d = p.as_dict()
        assert {"policy", "tps", "cpu_percent", "metadata_bytes"} <= set(d)

    def test_memory_measurement_optional(self, tiny_trace):
        p = profile_policy(
            lambda cap: LRUCache(cap), tiny_trace, 1_000, measure_memory=False
        )
        assert p.peak_alloc_bytes == 0
