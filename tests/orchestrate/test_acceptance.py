"""Orchestration acceptance: bounded regret on every drift family.

The ISSUE's acceptance band, checked at seed 0 on all four bundled drift
traces: the orchestrated cache's object miss ratio lands within 5 %
relative of the best fixed candidate, strictly beats the worst, and at
least one promotion actually fires (the run starts on deployed LRU).
Everything is deterministic per seed, so these reproduce the margins
reported in BENCH_orchestrate.json exactly.

Also pins the reproducibility contract (the bench doc embeds its full
configuration in the obs manifest; `config_from_doc` rebuilds the bench
keywords from the artifact alone) and the JSON round-trip.
"""

from __future__ import annotations

import json

import pytest

from repro.orchestrate.bench import (
    DEFAULT_CANDIDATES,
    ORCHESTRATE_BENCH_SCHEMA,
    config_from_doc,
    format_orchestrate_doc,
    run_orchestrate_bench,
)
from repro.traces.drift import drift_trace_names

# The full sweep runs at the bench's validated scale (~10 s per trace) and
# is marked slow; the in-tier check uses the fastest family at a length
# where the band holds with margin.
N = 100_000


@pytest.fixture(scope="module")
def churn_doc():
    return run_orchestrate_bench(trace="churn", n_requests=60_000, seed=0, output=None)


class TestAcceptanceBand:
    @pytest.mark.slow
    @pytest.mark.parametrize("trace", drift_trace_names())
    def test_within_band_on_every_drift_family(self, trace):
        doc = run_orchestrate_bench(trace=trace, n_requests=N, seed=0, output=None)
        cmp_ = doc["comparison"]
        assert cmp_["n_switches"] >= 1, cmp_
        assert cmp_["rel_to_best"] < 1.05, (trace, cmp_)
        assert cmp_["beats_worst"], (trace, cmp_)

    def test_churn_band_and_structure(self, churn_doc):
        """The single fast in-tier check: one drift family end to end."""
        doc = churn_doc
        cmp_ = doc["comparison"]
        assert cmp_["n_switches"] >= 1
        assert cmp_["rel_to_best"] < 1.05, cmp_
        assert cmp_["beats_worst"]
        # The run starts on the first candidate (deployed LRU) and every
        # switch chain link is consistent.
        switches = doc["orchestrated"]["switches"]
        assert switches[0]["from"] == "LRU"
        for a, b in zip(switches, switches[1:]):
            assert a["to"] == b["from"]
        assert doc["orchestrated"]["live"]["final_policy"] == switches[-1]["to"]
        # Regret is a bounded fraction of total traffic, not linear blowup.
        assert doc["orchestrated"]["regret_excess_misses"] < 0.15 * len(
            doc["fixed"]
        ) * doc["config"]["n_requests"]

    def test_deterministic_per_seed(self):
        a = run_orchestrate_bench(trace="churn", n_requests=20_000, seed=5, output=None)
        b = run_orchestrate_bench(trace="churn", n_requests=20_000, seed=5, output=None)
        assert a["comparison"] == b["comparison"]
        assert a["orchestrated"]["switches"] == b["orchestrated"]["switches"]


class TestBenchDoc:
    def test_schema_and_layout(self, churn_doc):
        doc = churn_doc
        assert doc["schema"] == ORCHESTRATE_BENCH_SCHEMA
        assert set(doc["fixed"]) == set(DEFAULT_CANDIDATES)
        for row in doc["fixed"].values():
            assert {"miss_ratio", "byte_miss_ratio", "evictions"} <= set(row)
        reg = doc["registry"]
        assert reg["shadow_requests"][""]["value"] > 0
        assert reg["orchestrate_switches"][""]["value"] == len(
            doc["orchestrated"]["switches"]
        )

    def test_manifest_reproduces_config(self, churn_doc):
        """Satellite (c): the artifact alone rebuilds the bench invocation."""
        cfg = config_from_doc(churn_doc)
        orch = churn_doc["manifest"]["extra"]["orchestrate"]
        assert cfg["trace"] == "churn"
        assert cfg["seed"] == 0
        assert cfg["candidates"] == list(DEFAULT_CANDIDATES)
        assert cfg["fraction"] == orch["cache_fraction"]
        assert "capacity_bytes" not in cfg  # derived, not an input
        # And the rebuilt invocation is actually runnable + reproduces the
        # headline number (short trace to keep the round-trip cheap).
        small = run_orchestrate_bench(
            trace="churn", n_requests=15_000, seed=2, output=None
        )
        again = run_orchestrate_bench(**config_from_doc(small), output=None)
        assert again["comparison"] == small["comparison"]

    def test_manifest_seed_and_candidates_embedded(self, churn_doc):
        orch = churn_doc["manifest"]["extra"]["orchestrate"]
        assert orch["seed"] == 0
        assert orch["candidates"] == list(DEFAULT_CANDIDATES)
        assert orch["sample_rate"] == 0.2
        # The manifest also carries the usual reproducibility block; its
        # trace length is the *realised* request count (generators truncate
        # bursts), which the live run replayed in full.
        assert churn_doc["manifest"]["trace"]["requests"] == churn_doc[
            "orchestrated"
        ]["live"]["requests"]

    def test_json_round_trip(self, tmp_path, churn_doc):
        from repro.orchestrate.bench import write_orchestrate_doc

        path = tmp_path / "BENCH_orchestrate.json"
        write_orchestrate_doc(churn_doc, str(path))
        loaded = json.loads(path.read_text())
        assert loaded["comparison"] == churn_doc["comparison"]
        assert loaded["schema"] == ORCHESTRATE_BENCH_SCHEMA

    def test_format_is_readable(self, churn_doc):
        text = format_orchestrate_doc(churn_doc)
        assert "orchestrate bench" in text
        assert "<- best" in text and "<- worst" in text
        assert "switch(es)" in text


class TestQuickMode:
    def test_quick_is_fast_and_still_switches(self):
        doc = run_orchestrate_bench(quick=True, output=None)
        assert doc["config"]["n_requests"] <= 40_000
        assert list(doc["fixed"]) == ["LRU", "GDSF"]
        cmp_ = doc["comparison"]
        assert cmp_["n_switches"] >= 1
        assert cmp_["beats_worst"]

    def test_quick_respects_explicit_candidates(self):
        doc = run_orchestrate_bench(
            quick=True, candidates=("LRU", "SCIP"), trace="churn", output=None
        )
        assert list(doc["fixed"]) == ["LRU", "SCIP"]
