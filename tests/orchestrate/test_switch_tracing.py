"""Orchestrator promotions as traces: each live swap gets a
``policy_switch`` root span wrapping the swap callback."""

from __future__ import annotations

from repro.cache.lru import LRUCache
from repro.cache.sieve import SieveCache
from repro.obs.sinks import RingBufferSink
from repro.obs.span import TraceConfig, Tracer
from repro.orchestrate.controller import ControllerConfig, Orchestrator
from repro.sim.request import Request


class TestSwitchTracing:
    def test_promotion_emits_policy_switch_trace(self):
        sink = RingBufferSink()
        tracer = Tracer(sinks=[sink], config=TraceConfig(sample=1.0))
        swaps = []
        orch = Orchestrator(
            {"LRU": LRUCache, "SIEVE": SieveCache},
            capacity=2_000,
            swap=lambda name, factory: swaps.append(name),
            rate=1.0,
            config=ControllerConfig(
                hysteresis=0.01, min_gap=0.0, cooldown=10,
                min_samples=10, eval_every=50,
            ),
            tracer=tracer,
        )
        # Rig the rack's scores so the challenger wins deterministically —
        # the controller, swap plumbing, and tracing are under test here,
        # not shadow-cache dynamics.
        orch.rack.scores = lambda objective: {
            "LRU": 0.9 if orch.current == "LRU" else 0.1,
            "SIEVE": 0.1 if orch.current == "LRU" else 0.9,
        }
        for t in range(200):
            orch.record(Request(t, t % 30, 100), hit=False)
        tracer.close()
        assert swaps, "controller never promoted despite rigged scores"
        records = [r for r in sink.as_list() if r["name"] == "policy_switch"]
        assert len(records) == len(swaps) == len(orch.switches)
        for rec, event in zip(records, orch.switches):
            assert rec["parent"] is None
            assert rec["status"] == "ok"
            assert rec["tags"]["frm"] == event.frm
            assert rec["tags"]["to"] == event.to
            assert rec["tags"]["at"] == event.at
        assert tracer.unclosed_spans == 0

    def test_observer_mode_creates_no_traces(self):
        tracer = Tracer()
        orch = Orchestrator(
            {"LRU": LRUCache, "SIEVE": SieveCache},
            capacity=2_000,
            swap=None,  # observer: no live swap, no swap trace
            rate=1.0,
            config=ControllerConfig(
                hysteresis=0.01, min_gap=0.0, cooldown=10,
                min_samples=10, eval_every=50,
            ),
            tracer=tracer,
        )
        for t in range(2_000):
            orch.record(Request(t, t % 30, 100), hit=False)
        assert tracer.traces_started == 0
