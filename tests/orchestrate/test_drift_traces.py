"""Drift trace generators: determinism, structure, and nonstationarity.

Phase boundaries come from ``trace.phase_bounds`` (recorded by the drift
builders) — the generators emit slightly fewer requests than the nominal
per-phase budget, so index arithmetic over ``len(trace) // n_phases``
would straddle phases and see phantom namespace overlap.
"""

from __future__ import annotations

import pytest

from repro.traces.drift import (
    DRIFT_TRACES,
    diurnal,
    drift_trace_names,
    flash_crowd,
    make_drift_trace,
    popularity_churn,
    size_mix_shift,
)


def _phase_keys(trace):
    reqs = trace.requests
    return [
        (name, {r.key for r in reqs[start:end]})
        for start, end, name in trace.phase_bounds
    ]


class TestRegistry:
    def test_names_and_builder(self):
        assert drift_trace_names() == sorted(DRIFT_TRACES)
        tr = make_drift_trace("churn", n_requests=4_000, seed=0)
        # Generators truncate bursts/sweeps, so the length is approximate.
        assert 0.6 * 4_000 <= len(tr) <= 4_000
        with pytest.raises(KeyError):
            make_drift_trace("nope")

    @pytest.mark.parametrize("name", sorted(DRIFT_TRACES))
    def test_deterministic_per_seed(self, name):
        a = make_drift_trace(name, n_requests=5_000, seed=3)
        b = make_drift_trace(name, n_requests=5_000, seed=3)
        c = make_drift_trace(name, n_requests=5_000, seed=4)
        keys = [r.key for r in a]
        assert keys == [r.key for r in b]
        assert keys != [r.key for r in c]
        assert [r.size for r in a] == [r.size for r in b]

    @pytest.mark.parametrize("name", sorted(DRIFT_TRACES))
    def test_dense_clock_and_phase_bounds(self, name):
        tr = make_drift_trace(name, n_requests=3_000)
        times = [r.time for r in tr]
        assert times == sorted(times)
        assert times[0] == 0 and times[-1] == len(tr) - 1
        # Bounds tile the trace exactly: contiguous, covering, in order.
        bounds = tr.phase_bounds
        assert bounds[0][0] == 0 and bounds[-1][1] == len(tr)
        assert all(b[1] == nxt[0] for b, nxt in zip(bounds, bounds[1:]))
        assert len(bounds) >= 2


class TestChurn:
    def test_phases_use_disjoint_namespaces(self):
        tr = popularity_churn(n_requests=8_000, n_phases=4)
        phases = _phase_keys(tr)
        assert len(phases) == 4
        for i in range(4):
            for j in range(i + 1, 4):
                assert not (phases[i][1] & phases[j][1]), (i, j)

    def test_phase_guard(self):
        with pytest.raises(ValueError):
            popularity_churn(n_phases=1)


class TestSizeShift:
    def test_alternating_size_regimes(self):
        tr = size_mix_shift(n_requests=12_000, n_phases=4)
        reqs = tr.requests
        means = [
            sum(r.size for r in reqs[start:end]) / (end - start)
            for start, end, _ in tr.phase_bounds
        ]
        # Small phases (0, 2) vs large phases (1, 3): a decisive size flip.
        assert means[1] > 4 * means[0]
        assert means[3] > 4 * means[2]

    def test_small_phases_share_their_catalog(self):
        tr = size_mix_shift(n_requests=12_000, n_phases=4)
        phases = _phase_keys(tr)
        assert phases[0][1] & phases[2][1], "small-phase catalog must persist"
        assert not (phases[0][1] & phases[1][1]), "size regimes are disjoint"


class TestFlashCrowd:
    def test_storms_are_ephemeral_namespaces(self):
        tr = flash_crowd(n_requests=10_000, n_storms=2)
        phases = _phase_keys(tr)
        assert len(phases) == 5
        calm = [keys for name, keys in phases if "calm" in name]
        # Calm segments share the catalog namespace…
        assert calm[0] & calm[1] and calm[1] & calm[2]
        # …storm namespaces never recur anywhere else.
        for i, (name, keys) in enumerate(phases):
            if "storm" not in name:
                continue
            for j, (_, other) in enumerate(phases):
                if i != j:
                    assert not (keys & other), (i, j)

    def test_storm_guard(self):
        with pytest.raises(ValueError):
            flash_crowd(n_storms=0)


class TestDiurnal:
    def test_day_content_recurs_next_day(self):
        tr = diurnal(n_requests=12_000, cycles=2)
        phases = dict(_phase_keys(tr))
        day0, night0, day1 = (
            phases["diurnal-day-0"],
            phases["diurnal-night-0"],
            phases["diurnal-day-1"],
        )
        assert day0 & day1, "the day catalog must persist across cycles"
        assert not (day0 & night0), "day and night live in disjoint namespaces"

    def test_cycle_guard(self):
        with pytest.raises(ValueError):
            diurnal(cycles=0)
