"""Spatial sampler unit tests + the SHARDS fidelity validation.

The load-bearing test here is `TestShadowFidelity`: a sampled LRU shadow
at `R·C` must reproduce the full-trace LRU miss ratio at `C` — checked
against `traces.mrc.miss_ratio_curve` (Mattson ground truth), not against
another replay, so a bug in the sampler and a bug in the engine can't
cancel out.
"""

from __future__ import annotations

import pytest

from repro.cache.lru import LRUCache
from repro.orchestrate.sampler import SpatialSampler
from repro.sim.request import Request
from repro.traces.cdn import make_workload
from repro.traces.mrc import miss_ratio_curve


class TestSpatialSampler:
    def test_rate_bounds(self):
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                SpatialSampler(bad)
        SpatialSampler(1.0)  # inclusive upper bound

    def test_rate_one_keeps_everything(self):
        s = SpatialSampler(1.0)
        assert all(s.sampled(k) for k in range(5_000))

    def test_deterministic_per_seed(self):
        a = SpatialSampler(0.3, seed=7)
        b = SpatialSampler(0.3, seed=7)
        c = SpatialSampler(0.3, seed=8)
        flags_a = [a.sampled(k) for k in range(5_000)]
        assert flags_a == [b.sampled(k) for k in range(5_000)]
        assert flags_a != [c.sampled(k) for k in range(5_000)]

    def test_empirical_rate_close_to_nominal(self):
        # Consecutive integer keys are the adversarial case for a weak
        # hash; splitmix64 must still land within ~2 points of nominal.
        for rate in (0.05, 0.1, 0.25, 0.5):
            s = SpatialSampler(rate, seed=1)
            kept = sum(s.sampled(k) for k in range(50_000)) / 50_000
            assert abs(kept - rate) < 0.02, (rate, kept)

    def test_object_level_not_request_level(self):
        # The same key always gets the same verdict — the SHARDS property.
        s = SpatialSampler(0.2, seed=3)
        for k in (0, 17, 123_456):
            assert len({s.sampled(k) for _ in range(10)}) == 1

    def test_non_int_keys_are_stable(self):
        s = SpatialSampler(0.5, seed=0)
        t = SpatialSampler(0.5, seed=0)
        urls = [f"/asset/{i}.js" for i in range(2_000)]
        assert [s.sampled(u) for u in urls] == [t.sampled(u) for u in urls]
        kept = sum(s.sampled(u) for u in urls) / len(urls)
        assert abs(kept - 0.5) < 0.05

    def test_scaled_capacity(self):
        s = SpatialSampler(0.1)
        assert s.scaled_capacity(1_000) == 100
        assert s.scaled_capacity(5) == 1  # floor at one byte
        with pytest.raises(ValueError):
            s.scaled_capacity(0)


class TestShadowFidelity:
    """Satellite (a): sampled-shadow miss ratio vs Mattson ground truth."""

    @pytest.mark.parametrize("rate,tol", [(0.1, 0.10), (0.2, 0.03)])
    def test_sampled_lru_tracks_mrc(self, cdn_t_small, rate, tol):
        trace = cdn_t_small
        capacity = max(int(trace.working_set_size * 0.05), 1)
        truth = miss_ratio_curve(trace, [capacity])[capacity]

        sampler = SpatialSampler(rate, seed=0)
        shadow = LRUCache(sampler.scaled_capacity(capacity))
        n = hits = 0
        for req in trace:
            if not sampler.sampled(req.key):
                continue
            n += 1
            if shadow.request(req):
                hits += 1
        shadow_mr = 1.0 - hits / n

        # The shadow replays ~rate of the stream.  Wide tolerance: objects
        # are sampled uniformly but requests are Zipf-weighted, so whether
        # individual hot objects land in the sample dominates the count.
        assert n == pytest.approx(len(trace) * rate, rel=0.35)
        # …and its miss ratio approximates the full-scale ground truth,
        # with error shrinking as R grows (the measured basis for the
        # bench's R=0.2 default: ~0.08 at R=0.1 vs ~0.005 at R=0.2 here).
        assert shadow_mr == pytest.approx(truth, abs=tol), (shadow_mr, truth)

    def test_fidelity_improves_with_rate(self):
        """Average |shadow − truth| over seeds shrinks as R grows — the
        justification for the bench's R=0.2 default."""
        trace = make_workload("CDN-T", n_requests=30_000)
        capacity = max(int(trace.working_set_size * 0.05), 1)
        truth = miss_ratio_curve(trace, [capacity])[capacity]

        def mean_err(rate):
            errs = []
            for seed in range(3):
                sampler = SpatialSampler(rate, seed=seed)
                shadow = LRUCache(sampler.scaled_capacity(capacity))
                n = hits = 0
                for req in trace:
                    if sampler.sampled(req.key):
                        n += 1
                        hits += shadow.request(req)
                errs.append(abs(1.0 - hits / n - truth))
            return sum(errs) / len(errs)

        assert mean_err(0.4) <= mean_err(0.05) + 0.005
