"""Shadow rack scoring and the switching controller's gate logic."""

from __future__ import annotations

import pytest

from repro.cache.lru import LRUCache
from repro.cache.sieve import SieveCache
from repro.obs.metrics import MetricsRegistry
from repro.obs.probe import Probe
from repro.orchestrate.controller import (
    ControllerConfig,
    Orchestrator,
    SwitchController,
    resolve_candidates,
)
from repro.orchestrate.shadow import DecayedRatio, ShadowRack
from repro.sim.request import Request


class _ListSink:
    def __init__(self):
        self.records = []

    def write(self, rec):
        self.records.append(rec)


class TestDecayedRatio:
    def test_empty_is_pessimal(self):
        assert DecayedRatio(100).value == 1.0

    def test_degrades_to_cumulative_early(self):
        r = DecayedRatio(1_000)
        for ind in (1, 0, 1, 0):
            r.update(ind)
        assert r.value == pytest.approx(0.5, abs=0.01)

    def test_forgets_old_phase(self):
        r = DecayedRatio(50)
        for _ in range(500):
            r.update(1.0)  # terrible phase
        for _ in range(200):
            r.update(0.0)  # now perfect
        assert r.value < 0.05  # four windows later, the past is gone

    def test_window_guard(self):
        with pytest.raises(ValueError):
            DecayedRatio(0)


class TestShadowRack:
    def _reqs(self, n, n_keys=50, size=100):
        return [Request(t, t % n_keys, size) for t in range(n)]

    def test_all_shadows_see_same_substream(self):
        rack = ShadowRack(
            {"LRU": LRUCache, "SIEVE": SieveCache}, 100_000, rate=0.5, seed=1
        )
        for req in self._reqs(4_000):
            rack.observe(req)
        cum = rack.cumulative()
        assert cum["LRU"]["requests"] == cum["SIEVE"]["requests"] == rack.sampled_requests
        assert 0 < rack.sampled_requests < 4_000

    def test_shadow_capacity_is_scaled(self):
        rack = ShadowRack({"LRU": LRUCache}, 100_000, rate=0.1)
        assert rack.shadow_capacity == 10_000
        assert rack.shadows["LRU"].policy.capacity == 10_000

    def test_scores_and_best(self):
        # A loop over n_keys objects whose footprint fits the shadow: any
        # policy converges to ~0 windowed miss ratio; scores stay in [0, 1].
        rack = ShadowRack({"LRU": LRUCache, "SIEVE": SieveCache}, 100_000, rate=1.0)
        for req in self._reqs(5_000):
            rack.observe(req)
        scores = rack.scores()
        assert set(scores) == {"LRU", "SIEVE"}
        assert all(0.0 <= v <= 1.0 for v in scores.values())
        assert rack.best() == min(scores, key=scores.get)

    def test_registry_and_probe_wiring(self):
        sink = _ListSink()
        registry = MetricsRegistry()
        rack = ShadowRack(
            {"LRU": LRUCache}, 100_000, rate=1.0,
            registry=registry, probe=Probe(sinks=[sink]),
        )
        for req in self._reqs(200, n_keys=10):
            rack.observe(req)
        snap = registry.snapshot()
        assert snap["shadow_requests"][""]["value"] == 200
        hits = snap["shadow_hits"]["policy=LRU"]["value"]
        assert hits == 190  # 10 compulsory misses
        assert sum(1 for r in sink.records if r["event"] == "shadow_hit") == hits

    def test_empty_rack_rejected(self):
        with pytest.raises(ValueError):
            ShadowRack({}, 1_000)


class TestSwitchController:
    CFG = ControllerConfig(
        hysteresis=0.10, min_gap=0.01, cooldown=1_000, min_samples=100
    )

    def test_holds_without_evidence(self):
        c = SwitchController(self.CFG)
        assert c.consider(500, "A", {"A": 0.9, "B": 0.1}, sampled=50) is None

    def test_switches_on_decisive_gap(self):
        c = SwitchController(self.CFG)
        assert c.consider(500, "A", {"A": 0.5, "B": 0.3}, sampled=500) == "B"
        assert c.last_switch_at == 500

    def test_hysteresis_blocks_marginal_challenger(self):
        c = SwitchController(self.CFG)
        # 4% relative improvement < 10% hysteresis.
        assert c.consider(500, "A", {"A": 0.50, "B": 0.48}, sampled=500) is None

    def test_min_gap_blocks_noise_in_low_miss_regime(self):
        c = SwitchController(self.CFG)
        # 20% relative gap but only 0.004 absolute — sampling noise.
        assert c.consider(500, "A", {"A": 0.020, "B": 0.016}, sampled=500) is None

    def test_cooldown_blocks_consecutive_switches(self):
        c = SwitchController(self.CFG)
        assert c.consider(500, "A", {"A": 0.5, "B": 0.3}, sampled=500) == "B"
        # A new, even better challenger appears — but within cooldown.
        scores = {"A": 0.5, "B": 0.3, "C": 0.1}
        assert c.consider(900, "B", scores, sampled=500) is None
        assert c.consider(1_600, "B", scores, sampled=500) == "C"

    def test_incumbent_best_holds(self):
        c = SwitchController(self.CFG)
        assert c.consider(500, "A", {"A": 0.1, "B": 0.5}, sampled=500) is None

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ControllerConfig(hysteresis=1.5)
        with pytest.raises(ValueError):
            ControllerConfig(eval_every=0)
        with pytest.raises(ValueError):
            ControllerConfig(objective="latency")


class TestOrchestrator:
    def _drive(self, orch, n, n_keys, size=100, hit=True):
        for t in range(n):
            orch.record(Request(t, t % n_keys, size), hit)

    def test_swap_callback_fires_with_promoted_factory(self):
        calls = []
        cfg = ControllerConfig(
            hysteresis=0.05, min_gap=0.0, cooldown=100, min_samples=50, eval_every=100
        )
        # Tiny live cache: LRU thrashes on a cyclic scan over > capacity
        # keys while SIEVE retains; the rack sees the gap and promotes.
        orch = Orchestrator(
            {"LRU": LRUCache, "SIEVE": SieveCache},
            capacity=2_000,
            swap=lambda name, factory: calls.append(name),
            rate=1.0,
            config=cfg,
        )
        for t in range(4_000):
            orch.record(Request(t, t % 30, 100), hit=False)
        if calls:  # promotion happened: state must be consistent
            assert orch.current == calls[-1]
            assert orch.switches[-1].to == calls[-1]

    def test_observer_mode_accumulates_without_swapping(self):
        cfg = ControllerConfig(min_samples=10, eval_every=50, cooldown=100)
        orch = Orchestrator(
            {"LRU": LRUCache, "SIEVE": SieveCache}, 10_000, swap=None,
            rate=1.0, config=cfg,
        )
        self._drive(orch, 1_000, n_keys=20, hit=False)
        assert orch.controller.evaluations == 20
        summary = orch.summary()
        assert summary["requests"] == 1_000
        assert summary["shadow"]["sampled_requests"] == 1_000

    def test_regret_zero_when_live_matches_best(self):
        cfg = ControllerConfig(min_samples=1, eval_every=100)
        orch = Orchestrator({"LRU": LRUCache}, 10_000, rate=1.0, config=cfg)
        # Live always hits: live windowed mr 0 <= any shadow score.
        self._drive(orch, 1_000, n_keys=10, hit=True)
        assert orch.regret == 0.0

    def test_regret_grows_when_live_lags_best(self):
        cfg = ControllerConfig(min_samples=1, eval_every=100)
        orch = Orchestrator({"LRU": LRUCache}, 10_000, rate=1.0, config=cfg)
        # Live always misses while the shadow converges to ~0 miss ratio.
        self._drive(orch, 1_000, n_keys=10, hit=False)
        assert orch.regret > 500  # ~1.0 excess mr over most windows

    def test_probe_emits_policy_switch(self):
        sink = _ListSink()
        cfg = ControllerConfig(
            hysteresis=0.01, min_gap=0.0, cooldown=10, min_samples=10, eval_every=50
        )
        orch = Orchestrator(
            {"LRU": LRUCache, "SIEVE": SieveCache}, 2_000,
            rate=1.0, config=cfg, probe=Probe(sinks=[sink]),
        )
        for t in range(4_000):
            orch.record(Request(t, t % 30, 100), hit=False)
        switches = [r for r in sink.records if r["event"] == "policy_switch"]
        assert len(switches) == len(orch.switches)
        for rec, ev in zip(switches, orch.switches):
            assert (rec["at"], rec["frm"], rec["to"]) == (ev.at, ev.frm, ev.to)

    def test_unknown_current_rejected(self):
        with pytest.raises(ValueError):
            Orchestrator({"LRU": LRUCache}, 1_000, current="GDSF")

    def test_resolve_candidates(self):
        factories = resolve_candidates(["LRU", "SCIP", "GDSF"])
        assert list(factories) == ["LRU", "SCIP", "GDSF"]
        policy = factories["SCIP"](10_000)
        assert policy.capacity == 10_000
        with pytest.raises(KeyError):
            resolve_candidates(["NOPE"])
