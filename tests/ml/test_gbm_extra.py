"""Extra GBM/tree coverage: prediction routing, determinism, shapes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.gbm import GBMClassifier, GBMRegressor
from repro.ml.tree import RegressionTree


class TestTreeRouting:
    def test_single_row_predict(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]] * 5)
        y = np.array([0.0, 0.0, 10.0, 10.0] * 5)
        t = RegressionTree(max_depth=2, min_samples_leaf=2).fit(X, y)
        assert t.predict(np.array([0.5]))[0] == pytest.approx(0.0, abs=1.0)
        assert t.predict(np.array([2.5]))[0] == pytest.approx(10.0, abs=1.0)

    def test_deterministic_fit(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(100, 3))
        y = X[:, 0] + rng.normal(scale=0.05, size=100)
        a = RegressionTree(max_depth=3).fit(X, y).predict(X)
        b = RegressionTree(max_depth=3).fit(X, y).predict(X)
        assert np.array_equal(a, b)

    def test_depth_reporting(self):
        X = np.array([[0.0], [1.0]] * 20)
        y = np.array([0.0, 1.0] * 20)
        t = RegressionTree(max_depth=4, min_samples_leaf=2).fit(X, y)
        assert 1 <= t.depth() <= 4


class TestGBMExtra:
    def test_more_trees_never_hurt_train_fit(self):
        rng = np.random.default_rng(4)
        X = rng.uniform(-1, 1, size=(300, 2))
        y = np.sin(3 * X[:, 0])
        small = GBMRegressor(n_estimators=4, max_depth=3).fit(X, y)
        large = GBMRegressor(n_estimators=24, max_depth=3).fit(X, y)
        mse = lambda m: ((m.predict(X) - y) ** 2).mean()
        assert mse(large) <= mse(small) + 1e-9

    def test_regressor_single_sample_guarded(self):
        with pytest.raises(ValueError):
            GBMRegressor(n_estimators=0)

    def test_classifier_extreme_imbalance(self):
        X = np.vstack([np.zeros((99, 1)), np.ones((1, 1))])
        y = np.concatenate([np.zeros(99), np.ones(1)]).astype(int)
        clf = GBMClassifier(n_estimators=5).fit(X, y)
        p = clf.predict_proba(X)
        assert np.isfinite(p).all()

    def test_tree_count_property(self):
        X = np.random.default_rng(0).normal(size=(100, 2))
        y = X[:, 0]
        m = GBMRegressor(n_estimators=7, max_depth=2).fit(X, y)
        assert 0 < m.n_trees_ <= 7
