"""Classification-metric helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.metrics import (
    balanced_accuracy,
    classification_report,
    confusion,
    precision_recall_f1,
)


class TestConfusion:
    def test_hand_example(self):
        y = np.array([1, 1, 0, 0, 1])
        p = np.array([1, 0, 0, 1, 1])
        c = confusion(y, p)
        assert c == {"tp": 2, "fp": 1, "fn": 1, "tn": 1}

    def test_counts_sum_to_n(self):
        rng = np.random.default_rng(0)
        y, p = rng.integers(0, 2, 50), rng.integers(0, 2, 50)
        assert sum(confusion(y, p).values()) == 50


class TestPRF:
    def test_perfect(self):
        y = np.array([1, 0, 1])
        m = precision_recall_f1(y, y)
        assert m == {"precision": 1.0, "recall": 1.0, "f1": 1.0}

    def test_all_negative_predictions(self):
        y = np.array([1, 1, 0])
        p = np.zeros(3)
        m = precision_recall_f1(y, p)
        assert m["precision"] == 0.0 and m["recall"] == 0.0 and m["f1"] == 0.0

    def test_known_values(self):
        y = np.array([1, 1, 0, 0, 1])
        p = np.array([1, 0, 0, 1, 1])
        m = precision_recall_f1(y, p)
        assert m["precision"] == pytest.approx(2 / 3)
        assert m["recall"] == pytest.approx(2 / 3)


class TestBalancedAccuracy:
    def test_imbalance_robustness(self):
        """Predicting the majority class scores high raw accuracy but only
        0.5 balanced accuracy — the §2.3 imbalance trap."""
        y = np.array([0] * 95 + [1] * 5)
        p = np.zeros(100)
        assert (y == p).mean() == 0.95
        assert balanced_accuracy(y, p) == pytest.approx(0.5)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(st.booleans(), st.booleans()), min_size=2, max_size=80))
    def test_bounded(self, pairs):
        y = np.array([a for a, _ in pairs], dtype=int)
        p = np.array([b for _, b in pairs], dtype=int)
        assert 0.0 <= balanced_accuracy(y, p) <= 1.0


class TestReport:
    def test_keys(self):
        y = np.array([1, 0, 1, 0])
        r = classification_report(y, y)
        assert set(r) == {"accuracy", "balanced_accuracy", "precision", "recall", "f1"}
        assert all(v == 1.0 for v in r.values())
