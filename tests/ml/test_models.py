"""From-scratch model tests: tree, GBM, linear family, NN, MAB."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.gbm import GBMClassifier, GBMRegressor
from repro.ml.linear import LinRegClassifier, LogRegClassifier, SVMClassifier
from repro.ml.mabcls import MABClassifier
from repro.ml.nn import NNClassifier
from repro.ml.tree import RegressionTree

RNG = np.random.default_rng(0)


def linearly_separable(n=600, d=3, seed=1):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    y = (X @ np.arange(1, d + 1) > 0).astype(np.int64)
    return X, y


def step_function_data(n=500, seed=2):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(n, 1))
    y = np.where(X[:, 0] > 0.2, 3.0, -1.0)
    return X, y


class TestRegressionTree:
    def test_fits_step_function(self):
        X, y = step_function_data()
        t = RegressionTree(max_depth=2).fit(X, y)
        pred = t.predict(np.array([[-0.5], [0.8]]))
        assert pred[0] == pytest.approx(-1.0, abs=0.3)
        assert pred[1] == pytest.approx(3.0, abs=0.3)

    def test_constant_target_single_leaf(self):
        X = RNG.normal(size=(50, 2))
        y = np.full(50, 7.0)
        t = RegressionTree().fit(X, y)
        assert t.depth() == 0
        assert np.allclose(t.predict(X), 7.0)

    def test_min_samples_leaf_respected(self):
        X, y = step_function_data(n=30)
        t = RegressionTree(max_depth=8, min_samples_leaf=10).fit(X, y)
        assert t.depth() <= 2

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            RegressionTree().fit(np.empty((0, 2)), np.empty(0))
        with pytest.raises(ValueError):
            RegressionTree().fit(np.zeros((5, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            RegressionTree(max_depth=0)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            RegressionTree().predict(np.zeros((1, 2)))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 4), st.integers(20, 80))
    def test_training_reduces_sse(self, depth, n):
        """Property: a fitted tree never has higher SSE than the mean."""
        rng = np.random.default_rng(n)
        X = rng.normal(size=(n, 2))
        y = X[:, 0] * 2 + rng.normal(scale=0.1, size=n)
        t = RegressionTree(max_depth=depth, min_samples_leaf=2).fit(X, y)
        sse_tree = ((t.predict(X) - y) ** 2).sum()
        sse_mean = ((y.mean() - y) ** 2).sum()
        assert sse_tree <= sse_mean + 1e-9


class TestGBM:
    def test_regressor_beats_single_tree(self):
        rng = np.random.default_rng(3)
        X = rng.uniform(-2, 2, size=(400, 2))
        y = np.sin(X[:, 0]) + 0.5 * X[:, 1]
        tree = RegressionTree(max_depth=3).fit(X, y)
        gbm = GBMRegressor(n_estimators=30, max_depth=3).fit(X, y)
        assert ((gbm.predict(X) - y) ** 2).mean() < ((tree.predict(X) - y) ** 2).mean()

    def test_classifier_on_separable(self):
        X, y = linearly_separable()
        clf = GBMClassifier(n_estimators=20).fit(X, y)
        assert (clf.predict(X) == y).mean() > 0.9

    def test_proba_in_unit_interval(self):
        X, y = linearly_separable(n=200)
        clf = GBMClassifier(n_estimators=5).fit(X, y)
        p = clf.predict_proba(X)
        assert ((p >= 0) & (p <= 1)).all()

    def test_classifier_rejects_nonbinary(self):
        with pytest.raises(ValueError):
            GBMClassifier().fit(np.zeros((4, 1)), np.array([0, 1, 2, 1]))

    def test_early_stop_on_exhausted_residuals(self):
        X = np.arange(10, dtype=float).reshape(-1, 1)
        y = np.zeros(10)
        gbm = GBMRegressor(n_estimators=50).fit(X, y)
        assert gbm.n_trees_ == 0


class TestLinearFamily:
    @pytest.mark.parametrize("cls", [LinRegClassifier, LogRegClassifier, SVMClassifier])
    def test_separable_accuracy(self, cls):
        X, y = linearly_separable()
        clf = cls().fit(X, y)
        assert (clf.predict(X) == y).mean() > 0.9

    @pytest.mark.parametrize("cls", [LinRegClassifier, LogRegClassifier, SVMClassifier])
    def test_rejects_nonbinary(self, cls):
        with pytest.raises(ValueError):
            cls().fit(np.zeros((4, 2)), np.array([0.0, 2.0, 1.0, 1.0]))

    def test_logreg_proba(self):
        X, y = linearly_separable(n=200)
        clf = LogRegClassifier().fit(X, y)
        p = clf.predict_proba(X)
        assert ((p >= 0) & (p <= 1)).all()

    def test_predict_before_fit(self):
        for cls in (LinRegClassifier, LogRegClassifier, SVMClassifier):
            with pytest.raises(RuntimeError):
                cls().predict(np.zeros((1, 2)))

    def test_svm_deterministic(self):
        X, y = linearly_separable(n=300)
        a = SVMClassifier(seed=4).fit(X, y).predict(X)
        b = SVMClassifier(seed=4).fit(X, y).predict(X)
        assert (a == b).all()


class TestNN:
    def test_separable_accuracy(self):
        X, y = linearly_separable(n=400)
        clf = NNClassifier(hidden=32, epochs=40, lr=5e-3, seed=0).fit(X, y)
        assert (clf.predict(X) == y).mean() > 0.9

    def test_learns_xor(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(-1, 1, size=(800, 2))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(np.int64)
        clf = NNClassifier(hidden=32, epochs=60, lr=5e-3, seed=0).fit(X, y)
        assert (clf.predict(X) == y).mean() > 0.85, "a linear model cannot do this"

    def test_deterministic(self):
        X, y = linearly_separable(n=200)
        a = NNClassifier(hidden=16, epochs=3, seed=9).fit(X, y).predict(X)
        b = NNClassifier(hidden=16, epochs=3, seed=9).fit(X, y).predict(X)
        assert (a == b).all()

    def test_invalid_hidden(self):
        with pytest.raises(ValueError):
            NNClassifier(hidden=0)


class TestMAB:
    def test_learns_bucketable_rule(self):
        X, y = linearly_separable(n=1_000, d=2)
        clf = MABClassifier(bins=8).fit(X, y)
        assert (clf.predict(X) == y).mean() > 0.8

    def test_prequential_tracks_drift(self):
        """The label rule flips mid-stream; the online MAB adapts while a
        frozen model cannot."""
        rng = np.random.default_rng(5)
        X = rng.uniform(0, 1, size=(2_000, 1))
        y = np.concatenate(
            [(X[:1_000, 0] > 0.5).astype(int), (X[1_000:, 0] <= 0.5).astype(int)]
        )
        clf = MABClassifier(bins=6, decay=0.99).fit(X[:500], y[:500])
        online_acc = (clf.predict_online(X[500:], y[500:]) == y[500:]).mean()
        frozen = MABClassifier(bins=6).fit(X[:500], y[:500])
        frozen_acc = (frozen.predict(X[500:]) == y[500:]).mean()
        assert online_acc > frozen_acc

    def test_rejects_bad_bins(self):
        with pytest.raises(ValueError):
            MABClassifier(bins=1)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            MABClassifier().predict(np.zeros((1, 2)))
