"""FeatureTracker and the Figure 4 evaluation harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml.evaluate import TASKS, build_dataset, evaluate_models
from repro.ml.features import N_FEATURES, FeatureTracker
from repro.ml.mabcls import MABClassifier


class TestFeatureTracker:
    def test_untracked_returns_none(self):
        t = FeatureTracker()
        assert t.features(1, 0) is None

    def test_feature_width(self):
        t = FeatureTracker()
        t.touch(1, 100, 10)
        x = t.features(1, 12)
        assert x.shape == (N_FEATURES,)

    def test_deltas_reflect_gaps(self):
        t = FeatureTracker()
        t.touch(1, 100, 10)
        t.touch(1, 100, 20)
        x = t.features(1, 24)
        # delta0 = log2(24−20+1), delta1 = log2(20−10+1)
        assert x[0] == pytest.approx(np.log2(5))
        assert x[1] == pytest.approx(np.log2(11))

    def test_never_seen_deltas_saturate(self):
        t = FeatureTracker()
        t.touch(1, 100, 5)
        x = t.features(1, 5)
        assert x[1] == 32.0  # only one access: older deltas saturate

    def test_edcs_increase_with_touches(self):
        t = FeatureTracker()
        t.touch(1, 100, 1)
        e1 = t.features(1, 1)[4]
        t.touch(1, 100, 2)
        e2 = t.features(1, 2)[4]
        assert e2 > e1

    def test_sweep_bounds_population(self):
        t = FeatureTracker(max_objects=100)
        for k in range(250):
            t.touch(k, 10, k)
        assert len(t) <= 151  # sweep halves when the cap is crossed

    def test_forget(self):
        t = FeatureTracker()
        t.touch(1, 10, 0)
        t.forget(1)
        assert 1 not in t


class TestFig4Harness:
    @pytest.fixture(scope="class")
    def datasets(self, request):
        from repro.traces.cdn import make_workload

        tr = make_workload("CDN-T", n_requests=15_000)
        cache = int(tr.working_set_size * 0.02)
        return {task: build_dataset(tr, cache, task) for task in TASKS}

    def test_tasks_have_both_classes(self, datasets):
        for task, ds in datasets.items():
            assert 0.02 < ds.y.mean() < 0.98, f"degenerate labels for {task}"

    def test_feature_rows_match_labels(self, datasets):
        for ds in datasets.values():
            assert len(ds.X) == len(ds.y)
            assert np.isfinite(ds.X).all()

    def test_zro_plus_pzro_counts(self, datasets):
        # 'both' covers every event; zro + pzro partition miss/hit events.
        assert len(datasets["zro"]) + len(datasets["pzro"]) == len(datasets["both"])

    def test_evaluate_returns_all_models(self, datasets):
        acc = evaluate_models(datasets["zro"])
        assert set(acc) == {"LinReg", "LogReg", "SVM", "NN", "GBM", "MAB"}
        assert all(0.0 <= v <= 1.0 for v in acc.values())

    def test_invalid_task(self):
        from repro.traces.cdn import make_workload

        tr = make_workload("CDN-T", n_requests=2_000)
        with pytest.raises(ValueError):
            build_dataset(tr, 1_000, "nope")

    def test_invalid_train_frac(self, datasets):
        with pytest.raises(ValueError):
            evaluate_models(datasets["zro"], train_frac=1.0)

    def test_models_beat_coin_flip_on_zro(self, datasets):
        acc = evaluate_models(datasets["zro"], models={"MAB": lambda: MABClassifier()})
        base = max(datasets["zro"].y.mean(), 1 - datasets["zro"].y.mean())
        assert acc["MAB"] > 0.5
