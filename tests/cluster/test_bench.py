"""cluster-bench: doc schema, dip metrics, and the reproducibility
contract (the manifest's ``extra.cluster`` block rebuilds the run)."""

from __future__ import annotations

import pytest

from repro.cluster.bench import (
    CLUSTER_BENCH_SCHEMA,
    _dip_metrics,
    _window_series,
    config_from_doc,
    format_cluster_doc,
    run_cluster_bench,
)

# Churn at this small scale shows the replication effect cleanly (the
# flash family needs a longer run before the dip signal beats the
# trace-phase noise — the committed BENCH_cluster.json covers that).
BENCH_KWARGS = dict(
    trace="churn",
    n_requests=8_000,
    window=500,
    fraction=0.1,
    output=None,
)


@pytest.fixture(scope="module")
def doc():
    return run_cluster_bench(**BENCH_KWARGS)


class TestWindowing:
    def test_window_series_drops_partial_tail(self):
        flags = [True] * 10 + [False] * 10 + [True] * 3
        assert _window_series(flags, 10) == [1.0, 0.0]

    def test_dip_metrics_reads_the_dip(self):
        series = [0.5, 0.5, 0.5, 0.5, 0.1, 0.3, 0.5, 0.5]
        m = _dip_metrics(series, window=100, kill_at=400)
        assert m["baseline_hit_ratio"] == pytest.approx(0.5)
        assert m["dip_depth"] == pytest.approx(0.4)
        # Recovered at window 6 (first window back within tolerance):
        # 7 windows * 100 - 400 requests since the kill.
        assert m["recovery_requests"] == 300

    def test_no_recovery_is_none(self):
        series = [0.5, 0.5, 0.1, 0.1]
        m = _dip_metrics(series, window=100, kill_at=200)
        assert m["recovery_requests"] is None


class TestBenchDoc:
    def test_schema_and_scenarios(self, doc):
        assert doc["schema"] == CLUSTER_BENCH_SCHEMA
        assert set(doc["scenarios"]) == {"R1", "R2"}
        for s in doc["scenarios"].values():
            assert s["requests"] > 0
            assert s["unhandled_exceptions"] == 0
            assert len(s["hit_ratio_series"]) > 0

    def test_acceptance_headlines(self, doc):
        cmp_ = doc["comparison"]
        # Graceful degradation: zero served errors through kill + restart...
        assert cmp_["errors_zero"]
        assert cmp_["served_error_rate"] == {"R1": 0.0, "R2": 0.0}
        # ...and replication buys a shallower hit-ratio dip.
        assert cmp_["r2_dip_shallower"]
        assert cmp_["dip_reduction"] > 0
        # R=2 pays for the dip protection with replica fills; R=1 has none.
        assert doc["scenarios"]["R2"]["fills"] > 0
        assert doc["scenarios"]["R1"]["fills"] == 0

    def test_fault_placement_recorded(self, doc):
        cfg = doc["config"]
        assert cfg["victim"] in {f"n{i}" for i in range(cfg["n_nodes"])}
        assert 0 < cfg["kill_at"] < cfg["restart_at"]
        for s in doc["scenarios"].values():
            assert s["node_downs"] == 1 and s["node_ups"] == 1
            assert s["failovers"] > 0

    def test_format_is_human_readable(self, doc):
        text = format_cluster_doc(doc)
        assert "cluster bench" in text and "R=2 dip shallower" in text


class TestReproducibility:
    def test_config_from_doc_rebuilds_identical_run(self, doc):
        kwargs = config_from_doc(doc)
        # Derived fields are recomputed, not replayed.
        for derived in ("capacity_bytes", "victim", "kill_at", "restart_at"):
            assert derived not in kwargs
        redo = run_cluster_bench(output=None, **kwargs)
        assert redo["config"] == doc["config"]
        assert redo["scenarios"] == doc["scenarios"]

    def test_manifest_embeds_full_config(self, doc):
        assert doc["manifest"]["extra"]["cluster"] == doc["config"]
        assert doc["manifest"]["seed"] == doc["config"]["seed"]
