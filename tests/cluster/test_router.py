"""ClusterRouter fault tolerance: the never-raise pin, failover paths,
replication fills, and the fault-plan control plane.

The headline acceptance test for the cluster PR lives here:
``test_get_never_raises_through_kill_and_restart`` replays a trace while a
fault plan kills and cold-restarts a node mid-stream and asserts every
single request resolves to a :class:`ClusterOutcome` — no exception may
escape ``ClusterRouter.get`` for a data-plane condition.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.cluster import ClusterConfig, FaultPlan, build_cluster
from repro.obs.probe import Probe
from repro.sim.request import Request
from repro.traces.drift import make_drift_trace


class ListSink:
    def __init__(self):
        self.records = []

    def write(self, rec):
        self.records.append(rec)


def _router(n_nodes=3, replication=2, probe=None, **kwargs):
    config = ClusterConfig(
        n_nodes=n_nodes,
        replication=replication,
        policy="LRU",
        capacity_bytes=kwargs.pop("capacity_bytes", 300_000),
        retry_timeout=None,
        **kwargs,
    )
    return build_cluster(config, probe=probe)


def _key_owned_by(router, node_id, start=0):
    """A key whose *primary* owner is ``node_id``."""
    for key in range(start, start + 100_000):
        if router.owners_for(key)[0] == node_id:
            return key
    raise AssertionError(f"no key routed to {node_id}")  # pragma: no cover


class TestFailover:
    def test_replica_serves_when_primary_dies(self):
        async def run():
            sink = ListSink()
            router = _router(probe=Probe([sink]))
            async with router:
                key = _key_owned_by(router, "n0")
                primary, replica = router.owners_for(key)[:2]
                # Miss at the primary; write-all fill warms the replica.
                first = await router.get(Request(0, key, 1000))
                await router.kill_node(primary)
                second = await router.get(Request(1, key, 1000))
            return sink, first, second, primary, replica

        sink, first, second, primary, replica = asyncio.run(run())
        assert not first.hit and first.node == primary and not first.failover
        # The replica was filled, so the failover read is a HIT.
        assert second.hit and second.node == replica and second.failover
        events = [r["event"] for r in sink.records]
        assert "node_down" in events and "failover" in events
        fo = next(r for r in sink.records if r["event"] == "failover")
        assert fo["frm"] == primary and fo["to"] == replica

    def test_r1_failover_is_cold_miss(self):
        async def run():
            router = _router(replication=1)
            async with router:
                key = _key_owned_by(router, "n1")
                await router.get(Request(0, key, 1000))
                await router.kill_node("n1")
                out = await router.get(Request(1, key, 1000))
            return out

        out = asyncio.run(run())
        # With R=1 nobody was filled: the successor serves, but cold.
        assert not out.hit and out.failover and out.node != "n1"

    def test_all_owners_down_degrades_to_origin(self):
        async def run():
            router = _router(n_nodes=2, replication=2)
            async with router:
                await router.kill_node("n0")
                await router.kill_node("n1")
                out = await router.get(Request(0, 42, 1000))
                health = router.health()
            return out, health

        out, health = asyncio.run(run())
        assert out.served_from == "origin" and out.node is None
        assert out.failover and out.error is None and out.ok
        assert health["live"] == []

    def test_restart_comes_back_cold(self):
        async def run():
            router = _router()
            async with router:
                key = _key_owned_by(router, "n2")
                await router.get(Request(0, key, 1000))
                await router.kill_node("n2")
                await router.restart_node("n2")
                out = await router.get(Request(1, key, 1000))
                node = router.nodes["n2"]
            return out, node.starts, node.kills

        out, starts, kills = asyncio.run(run())
        # Back up and serving (no failover), but state was wiped: cold miss.
        assert not out.hit and not out.failover and out.node == "n2"
        assert starts == 2 and kills == 1

    def test_kill_and_restart_idempotent(self):
        async def run():
            router = _router()
            async with router:
                await router.kill_node("n0")
                await router.kill_node("n0")
                await router.restart_node("n0")
                await router.restart_node("n0")
                return router.stats()

        stats = asyncio.run(run())
        assert stats["node_downs"] == 1 and stats["node_ups"] == 1


class TestNeverRaises:
    def test_get_never_raises_through_kill_and_restart(self):
        """The PR's acceptance pin: node failure during a replay never
        raises out of ``ClusterRouter.get``."""

        async def run():
            trace = make_drift_trace("flash", n_requests=6_000, seed=3)
            n = len(trace.requests)
            plan = (
                FaultPlan()
                .kill("n0", at=n // 5)
                .kill("n1", at=2 * n // 5)  # two of three nodes down at once
                .restart("n0", at=3 * n // 5)
                .restart("n1", at=4 * n // 5)
            )
            router = _router()
            outcomes = []
            async with router:
                for req in trace.requests:
                    await router.apply_faults(plan)
                    outcomes.append(await router.get(req))
                stats = router.stats()
            return outcomes, stats, plan

        outcomes, stats, plan = asyncio.run(run())
        assert len(outcomes) == stats["requests"]
        assert all(o is not None for o in outcomes)
        assert stats["unhandled_exceptions"] == 0
        assert stats["errors"] == 0
        assert stats["failovers"] > 0
        assert stats["node_downs"] == 2 and stats["node_ups"] == 2
        assert plan.exhausted

    def test_get_before_start_is_programming_error(self):
        router = _router()

        async def run():
            await router.get(Request(0, 1, 100))

        with pytest.raises(RuntimeError, match="before start"):
            asyncio.run(run())


class TestSlowNode:
    def test_slow_node_still_serves_correctly(self):
        async def run():
            router = _router()
            async with router:
                key = _key_owned_by(router, "n0")
                router.set_slow("n0", 0.001)
                miss = await router.get(Request(0, key, 1000))
                hit = await router.get(Request(1, key, 1000))
                router.set_slow("n0", 0.0)
            return miss, hit

        miss, hit = asyncio.run(run())
        assert not miss.hit and hit.hit
        assert miss.node == "n0" and not miss.failover

    def test_slow_recover_via_fault_plan(self):
        async def run():
            plan = FaultPlan().slow("n1", at=0, extra_latency_s=0.005).recover("n1", at=1)
            router = _router()
            async with router:
                await router.apply_faults(plan, offset=0)
                slow_during = router.nodes["n1"].slow_s
                await router.apply_faults(plan, offset=5)
                slow_after = router.nodes["n1"].slow_s
            return slow_during, slow_after

        slow_during, slow_after = asyncio.run(run())
        assert slow_during == 0.005 and slow_after == 0.0

    def test_negative_slow_rejected(self):
        async def run():
            router = _router()
            async with router:
                router.set_slow("n0", -1.0)

        with pytest.raises(ValueError, match=">= 0"):
            asyncio.run(run())


class TestReplicationFill:
    def test_fills_counted_only_with_replicas(self):
        async def run():
            results = {}
            for r in (1, 2):
                router = _router(replication=r)
                async with router:
                    for i in range(500):
                        await router.get(Request(i, i % 100, 1000))
                    results[r] = router.stats()["fills"]
            return results

        fills = asyncio.run(run())
        assert fills[1] == 0 and fills[2] > 0


class TestConstruction:
    def test_replication_beyond_fleet_rejected(self):
        with pytest.raises(ValueError, match="replication"):
            ClusterConfig(n_nodes=2, replication=3)

    def test_unknown_policy_rejected_with_menu(self):
        with pytest.raises(KeyError, match="unknown policy"):
            ClusterConfig(policy="NOPE")

    def test_config_round_trip(self):
        config = ClusterConfig(n_nodes=5, replication=3, policy="SIEVE")
        rebuilt = ClusterConfig.from_dict(config.as_dict())
        assert rebuilt == config
