"""FaultPlan: validation, scheduling order, consumption, round-trip."""

from __future__ import annotations

import pytest

from repro.cluster.faults import FAULT_KINDS, FaultAction, FaultPlan


class TestFaultAction:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultAction(at=0, kind="explode", node="n0")

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError, match="offset"):
            FaultAction(at=-1, kind="kill", node="n0")

    def test_slow_needs_latency(self):
        with pytest.raises(ValueError, match="extra_latency_s"):
            FaultAction(at=0, kind="slow", node="n0")

    def test_as_dict_carries_latency_only_for_slow(self):
        kill = FaultAction(at=5, kind="kill", node="n0")
        slow = FaultAction(at=5, kind="slow", node="n0", extra_latency_s=0.01)
        assert "extra_latency_s" not in kill.as_dict()
        assert slow.as_dict()["extra_latency_s"] == 0.01

    def test_all_kinds_constructible(self):
        for kind in FAULT_KINDS:
            extra = 0.001 if kind == "slow" else 0.0
            FaultAction(at=0, kind=kind, node="n0", extra_latency_s=extra)


class TestFaultPlan:
    def test_due_pops_in_offset_order(self):
        plan = FaultPlan().restart("n0", at=30).kill("n0", at=10)
        assert [a.kind for a in plan] == ["kill", "restart"]
        assert plan.next_at == 10
        first = plan.due(10)
        assert [a.kind for a in first] == ["kill"]
        assert plan.due(20) == ()
        assert [a.kind for a in plan.due(100)] == ["restart"]
        assert plan.exhausted
        assert plan.next_at is None

    def test_multiple_actions_same_offset(self):
        plan = FaultPlan().kill("n0", at=5).kill("n1", at=5)
        assert len(plan.due(5)) == 2

    def test_cannot_extend_consumed_plan(self):
        plan = FaultPlan().kill("n0", at=0)
        plan.due(0)
        with pytest.raises(RuntimeError, match="partially consumed"):
            plan.kill("n1", at=10)

    def test_dict_round_trip(self):
        plan = (
            FaultPlan()
            .kill("n1", at=100)
            .restart("n1", at=200)
            .slow("n2", at=50, extra_latency_s=0.002)
            .recover("n2", at=80)
        )
        rebuilt = FaultPlan.from_dicts(plan.as_dicts())
        assert rebuilt.as_dicts() == plan.as_dicts()
        assert len(rebuilt) == 4
