"""Cluster-layer tracing: failover hop spans reconcile with the failover
counter (the acceptance invariant), replica fills and rebalances get
spans, and the traced bench doc carries a usable span stream."""

from __future__ import annotations

import asyncio

from repro.cluster.bench import run_cluster_bench
from repro.cluster.node import ClusterNode
from repro.cluster.rebalance import Rebalancer
from repro.cluster.router import ClusterRouter
from repro.obs.sinks import RingBufferSink
from repro.obs.span import TraceConfig, Tracer
from repro.obs.tracereport import build_traces, read_spans
from repro.serve import CacheService, OriginConfig, SimulatedOrigin
from repro.cache.lru import LRUCache
from repro.sim.request import Request


def _node(name, origin):
    return ClusterNode(
        name,
        lambda: CacheService(
            LRUCache, 500_000, n_shards=1, origin=origin
        ),
    )


def _router(n=3, replication=2):
    origin = SimulatedOrigin(OriginConfig(latency_mean=0.0005))
    nodes = [_node(f"n{i}", origin) for i in range(n)]
    return ClusterRouter(nodes, replication=replication)


class TestFailoverHopSpans:
    def test_kill_scenario_hops_equal_failover_counter(self, tmp_path):
        """Acceptance: one failover_hop span per counted failover, even at
        a low head-sampling rate (tail-keep retains every failover trace)."""
        span_out = str(tmp_path / "spans.jsonl.gz")
        doc = run_cluster_bench(
            trace="flash",
            n_requests=8_000,
            n_nodes=3,
            replications=(2,),
            seed=4,
            trace_sample=0.05,
            span_out=span_out,
            output=None,
            quick=True,
        )
        scenario = doc["scenarios"]["R2"]
        assert scenario["failovers"] > 0  # the kill actually caused failovers
        tracing = scenario["tracing"]
        assert tracing["failover_hop_spans"] == scenario["failovers"]
        assert tracing["traces"]["orphan_spans"] == 0
        assert tracing["traces"]["unclosed_spans"] == 0
        # And the on-disk stream agrees with the in-memory aggregate.
        records = read_spans(span_out)
        hops = [r for r in records if r["name"] == "failover_hop"]
        assert len(hops) == scenario["failovers"]
        for hop in hops:
            assert hop["tags"]["failover"] is True
            assert hop["tags"]["frm"] != hop["tags"]["to"]

    def test_healthy_cluster_has_no_hop_spans(self):
        doc = run_cluster_bench(
            trace="diurnal",
            n_requests=3_000,
            n_nodes=3,
            replications=(1,),
            kill_frac=0.98,  # kill so late nothing happens before the end
            restart_frac=0.99,
            seed=1,
            trace_sample=1.0,
            output=None,
            quick=True,
        )
        scenario = doc["scenarios"]["R1"]
        assert scenario["tracing"]["failover_hop_spans"] == scenario["failovers"]


class TestClusterSpanTopology:
    def test_failover_trace_has_hop_then_node_serve(self):
        async def run():
            sink = RingBufferSink()
            tracer = Tracer(sinks=[sink], config=TraceConfig(sample=1.0))
            router = _router(n=3, replication=2)
            async with router:
                # Find a key and kill its primary so the next get must hop.
                key = 42
                primary = router.ring.route(key)
                await router.kill_node(primary)
                root = tracer.start_trace("request", key=key)
                out = await router.get(Request(0, key, 100), root)
                root.end(served_from=out.served_from)
            tracer.close()
            return sink.as_list(), out, primary

        records, out, primary = asyncio.run(run())
        by_name = {}
        for r in records:
            by_name.setdefault(r["name"], []).append(r)
        assert len(by_name["failover_hop"]) == 1
        hop = by_name["failover_hop"][0]
        assert hop["tags"]["frm"] == primary
        serve = by_name["node_serve"][0]
        assert serve["parent"] == hop["span"]  # hop wraps the replica serve
        root_rec = by_name["request"][0]
        assert hop["parent"] == root_rec["span"]

    def test_replica_fill_spans_attach_to_serving_parent(self):
        async def run():
            sink = RingBufferSink()
            tracer = Tracer(sinks=[sink], config=TraceConfig(sample=1.0))
            router = _router(n=3, replication=2)
            async with router:
                root = tracer.start_trace("request", key=7)
                await router.get(Request(0, 7, 100), root)  # miss -> fill
                root.end()
            tracer.close()
            return sink.as_list()

        records = asyncio.run(run())
        fills = [r for r in records if r["name"] == "replica_fill"]
        assert len(fills) == 1  # replication=2: one replica beyond primary
        assert "filled" in fills[0]["tags"]

    def test_rebalance_gets_its_own_trace(self):
        async def run():
            sink = RingBufferSink()
            tracer = Tracer(sinks=[sink], config=TraceConfig(sample=1.0))
            router = _router(n=2, replication=1)
            origin = SimulatedOrigin(OriginConfig(latency_mean=0.0005))
            async with router:
                # Warm some residents so the handoff has something to move.
                for i in range(20):
                    await router.get(Request(0, i, 100))
                reb = Rebalancer(router, tracer=tracer)
                await reb.add_node(_node("n9", origin), warm=True)
            tracer.close()
            return sink.as_list()

        records = asyncio.run(run())
        traces = build_traces(records)
        reb_traces = [
            t
            for t in traces.values()
            if any(r["name"] == "rebalance" for r in t)
        ]
        assert len(reb_traces) == 1
        (spans,) = reb_traces
        root = next(r for r in spans if r["parent"] is None)
        assert root["name"] == "rebalance"
        assert root["tags"]["action"] == "add"
        assert "ring_size" in root["tags"]
        handoff = next(r for r in spans if r["name"] == "warm_handoff")
        assert handoff["parent"] == root["span"]
        assert handoff["tags"]["moved"] == root["tags"]["moved"]
