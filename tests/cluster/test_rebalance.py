"""Rebalancer: bounded reshuffle, warm handoff, membership validation."""

from __future__ import annotations

import asyncio

import pytest

from repro.cluster import ClusterConfig, ClusterNode, Rebalancer, build_cluster
from repro.obs.probe import Probe
from repro.sim.request import Request


class ListSink:
    def __init__(self):
        self.records = []

    def write(self, rec):
        self.records.append(rec)


def _router(n_nodes=4, replication=1, probe=None):
    config = ClusterConfig(
        n_nodes=n_nodes,
        replication=replication,
        policy="LRU",
        capacity_bytes=400_000,
        retry_timeout=None,
    )
    return build_cluster(config, probe=probe)


def _spare(router, node_id):
    """A cold node reusing an existing node's service factory."""
    return ClusterNode(node_id, router.nodes["n0"]._factory)


class TestReshuffleBound:
    def test_join_moves_about_one_nth(self):
        async def run():
            router = _router(n_nodes=4)
            async with router:
                reb = Rebalancer(router)
                snap = reb.snapshot_owners(range(4_000))
                await reb.add_node(_spare(router, "n4"))
                return reb.moved_fraction(snap)

        moved = asyncio.run(run())
        # Joining the 5th node should move ~1/5 of the keyspace; allow
        # generous slack for vnode placement variance, but pin the bound
        # that distinguishes consistent hashing from modulo routing.
        assert 0.10 < moved < 0.35

    def test_replace_moves_about_two_nths(self):
        async def run():
            router = _router(n_nodes=4)
            async with router:
                reb = Rebalancer(router)
                snap = reb.snapshot_owners(range(4_000))
                await reb.replace_node("n2", _spare(router, "n9"))
                return reb.moved_fraction(snap), router.live_nodes()

        moved, live = asyncio.run(run())
        assert 0.15 < moved < 0.60
        assert "n2" not in live and "n9" in live


class TestWarmHandoff:
    def test_drain_hands_residents_to_new_owners(self):
        async def run():
            sink = ListSink()
            router = _router(n_nodes=3, probe=Probe([sink]))
            async with router:
                for i in range(300):
                    await router.get(Request(i, i, 1000))
                reb = Rebalancer(router)
                victim = "n1"
                resident = list(router.nodes[victim].service.resident_entries())
                doc = await reb.remove_node(victim, warm=True)
                # Handed-off keys are now resident at their new owners:
                # re-requesting them must hit without refetching.
                hits = 0
                for key, size in resident:
                    out = await router.get(Request(0, key, size))
                    hits += out.hit
                return sink, doc, len(resident), hits

        sink, doc, n_resident, hits = asyncio.run(run())
        assert n_resident > 0
        assert doc["moved_entries"] == n_resident
        assert hits == n_resident
        reb_events = [r for r in sink.records if r["event"] == "rebalance"]
        assert reb_events and reb_events[0]["action"] == "remove"

    def test_join_warms_from_survivors(self):
        async def run():
            router = _router(n_nodes=3, replication=1)
            async with router:
                for i in range(400):
                    await router.get(Request(i, i, 1000))
                reb = Rebalancer(router)
                doc = await reb.add_node(_spare(router, "n5"), warm=True)
                joined = list(router.nodes["n5"].service.resident_entries())
                return doc, joined, router

        doc, joined, router = asyncio.run(run())
        assert doc["moved_entries"] == len(joined) > 0
        # Everything copied in belongs to the joiner under the new ring.
        assert all("n5" in router.owners_for(k) for k, _ in joined)

    def test_cold_join_moves_nothing(self):
        async def run():
            router = _router(n_nodes=3)
            async with router:
                for i in range(200):
                    await router.get(Request(i, i, 1000))
                reb = Rebalancer(router)
                doc = await reb.add_node(_spare(router, "n5"), warm=False)
                return doc, list(router.nodes["n5"].service.resident_entries())

        doc, joined = asyncio.run(run())
        assert doc["moved_entries"] == 0 and joined == []


class TestMembershipValidation:
    def test_duplicate_join_rejected(self):
        async def run():
            router = _router(n_nodes=2)
            async with router:
                await Rebalancer(router).add_node(_spare(router, "n0"))

        with pytest.raises(ValueError, match="duplicate"):
            asyncio.run(run())

    def test_unknown_drain_rejected(self):
        async def run():
            router = _router(n_nodes=2)
            async with router:
                await Rebalancer(router).remove_node("nope")

        with pytest.raises(KeyError, match="unknown node"):
            asyncio.run(run())

    def test_cannot_drain_last_node(self):
        async def run():
            router = _router(n_nodes=1, replication=1)
            async with router:
                await Rebalancer(router).remove_node("n0")

        with pytest.raises(ValueError, match="last node"):
            asyncio.run(run())
