"""Warm handoff across tenant-partitioned nodes.

The cluster-side satellite acceptance for the tenancy PR: resident-set
migration during membership changes must preserve *per-tenant* byte
accounting — every handed-off object re-enters through its owner's
partition (key-namespace routing survives the ``(key, size)``-only fill
path), and an under-quota tenant on the receiving node never loses bytes
to make room for a neighbour's migrated objects.
"""

from __future__ import annotations

import asyncio

from repro.cluster import ClusterNode, ClusterRouter, Rebalancer
from repro.serve import CacheService, OriginConfig, RetryPolicy, SimulatedOrigin
from repro.sim.request import Request
from repro.tenancy import TenantPartitionedCache
from repro.traces.drift import TENANT_STRIDE

N_TENANTS = 2
NODE_CAPACITY = 40_000


def _key(tenant: int, i: int) -> int:
    return tenant * TENANT_STRIDE + i


def _node(node_id: str, origin, retry) -> ClusterNode:
    def service_factory() -> CacheService:
        return CacheService(
            lambda cap: TenantPartitionedCache(cap, n_tenants=N_TENANTS),
            capacity=NODE_CAPACITY,
            n_shards=1,
            origin=origin,
            retry=retry,
            queue_depth=0,
        )

    return ClusterNode(node_id, service_factory)


def _cluster(n_nodes=3):
    origin = SimulatedOrigin(OriginConfig(latency_mean=0.0))
    retry = RetryPolicy(timeout=0.5, max_retries=2, backoff_base=0.001)
    nodes = [_node(f"n{i}", origin, retry) for i in range(n_nodes)]
    return ClusterRouter(nodes, replication=1, origin=origin, retry=retry)


def _tenant_bytes(router) -> dict:
    out = {t: 0 for t in range(N_TENANTS)}
    for node in router.nodes.values():
        if not node.up:
            continue
        for shard in node.service.shards:
            for t, inner in shard.policy.inners.items():
                out[t] += inner.used
    return out


class TestWarmHandoffTenantAccounting:
    def test_drain_preserves_per_tenant_bytes(self):
        async def run():
            router = _cluster(n_nodes=3)
            async with router:
                for i in range(60):
                    await router.get(Request(i, _key(0, i), 100))
                for i in range(40):
                    await router.get(Request(100 + i, _key(1, i), 100))
                before = _tenant_bytes(router)
                reb = Rebalancer(router)
                doc = await reb.remove_node("n1", warm=True)
                after = _tenant_bytes(router)
                # Handoff moved entries and every byte stayed inside its
                # owner's partitions — cluster-wide per-tenant totals hold
                # (capacity is ample, so nothing is dropped for space).
                assert doc["moved_entries"] > 0
                assert after == before
                for node in router.nodes.values():
                    for shard in node.service.shards:
                        shard.policy.check_invariants()

        asyncio.run(run())

    def test_handed_off_objects_land_in_owner_partitions(self):
        async def run():
            router = _cluster(n_nodes=2)
            async with router:
                for i in range(30):
                    await router.get(Request(i, _key(1, i), 100))
                reb = Rebalancer(router)
                await reb.remove_node("n0", warm=True)
                survivor = router.nodes["n1"]
                part = survivor.service.shards[0].policy
                # Tenant 1's migrated objects must not pollute tenant 0's
                # partition: the fill path re-derives the owner from the
                # key namespace alone.
                assert part.inners[0].used == 0
                assert part.inners[1].used > 0
                part.check_invariants()

        asyncio.run(run())

    def test_join_warming_never_evicts_under_quota_tenant(self):
        async def run():
            router = _cluster(n_nodes=2)
            async with router:
                # Tenant 0 is small everywhere; tenant 1 is large.
                for i in range(5):
                    await router.get(Request(i, _key(0, i), 100))
                for i in range(150):
                    await router.get(Request(10 + i, _key(1, i), 100))
                before = _tenant_bytes(router)
                origin = router.origin
                retry = router.retry
                reb = Rebalancer(router)
                await reb.add_node(_node("n9", origin, retry), warm=True)
                after = _tenant_bytes(router)
                # Warming the joiner only *copies* — no tenant's
                # cluster-wide footprint shrank, and tenant 0's small set
                # was not sacrificed to tenant 1's bulk anywhere.
                assert after[0] >= before[0]
                assert after[1] >= before[1]
                for node in router.nodes.values():
                    for shard in node.service.shards:
                        shard.policy.check_invariants()

        asyncio.run(run())
