"""Additional parallel-runner coverage (cheap: tiny traces, 2 workers)."""

from __future__ import annotations

import pytest

from repro.sim.parallel import run_grid_parallel


class TestParallelGrid:
    def test_deterministic_across_runs(self):
        kwargs = dict(
            policies=["SCIP"],
            workloads=["CDN-T"],
            n_requests=6_000,
            cache_fractions=[0.02],
            max_workers=2,
        )
        a = run_grid_parallel(**kwargs)
        b = run_grid_parallel(**kwargs)
        assert a[0]["miss_ratio"] == b[0]["miss_ratio"]

    def test_rows_carry_identifiers(self):
        rows = run_grid_parallel(
            ["LRU", "FIFO"], ["CDN-T", "CDN-W"], 4_000, [0.02], max_workers=2
        )
        assert len(rows) == 4
        assert {(r["policy"], r["trace"]) for r in rows} == {
            ("LRU", "CDN-T"),
            ("LRU", "CDN-W"),
            ("FIFO", "CDN-T"),
            ("FIFO", "CDN-W"),
        }

    def test_unknown_policy_raises_in_worker(self):
        with pytest.raises(Exception):
            run_grid_parallel(["NOPE"], ["CDN-T"], 2_000, [0.02], max_workers=1)
