"""Additional parallel-runner coverage (cheap: tiny traces, 2 workers)."""

from __future__ import annotations

import pytest

import repro.sim.parallel as parallel_mod
from repro.sim.parallel import default_worker_count, run_grid_parallel


class TestParallelGrid:
    def test_deterministic_across_runs(self):
        kwargs = dict(
            policies=["SCIP"],
            workloads=["CDN-T"],
            n_requests=6_000,
            cache_fractions=[0.02],
            max_workers=2,
        )
        a = run_grid_parallel(**kwargs)
        b = run_grid_parallel(**kwargs)
        assert a[0]["miss_ratio"] == b[0]["miss_ratio"]

    def test_rows_carry_identifiers(self):
        rows = run_grid_parallel(
            ["LRU", "FIFO"], ["CDN-T", "CDN-W"], 4_000, [0.02], max_workers=2
        )
        assert len(rows) == 4
        assert {(r["policy"], r["trace"]) for r in rows} == {
            ("LRU", "CDN-T"),
            ("LRU", "CDN-W"),
            ("FIFO", "CDN-T"),
            ("FIFO", "CDN-W"),
        }

    def test_unknown_policy_raises_in_worker(self):
        with pytest.raises(Exception):
            run_grid_parallel(["NOPE"], ["CDN-T"], 2_000, [0.02], max_workers=1)


class TestWorkerSizing:
    def test_default_worker_count_is_positive(self):
        assert default_worker_count() >= 1

    def test_single_cell_runs_in_process(self, monkeypatch):
        """A one-cell grid (even with max_workers unset) must not pay the
        pool spawn: the serial fallback never touches the executor."""

        def _explode(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("ProcessPoolExecutor spawned for a 1-cell grid")

        monkeypatch.setattr(parallel_mod, "ProcessPoolExecutor", _explode)
        rows = run_grid_parallel(["LRU"], ["CDN-T"], 2_000, [0.02])
        assert len(rows) == 1
        assert rows[0]["policy"] == "LRU" and rows[0]["trace"] == "CDN-T"

    def test_max_workers_one_runs_in_process(self, monkeypatch):
        monkeypatch.setattr(
            parallel_mod,
            "ProcessPoolExecutor",
            lambda *a, **k: (_ for _ in ()).throw(AssertionError("pool spawned")),
        )
        rows = run_grid_parallel(
            ["LRU", "FIFO"], ["CDN-T"], 2_000, [0.02], max_workers=1
        )
        assert {r["policy"] for r in rows} == {"LRU", "FIFO"}

    def test_serial_fallback_matches_pooled_result(self):
        kwargs = dict(
            policies=["LRU"],
            workloads=["CDN-T"],
            n_requests=3_000,
            cache_fractions=[0.02, 0.05],
        )
        serial = run_grid_parallel(max_workers=1, **kwargs)
        pooled = run_grid_parallel(max_workers=2, **kwargs)
        # Drop wall-clock-derived fields; everything else is deterministic.
        timing = {"tps", "cpu_seconds", "peak_alloc_bytes"}
        strip = lambda rows: [
            {k: v for k, v in r.items() if k not in timing} for r in rows
        ]
        assert strip(serial) == strip(pooled)

    def test_invalid_max_workers_rejected(self):
        with pytest.raises(ValueError, match="max_workers"):
            run_grid_parallel(["LRU"], ["CDN-T"], 1_000, [0.02], max_workers=0)

    def test_empty_grid_returns_empty(self):
        assert run_grid_parallel([], ["CDN-T"], 1_000, [0.02]) == []
