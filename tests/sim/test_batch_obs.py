"""Batch-engine observability: chunk-boundary aggregates on SimResult.obs.

The batch cores never see individual requests, so they cannot feed the
per-event probe; instead every chunk boundary folds the stats delta into
registry counters.  These aggregates must reconcile exactly with the
core's own CacheStats."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.batch import BatchLRU, make_batch_policy, simulate_batch
from repro.sim.request import Trace
from tests.conftest import make_requests


def _trace(n=5_000, keys=300, seed=9):
    rng = np.random.default_rng(seed)
    ks = rng.integers(1, keys, n)
    pairs = [(int(k), 100) for k in ks]
    return Trace(make_requests(pairs), name="batchobs")


class TestBatchObs:
    @pytest.mark.parametrize("policy", ["LRU", "FIFO", "CLOCK", "SIEVE"])
    def test_obs_registry_reconciles_with_stats(self, policy):
        trace = _trace()
        res = simulate_batch(policy, trace, 5_000, chunk_size=1_000)
        assert res.obs is not None
        snap = res.obs["registry"]
        core = res.policy_obj
        assert snap["sim_requests"][""]["value"] == core.stats.requests
        assert snap["sim_hits"][""]["value"] == core.stats.hits
        assert snap["sim_evictions"][""]["value"] == core.stats.evictions
        assert res.obs["chunks"] == snap["batch_chunks"][""]["value"] == 5

    def test_compaction_counter_increments(self):
        # Tiny compact slack forces window compactions on a long replay.
        core = BatchLRU(2_000)
        core._COMPACT_SLACK = 1_000
        trace = _trace(n=20_000, keys=5_000)
        res = simulate_batch(core, trace, core.capacity, chunk_size=2_000)
        assert core.compactions > 0
        snap = res.obs["registry"]
        assert snap["batch_compactions"][""]["value"] == core.compactions
        assert snap["batch_spills"][""]["value"] == 0

    def test_spill_counter_increments_on_inconsistent_sizes(self):
        # The same key changing size forces the reference-policy spill.
        pairs = [(1, 100), (2, 100), (1, 999), (3, 100), (1, 999)]
        trace = Trace(make_requests(pairs), name="spilly")
        res = simulate_batch("LRU", trace, 10_000)
        core = res.policy_obj
        assert core.spills == 1
        assert res.obs["registry"]["batch_spills"][""]["value"] == 1

    def test_scalar_cores_default_to_zero_maintenance_counters(self):
        # CLOCK/SIEVE cores have no window compaction; the fold must not
        # assume the attributes exist.
        core = make_batch_policy("CLOCK", 5_000)
        res = simulate_batch(core, _trace(n=2_000), core.capacity)
        snap = res.obs["registry"]
        assert snap["batch_compactions"][""]["value"] == 0
        assert snap["batch_spills"][""]["value"] == 0

    def test_warmup_does_not_break_the_fold(self):
        trace = _trace(n=4_000)
        res = simulate_batch("LRU", trace, 5_000, warmup=1_500, chunk_size=1_000)
        # Registry counters cover the whole replay (warm-up included) —
        # they mirror CacheStats, not the post-warm-up metrics window.
        assert res.obs["registry"]["sim_requests"][""]["value"] == 4_000
        assert res.requests == 4_000
