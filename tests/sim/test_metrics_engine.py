"""MetricsCollector, engine, runner, and trace-I/O tests."""

from __future__ import annotations

import pytest

from repro.cache.lru import LRUCache
from repro.sim.engine import simulate
from repro.sim.metrics import MetricsCollector
from repro.sim.request import Request, Trace
from repro.sim.runner import format_table, run_grid


class TestMetricsCollector:
    def test_aggregate_counts(self):
        m = MetricsCollector()
        m.record(10, True)
        m.record(10, False)
        m.record(20, False)
        assert m.requests == 3
        assert m.miss_ratio == pytest.approx(2 / 3)
        assert m.byte_miss_ratio == pytest.approx(30 / 40)

    def test_warmup_excluded_from_aggregate(self):
        m = MetricsCollector(warmup=2)
        m.record(10, False)
        m.record(10, False)
        m.record(10, True)
        assert m.requests == 1
        assert m.miss_ratio == 0.0

    def test_interval_series(self):
        m = MetricsCollector(interval=2)
        for hit in [True, False, False, False, True]:
            m.record(10, hit)
        m.flush()
        assert len(m.series) == 3  # 2 + 2 + trailing 1
        assert m.series[0].miss_ratio == 0.5
        assert m.series[1].miss_ratio == 1.0
        assert m.series[2].requests == 1

    def test_interval_series_covers_warmup(self):
        m = MetricsCollector(warmup=4, interval=2)
        for _ in range(6):
            m.record(10, False)
        m.flush()
        assert sum(p.requests for p in m.series) == 6
        assert m.requests == 2

    def test_rejects_negative_warmup(self):
        with pytest.raises(ValueError):
            MetricsCollector(warmup=-1)


class TestEngine:
    def test_matches_policy_stats(self, zipf_trace):
        res = simulate(LRUCache(20_000), zipf_trace)
        assert res.miss_ratio == pytest.approx(res.policy_obj.stats.miss_ratio)
        assert res.requests == len(zipf_trace)
        assert res.tps > 0

    def test_warmup_changes_ratio(self, zipf_trace):
        cold = simulate(LRUCache(20_000), zipf_trace)
        warm = simulate(LRUCache(20_000), zipf_trace, warmup=len(zipf_trace) // 2)
        # Warm-up removes compulsory-miss noise → lower or equal ratio.
        assert warm.miss_ratio <= cold.miss_ratio + 0.02

    def test_belady_auto_annotates(self, zipf_trace):
        from repro.cache.belady import BeladyCache

        assert not zipf_trace.annotated
        simulate(BeladyCache(10_000), zipf_trace)
        assert zipf_trace.annotated

    def test_memory_measurement(self, tiny_trace):
        res = simulate(LRUCache(1_000), tiny_trace, measure_memory=True)
        assert res.peak_alloc_bytes > 0

    def test_interval_collection(self, zipf_trace):
        res = simulate(LRUCache(20_000), zipf_trace, interval=1_000)
        assert len(res.metrics.series) == len(zipf_trace) // 1_000


class TestRunner:
    def test_grid_shape(self, zipf_trace):
        rows = run_grid(
            {"LRU": LRUCache, "LRU2": LRUCache},
            [zipf_trace],
            [0.1, 0.2],
        )
        assert len(rows) == 4
        assert {r["policy"] for r in rows} == {"LRU", "LRU2"}
        assert {r["cache_fraction"] for r in rows} == {0.1, 0.2}

    def test_per_trace_fractions(self, zipf_trace, tiny_trace):
        rows = run_grid(
            {"LRU": LRUCache},
            [zipf_trace, tiny_trace],
            {"zipfish": [0.1], "tiny": [0.5]},
        )
        assert len(rows) == 2

    def test_format_table_contains_values(self, zipf_trace):
        rows = run_grid({"LRU": LRUCache}, [zipf_trace], [0.1])
        text = format_table(rows)
        assert "LRU" in text and "zipfish" in text


class TestTraceIO:
    def test_lrb_roundtrip(self, tiny_trace, tmp_path):
        from repro.traces.io import read_lrb, write_lrb

        path = tmp_path / "t.tr"
        write_lrb(tiny_trace, path)
        back = read_lrb(path)
        assert len(back) == len(tiny_trace)
        assert all(a == b for a, b in zip(back, tiny_trace))

    def test_csv_roundtrip(self, tiny_trace, tmp_path):
        from repro.traces.io import read_csv, write_csv

        path = tmp_path / "t.csv"
        write_csv(tiny_trace, path)
        back = read_csv(path)
        assert all(a == b for a, b in zip(back, tiny_trace))

    def test_bad_lrb_line_raises(self, tmp_path):
        from repro.traces.io import read_lrb

        path = tmp_path / "bad.tr"
        path.write_text("1 2\n")
        with pytest.raises(ValueError, match="expected"):
            read_lrb(path)

    def test_bad_csv_header_raises(self, tmp_path):
        from repro.traces.io import read_csv

        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError, match="header"):
            read_csv(path)
