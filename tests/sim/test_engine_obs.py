"""Engine-level observability: ``simulate(..., obs=ObsConfig(...))`` and the
contradictory-flag guard."""

from __future__ import annotations

import json

import pytest

from repro.cache.lru import LRUCache
from repro.core.scip import SCIPCache
from repro.obs import ObsConfig
from repro.sim.engine import simulate


def _cap(trace, frac=0.02):
    return max(int(trace.working_set_size * frac), 1)


class TestForcedFastGuard:
    def test_fast_with_interval_raises(self, cdn_t_small):
        with pytest.raises(ValueError, match="contradictory"):
            simulate(LRUCache(_cap(cdn_t_small)), cdn_t_small, interval=1000, fast=True)

    def test_fast_with_measure_memory_raises(self, cdn_t_small):
        with pytest.raises(ValueError, match="contradictory"):
            simulate(
                LRUCache(_cap(cdn_t_small)), cdn_t_small, measure_memory=True, fast=True
            )

    def test_default_fast_still_downgrades_silently(self, cdn_t_small):
        """``fast=None`` (the default) keeps auto-selecting the rich path."""
        res = simulate(LRUCache(_cap(cdn_t_small)), cdn_t_small, interval=5_000)
        assert res.metrics.series

    def test_fast_false_with_interval_is_fine(self, cdn_t_small):
        res = simulate(
            LRUCache(_cap(cdn_t_small)), cdn_t_small, interval=5_000, fast=False
        )
        assert res.metrics.series


class TestSimulateObs:
    def test_obs_none_leaves_result_untouched(self, cdn_t_small):
        res = simulate(LRUCache(_cap(cdn_t_small)), cdn_t_small)
        assert res.obs is None
        assert "obs" not in res.as_dict()

    def test_obs_snapshot_in_result(self, cdn_t_small):
        res = simulate(SCIPCache(_cap(cdn_t_small)), cdn_t_small, obs=ObsConfig())
        assert res.obs is not None
        reg = res.obs["registry"]
        assert res.obs["events_emitted"] > 0
        assert reg["w_mru"][""]["value"] + reg["w_lru"][""]["value"] == pytest.approx(1.0)
        assert res.as_dict()["obs"]["events_emitted"] == res.obs["events_emitted"]

    def test_obs_run_is_decision_identical(self, cdn_t_small):
        cap = _cap(cdn_t_small)
        bare = simulate(SCIPCache(cap), cdn_t_small)
        traced = simulate(SCIPCache(cap), cdn_t_small, obs=ObsConfig())
        assert traced.miss_ratio == bare.miss_ratio
        assert traced.byte_miss_ratio == bare.byte_miss_ratio

    def test_probe_detached_after_run(self, cdn_t_small):
        policy = SCIPCache(_cap(cdn_t_small))
        simulate(policy, cdn_t_small, obs=ObsConfig())
        assert policy._probe is None
        assert policy.bandit._probe is None
        assert policy.lr._probe is None

    def test_jsonl_closed_even_when_replay_raises(self, tmp_path, cdn_t_small):
        out = tmp_path / "ev.jsonl"

        class Exploding(LRUCache):
            def request(self, req):
                raise RuntimeError("boom")

        policy = Exploding(_cap(cdn_t_small))
        with pytest.raises(RuntimeError):
            simulate(policy, cdn_t_small, obs=ObsConfig(trace_out=str(out)))
        assert policy._probe is None
        # The file sink was flushed/closed: the schema header is on disk.
        assert json.loads(out.read_text().splitlines()[0])["event"] == "schema"

    def test_manifest_written(self, tmp_path, cdn_t_small):
        manifest = tmp_path / "run.manifest.json"
        simulate(
            SCIPCache(_cap(cdn_t_small)),
            cdn_t_small,
            warmup=100,
            obs=ObsConfig(manifest_out=str(manifest)),
        )
        doc = json.loads(manifest.read_text())
        assert doc["policy"]["name"] == "SCIP"
        assert doc["trace"]["name"] == "CDN-T"
        assert doc["extra"]["warmup"] == 100
