"""Bit-exactness harness: the array-backed batch engine vs the rich engine.

The batch cores in :mod:`repro.sim.batch` are an independent
reimplementation of LRU/FIFO/CLOCK/SIEVE over structure-of-arrays chunks;
nothing about them is allowed to be "approximately" right.  For every
batch-supported policy this harness replays the same trace through both
engines and asserts **identical**:

* per-request hit/miss decision streams,
* aggregate stats (hits, misses, evictions, bypasses, byte counters),
* used bytes and resident-object count,
* final resident sets — in recency/insertion *order* for LRU/FIFO, as a
  set for the ring policies (CLOCK/SIEVE order their ring by hand
  position, which the rich implementations expose differently),

across golden CDN workloads and seeded random traces (including
inconsistent-size traces that force the spill-to-rich fallback), at
multiple cache sizes, and — the batch-specific axis — at multiple chunk
sizes, which must not change a single decision.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.clock import ClockCache
from repro.cache.fifo import FIFOCache
from repro.cache.lru import LRUCache
from repro.cache.sieve import SieveCache
from repro.sim.batch import (
    BATCH_POLICIES,
    batch_replay,
    batch_supported,
    make_batch_policy,
    simulate_batch,
)
from repro.sim.engine import simulate
from repro.sim.request import Trace, requests_from_arrays
from repro.traces.cdn import make_workload

RICH = {"LRU": LRUCache, "FIFO": FIFOCache, "CLOCK": ClockCache, "SIEVE": SieveCache}

_STAT_FIELDS = ("hits", "misses", "evictions", "bypasses", "bytes_hit", "bytes_missed")


def _rich_resident(policy, name):
    if hasattr(policy, "resident_keys"):
        return policy.resident_keys()
    ring = getattr(policy, "ring", None)
    if ring is None:
        ring = getattr(policy, "queue", None)
    return list(ring.keys())


def assert_equivalent(name, keys, sizes, cap, chunk):
    """Replay (keys, sizes) through both engines; assert bit-exactness."""
    keys = np.asarray(keys, np.int64)
    sizes = np.asarray(sizes, np.int64)
    m = len(keys)

    rich = RICH[name](cap)
    out_rich: list = []
    rich.replay(requests_from_arrays(keys, sizes, np.arange(m, dtype=np.int64)), out_rich)

    batch = make_batch_policy(name, cap)
    out_batch: list = []
    for lo in range(0, m, chunk):
        hi = min(lo + chunk, m)
        batch.process_chunk(
            np.arange(lo, hi, dtype=np.int64), keys[lo:hi], sizes[lo:hi], out_batch
        )

    assert out_rich == out_batch, f"{name}: decision streams differ"
    for field in _STAT_FIELDS:
        assert getattr(rich.stats, field) == getattr(batch.stats, field), (
            f"{name}: stats.{field} rich={getattr(rich.stats, field)} "
            f"batch={getattr(batch.stats, field)}"
        )
    assert rich.used == batch.used
    assert len(rich) == len(batch)
    rich_res = _rich_resident(rich, name)
    batch_res = batch.resident_keys()
    if name in ("LRU", "FIFO"):
        assert rich_res == batch_res, f"{name}: resident order differs"
    else:
        assert sorted(rich_res) == sorted(batch_res), f"{name}: resident set differs"
    return batch


def _random_trace(seed):
    """Seeded random trace; every third seed has inconsistent sizes, which
    the batch cores must answer by spilling to the rich policy."""
    rng = np.random.default_rng(seed)
    m = int(rng.integers(200, 2500))
    nkeys = int(rng.integers(1, max(m // 2, 2)))
    keys = rng.integers(0, nkeys, m).astype(np.int64)
    if seed % 3 == 2:
        sizes = rng.integers(1, 5000, m).astype(np.int64)
    else:
        sizes = rng.integers(1, 5000, nkeys).astype(np.int64)[keys]
    return keys, sizes


@pytest.fixture(scope="module")
def golden():
    trace = make_workload("CDN-T", n_requests=15_000, seed=3)
    keys = np.array([r.key for r in trace.requests], np.int64)
    sizes = np.array([r.size for r in trace.requests], np.int64)
    wss = int(sizes[np.unique(keys, return_index=True)[1]].sum())
    return keys, sizes, wss


class TestGoldenTraces:
    @pytest.mark.parametrize("name", sorted(BATCH_POLICIES))
    @pytest.mark.parametrize("cap_div", [50, 8])
    @pytest.mark.parametrize("chunk", [1 << 20, 337])
    def test_golden_bit_exact(self, golden, name, cap_div, chunk):
        keys, sizes, wss = golden
        assert_equivalent(name, keys, sizes, max(wss // cap_div, 1), chunk)

    @pytest.mark.parametrize("name", sorted(BATCH_POLICIES))
    def test_chunk_size_changes_nothing(self, golden, name):
        # The batch axis that has no rich-engine counterpart: any chunking
        # must produce the identical engine end state.
        keys, sizes, wss = golden
        cap = max(wss // 10, 1)
        reference = None
        for chunk in (1 << 20, 1999, 613):
            out: list = []
            core = make_batch_policy(name, cap)
            for lo in range(0, len(keys), chunk):
                hi = min(lo + chunk, len(keys))
                core.process_chunk(
                    np.arange(lo, hi, dtype=np.int64), keys[lo:hi], sizes[lo:hi], out
                )
            state = (out, core.used, core.resident_keys(), core.stats.evictions)
            if reference is None:
                reference = state
            else:
                assert state == reference, f"{name}: chunk={chunk} diverged"


class TestRandomTraces:
    @pytest.mark.parametrize("name", sorted(BATCH_POLICIES))
    @pytest.mark.parametrize("seed", range(12))
    def test_random_bit_exact(self, name, seed):
        keys, sizes = _random_trace(seed)
        tot = int(sizes.sum())
        for cap in (1, max(tot // 20, 1), max(tot // 3, 1), 2 * tot):
            assert_equivalent(name, keys, sizes, cap, 337)

    @pytest.mark.parametrize("name", sorted(BATCH_POLICIES))
    def test_inconsistent_sizes_spill_and_stay_exact(self, name):
        keys, sizes = _random_trace(2)  # seed 2: per-request random sizes
        core = assert_equivalent(name, keys, sizes, max(int(sizes.sum()) // 8, 1), 337)
        if name in ("LRU", "FIFO"):
            # The queue cores' slot model assumes stable per-key sizes and
            # must answer violations by spilling to the rich policy; the
            # ring cores replay per-request and need no fallback.
            assert core.spilled, "inconsistent sizes must trip the rich fallback"

    @pytest.mark.parametrize("name", sorted(BATCH_POLICIES))
    def test_empty_and_single_request(self, name):
        assert_equivalent(name, [], [], 100, 1 << 20)
        assert_equivalent(name, [5], [10], 100, 1 << 20)
        assert_equivalent(name, [5], [1000], 100, 1 << 20)  # bypass-sized


class TestCompactionStress:
    @pytest.mark.parametrize("name", ["LRU", "FIFO"])
    def test_many_compactions_stay_exact(self, name, monkeypatch):
        # Shrink the dead-slot slack so compaction (slot renumbering + map
        # rebuild) fires many times within one small trace.
        from repro.sim.batch import _BatchQueueCore

        monkeypatch.setattr(_BatchQueueCore, "_COMPACT_SLACK", 256)
        rng = np.random.default_rng(99)
        m = 6_000
        keys = rng.integers(0, 300, m).astype(np.int64)
        sizes = rng.integers(1, 50, 300).astype(np.int64)[keys]
        assert_equivalent(name, keys, sizes, int(sizes.sum()) // 6, 449)


class TestSimulateBatch:
    def test_simulate_batch_matches_rich_simulate(self):
        trace = make_workload("CDN-T", n_requests=8_000, seed=5)
        cap = max(int(trace.working_set_size * 0.05), 1)
        for name in sorted(BATCH_POLICIES):
            rich = simulate(RICH[name](cap), trace)
            batch = simulate_batch(name, trace, cap)
            assert batch.miss_ratio == rich.miss_ratio, name
            assert batch.byte_miss_ratio == rich.byte_miss_ratio, name

    def test_warmup_splits_mid_chunk(self):
        trace = make_workload("CDN-T", n_requests=6_000, seed=5)
        cap = max(int(trace.working_set_size * 0.05), 1)
        warm = len(trace) // 3
        rich = simulate(LRUCache(cap), trace, warmup=warm)
        batch = simulate_batch("LRU", trace, cap, warmup=warm)
        assert batch.miss_ratio == rich.miss_ratio
        assert batch.byte_miss_ratio == rich.byte_miss_ratio

    def test_batch_replay_from_bin_file(self, tmp_path):
        from repro.traces.binfmt import write_bin

        trace = make_workload("CDN-T", n_requests=6_000, seed=5)
        cap = max(int(trace.working_set_size * 0.05), 1)
        path = tmp_path / "t.bin"
        write_bin(trace, path)
        out_mem: list = []
        out_file: list = []
        batch_replay("LRU", trace, cap, out=out_mem)
        batch_replay("LRU", str(path), cap, chunk_size=1024, out=out_file)
        assert out_mem == out_file

    def test_batch_supported_matches_registry(self):
        assert batch_supported("LRU") and batch_supported("SIEVE")
        assert not batch_supported("SCIP")
        assert set(BATCH_POLICIES) == {"LRU", "FIFO", "CLOCK", "SIEVE"}


@pytest.mark.slow
class TestFullMatrix:
    """The full pre-merge matrix — hundreds of combos, opt-in via -m slow."""

    @pytest.mark.parametrize("name", sorted(BATCH_POLICIES))
    def test_exhaustive(self, name):
        trace = make_workload("CDN-T", n_requests=30_000, seed=3)
        keys = np.array([r.key for r in trace.requests], np.int64)
        sizes = np.array([r.size for r in trace.requests], np.int64)
        wss = int(sizes[np.unique(keys, return_index=True)[1]].sum())
        for cap_div in (100, 20, 5):
            for chunk in (1 << 20, 1999, 337, 1):
                assert_equivalent(name, keys, sizes, max(wss // cap_div, 1), chunk)
        for seed in range(36):
            rkeys, rsizes = _random_trace(seed)
            tot = int(rsizes.sum())
            for cap in (1, max(tot // 50, 1), max(tot // 8, 1), 2 * tot):
                for chunk in (1 << 20, 337):
                    assert_equivalent(name, rkeys, rsizes, cap, chunk)
