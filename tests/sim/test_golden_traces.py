"""Golden-trace regression gate: bit-exact hit/miss decisions, forever.

``golden/golden_traces.json`` pins, for every (workload, cache-fraction,
policy) cell, the exact miss ratios (``repr``-exact floats), the raw
counters, and a SHA-256 over the full per-request hit/miss sequence — all
captured from the pre-optimization engine.  Any change to the replay
machinery, the intrusive queue, or a policy's decision logic that alters
*one bit* of behaviour fails these tests.

The suite also pins the two internal equivalences the engine overhaul
relies on:

* the bulk :meth:`~repro.cache.base.CachePolicy.replay` loop is
  decision-identical to the per-request ``request()`` loop, and
* the engine's fast path and rich path report identical aggregate metrics.

Regenerating the snapshots is a deliberate act: delete the JSON and re-run
the generation recipe in ``golden/README.md`` — never "update to match".
"""

from __future__ import annotations

import hashlib
import json
import pathlib

import pytest

from repro.cache.arc import ARCCache
from repro.cache.lru import LRUCache
from repro.core.sci import SCICache
from repro.core.scip import SCIPCache
from repro.sim.engine import simulate

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "golden_traces.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())

POLICIES = {"LRU": LRUCache, "ARC": ARCCache, "SCIP": SCIPCache, "SCI": SCICache}
WORKLOADS = ("CDN-T", "CDN-W", "CDN-A")
FRACTIONS = (0.02, 0.10)
FIXTURES = {"CDN-T": "cdn_t_small", "CDN-W": "cdn_w_small", "CDN-A": "cdn_a_small"}


def _hit_seq_sha256(flags) -> str:
    """Hash of the hit/miss sequence, one byte per request (1=hit)."""
    return hashlib.sha256(bytes(bytearray(1 if h else 0 for h in flags))).hexdigest()


def test_golden_file_covers_the_full_grid():
    expected = {
        f"{w}|{frac}|{p}" for w in WORKLOADS for frac in FRACTIONS for p in POLICIES
    }
    assert set(GOLDEN) == expected


@pytest.mark.parametrize("cell", sorted(GOLDEN), ids=lambda c: c.replace("|", "-"))
def test_golden_cell(cell, request):
    wname, frac, pname = cell.split("|")
    trace = request.getfixturevalue(FIXTURES[wname])
    gold = GOLDEN[cell]
    cap = max(int(trace.working_set_size * float(frac)), 1)
    assert cap == gold["capacity"], "workload generation drifted"

    policy = POLICIES[pname](cap)
    out: list = []
    policy.replay(trace.requests, out)
    st = policy.stats

    assert len(out) == len(trace)
    assert st.hits == gold["hits"]
    assert st.misses == gold["misses"]
    assert st.evictions == gold["evictions"]
    assert repr(st.miss_ratio) == gold["miss_ratio"]
    assert repr(st.byte_miss_ratio) == gold["byte_miss_ratio"]
    assert _hit_seq_sha256(out) == gold["hit_seq_sha256"]


@pytest.mark.parametrize("pname", sorted(POLICIES))
def test_bulk_replay_matches_per_request_loop(pname, cdn_t_small):
    """`replay` (including the inlined LRU fast loop) is observably identical
    to calling ``request()`` once per request."""
    trace = cdn_t_small
    cap = max(int(trace.working_set_size * 0.02), 1)
    bulk = POLICIES[pname](cap)
    loop = POLICIES[pname](cap)

    out: list = []
    bulk.replay(trace.requests, out)
    seq = [loop.request(r) for r in trace]

    assert [bool(h) for h in out] == seq
    for field in ("hits", "misses", "bytes_hit", "bytes_missed", "evictions", "bypasses"):
        assert getattr(bulk.stats, field) == getattr(loop.stats, field), field
    assert bulk.used == loop.used
    assert bulk.clock == loop.clock
    assert len(bulk) == len(loop)
    if hasattr(bulk, "resident_keys"):  # queue-backed policies expose order too
        assert bulk.resident_keys() == loop.resident_keys()


@pytest.mark.parametrize("pname", ["LRU", "ARC", "SCIP"])
@pytest.mark.parametrize("warmup", [0, 1000])
def test_engine_fast_and_rich_paths_agree(pname, warmup, cdn_t_small):
    trace = cdn_t_small
    cap = max(int(trace.working_set_size * 0.02), 1)
    fast = simulate(POLICIES[pname](cap), trace, warmup=warmup, fast=True)
    rich = simulate(POLICIES[pname](cap), trace, warmup=warmup, fast=False)

    assert fast.miss_ratio == rich.miss_ratio
    assert fast.byte_miss_ratio == rich.byte_miss_ratio
    assert fast.metrics.requests == rich.metrics.requests == len(trace) - warmup
    assert fast.metrics.hits == rich.metrics.hits
    assert fast.metrics.misses == rich.metrics.misses
    assert fast.metrics.bytes_missed == rich.metrics.bytes_missed
    assert fast.metrics.bytes_requested == rich.metrics.bytes_requested
