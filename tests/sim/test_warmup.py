"""Warm-up exclusion semantics: warm-up requests must never leak into the
aggregate metrics, on either engine path and through ``run_grid``.

The reference computation is explicit: drive the policy yourself, snapshot
its stats counters at the warm-up boundary, and compute the tail-only
ratios from the deltas.  Both engine paths and the grid runner must agree
with it exactly.
"""

from __future__ import annotations

import pytest

from repro.cache.lru import LRUCache
from repro.core.scip import SCIPCache
from repro.sim.engine import simulate
from repro.sim.runner import run_grid


def _manual_tail_metrics(factory, trace, capacity, warmup):
    """Ground truth: per-request loop with a stats snapshot at the boundary."""
    policy = factory(capacity)
    requests = trace.requests
    for r in requests[:warmup]:
        policy.request(r)
    st = policy.stats
    h0, m0, bh0, bm0 = st.hits, st.misses, st.bytes_hit, st.bytes_missed
    for r in requests[warmup:]:
        policy.request(r)
    hits = st.hits - h0
    misses = st.misses - m0
    bytes_hit = st.bytes_hit - bh0
    bytes_missed = st.bytes_missed - bm0
    n = hits + misses
    total_bytes = bytes_hit + bytes_missed
    return {
        "requests": n,
        "miss_ratio": misses / n if n else 0.0,
        "byte_miss_ratio": bytes_missed / total_bytes if total_bytes else 0.0,
    }


@pytest.mark.parametrize("factory", [LRUCache, SCIPCache], ids=["LRU", "SCIP"])
@pytest.mark.parametrize("fast", [True, False], ids=["fast", "rich"])
def test_simulate_excludes_warmup_from_aggregates(factory, fast, cdn_t_small):
    trace = cdn_t_small
    cap = max(int(trace.working_set_size * 0.02), 1)
    warmup = len(trace) // 4
    expected = _manual_tail_metrics(factory, trace, cap, warmup)

    res = simulate(factory(cap), trace, warmup=warmup, fast=fast)
    assert res.metrics.requests == expected["requests"] == len(trace) - warmup
    assert res.miss_ratio == expected["miss_ratio"]
    assert res.byte_miss_ratio == expected["byte_miss_ratio"]

    # The warm-up window genuinely changes the answer (compulsory misses
    # land inside it), so agreement above is not vacuous.
    cold = simulate(factory(cap), trace, warmup=0, fast=fast)
    assert cold.miss_ratio != res.miss_ratio


@pytest.mark.parametrize("fast", [True, False], ids=["fast", "rich"])
def test_simulate_with_full_trace_warmup_reports_nothing(fast, cdn_t_small):
    trace = cdn_t_small
    cap = max(int(trace.working_set_size * 0.02), 1)
    res = simulate(LRUCache(cap), trace, warmup=len(trace), fast=fast)
    assert res.metrics.requests == 0
    assert res.miss_ratio == 0.0
    assert res.byte_miss_ratio == 0.0


def test_run_grid_warmup_frac_excludes_warmup(cdn_t_small):
    trace = cdn_t_small
    frac = 0.02
    warmup_frac = 0.25
    cap = max(int(trace.working_set_size * frac), 1)
    warmup = int(len(trace) * warmup_frac)
    expected = _manual_tail_metrics(LRUCache, trace, cap, warmup)

    rows = run_grid({"LRU": LRUCache}, [trace], [frac], warmup_frac=warmup_frac)
    assert len(rows) == 1
    row = rows[0]
    assert row["miss_ratio"] == expected["miss_ratio"]
    assert row["byte_miss_ratio"] == expected["byte_miss_ratio"]

    cold_rows = run_grid({"LRU": LRUCache}, [trace], [frac], warmup_frac=0.0)
    assert cold_rows[0]["miss_ratio"] != row["miss_ratio"]
