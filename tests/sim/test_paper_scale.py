"""Paper-scale replay: the 100 M-request run, opt-in via ``-m slow``.

The paper's traces are 78–100 M requests; this is the acceptance run for
the streaming stack — a 100 M-request CDN-T-profile trace generated in
constant memory straight to disk (~2.4 GB), then replayed end to end from
the ``.bin`` file by the batch LRU core without any full-trace list.  The
trace is written into pytest's tmp dir and deleted afterwards; expect a
few minutes of wall clock and ~10 GB of RAM for the resident-set state
(~31 M distinct objects at 2× working-set capacity).
"""

from __future__ import annotations

import pytest

from repro.sim.batch import batch_replay
from repro.traces.binfmt import BinTraceReader
from repro.traces.streaming import cdn_t_stream_spec, stream_to_bin

N = 100_000_000


@pytest.mark.slow
def test_100m_trace_replays_end_to_end(tmp_path):
    path = tmp_path / "cdn_t_100m.bin"
    header = stream_to_bin(cdn_t_stream_spec(N), path)
    assert header["count"] == N

    with BinTraceReader(path) as reader:
        assert reader.count == N
        wss = reader.wss_estimate

    core = batch_replay("LRU", str(path), 2 * wss)
    st = core.stats
    assert st.hits + st.misses + st.bypasses == N
    # At 2x the working-set estimate evictions are essentially impossible,
    # so the miss ratio is the distinct-object fraction of the stream.
    assert st.evictions == 0
    assert 0.25 < st.misses / (st.hits + st.misses) < 0.40
    assert not core.spilled
    assert core.resident == pytest.approx(header["unique_estimate"], rel=0.05)
