"""Request / Trace / next-access annotation tests."""

from __future__ import annotations

import pytest

from repro.sim.request import (
    NO_NEXT_ACCESS,
    Request,
    Trace,
    annotate_next_access,
    requests_from_arrays,
)


class TestRequest:
    def test_fields(self):
        r = Request(5, 42, 1024)
        assert (r.time, r.key, r.size) == (5, 42, 1024)

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            Request(0, 1, 0)

    def test_equality_and_hash(self):
        assert Request(1, 2, 3) == Request(1, 2, 3)
        assert Request(1, 2, 3) != Request(1, 2, 4)
        assert len({Request(1, 2, 3), Request(1, 2, 3)}) == 1


class TestTrace:
    def test_sequence_protocol(self, tiny_trace):
        assert len(tiny_trace) == 10
        assert tiny_trace[0].key == 1
        assert [r.key for r in tiny_trace][:3] == [1, 2, 3]

    def test_unique_objects_and_wss(self, tiny_trace):
        assert tiny_trace.unique_objects == 5
        assert tiny_trace.working_set_size == 50

    def test_wss_uses_last_seen_size(self):
        tr = Trace([Request(0, 1, 10), Request(1, 1, 99)])
        assert tr.working_set_size == 99

    def test_total_bytes(self, tiny_trace):
        assert tiny_trace.total_bytes == 100

    def test_size_stats(self, tiny_trace):
        s = tiny_trace.size_stats()
        assert s["min"] == s["max"] == s["mean"] == 10

    def test_summary_keys(self, tiny_trace):
        s = tiny_trace.summary()
        assert {"name", "total_requests", "unique_objects", "working_set_size"} <= set(s)


class TestAnnotation:
    def test_next_access_indices(self, tiny_trace):
        annotate_next_access(tiny_trace)
        # Key 1 appears at indices 0, 3, 6, 9.
        assert tiny_trace[0].next_access == 3
        assert tiny_trace[3].next_access == 6
        assert tiny_trace[6].next_access == 9
        assert tiny_trace[9].next_access == NO_NEXT_ACCESS

    def test_singletons_get_sentinel(self, tiny_trace):
        annotate_next_access(tiny_trace)
        assert tiny_trace[4].next_access == NO_NEXT_ACCESS  # key 4
        assert tiny_trace[7].next_access == NO_NEXT_ACCESS  # key 5

    def test_annotated_flag(self, tiny_trace):
        assert not tiny_trace.annotated
        annotate_next_access(tiny_trace)
        assert tiny_trace.annotated

    def test_accepts_plain_sequence(self):
        reqs = [Request(0, 1, 1), Request(1, 1, 1)]
        tr = annotate_next_access(reqs)
        assert isinstance(tr, Trace)
        assert tr[0].next_access == 1


class TestFromArrays:
    def test_builds_requests(self):
        reqs = requests_from_arrays([1, 2], [10, 20])
        assert reqs[0] == Request(0, 1, 10)
        assert reqs[1] == Request(1, 2, 20)

    def test_explicit_times(self):
        reqs = requests_from_arrays([1], [10], times=[99])
        assert reqs[0].time == 99
