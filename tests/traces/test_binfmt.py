"""The binary trace format: round-trip properties and corrupt inputs.

Two contracts pin :mod:`repro.traces.binfmt`:

* **bit-exact round trip** — any sequence of ``(time, key, size)``
  records, written in any chunking, reads back identically through every
  access path (``read_bin``, ``stream_requests``, ``iter_chunks``),
  including empty traces, extreme int64 keys, and >4 GiB object sizes;
* **one canonical error** — every malformed file raises
  :class:`TraceFormatError` carrying the path and byte offset, never a
  stray ``struct.error`` and never a silent partial read.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.request import Request, Trace
from repro.traces.binfmt import (
    FORMAT_VERSION,
    HEADER_SIZE,
    MAGIC,
    RECORD_SIZE,
    BinTraceReader,
    BinTraceWriter,
    TraceFormatError,
    is_bin_trace,
    read_bin,
    write_bin,
)

# Sizes span the interesting range: 1 byte up to past the 4 GiB (u32)
# boundary, where a narrower size field would silently wrap.
_SIZES = st.one_of(
    st.integers(min_value=1, max_value=1 << 20),
    st.integers(min_value=(1 << 32) + 1, max_value=1 << 40),
)
_RECORDS = st.lists(
    st.tuples(
        st.integers(min_value=-(1 << 62), max_value=1 << 62),   # time
        st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1),  # key
        _SIZES,
    ),
    max_size=120,
)


def _write_chunked(records, path, chunk_size):
    with BinTraceWriter(path) as w:
        for lo in range(0, len(records), chunk_size):
            blk = records[lo : lo + chunk_size]
            w.write_chunk(
                np.array([r[0] for r in blk], np.int64),
                np.array([r[1] for r in blk], np.int64),
                np.array([r[2] for r in blk], np.uint64),
            )
    return w.header_dict()


class TestRoundTripProperties:
    @settings(max_examples=40, deadline=None)
    @given(records=_RECORDS, chunk_size=st.integers(min_value=1, max_value=64))
    def test_write_read_stream_bit_exact(self, records, chunk_size, tmp_path_factory):
        path = tmp_path_factory.mktemp("bin") / "t.bin"
        header = _write_chunked(records, path, chunk_size)
        assert header["count"] == len(records)

        back = read_bin(path, verify=True)
        assert [(r.time, r.key, r.size) for r in back] == records

        with BinTraceReader(path) as reader:
            streamed = [(r.time, r.key, r.size) for r in reader.stream_requests(7)]
            assert streamed == records
            chunks = list(reader.iter_chunks(5))
            flat = [
                (int(t), int(k), int(s))
                for times, keys, sizes in chunks
                for t, k, s in zip(times, keys, sizes)
            ]
            assert flat == records

    @settings(max_examples=20, deadline=None)
    @given(records=_RECORDS)
    def test_header_stats_are_exact(self, records, tmp_path_factory):
        path = tmp_path_factory.mktemp("bin") / "t.bin"
        _write_chunked(records, path, 16)
        with BinTraceReader(path) as reader:
            assert reader.count == len(records)
            assert reader.total_bytes == sum(r[2] for r in records)
            assert reader.max_size == (max((r[2] for r in records), default=0))
            if records:
                assert reader.key_min == min(r[1] for r in records)
                assert reader.key_max == max(r[1] for r in records)
            reader.verify()  # payload CRC matches the header

    def test_empty_trace_round_trips(self, tmp_path):
        path = tmp_path / "empty.bin"
        header = write_bin(Trace([], name="empty"), path)
        assert header["count"] == 0
        with BinTraceReader(path) as reader:
            assert len(reader) == 0
            assert list(reader.stream_requests()) == []
            assert list(reader.iter_chunks()) == []
            reader.verify()
        assert len(read_bin(path)) == 0

    def test_over_4gib_object_survives(self, tmp_path):
        # One record past the u32 boundary — a 32-bit size field would
        # wrap this to 1 byte.
        big = (1 << 32) + 1
        path = tmp_path / "big.bin"
        write_bin([Request(0, 1, big)], path)
        with BinTraceReader(path) as reader:
            assert reader.max_size == big
            assert [r.size for r in reader] == [big]

    def test_request_iterables_and_chunk_iterables_agree(self, tmp_path):
        records = [(i, i * 37, i % 5 + 1) for i in range(100)]
        a, b = tmp_path / "a.bin", tmp_path / "b.bin"
        write_bin([Request(t, k, s) for t, k, s in records], a)
        _write_chunked(records, b, 9)
        assert a.read_bytes() == b.read_bytes()


class TestCorruptInputs:
    @pytest.fixture()
    def valid(self, tmp_path):
        path = tmp_path / "valid.bin"
        write_bin([Request(i, i * 3, i + 1) for i in range(50)], path)
        return path

    def _raises(self, path, match):
        with pytest.raises(TraceFormatError, match=match) as exc_info:
            BinTraceReader(path)
        err = exc_info.value
        assert isinstance(err, ValueError)
        assert err.path == str(path)
        assert str(path) in str(err) and f"offset {err.offset}" in str(err)
        return err

    def test_truncated_header(self, valid):
        valid.write_bytes(valid.read_bytes()[:40])
        err = self._raises(valid, "truncated header")
        assert err.offset == 40

    def test_empty_file_is_a_truncated_header(self, valid):
        valid.write_bytes(b"")
        err = self._raises(valid, "truncated header")
        assert err.offset == 0

    def test_truncated_tail_record(self, valid):
        blob = valid.read_bytes()
        valid.write_bytes(blob[:-10])  # cut into the last record
        err = self._raises(valid, "truncated payload")
        payload = len(blob) - 10 - HEADER_SIZE
        assert err.offset == HEADER_SIZE + (payload // RECORD_SIZE) * RECORD_SIZE

    def test_bad_magic(self, valid):
        blob = bytearray(valid.read_bytes())
        blob[0] ^= 0xFF
        valid.write_bytes(bytes(blob))
        err = self._raises(valid, "bad magic")
        assert err.offset == 0

    def test_wrong_version(self, valid):
        blob = bytearray(valid.read_bytes())
        blob[8:12] = (FORMAT_VERSION + 41).to_bytes(4, "little")
        valid.write_bytes(bytes(blob))
        err = self._raises(valid, "unsupported format version")
        assert err.offset == 8

    def test_checksum_mismatch_on_verify(self, valid):
        blob = bytearray(valid.read_bytes())
        blob[HEADER_SIZE + 5] ^= 0xFF  # corrupt the payload, not the header
        valid.write_bytes(bytes(blob))
        reader = BinTraceReader(valid)  # opening is O(1), does not verify
        with pytest.raises(TraceFormatError, match="checksum mismatch") as exc_info:
            reader.verify()
        assert exc_info.value.offset == HEADER_SIZE
        with pytest.raises(TraceFormatError, match="checksum mismatch"):
            read_bin(valid, verify=True)

    def test_trailing_bytes_rejected(self, valid):
        valid.write_bytes(valid.read_bytes() + b"\x00" * RECORD_SIZE)
        self._raises(valid, "trailing bytes")

    def test_abandoned_writer_leaves_unreadable_file(self, tmp_path):
        # A writer that dies mid-stream never finalises the header, so the
        # partial file must not read back as a valid (shorter) trace.
        path = tmp_path / "abandoned.bin"
        w = BinTraceWriter(path)
        w.write_chunk(None, np.arange(10, dtype=np.int64), np.full(10, 7, np.uint64))
        w._fh.flush()  # simulate the process dying before close()
        with pytest.raises(TraceFormatError):
            BinTraceReader(path)
        w.close()

    def test_is_bin_trace_sniffs_magic(self, valid, tmp_path):
        assert is_bin_trace(valid)
        text = tmp_path / "t.lrb"
        text.write_text("0 1 100\n")
        assert not is_bin_trace(text)
        assert not is_bin_trace(tmp_path / "missing.bin")

    def test_magic_is_version_stamped(self):
        # The magic doubles as a human-readable family stamp; the header
        # version is authoritative but the magic must stay 8 bytes.
        assert len(MAGIC) == 8
