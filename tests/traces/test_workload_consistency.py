"""Cross-scale consistency of the workload generators.

The experiment suite runs the same profiles at 20 k (smoke), 60 k (bench)
and 120 k (default) requests; the structural properties the figures rely on
must be stable across scales, or bench results would not predict default
results.
"""

from __future__ import annotations

import pytest

from repro.traces.analysis import reuse_statistics
from repro.traces.cdn import make_workload

SCALES = (15_000, 45_000)


class TestCrossScaleStability:
    @pytest.mark.parametrize("name", ["CDN-T", "CDN-W", "CDN-A"])
    def test_one_hit_rate_stable(self, name):
        rates = [
            reuse_statistics(make_workload(name, n_requests=n))["one_hit_wonder_rate"]
            for n in SCALES
        ]
        assert abs(rates[0] - rates[1]) < 0.12

    @pytest.mark.parametrize("name", ["CDN-T", "CDN-W", "CDN-A"])
    def test_mean_size_stable(self, name):
        means = [
            make_workload(name, n_requests=n).size_stats()["mean"] for n in SCALES
        ]
        assert means[0] == pytest.approx(means[1], rel=0.25)

    def test_reuse_ordering_stable_across_scales(self):
        for n in SCALES:
            r = {
                wl: reuse_statistics(make_workload(wl, n_requests=n))[
                    "requests_per_object"
                ]
                for wl in ("CDN-T", "CDN-W", "CDN-A")
            }
            assert r["CDN-W"] > r["CDN-T"] > r["CDN-A"], (n, r)

    @pytest.mark.parametrize("name", ["CDN-T", "CDN-W", "CDN-A"])
    def test_different_seeds_same_shape(self, name):
        a = reuse_statistics(make_workload(name, n_requests=20_000))
        b = reuse_statistics(make_workload(name, n_requests=20_000, seed=999))
        assert a["requests_per_object"] == pytest.approx(
            b["requests_per_object"], rel=0.15
        )
        assert a["one_hit_wonder_rate"] == pytest.approx(
            b["one_hit_wonder_rate"], abs=0.08
        )

    @pytest.mark.parametrize("name", ["CDN-T", "CDN-W", "CDN-A"])
    def test_component_key_spaces_disjoint(self, name):
        """Core / one-shot / burst / sweep keys must never collide (checked
        with scrambling off so the namespace bands are observable)."""
        from dataclasses import replace

        from repro.traces.cdn import WORKLOADS
        from repro.traces.synthetic import generate_trace

        spec = replace(WORKLOADS[name](n_requests=15_000), scramble_keys=False)
        tr = generate_trace(spec)
        one_lo = spec.n_core
        burst_lo = one_lo + int(spec.n_requests * spec.one_shot_frac)
        sweep_lo = burst_lo + 10_000_000
        counts = {"core": 0, "one": 0, "burst": 0, "sweep": 0}
        for r in tr:
            if r.key >= sweep_lo:
                counts["sweep"] += 1
            elif r.key >= burst_lo:
                counts["burst"] += 1
            elif r.key >= one_lo:
                counts["one"] += 1
            else:
                counts["core"] += 1
        assert all(v > 0 for v in counts.values()), counts
        # Component request shares roughly track the spec.
        n = len(tr)
        assert counts["one"] / n == pytest.approx(spec.one_shot_frac, abs=0.05)
        assert counts["sweep"] / n == pytest.approx(spec.sweep_frac, abs=0.07)
