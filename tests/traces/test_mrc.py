"""Mattson stack-distance / miss-ratio-curve tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.lru import LRUCache
from repro.sim.request import Request, Trace
from repro.traces.mrc import miss_ratio_curve, stack_distances


def trace_of(keys, size=10):
    return Trace([Request(i, k, s if isinstance(size, int) else size[i], )
                  for i, (k, s) in enumerate((k, size) for k in keys)])


class TestStackDistances:
    def test_immediate_reuse_distance_zero(self):
        tr = trace_of([1, 1])
        assert stack_distances(tr) == [(0, 10)]

    def test_classic_sequence(self):
        # a b c b a: b's distance = bytes of {c}=10; a's = bytes of {b,c}=20.
        tr = trace_of(["a", "b", "c", "b", "a"])
        assert stack_distances(tr) == [(10, 10), (20, 10)]

    def test_no_reuse_no_distances(self):
        tr = trace_of([1, 2, 3])
        assert stack_distances(tr) == []

    def test_distance_counts_current_sizes(self):
        reqs = [Request(0, 1, 10), Request(1, 2, 70), Request(2, 1, 10)]
        tr = Trace(reqs)
        assert stack_distances(tr) == [(70, 10)]


class TestMissRatioCurve:
    def test_matches_replayed_lru_exactly_unit_sizes(self):
        import random

        rng = random.Random(3)
        reqs = [Request(i, rng.randrange(50), 1) for i in range(3_000)]
        tr = Trace(reqs)
        for cap in (5, 17, 40):
            mrc = miss_ratio_curve(tr, [cap])[cap]
            lru = LRUCache(cap)
            for r in tr:
                lru.request(r)
            assert mrc == pytest.approx(lru.stats.miss_ratio)

    def test_close_to_replayed_lru_variable_sizes(self, cdn_t_small):
        cap = int(cdn_t_small.working_set_size * 0.03)
        mrc = miss_ratio_curve(cdn_t_small, [cap])[cap]
        lru = LRUCache(cap)
        for r in cdn_t_small:
            lru.request(r)
        assert mrc == pytest.approx(lru.stats.miss_ratio, abs=0.02)

    def test_monotone_in_cache_size(self, cdn_t_small):
        sizes = [int(cdn_t_small.working_set_size * f) for f in (0.01, 0.05, 0.2)]
        curve = miss_ratio_curve(cdn_t_small, sizes)
        vals = [curve[s] for s in sizes]
        assert vals == sorted(vals, reverse=True)

    def test_empty_sizes_rejected(self, tiny_trace):
        with pytest.raises(ValueError):
            miss_ratio_curve(tiny_trace, [])

    def test_all_unique_trace(self):
        tr = trace_of([1, 2, 3, 4])
        assert miss_ratio_curve(tr, [100]) == {100: 1.0}

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(0, 12), min_size=2, max_size=200),
        st.integers(1, 15),
    )
    def test_property_matches_lru(self, keys, cap):
        """Property: for unit sizes, the Mattson curve equals replayed LRU
        at every capacity."""
        tr = Trace([Request(i, k, 1) for i, k in enumerate(keys)])
        mrc = miss_ratio_curve(tr, [cap])[cap]
        lru = LRUCache(cap)
        for r in tr:
            lru.request(r)
        assert mrc == pytest.approx(lru.stats.miss_ratio)
