"""Oracle labelling (ZRO/P-ZRO/A-variants) on hand-built traces."""

from __future__ import annotations

import pytest

from repro.sim.request import Request, Trace
from repro.traces.oracle import label_events, treated_replay


def trace_of(keys, size=10):
    return Trace([Request(i, k, size) for i, k in enumerate(keys)])


class TestLabeling:
    def test_one_shot_flood_is_zro(self):
        # Cache of 3 unit objects; keys never repeat → every completed
        # tenure is a ZRO episode.
        tr = trace_of(list(range(10)))
        labels = label_events(tr, cache_bytes=30)
        # Objects 0..6 get evicted unused (7,8,9 still resident at the end).
        assert labels.zro == set(range(7))
        assert labels.miss_events == 10
        assert labels.hit_events == 0

    def test_resident_tail_not_labelled(self):
        tr = trace_of([1, 2])
        labels = label_events(tr, cache_bytes=100)
        assert labels.zro == set()  # nothing was evicted

    def test_pzro_is_last_hit_before_eviction(self):
        # key 1: miss(0), hit(1), hit(2) — then flooded out, never again.
        # Its LAST hit (index 2) is the P-ZRO event; index 1 is not.
        tr = trace_of([1, 1, 1, 2, 3, 4, 5])
        labels = label_events(tr, cache_bytes=30)
        assert 2 in labels.pzro
        assert 1 not in labels.pzro

    def test_azro_degradation(self):
        # key 1 has a ZRO episode (inserted at 0, flooded, no hit), then
        # returns at index 4 and gets a hit at index 5 → the episode at 0
        # is an A-ZRO.
        tr = trace_of([1, 2, 3, 4, 1, 1, 9, 9, 9])
        labels = label_events(tr, cache_bytes=30)
        assert 0 in labels.zro
        assert 0 in labels.a_zro

    def test_apzro_degradation(self):
        # key 1: miss(0), hit(1) → evicted at idx 4 → returns (5: miss),
        # hit again (6).  The P-ZRO event at index 1 degrades to A-P-ZRO.
        tr = trace_of([1, 1, 2, 3, 4, 1, 1, 9, 8])
        labels = label_events(tr, cache_bytes=30)
        assert 1 in labels.pzro
        assert 1 in labels.a_pzro

    def test_proportions_bounded(self, cdn_t_small):
        labels = label_events(cdn_t_small, int(cdn_t_small.working_set_size * 0.02))
        assert 0.0 <= labels.zro_share_of_misses <= 1.0
        assert 0.0 <= labels.pzro_share_of_hits <= 1.0
        assert 0.0 <= labels.azro_share_of_zros <= 1.0
        assert 0.0 <= labels.apzro_share_of_pzros <= 1.0


class TestTreatedReplay:
    def test_full_treatment_reduces_miss_ratio(self, cdn_t_small):
        cache = int(cdn_t_small.working_set_size * 0.02)
        labels = label_events(cdn_t_small, cache)
        treated = treated_replay(cdn_t_small, cache, labels, True, True)
        assert treated < labels.miss_ratio

    def test_zro_treatment_beats_pzro_treatment(self, cdn_t_small):
        cache = int(cdn_t_small.working_set_size * 0.02)
        labels = label_events(cdn_t_small, cache)
        mr_z = treated_replay(cdn_t_small, cache, labels, True, False)
        mr_p = treated_replay(cdn_t_small, cache, labels, False, True)
        assert mr_z <= mr_p

    def test_combined_is_best(self, cdn_t_small):
        cache = int(cdn_t_small.working_set_size * 0.02)
        labels = label_events(cdn_t_small, cache)
        mr_z = treated_replay(cdn_t_small, cache, labels, True, False)
        mr_p = treated_replay(cdn_t_small, cache, labels, False, True)
        mr_b = treated_replay(cdn_t_small, cache, labels, True, True)
        assert mr_b <= min(mr_z, mr_p) + 1e-9

    def test_subadditivity(self, cdn_t_small):
        """(MR_LRU−MR(Z)) + (MR_LRU−MR(P)) > MR_LRU−MR(Z+P) — §2.2."""
        cache = int(cdn_t_small.working_set_size * 0.02)
        labels = label_events(cdn_t_small, cache)
        base = labels.miss_ratio
        gz = base - treated_replay(cdn_t_small, cache, labels, True, False)
        gp = base - treated_replay(cdn_t_small, cache, labels, False, True)
        gb = base - treated_replay(cdn_t_small, cache, labels, True, True)
        assert gz + gp > gb - 1e-9

    def test_fraction_zero_equals_lru(self, cdn_t_small):
        cache = int(cdn_t_small.working_set_size * 0.02)
        labels = label_events(cdn_t_small, cache)
        mr0 = treated_replay(cdn_t_small, cache, labels, True, True, fraction=0.0)
        assert mr0 == pytest.approx(labels.miss_ratio)

    def test_fraction_monotone_roughly(self, cdn_t_small):
        cache = int(cdn_t_small.working_set_size * 0.02)
        labels = label_events(cdn_t_small, cache)
        mrs = [
            treated_replay(cdn_t_small, cache, labels, True, False, fraction=f)
            for f in (0.0, 0.5, 1.0)
        ]
        assert mrs[2] <= mrs[0]
        # Middle point may wobble from replay interaction but stays between
        # the endpoints within a small tolerance.
        assert mrs[1] <= mrs[0] + 0.02

    def test_invalid_fraction(self, cdn_t_small):
        labels = label_events(cdn_t_small, 1000)
        with pytest.raises(ValueError):
            treated_replay(cdn_t_small, 1000, labels, fraction=1.5)
