"""Round-trip coverage for :mod:`repro.traces.io`.

Both on-disk formats (LRB ``time key size`` and headered CSV) must
preserve keys, sizes, and request order exactly, and corrupt files must
fail with a clear error rather than producing a silently-wrong trace.
The ``iter_*`` streaming readers must agree bit-for-bit with their
materialising counterparts while keeping peak memory at O(chunk), and
the text<->binary converters must round-trip through both directions.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.sim.request import Request, Trace
from repro.traces.cdn import make_workload
from repro.traces.io import (
    bin_to_text,
    iter_csv,
    iter_lrb,
    read_csv,
    read_lrb,
    text_to_bin,
    write_csv,
    write_lrb,
)


@pytest.fixture(scope="module")
def small_trace():
    return make_workload("CDN-T", n_requests=2_000)


def _assert_same_requests(a: Trace, b: Trace) -> None:
    assert len(a) == len(b)
    for ra, rb in zip(a, b):
        assert (ra.time, ra.key, ra.size) == (rb.time, rb.key, rb.size)


class TestRoundTrip:
    def test_lrb_preserves_keys_sizes_and_order(self, small_trace, tmp_path):
        path = tmp_path / "trace.lrb"
        write_lrb(small_trace, path)
        back = read_lrb(path)
        _assert_same_requests(small_trace, back)
        # Derived aggregates survive the trip too.
        assert back.working_set_size == small_trace.working_set_size
        assert back.unique_objects == small_trace.unique_objects

    def test_csv_preserves_keys_sizes_and_order(self, small_trace, tmp_path):
        path = tmp_path / "trace.csv"
        write_csv(small_trace, path)
        back = read_csv(path)
        _assert_same_requests(small_trace, back)

    def test_formats_agree_with_each_other(self, small_trace, tmp_path):
        write_lrb(small_trace, tmp_path / "t.lrb")
        write_csv(small_trace, tmp_path / "t.csv")
        _assert_same_requests(read_lrb(tmp_path / "t.lrb"), read_csv(tmp_path / "t.csv"))

    def test_trace_name_defaults_to_stem_and_is_overridable(self, tmp_path):
        trace = Trace([Request(0, 1, 10)], name="orig")
        path = tmp_path / "mytrace.lrb"
        write_lrb(trace, path)
        assert read_lrb(path).name == "mytrace"
        assert read_lrb(path, name="renamed").name == "renamed"

    def test_blank_lines_and_rows_are_skipped(self, tmp_path):
        lrb = tmp_path / "gaps.lrb"
        lrb.write_text("0 1 100\n\n1 2 200\n\n")
        assert [r.key for r in read_lrb(lrb)] == [1, 2]
        csvp = tmp_path / "gaps.csv"
        csvp.write_text("time,key,size\n0,1,100\n\n1,2,200\n")
        assert [r.key for r in read_csv(csvp)] == [1, 2]


class TestCorruptFiles:
    def test_lrb_wrong_column_count_names_the_line(self, tmp_path):
        path = tmp_path / "bad.lrb"
        path.write_text("0 1 100\n1 2\n")
        with pytest.raises(ValueError, match=r"bad\.lrb:2"):
            read_lrb(path)

    def test_lrb_non_numeric_field_raises(self, tmp_path):
        path = tmp_path / "bad.lrb"
        path.write_text("0 abc 100\n")
        with pytest.raises(ValueError):
            read_lrb(path)

    def test_csv_bad_header_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("ts,id,bytes\n0,1,100\n")
        with pytest.raises(ValueError, match="expected header"):
            read_csv(path)

    def test_csv_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="expected header"):
            read_csv(path)

    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            read_lrb(tmp_path / "nope.lrb")

    def test_streaming_iterators_raise_identically(self, tmp_path):
        # iter_* are the implementation under read_*; their errors carry
        # the same path:lineno prefix.
        path = tmp_path / "bad.lrb"
        path.write_text("0 1 100\n1 2\n")
        with pytest.raises(ValueError, match=r"bad\.lrb:2"):
            list(iter_lrb(path))
        csvp = tmp_path / "bad.csv"
        csvp.write_text("ts,id,bytes\n0,1,100\n")
        with pytest.raises(ValueError, match="expected header"):
            list(iter_csv(csvp))


class TestStreamingIterators:
    def _flatten(self, chunks):
        chunks = list(chunks)
        if not chunks:
            return [], [], []
        return [
            np.concatenate([c[i] for c in chunks]).tolist() for i in range(3)
        ]

    @pytest.mark.parametrize("chunk_size", [1, 7, 1 << 20])
    def test_chunking_never_changes_content(self, small_trace, tmp_path, chunk_size):
        write_lrb(small_trace, tmp_path / "t.lrb")
        write_csv(small_trace, tmp_path / "t.csv")
        want = [
            [r.time for r in small_trace],
            [r.key for r in small_trace],
            [r.size for r in small_trace],
        ]
        assert self._flatten(iter_lrb(tmp_path / "t.lrb", chunk_size)) == want
        assert self._flatten(iter_csv(tmp_path / "t.csv", chunk_size)) == want

    def test_empty_file_yields_no_chunks(self, tmp_path):
        (tmp_path / "e.lrb").write_text("")
        assert list(iter_lrb(tmp_path / "e.lrb")) == []
        (tmp_path / "e.csv").write_text("time,key,size\n")
        assert list(iter_csv(tmp_path / "e.csv")) == []

    def test_chunk_size_validated(self, tmp_path):
        (tmp_path / "t.lrb").write_text("0 1 100\n")
        with pytest.raises(ValueError, match="chunk_size"):
            list(iter_lrb(tmp_path / "t.lrb", chunk_size=0))

    def test_streaming_read_bounds_peak_memory_on_1m_line_file(self, tmp_path):
        # The regression this guards: a readlines()-style reader holds all
        # 1 M line strings (tens of MB) before the first chunk emerges;
        # the streaming reader's peak is a few chunk buffers.  Tracing the
        # first two chunks is enough to catch full-file materialisation
        # without tracemalloc dominating the suite's runtime.
        path = tmp_path / "big.lrb"
        with open(path, "w") as fh:
            for base in range(0, 1_000_000, 20_000):
                fh.write(
                    "".join(
                        f"{i} {(i * 2654435761) % (1 << 40)} {i % 9973 + 1}\n"
                        for i in range(base, base + 20_000)
                    )
                )
        it = iter_lrb(path, chunk_size=1 << 16)
        tracemalloc.start()
        try:
            first = next(it)
            second = next(it)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert peak < 32 << 20, f"streaming read peaked at {peak / 1e6:.1f} MB"
        total = len(first[1]) + len(second[1]) + sum(len(k) for _, k, _ in it)
        assert total == 1_000_000


class TestTextBinConversion:
    def test_lrb_to_bin_to_csv_round_trip(self, small_trace, tmp_path):
        from repro.traces.binfmt import read_bin

        write_lrb(small_trace, tmp_path / "t.lrb")
        header = text_to_bin(tmp_path / "t.lrb", tmp_path / "t.bin")
        assert header["count"] == len(small_trace)
        _assert_same_requests(small_trace, read_bin(tmp_path / "t.bin"))

        n = bin_to_text(tmp_path / "t.bin", tmp_path / "back.csv")
        assert n == len(small_trace)
        _assert_same_requests(small_trace, read_csv(tmp_path / "back.csv"))
        n = bin_to_text(tmp_path / "t.bin", tmp_path / "back.lrb")
        assert n == len(small_trace)
        _assert_same_requests(small_trace, read_lrb(tmp_path / "back.lrb"))

    def test_format_sniffed_from_suffix_and_overridable(self, small_trace, tmp_path):
        from repro.traces.binfmt import read_bin

        write_csv(small_trace, tmp_path / "t.csv")
        text_to_bin(tmp_path / "t.csv", tmp_path / "t.bin")  # sniffed csv
        _assert_same_requests(small_trace, read_bin(tmp_path / "t.bin"))
        # Explicit fmt wins over the suffix.
        write_lrb(small_trace, tmp_path / "odd.txt")
        text_to_bin(tmp_path / "odd.txt", tmp_path / "t2.bin", fmt="lrb")
        assert (tmp_path / "t.bin").read_bytes() == (tmp_path / "t2.bin").read_bytes()

    def test_bad_fmt_rejected(self, tmp_path):
        (tmp_path / "t.lrb").write_text("0 1 100\n")
        with pytest.raises(ValueError, match="fmt must be"):
            text_to_bin(tmp_path / "t.lrb", tmp_path / "t.bin", fmt="parquet")
