"""Round-trip coverage for :mod:`repro.traces.io`.

Both on-disk formats (LRB ``time key size`` and headered CSV) must
preserve keys, sizes, and request order exactly, and corrupt files must
fail with a clear error rather than producing a silently-wrong trace.
"""

from __future__ import annotations

import pytest

from repro.sim.request import Request, Trace
from repro.traces.cdn import make_workload
from repro.traces.io import read_csv, read_lrb, write_csv, write_lrb


@pytest.fixture(scope="module")
def small_trace():
    return make_workload("CDN-T", n_requests=2_000)


def _assert_same_requests(a: Trace, b: Trace) -> None:
    assert len(a) == len(b)
    for ra, rb in zip(a, b):
        assert (ra.time, ra.key, ra.size) == (rb.time, rb.key, rb.size)


class TestRoundTrip:
    def test_lrb_preserves_keys_sizes_and_order(self, small_trace, tmp_path):
        path = tmp_path / "trace.lrb"
        write_lrb(small_trace, path)
        back = read_lrb(path)
        _assert_same_requests(small_trace, back)
        # Derived aggregates survive the trip too.
        assert back.working_set_size == small_trace.working_set_size
        assert back.unique_objects == small_trace.unique_objects

    def test_csv_preserves_keys_sizes_and_order(self, small_trace, tmp_path):
        path = tmp_path / "trace.csv"
        write_csv(small_trace, path)
        back = read_csv(path)
        _assert_same_requests(small_trace, back)

    def test_formats_agree_with_each_other(self, small_trace, tmp_path):
        write_lrb(small_trace, tmp_path / "t.lrb")
        write_csv(small_trace, tmp_path / "t.csv")
        _assert_same_requests(read_lrb(tmp_path / "t.lrb"), read_csv(tmp_path / "t.csv"))

    def test_trace_name_defaults_to_stem_and_is_overridable(self, tmp_path):
        trace = Trace([Request(0, 1, 10)], name="orig")
        path = tmp_path / "mytrace.lrb"
        write_lrb(trace, path)
        assert read_lrb(path).name == "mytrace"
        assert read_lrb(path, name="renamed").name == "renamed"

    def test_blank_lines_and_rows_are_skipped(self, tmp_path):
        lrb = tmp_path / "gaps.lrb"
        lrb.write_text("0 1 100\n\n1 2 200\n\n")
        assert [r.key for r in read_lrb(lrb)] == [1, 2]
        csvp = tmp_path / "gaps.csv"
        csvp.write_text("time,key,size\n0,1,100\n\n1,2,200\n")
        assert [r.key for r in read_csv(csvp)] == [1, 2]


class TestCorruptFiles:
    def test_lrb_wrong_column_count_names_the_line(self, tmp_path):
        path = tmp_path / "bad.lrb"
        path.write_text("0 1 100\n1 2\n")
        with pytest.raises(ValueError, match=r"bad\.lrb:2"):
            read_lrb(path)

    def test_lrb_non_numeric_field_raises(self, tmp_path):
        path = tmp_path / "bad.lrb"
        path.write_text("0 abc 100\n")
        with pytest.raises(ValueError):
            read_lrb(path)

    def test_csv_bad_header_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("ts,id,bytes\n0,1,100\n")
        with pytest.raises(ValueError, match="expected header"):
            read_csv(path)

    def test_csv_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="expected header"):
            read_csv(path)

    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            read_lrb(tmp_path / "nope.lrb")
