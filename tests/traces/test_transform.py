"""Trace transformation utilities."""

from __future__ import annotations

import pytest

from repro.sim.request import Request, Trace
from repro.traces.transform import concat, interleave, sample_objects, slice_trace


class TestSlice:
    def test_contents_and_retiming(self, tiny_trace):
        sub = slice_trace(tiny_trace, 2, 5)
        assert len(sub) == 3
        assert [r.key for r in sub] == [tiny_trace[i].key for i in range(2, 5)]
        assert [r.time for r in sub] == [0, 1, 2]

    def test_open_end(self, tiny_trace):
        assert len(slice_trace(tiny_trace, 4)) == len(tiny_trace) - 4


class TestConcat:
    def test_lengths_add(self, tiny_trace):
        out = concat([tiny_trace, tiny_trace])
        assert len(out) == 2 * len(tiny_trace)
        assert out[len(tiny_trace)].key == tiny_trace[0].key

    def test_regime_shift_construction(self, tiny_trace, scan_trace):
        out = concat([tiny_trace, scan_trace], name="shift")
        assert out.name == "shift"
        times = [r.time for r in out]
        assert times == sorted(times)


class TestInterleave:
    def test_key_isolation(self, tiny_trace):
        out = interleave([tiny_trace, tiny_trace])
        keys_a = {r.key for r in out if r.key < 10**12}
        keys_b = {r.key for r in out if r.key >= 10**12}
        assert len(keys_a) == len(keys_b) == tiny_trace.unique_objects
        assert not keys_a & keys_b

    def test_merge_respects_time(self, tiny_trace, scan_trace):
        out = interleave([tiny_trace, scan_trace], isolate_keys=True)
        assert len(out) == len(tiny_trace) + len(scan_trace)

    def test_shared_keyspace_mode(self, tiny_trace):
        out = interleave([tiny_trace, tiny_trace], isolate_keys=False)
        assert out.unique_objects == tiny_trace.unique_objects


class TestSampleObjects:
    def test_keeps_whole_objects(self, zipf_trace):
        sub = sample_objects(zipf_trace, 0.5, seed=1)
        # Every sampled object retains ALL its requests.
        full_counts = {}
        for r in zipf_trace:
            full_counts[r.key] = full_counts.get(r.key, 0) + 1
        sub_counts = {}
        for r in sub:
            sub_counts[r.key] = sub_counts.get(r.key, 0) + 1
        for k, c in sub_counts.items():
            assert c == full_counts[k], "object sampled partially"

    def test_fraction_one_is_identity(self, tiny_trace):
        sub = sample_objects(tiny_trace, 1.0)
        assert len(sub) == len(tiny_trace)

    def test_preserves_reuse_structure_statistically(self, cdn_t_small):
        from repro.traces.analysis import reuse_statistics

        full = reuse_statistics(cdn_t_small)
        half = reuse_statistics(sample_objects(cdn_t_small, 0.5, seed=2))
        assert half["requests_per_object"] == pytest.approx(
            full["requests_per_object"], rel=0.15
        )
        assert half["one_hit_wonder_rate"] == pytest.approx(
            full["one_hit_wonder_rate"], abs=0.08
        )
