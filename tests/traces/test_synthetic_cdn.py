"""Synthetic generator and CDN profile tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.traces.analysis import fig1_panel, reuse_statistics
from repro.traces.cdn import cdn_a_spec, cdn_t_spec, cdn_w_spec, make_workload
from repro.traces.synthetic import WorkloadSpec, generate_trace, zipf_probs


class TestZipf:
    def test_normalised(self):
        p = zipf_probs(100, 0.9)
        assert p.sum() == pytest.approx(1.0)
        assert (np.diff(p) <= 0).all()

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            zipf_probs(0, 1.0)


class TestGenerator:
    def test_deterministic_per_seed(self):
        a = generate_trace(WorkloadSpec(n_requests=5_000, seed=3))
        b = generate_trace(WorkloadSpec(n_requests=5_000, seed=3))
        assert len(a) == len(b)
        assert all(x == y for x, y in zip(a, b))

    def test_different_seeds_differ(self):
        a = generate_trace(WorkloadSpec(n_requests=5_000, seed=1))
        b = generate_trace(WorkloadSpec(n_requests=5_000, seed=2))
        assert any(x != y for x, y in zip(a, b))

    def test_sizes_within_clamps(self):
        spec = WorkloadSpec(n_requests=5_000, min_size=100, max_size=5_000)
        tr = generate_trace(spec)
        sizes = [r.size for r in tr]
        assert min(sizes) >= 100
        assert max(sizes) <= 5_000

    def test_per_key_size_stable(self):
        tr = generate_trace(WorkloadSpec(n_requests=10_000, seed=5))
        seen = {}
        for r in tr:
            if r.key in seen:
                assert seen[r.key] == r.size, "object size must be stable"
            seen[r.key] = r.size

    def test_times_monotonic(self):
        tr = generate_trace(WorkloadSpec(n_requests=3_000))
        times = [r.time for r in tr]
        assert times == sorted(times)

    def test_component_budget_rejected_when_no_core(self):
        with pytest.raises(ValueError):
            generate_trace(WorkloadSpec(one_shot_frac=0.6, burst_frac=0.4))

    def test_one_shot_population_exists(self):
        spec = WorkloadSpec(n_requests=10_000, seed=2)
        tr = generate_trace(spec)
        stats = reuse_statistics(tr)
        assert stats["one_hit_wonder_rate"] > 0.1


class TestCDNProfiles:
    @pytest.mark.parametrize("name", ["CDN-T", "CDN-W", "CDN-A"])
    def test_profiles_generate(self, name):
        tr = make_workload(name, n_requests=10_000)
        assert len(tr) > 8_000
        assert tr.name == name

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            make_workload("CDN-X")

    def test_reuse_ordering_matches_table1(self, cdn_t_small, cdn_w_small, cdn_a_small):
        """Requests-per-object: CDN-W ≫ CDN-T > CDN-A (Table 1 ratios
        42.7 / 3.19 / 1.83)."""
        r = {
            t.name: reuse_statistics(t)["requests_per_object"]
            for t in (cdn_t_small, cdn_w_small, cdn_a_small)
        }
        assert r["CDN-W"] > r["CDN-T"] > r["CDN-A"]

    def test_mean_sizes_in_cdn_band(self, cdn_t_small, cdn_w_small, cdn_a_small):
        for t in (cdn_t_small, cdn_w_small, cdn_a_small):
            mean = t.size_stats()["mean"]
            assert 10_000 < mean < 200_000, f"{t.name} mean {mean}"

    def test_one_hit_rate_ordering(self, cdn_t_small, cdn_a_small):
        """CDN-A (photo churn) has more one-hit wonders than CDN-T."""
        a = reuse_statistics(cdn_a_small)["one_hit_wonder_rate"]
        t = reuse_statistics(cdn_t_small)["one_hit_wonder_rate"]
        assert a > t

    def test_specs_expose_knobs(self):
        for factory in (cdn_t_spec, cdn_w_spec, cdn_a_spec):
            spec = factory(n_requests=1_000)
            assert spec.n_requests == 1_000
            assert 0 < spec.one_shot_frac < 1


class TestFig1Shapes:
    def test_zro_share_falls_with_cache_size(self, cdn_t_small):
        rows = fig1_panel(cdn_t_small, fractions=(0.01, 0.10))
        assert rows[0].zro_share_of_misses >= rows[1].zro_share_of_misses - 0.05

    def test_miss_ratio_falls_with_cache_size(self, cdn_t_small):
        rows = fig1_panel(cdn_t_small, fractions=(0.01, 0.10))
        assert rows[0].miss_ratio_lru > rows[1].miss_ratio_lru

    def test_treatment_reduces_miss_ratio(self, cdn_t_small):
        rows = fig1_panel(cdn_t_small, fractions=(0.02,))
        r = rows[0]
        assert r.miss_ratio_treat_zro < r.miss_ratio_lru
        assert r.miss_ratio_treat_pzro <= r.miss_ratio_lru
        assert r.miss_ratio_treat_both <= r.miss_ratio_treat_zro
