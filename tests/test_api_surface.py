"""The stable ``repro.api`` facade and the unified policy registry.

Satellite acceptance for the cluster PR: every name in
``repro.api.__all__`` must import and resolve, ``make_policy`` must
round-trip every registered policy, and the old import paths must keep
working (via deprecation shims where the home moved).
"""

from __future__ import annotations

import warnings

import pytest

import repro.api
from repro.cache.base import CachePolicy
from repro.cache.registry import (
    available_policies,
    make_policy,
    policy_registry,
    register_policy,
    resolve_policy,
    unregister_policy,
)
from repro.sim.request import Request


class TestApiSurface:
    def test_every_name_in_all_resolves(self):
        for name in repro.api.__all__:
            assert getattr(repro.api, name, None) is not None, name

    def test_all_is_the_public_surface(self):
        # The facade's contract: __all__ is explicit and sorted into the
        # documented groups, and star-import honours it.
        ns = {}
        exec("from repro.api import *", ns)
        exported = {k for k in ns if not k.startswith("__")}
        assert exported == set(repro.api.__all__)

    def test_facade_covers_the_subsystems(self):
        for name in (
            "make_policy",       # policies
            "simulate",          # simulation
            "SmartCache",        # embedding
            "read_bin",          # paper-scale traces: binary format
            "simulate_batch",    # paper-scale traces: batch replay
            "mrc_sweep",         # paper-scale traces: parallel sweeps
            "CacheService",      # serving
            "Orchestrator",      # orchestration
            "ClusterRouter",     # cluster
            "NetEngine",         # cache networks
            "Topology",          # cache networks
            "make_placement",    # cache networks
            "ZipfReceivers",     # cache networks
            "ObsConfig",         # observability
            "TenancyController",        # multi-tenancy
            "TenantPartitionedCache",   # multi-tenancy
            "multi_tenant_trace",       # multi-tenancy
            "run_bench",                # unified benchmarks
            "bench_registry",           # unified benchmarks
        ):
            assert name in repro.api.__all__

    def test_bench_facade_lists_the_targets(self):
        registry = repro.api.bench_registry()
        assert set(registry) == {
            "engine", "serve", "orchestrate", "cluster", "net", "tenancy",
        }
        for target, spec in registry.items():
            assert spec.target == target
            assert spec.description, target
            assert spec.default_output.startswith("BENCH_"), target

    def test_batch_facade_is_live(self):
        # The paper-scale names are functional through the facade, not
        # just importable: stream a tiny trace end to end in memory.
        trace = repro.api.make_workload("CDN-T", n_requests=2_000)
        cap = max(int(trace.working_set_size * 0.05), 1)
        rich = repro.api.simulate(repro.api.make_policy("LRU", cap), trace)
        assert repro.api.batch_supported("LRU")
        batch = repro.api.simulate_batch("LRU", trace, cap)
        assert batch.miss_ratio == rich.miss_ratio
        assert batch.byte_miss_ratio == rich.byte_miss_ratio


class TestPolicyRegistry:
    @pytest.mark.parametrize("name", available_policies())
    def test_make_policy_round_trip(self, name):
        policy = make_policy(name, 1_000_000)
        assert isinstance(policy, CachePolicy)
        assert policy.capacity == 1_000_000
        # The instance is live: it can take a request.
        policy.request(Request(0, 1, 100))

    def test_paper_policies_registered_once_centrally(self):
        # SCIP/SCI used to be special-cased at three call sites; now they
        # are ordinary registry rows.
        names = available_policies()
        assert "SCIP" in names and "SCI" in names

    def test_unknown_name_lists_the_menu(self):
        with pytest.raises(KeyError, match="unknown policy 'nope'.*available"):
            resolve_policy("nope")

    def test_registry_copy_is_isolated(self):
        snapshot = policy_registry()
        snapshot["EVIL"] = object
        assert "EVIL" not in available_policies()

    def test_register_policy_rejects_duplicates(self):
        with pytest.raises(ValueError, match="already registered"):
            register_policy("LRU", resolve_policy("LRU"))

    def test_register_policy_extends_the_menu(self):
        from repro.cache.lru import LRUCache

        class Custom(LRUCache):
            pass

        try:
            register_policy("X-CUSTOM", Custom)
            assert isinstance(make_policy("X-CUSTOM", 1000), Custom)
        finally:
            unregister_policy("X-CUSTOM")
        with pytest.raises(KeyError):
            resolve_policy("X-CUSTOM")


class TestOldPathsKeepWorking:
    def test_cache_package_make_policy_delegates(self):
        from repro.cache import make_policy as old_make_policy

        assert type(old_make_policy("SCIP", 10_000)) is type(
            make_policy("SCIP", 10_000)
        )

    def test_bench_registry_shim_warns_and_matches(self):
        from repro.perf.bench import bench_registry

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            shimmed = bench_registry()
        assert any(w.category is DeprecationWarning for w in caught)
        assert shimmed == policy_registry()

    def test_smart_cache_importable_from_both_homes(self):
        from repro.api import SmartCache as from_api
        from repro.cache.smart import SmartCache as from_home

        assert from_api is from_home
