"""Failure injection: malformed inputs, corrupted files, degenerate
configurations — every public entry point must fail loudly and precisely,
never corrupt state silently.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache import make_policy
from repro.core.scip import SCIPCache
from repro.sim.request import Request, Trace


class TestRequestValidation:
    def test_zero_and_negative_sizes(self):
        with pytest.raises(ValueError):
            Request(0, 1, 0)
        with pytest.raises(ValueError):
            Request(0, 1, -10)


class TestPolicyConfigGuards:
    @pytest.mark.parametrize("name", ["LRU", "SCIP", "ASC-IP", "LIRS", "S3-FIFO"])
    def test_zero_capacity(self, name):
        builder = SCIPCache if name == "SCIP" else (lambda c: make_policy(name, c))
        with pytest.raises(ValueError):
            builder(0)

    def test_scip_bad_knobs(self):
        for kwargs in [
            {"history_fraction": -0.1},
            {"update_interval": 0},
            {"escape": -0.5},
            {"escape": 2.0},
        ]:
            with pytest.raises(ValueError):
                SCIPCache(100, **kwargs)


class TestCorruptTraceFiles:
    def test_truncated_lrb_line(self, tmp_path):
        from repro.traces.io import read_lrb

        p = tmp_path / "x.tr"
        p.write_text("0 1 10\n1 2\n")
        with pytest.raises(ValueError, match="x.tr:2"):
            read_lrb(p)

    def test_non_numeric_lrb(self, tmp_path):
        from repro.traces.io import read_lrb

        p = tmp_path / "x.tr"
        p.write_text("0 one 10\n")
        with pytest.raises(ValueError):
            read_lrb(p)

    def test_zero_size_in_file(self, tmp_path):
        from repro.traces.io import read_lrb

        p = tmp_path / "x.tr"
        p.write_text("0 1 0\n")
        with pytest.raises(ValueError):
            read_lrb(p)

    def test_missing_file(self):
        from repro.traces.io import read_lrb

        with pytest.raises(FileNotFoundError):
            read_lrb("/nonexistent/trace.tr")


class TestModelInputGuards:
    def test_fit_empty(self):
        from repro.ml.gbm import GBMRegressor
        from repro.ml.nn import NNClassifier

        with pytest.raises(ValueError):
            GBMRegressor().fit(np.empty((0, 3)), np.empty(0))
        with pytest.raises(ValueError):
            NNClassifier().fit(np.empty((0, 3)), np.empty(0))

    def test_metrics_shape_mismatch(self):
        from repro.ml.metrics import confusion

        with pytest.raises(ValueError):
            confusion(np.zeros(3), np.zeros(4))


class TestTransformGuards:
    def test_bad_slice(self, tiny_trace):
        from repro.traces.transform import slice_trace

        with pytest.raises(ValueError):
            slice_trace(tiny_trace, 5, 3)

    def test_empty_concat(self):
        from repro.traces.transform import concat

        with pytest.raises(ValueError):
            concat([])

    def test_sampling_bounds(self, tiny_trace):
        from repro.traces.transform import sample_objects

        with pytest.raises(ValueError):
            sample_objects(tiny_trace, 0.0)
        with pytest.raises(ValueError):
            sample_objects(tiny_trace, 1.5)


class TestStateIntegrityAfterErrors:
    def test_bypass_leaves_cache_consistent(self):
        """An oversized request must not disturb resident state."""
        p = SCIPCache(100, update_interval=10**9)
        p.request(Request(0, 1, 40))
        p.request(Request(1, 2, 40))
        before = sorted(p.resident_keys())
        p.request(Request(2, 3, 500))  # bypassed
        assert sorted(p.resident_keys()) == before
        p.check_invariants()

    def test_engine_rejects_unknown_scale(self):
        from repro.experiments.common import get_trace

        with pytest.raises(KeyError):
            get_trace("CDN-T", scale="galactic")

    def test_runner_unknown_trace_fraction_key(self, tiny_trace):
        from repro.cache.lru import LRUCache
        from repro.sim.runner import run_grid

        with pytest.raises(KeyError):
            run_grid({"LRU": LRUCache}, [tiny_trace], {"other-name": [0.1]})
