"""CLI, report generator, and parallel runner tests."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestCLI:
    def test_simulate(self, capsys):
        rc = main(
            ["simulate", "--policy", "LRU", "--workload", "CDN-T",
             "-n", "5000", "--fraction", "0.05"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "miss_ratio=" in out and "LRU" in out

    def test_simulate_unknown_policy(self, capsys):
        rc = main(["simulate", "--policy", "NOPE", "-n", "1000"])
        assert rc == 2
        assert "unknown policy" in capsys.readouterr().out

    def test_simulate_from_trace_file(self, tmp_path, capsys, tiny_trace):
        from repro.traces.io import write_lrb

        path = tmp_path / "t.tr"
        write_lrb(tiny_trace, path)
        rc = main(["simulate", "--policy", "LRU", "--trace-file", str(path),
                   "--fraction", "0.5"])
        assert rc == 0

    def test_workload_generate_and_save(self, tmp_path, capsys):
        out_file = tmp_path / "w.tr"
        rc = main(["workload", "--name", "CDN-W", "-n", "4000",
                   "-o", str(out_file)])
        assert rc == 0
        assert out_file.exists()

    def test_workload_analyze(self, capsys):
        rc = main(["workload", "--name", "CDN-T", "-n", "4000", "--analyze"])
        assert rc == 0
        assert "ZRO%" in capsys.readouterr().out

    def test_experiment_table1(self, capsys):
        rc = main(["experiment", "table1", "--scale", "smoke"])
        assert rc == 0
        assert "Table 1" in capsys.readouterr().out

    def test_experiment_unknown(self, capsys):
        rc = main(["experiment", "fig99"])
        assert rc == 2

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestParallelRunner:
    def test_matches_serial_results(self):
        from repro.sim.parallel import run_grid_parallel
        from repro.sim.engine import simulate
        from repro.cache.lru import LRUCache
        from repro.traces.cdn import make_workload

        rows = run_grid_parallel(
            ["LRU", "FIFO"], ["CDN-T"], n_requests=8_000,
            cache_fractions=[0.02], max_workers=2,
        )
        assert len(rows) == 2
        tr = make_workload("CDN-T", n_requests=8_000)
        cap = int(tr.working_set_size * 0.02)
        serial = simulate(LRUCache(cap), tr).miss_ratio
        par = next(r for r in rows if r["policy"] == "LRU")["miss_ratio"]
        assert par == pytest.approx(serial)

    def test_policy_kwargs_forwarded(self):
        from repro.sim.parallel import run_grid_parallel

        rows = run_grid_parallel(
            {"SCIP": {"seed": 1}}, ["CDN-T"], n_requests=6_000,
            cache_fractions=[0.02], max_workers=1,
        )
        assert rows[0]["policy"] == "SCIP"
        assert 0 < rows[0]["miss_ratio"] < 1

    def test_per_workload_fractions(self):
        from repro.sim.parallel import run_grid_parallel

        rows = run_grid_parallel(
            ["LRU"], ["CDN-T", "CDN-A"], n_requests=5_000,
            cache_fractions={"CDN-T": [0.02], "CDN-A": [0.01, 0.02]},
            max_workers=2,
        )
        assert len(rows) == 3


class TestReport:
    def test_report_generates_and_verdicts(self, tmp_path):
        from repro.experiments.report import write_report

        path = tmp_path / "EXPERIMENTS.md"
        write_report(str(path), scale="smoke")
        text = path.read_text()
        # Every paper artifact has a section.
        for section in ["Table 1", "Figure 1", "Figure 3", "Figure 4",
                        "Figure 6", "Figure 7", "Figure 8", "Figure 9",
                        "Figure 10", "Figure 11", "Figure 12", "Ablations"]:
            assert section in text, f"missing section {section}"
        assert "shape:" in text
