"""CLI surface: ``simulate --trace-out/--obs-summary`` and ``repro obs``."""

from __future__ import annotations

import json

from repro.cli import main


class TestSimulateTracing:
    def test_trace_out_writes_stream_and_manifest(self, tmp_path, capsys):
        out = tmp_path / "ev.jsonl"
        rc = main(
            [
                "simulate",
                "--policy",
                "SCIP",
                "--workload",
                "CDN-T",
                "-n",
                "4000",
                "--trace-out",
                str(out),
            ]
        )
        assert rc == 0
        text = capsys.readouterr().out
        assert f"wrote {out}" in text
        assert out.exists()
        manifest = json.loads((tmp_path / "ev.jsonl.manifest.json").read_text())
        assert manifest["policy"]["name"] == "SCIP"

    def test_obs_summary_prints_registry_table(self, tmp_path, capsys):
        rc = main(
            [
                "simulate",
                "--policy",
                "SCIP",
                "--workload",
                "CDN-T",
                "-n",
                "4000",
                "--obs-summary",
            ]
        )
        assert rc == 0
        text = capsys.readouterr().out
        assert "metric" in text
        assert "w_mru" in text

    def test_untraced_simulate_prints_no_obs_lines(self, capsys):
        rc = main(["simulate", "--policy", "LRU", "--workload", "CDN-T", "-n", "4000"])
        assert rc == 0
        assert "wrote" not in capsys.readouterr().out


class TestObsSubcommand:
    def _record(self, tmp_path):
        out = tmp_path / "ev.jsonl.gz"
        rc = main(
            [
                "simulate",
                "--policy",
                "SCIP",
                "--workload",
                "CDN-T",
                "-n",
                "6000",
                "--trace-out",
                str(out),
                "--snapshot-every",
                "2000",
            ]
        )
        assert rc == 0
        return out

    def test_reconstructs_learner_trajectories(self, tmp_path, capsys):
        out = self._record(tmp_path)
        capsys.readouterr()
        rc = main(["obs", str(out), "--rows", "6"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "events" in text
        assert "w_mru" in text and "lambda" in text
        # Sampled table stays within the row budget (+header/footer slack).
        data_rows = [
            l
            for l in text.splitlines()
            if len(l.split()) == 4 and l.split()[0].isdigit()
        ]
        assert len(data_rows) <= 6

    def test_missing_file_is_a_clean_error(self, tmp_path, capsys):
        rc = main(["obs", str(tmp_path / "nope.jsonl")])
        assert rc == 2
        assert "no such event stream" in capsys.readouterr().out

    def test_future_schema_is_a_clean_error(self, tmp_path, capsys):
        bad = tmp_path / "future.jsonl"
        bad.write_text(json.dumps({"event": "schema", "version": 999}) + "\n")
        rc = main(["obs", str(bad)])
        assert rc == 2
        assert "cannot read" in capsys.readouterr().out
