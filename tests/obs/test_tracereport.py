"""Trace-report reader/renderer: parsing, tables, waterfalls, CLI."""

from __future__ import annotations

import gzip
import json

import pytest

from repro.obs.sinks import SpanSink
from repro.obs.span import TraceConfig, Tracer
from repro.obs.tracereport import (
    build_traces,
    critical_path_totals,
    format_trace_report,
    format_waterfall,
    pick_trace,
    read_spans,
    stage_table,
)


@pytest.fixture
def span_file(tmp_path):
    """Two real traces (one with an origin fetch, one hit-only)."""
    path = str(tmp_path / "spans.jsonl.gz")
    sink = SpanSink(path)
    tracer = Tracer(sinks=[sink], config=TraceConfig(sample=1.0))
    slow = tracer.start_trace("request", key=1)
    q = slow.child("queue_wait", shard=0)
    q.end()
    f = slow.child("origin_fetch")
    f.child("origin_attempt", attempt=1).end()
    f.end()
    slow.end(hit=False)
    fast = tracer.start_trace("request", key=2)
    fast.child("policy").end()
    fast.end(hit=True)
    tracer.close()
    return path


class TestReadSpans:
    def test_round_trip(self, span_file):
        records = read_spans(span_file)
        assert len(records) == 6
        assert all(r["kind"] == "span" for r in records)
        traces = build_traces(records)
        assert len(traces) == 2

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_spans(str(tmp_path / "nope.jsonl"))

    def test_wrong_stream_rejected(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"event": "schema", "version": 1}\n')
        with pytest.raises(ValueError, match="stream"):
            read_spans(str(path))

    def test_future_version_rejected(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        path.write_text(
            '{"event": "schema", "stream": "spans", "version": 99}\n'
        )
        with pytest.raises(ValueError, match="version"):
            read_spans(str(path))

    def test_corrupt_line_rejected(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        path.write_text(
            '{"event": "schema", "stream": "spans", "version": 1}\n'
            "not json at all\n"
        )
        with pytest.raises(ValueError):
            read_spans(str(path))

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        path.write_text("")
        with pytest.raises(ValueError):
            read_spans(str(path))


class TestTables:
    def test_stage_table_quantiles_are_exact(self, span_file):
        rows = stage_table(read_spans(span_file))
        by_stage = {r["stage"]: r for r in rows}
        assert by_stage["request"]["count"] == 2
        assert by_stage["origin_fetch"]["count"] == 1
        for row in rows:
            assert row["p50_us"] <= row["p90_us"] <= row["p99_us"] <= row["max_us"]

    def test_critical_path_totals_sum_to_root_latency(self, span_file):
        traces = build_traces(read_spans(span_file))
        rows, total_root_us = critical_path_totals(traces)
        assert total_root_us > 0
        assert sum(r["total_us"] for r in rows) == pytest.approx(
            total_root_us, rel=1e-6
        )
        assert sum(r["share"] for r in rows) == pytest.approx(1.0, rel=1e-6)

    def test_pick_trace_returns_slowest_root(self, span_file):
        traces = build_traces(read_spans(span_file))
        picked = pick_trace(traces)
        roots = {
            tid: next(r for r in recs if r["parent"] is None)
            for tid, recs in traces.items()
        }
        slowest = max(
            roots, key=lambda t: roots[t]["end_ns"] - roots[t]["start_ns"]
        )
        assert picked == slowest


class TestWaterfall:
    def test_waterfall_renders_every_span_with_depth(self, span_file):
        traces = build_traces(read_spans(span_file))
        tid = pick_trace(traces)
        text = format_waterfall(traces[tid])
        lines = text.splitlines()
        assert len(lines) == 1 + len(traces[tid])  # title + one per span
        assert "origin_attempt" in text
        assert "=" in text  # bars actually drawn

    def test_report_end_to_end(self, span_file):
        report = format_trace_report(span_file, waterfalls=2)
        assert "stage" in report
        assert "critical path" in report
        assert report.count("trace ") >= 2

    def test_report_specific_trace(self, span_file):
        traces = build_traces(read_spans(span_file))
        tid = sorted(traces)[1]
        report = format_trace_report(span_file, trace_id=str(tid))
        assert f"trace {tid}" in report

    def test_report_unknown_trace(self, span_file):
        with pytest.raises(KeyError):
            format_trace_report(span_file, trace_id="123456")


class TestCLI:
    def test_trace_report_command(self, span_file, capsys):
        from repro.cli import main

        assert main(["trace-report", span_file]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "request" in out

    def test_trace_report_missing_file(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["trace-report", str(tmp_path / "nope.jsonl")]) == 2
        assert "no such span stream" in capsys.readouterr().out

    def test_trace_report_rejects_event_stream(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "events.jsonl"
        path.write_text('{"event": "schema", "version": 1}\n')
        assert main(["trace-report", str(path)]) == 2

    def test_trace_report_table_only(self, span_file, capsys):
        from repro.cli import main

        assert main(["trace-report", span_file, "--waterfalls", "0"]) == 0
        out = capsys.readouterr().out
        assert "stage" in out
