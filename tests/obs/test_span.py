"""Span/Tracer unit behaviour: topology, sampling, tail-keep, critical
path exactness, forced close, and SLO error-budget arithmetic."""

from __future__ import annotations

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import RingBufferSink
from repro.obs.span import SLO, SLOTracker, TraceConfig, Tracer, critical_path


def _trace_records(sink):
    """Group sink records by trace id."""
    by_trace = {}
    for rec in sink.as_list():
        by_trace.setdefault(rec["trace"], []).append(rec)
    return by_trace


class TestSpanLifecycle:
    def test_root_and_children_share_trace_and_link_parents(self):
        sink = RingBufferSink()
        tracer = Tracer(sinks=[sink])
        root = tracer.start_trace("request", key=7)
        a = root.child("queue_wait", shard=1)
        a.end()
        b = root.child("origin_fetch")
        c = b.child("origin_attempt", attempt=1)
        c.end("timeout")
        b.end("error")
        root.end("error")
        recs = sink.as_list()
        assert len(recs) == 4
        assert len({r["trace"] for r in recs}) == 1
        by_name = {r["name"]: r for r in recs}
        assert by_name["request"]["parent"] is None
        assert by_name["queue_wait"]["parent"] == by_name["request"]["span"]
        assert by_name["origin_attempt"]["parent"] == by_name["origin_fetch"]["span"]
        assert by_name["origin_attempt"]["status"] == "timeout"
        assert by_name["request"]["tags"] == {"key": 7}
        assert all(r["kind"] == "span" for r in recs)
        assert all(r["end_ns"] >= r["start_ns"] for r in recs)

    def test_end_is_idempotent(self):
        tracer = Tracer()
        root = tracer.start_trace()
        root.end("error")
        first_end = root.t_end_ns
        root.end("ok")  # ignored: first end wins
        assert root.status == "error"
        assert root.t_end_ns == first_end
        assert tracer.traces_finished == 1

    def test_child_ended_after_root_counts_as_orphan(self):
        tracer = Tracer()
        root = tracer.start_trace()
        straggler = root.child("queue_wait")
        root.end()
        # Trace not yet finalised: the child is still open.
        assert tracer.traces_finished == 0
        straggler.end()
        assert tracer.traces_finished == 1
        # A *second* end after finalisation is the orphan case.
        late = tracer.start_trace()
        late_child = late.child("x")
        late_child.end()
        late.end()
        ghost = tracer._start_span(late.trace_id, late.span_id, "ghost", None)
        ghost.end()
        assert tracer.orphan_spans == 1

    def test_annotate_merges_tags(self):
        tracer = Tracer()
        root = tracer.start_trace()
        root.annotate(hit=True)
        root.end(shard=2)
        assert root.tags == {"hit": True, "shard": 2}


class TestSampling:
    def test_head_sampling_is_deterministic_and_roughly_proportional(self):
        def kept(seed):
            sink = RingBufferSink()
            tracer = Tracer(
                sinks=[sink],
                config=TraceConfig(sample=0.25, tail_keep=False, seed=seed),
            )
            for _ in range(400):
                tracer.start_trace().end()
            return tracer.traces_kept, [r["trace"] for r in sink.as_list()]

        kept_a, ids_a = kept(3)
        kept_b, ids_b = kept(3)
        assert ids_a == ids_b  # seeded => reproducible
        assert 40 < kept_a < 160  # ~100 expected out of 400
        kept_c, ids_c = kept(4)
        assert ids_a != ids_c  # seed actually matters

    def test_aggregation_sees_unsampled_traces(self):
        tracer = Tracer(config=TraceConfig(sample=0.0, tail_keep=False))
        for _ in range(10):
            root = tracer.start_trace("request")
            root.child("policy").end()
            root.end()
        assert tracer.traces_kept == 0
        breakdown = tracer.stage_breakdown()
        assert breakdown["request"]["count"] == 10
        assert breakdown["policy"]["count"] == 10

    def test_tail_keep_retains_error_and_failover_traces(self):
        sink = RingBufferSink()
        tracer = Tracer(sinks=[sink], config=TraceConfig(sample=0.0))
        ok = tracer.start_trace()
        ok.end()
        bad = tracer.start_trace()
        bad.child("origin_fetch").end("error")
        bad.end()
        hop = tracer.start_trace()
        hop.child("failover_hop", frm="n0", to="n1").end()
        hop.end()
        kept = _trace_records(sink)
        assert ok.trace_id not in kept
        assert bad.trace_id in kept
        assert hop.trace_id in kept
        assert tracer.traces_kept == 2 and tracer.traces_dropped == 1

    def test_tail_latency_threshold_keeps_slow_traces(self):
        sink = RingBufferSink()
        tracer = Tracer(
            sinks=[sink],
            config=TraceConfig(sample=0.0, tail_latency_us=0.001),
        )
        slow = tracer.start_trace()
        slow.end()  # any real duration exceeds a 1ns threshold
        assert slow.trace_id in _trace_records(sink)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            TraceConfig(sample=1.5)
        with pytest.raises(ValueError):
            TraceConfig(tail_latency_us=0)


class TestCriticalPath:
    def _rec(self, span, parent, name, start, end, status="ok"):
        return {
            "kind": "span",
            "trace": 0,
            "span": span,
            "parent": parent,
            "name": name,
            "start_ns": start,
            "end_ns": end,
            "status": status,
        }

    def test_segments_sum_exactly_to_root_duration(self):
        records = [
            self._rec(0, None, "request", 0, 1000),
            self._rec(1, 0, "queue_wait", 100, 300),
            self._rec(2, 0, "origin_fetch", 300, 900),
            self._rec(3, 2, "origin_attempt", 350, 850),
        ]
        segments = critical_path(records)
        assert sum(ns for _, ns in segments) == 1000
        totals = {}
        for stage, ns in segments:
            totals[stage] = totals.get(stage, 0) + ns
        # request self time: [0,100) + [900,1000) = 200
        assert totals == {
            "request": 200,
            "queue_wait": 200,
            "origin_fetch": 100,
            "origin_attempt": 500,
        }

    def test_overlapping_siblings_credit_first_starter(self):
        records = [
            self._rec(0, None, "request", 0, 100),
            self._rec(1, 0, "a", 10, 60),
            self._rec(2, 0, "b", 40, 90),
        ]
        segments = critical_path(records)
        assert sum(ns for _, ns in segments) == 100
        totals = {}
        for stage, ns in segments:
            totals[stage] = totals.get(stage, 0) + ns
        assert totals == {"request": 20, "a": 50, "b": 30}

    def test_empty_or_rootless_records(self):
        assert critical_path([]) == []
        assert critical_path([self._rec(1, 0, "child", 0, 10)]) == []

    def test_live_traces_reconcile(self):
        tracer = Tracer()
        root = tracer.start_trace("request")
        q = root.child("queue_wait")
        q.end()
        f = root.child("origin_fetch")
        f.child("origin_attempt").end()
        f.end()
        root.end()
        breakdown = tracer.stage_breakdown()
        crit_total = sum(v["critical_total_us"] for v in breakdown.values())
        root_total = breakdown["request"]["total_us"]
        assert crit_total == pytest.approx(root_total, rel=0.01)


class TestClose:
    def test_close_flushes_open_spans_as_unclosed(self):
        sink = RingBufferSink()
        tracer = Tracer(sinks=[sink], config=TraceConfig(sample=0.0))
        root = tracer.start_trace()
        root.child("origin_fetch")  # never ended: simulated mid-trace crash
        tracer.close()
        assert tracer.unclosed_spans == 2  # root + child
        kept = _trace_records(sink)
        assert root.trace_id in kept  # forced traces are tail-kept
        statuses = {r["name"]: r["status"] for r in kept[root.trace_id]}
        assert statuses == {"request": "unclosed", "origin_fetch": "unclosed"}

    def test_stats_shape(self):
        tracer = Tracer()
        tracer.start_trace().end()
        st = tracer.stats()
        assert st["traces_started"] == st["traces_finished"] == 1
        assert st["open_traces"] == 0
        assert st["orphan_spans"] == 0


class TestSLOTracker:
    def test_burn_rate_and_budget(self):
        reg = MetricsRegistry()
        slo = SLOTracker([SLO("request", latency_us=100.0, target=0.9)], reg)
        for _ in range(8):
            slo.observe("request", 50.0)
        slo.observe("request", 500.0)  # latency breach
        slo.observe("request", 50.0, ok=False)  # status breach
        out = slo.summary()["request"]
        assert out["total"] == 10 and out["breaches"] == 2
        # breach ratio 0.2 against a 0.1 budget: burning 2x.
        assert out["burn_rate"] == pytest.approx(2.0)
        assert out["budget_remaining"] == pytest.approx(-1.0)
        snap = reg.snapshot()
        assert snap["slo_breaches"]["stage=request"]["value"] == 2

    def test_unknown_stage_ignored_and_duplicates_rejected(self):
        slo = SLOTracker([SLO("request", latency_us=100.0)])
        slo.observe("nonexistent", 1.0)
        assert slo.summary()["request"]["total"] == 0
        with pytest.raises(ValueError):
            SLOTracker([SLO("a", 1.0), SLO("a", 2.0)])

    def test_invalid_objectives(self):
        with pytest.raises(ValueError):
            SLO("a", latency_us=0)
        with pytest.raises(ValueError):
            SLO("a", latency_us=1.0, target=1.0)
