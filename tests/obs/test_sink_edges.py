"""Sink edge cases: gzip round-trips, sink-ordering dataflow, and span
streams surviving a replay that raises mid-trace."""

from __future__ import annotations

import gzip
import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.probe import Probe
from repro.obs.sinks import (
    EVENT_SCHEMA,
    SPAN_SCHEMA,
    JSONLSink,
    RegistryRecorder,
    SnapshotEmitter,
    SpanSink,
)
from repro.obs.span import TraceConfig, Tracer


def _read_jsonl(path):
    opener = gzip.open if str(path).endswith(".gz") else open
    with opener(path, "rt", encoding="utf-8") as fh:
        return [json.loads(line) for line in fh]


class TestJSONLGzip:
    def test_gz_suffix_writes_a_real_gzip_stream(self, tmp_path):
        path = tmp_path / "events.jsonl.gz"
        sink = JSONLSink(str(path))
        sink.write({"event": "admit", "key": 1, "size": 10})
        sink.close()
        # The file must be actual gzip (magic bytes), not a plain file
        # with a misleading name.
        assert path.read_bytes()[:2] == b"\x1f\x8b"
        records = _read_jsonl(path)
        assert records[0] == {"event": "schema", "version": EVENT_SCHEMA}
        assert records[1]["event"] == "admit"

    def test_plain_and_gz_streams_carry_identical_records(self, tmp_path):
        events = [{"event": "admit", "key": i, "size": i * 10} for i in range(5)]
        plain, gz = tmp_path / "e.jsonl", tmp_path / "e.jsonl.gz"
        for target in (plain, gz):
            sink = JSONLSink(str(target))
            for e in events:
                sink.write(e)
            sink.close()
        assert _read_jsonl(plain) == _read_jsonl(gz)

    def test_close_is_idempotent(self, tmp_path):
        sink = JSONLSink(str(tmp_path / "e.jsonl"))
        sink.close()
        sink.close()  # second close must not raise

    def test_span_sink_header_is_stream_tagged(self, tmp_path):
        path = tmp_path / "spans.jsonl.gz"
        SpanSink(str(path)).close()
        (header,) = _read_jsonl(path)
        assert header == {
            "event": "schema",
            "stream": "spans",
            "version": SPAN_SCHEMA,
        }


class TestSinkOrdering:
    def test_snapshot_after_recorder_sees_current_registry(self):
        """Registration order is dataflow: recorder-then-emitter snapshots
        include the event that triggered the snapshot."""
        registry = MetricsRegistry()
        recorder = RegistryRecorder(registry)
        emitter = SnapshotEmitter(registry, every=2)
        probe = Probe([recorder, emitter])
        for t in range(1, 5):
            probe.emit("admit", t=t, key=t, size=10)
        assert len(emitter.snapshots) == 2
        # Snapshot at t=2 must already count both admits folded so far.
        snap = emitter.snapshots[0]
        assert snap["t"] == 2
        assert snap["registry"]["events"]["event=admit"]["value"] == 2

    def test_snapshot_before_recorder_lags_one_event(self):
        """The reversed order is a real (documented) footgun: the snapshot
        fires before the triggering event is folded."""
        registry = MetricsRegistry()
        recorder = RegistryRecorder(registry)
        emitter = SnapshotEmitter(registry, every=2)
        probe = Probe([emitter, recorder])
        for t in range(1, 3):
            probe.emit("admit", t=t, key=t, size=10)
        snap = emitter.snapshots[0]
        assert snap["registry"]["events"]["event=admit"]["value"] == 1  # lags

    def test_emitter_collapses_multiple_crossed_boundaries(self):
        registry = MetricsRegistry()
        emitter = SnapshotEmitter(registry, every=10)
        emitter.write({"event": "admit", "t": 55})
        assert len(emitter.snapshots) == 1
        emitter.write({"event": "admit", "t": 56})
        assert len(emitter.snapshots) == 1  # next boundary is 60
        emitter.write({"event": "admit", "t": 60})
        assert len(emitter.snapshots) == 2


class TestSpanSinkMidTraceRaise:
    def test_replay_raising_mid_trace_still_yields_complete_stream(self, tmp_path):
        """A load loop that dies with open spans must still leave a
        parseable span file: close() force-ends the opens as 'unclosed'
        and tail-keeps the forced trace."""
        path = tmp_path / "spans.jsonl.gz"
        sink = SpanSink(str(path))
        tracer = Tracer(sinks=[sink], config=TraceConfig(sample=0.0))

        def replay():
            root = tracer.start_trace("request", key=1)
            root.child("queue_wait").end()
            root.child("origin_fetch")  # left open...
            raise RuntimeError("origin exploded")  # ...when the loop dies

        with pytest.raises(RuntimeError):
            replay()
        tracer.close()

        from repro.obs.tracereport import build_traces, read_spans

        records = read_spans(str(path))
        traces = build_traces(records)
        assert len(traces) == 1
        (spans,) = traces.values()
        statuses = {r["name"]: r["status"] for r in spans}
        assert statuses["queue_wait"] == "ok"
        assert statuses["origin_fetch"] == "unclosed"
        assert statuses["request"] == "unclosed"
        assert all(r["end_ns"] is not None for r in spans)
        assert tracer.unclosed_spans == 2

    def test_close_with_no_open_traces_writes_nothing_extra(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        sink = SpanSink(str(path))
        tracer = Tracer(sinks=[sink])
        tracer.start_trace().end()
        tracer.close()
        records = _read_jsonl(path)
        assert len(records) == 2  # header + the one root span
        assert tracer.unclosed_spans == 0
