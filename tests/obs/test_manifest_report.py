"""Run manifests and the JSONL → learner-trajectory reader."""

from __future__ import annotations

import json

from repro.cache.lru import LRUCache
from repro.core.scip import SCIPCache
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    git_revision,
    write_manifest,
)
from repro.obs.report import (
    event_counts,
    format_learner_table,
    format_summary,
    learner_series,
)
from repro.obs.sinks import EVENT_SCHEMA


class TestManifest:
    def test_schema_and_environment_fields(self):
        doc = build_manifest()
        assert doc["schema"] == MANIFEST_SCHEMA
        assert doc["event_schema"] == EVENT_SCHEMA
        assert doc["python"]
        assert doc["platform"]
        assert "git_sha" in doc

    def test_policy_scalar_params_captured(self):
        doc = build_manifest(policy=SCIPCache(10_000, seed=42))
        pol = doc["policy"]
        assert pol["name"] == "SCIP"
        assert pol["capacity"] == 10_000
        # Seed comes from the policy when not passed explicitly.
        assert doc["seed"] == 42
        # No private state, containers, or callables leak into the record.
        assert all(not k.startswith("_") for k in pol)
        assert all(
            isinstance(v, (bool, int, float, str)) or v is None
            for v in pol.values()
        )

    def test_explicit_seed_wins(self):
        doc = build_manifest(policy=SCIPCache(10_000, seed=42), seed=7)
        assert doc["seed"] == 7

    def test_seedless_policy_yields_null_seed(self):
        assert build_manifest(policy=LRUCache(1_000))["seed"] is None

    def test_trace_and_extra_sections(self, cdn_t_small):
        doc = build_manifest(trace=cdn_t_small, extra={"warmup": 5})
        assert doc["trace"]["name"] == "CDN-T"
        assert doc["trace"]["requests"] == len(cdn_t_small)
        assert doc["trace"]["working_set_size"] == cdn_t_small.working_set_size
        assert doc["extra"] == {"warmup": 5}

    def test_write_roundtrip(self, tmp_path):
        path = tmp_path / "run.manifest.json"
        write_manifest(str(path), build_manifest(policy=LRUCache(100)))
        doc = json.loads(path.read_text())
        assert doc["schema"] == MANIFEST_SCHEMA
        assert doc["policy"]["name"] == "LRU"

    def test_git_revision_never_raises(self):
        rev = git_revision()
        assert set(rev) == {"git_sha", "git_dirty"}


class TestReport:
    EVENTS = [
        {"seq": 1, "event": "weight_update", "t": 10, "w_mru": 0.8, "w_lru": 0.2},
        {"seq": 2, "event": "lambda_update", "t": 20, "value": 0.1},
        {"seq": 3, "event": "lambda_restart", "t": 30, "value": 0.45},
        {"seq": 4, "event": "weight_update", "t": 30, "w_mru": 0.6, "w_lru": 0.4},
        {"seq": 5, "event": "evict", "t": 31, "key": 1, "size": 9, "hits": 0},
    ]

    def test_event_counts(self):
        counts = event_counts(self.EVENTS)
        assert counts == {
            "weight_update": 2,
            "lambda_update": 1,
            "lambda_restart": 1,
            "evict": 1,
        }
        assert "5 events" in format_summary(counts)
        assert format_summary({}) == "(empty event stream)"

    def test_learner_series(self):
        series = learner_series(self.EVENTS)
        assert series["weights"] == [(10, 0.8, 0.2), (30, 0.6, 0.4)]
        # The restart point also lands in the λ trajectory.
        assert series["lam"] == [(20, 0.1), (30, 0.45)]
        assert series["restarts"] == [(30, 0.45)]

    def test_seq_fallback_when_clockless(self):
        series = learner_series(
            [{"seq": 3, "event": "lambda_update", "value": 0.2}]
        )
        assert series["lam"] == [(3, 0.2)]

    def test_format_learner_table_merges_and_samples(self):
        table = format_learner_table(learner_series(self.EVENTS), max_rows=2)
        lines = table.splitlines()
        assert lines[0].split() == ["t", "w_mru", "w_lru", "lambda"]
        # First and last merged rows survive sampling; restart footer appended.
        assert "0.8000" in lines[1]
        assert "0.4500" in lines[2]
        assert lines[-1].startswith("restarts:")

    def test_format_learner_table_empty(self):
        table = format_learner_table({"weights": [], "lam": [], "restarts": []})
        assert table == "(no learner events in stream)"
