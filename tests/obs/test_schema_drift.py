"""Schema-drift guard: the probe-event namespace must stay closed.

Three sets must agree exactly:

* event names *emitted* anywhere in ``src/`` (literal ``probe.emit("...")``
  calls plus directly constructed ``{"event": "..."}`` records);
* the :data:`repro.obs.probe.PROBE_EVENTS` registry;
* the per-event documentation table in ``docs/obs_schema.md``.

A new event added in code without registry + docs (or a documented event
that no code can produce) fails here, naming the drifted event.  Span
records are exempt by design: they carry ``kind: "span"`` and no
``event`` field (asserted below), so the span stream cannot leak names
into this namespace.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.obs.probe import PROBE_EVENTS

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src"
DOCS = REPO / "docs" / "obs_schema.md"

#: The schema header pseudo-event is infrastructure, not a probe event.
_EXEMPT = {"schema"}


def emitted_event_names() -> set:
    """Every event-name literal the source tree can emit."""
    names = set()
    for path in SRC.rglob("*.py"):
        text = path.read_text()
        # probe.emit("name", ...) — possibly split across lines.
        names.update(re.findall(r'\.emit\(\s*"([a-z_]+)"', text))
        # Directly constructed records ({"event": "snapshot", ...}, headers).
        names.update(re.findall(r'"event":\s*"([a-z_]+)"', text))
    return names - _EXEMPT


def documented_event_names() -> set:
    """Backticked event names from the docs' per-event table only."""
    text = DOCS.read_text()
    start = text.index("### Per-event fields")
    section = text[start:]
    end = re.search(r"\n## ", section)
    if end:
        section = section[: end.start()]
    names = set()
    for line in section.splitlines():
        m = re.match(r"\|\s*`([a-z_]+)`", line)
        if m:
            names.add(m.group(1))
    return names


class TestSchemaDrift:
    def test_emitted_equals_registry(self):
        emitted = emitted_event_names()
        assert emitted - PROBE_EVENTS == set(), (
            f"events emitted in src/ but missing from PROBE_EVENTS: "
            f"{sorted(emitted - PROBE_EVENTS)}"
        )
        assert PROBE_EVENTS - emitted == set(), (
            f"PROBE_EVENTS entries nothing in src/ can emit: "
            f"{sorted(PROBE_EVENTS - emitted)}"
        )

    def test_registry_equals_docs(self):
        documented = documented_event_names()
        assert documented, "per-event table not found in docs/obs_schema.md"
        assert documented - PROBE_EVENTS == set(), (
            f"documented but unregistered events: "
            f"{sorted(documented - PROBE_EVENTS)}"
        )
        assert PROBE_EVENTS - documented == set(), (
            f"registered but undocumented events: "
            f"{sorted(PROBE_EVENTS - documented)}"
        )

    def test_span_records_do_not_alias_the_event_namespace(self):
        from repro.obs.span import Tracer

        tracer = Tracer()
        root = tracer.start_trace("request")
        child = root.child("queue_wait")
        child.end()
        root.end()
        for span in (root, child):
            rec = span.as_record()
            assert rec["kind"] == "span"
            assert "event" not in rec

    def test_span_stage_names_are_not_probe_events(self):
        # Stage vocabulary lives outside PROBE_EVENTS except where a stage
        # deliberately mirrors an event-producing action (documented pairs).
        stages = {
            "request",
            "queue_wait",
            "policy",
            "flight_wait",
            "origin_fetch",
            "origin_attempt",
            "retry_backoff",
            "node_serve",
            "failover_hop",
            "replica_fill",
            "warm_handoff",
            "origin_direct",
            "net_hop",
            "tier_lookup",
            "placement",
        }
        assert stages & PROBE_EVENTS == set()
