"""Metrics primitives: counters, gauges, log2 histograms, registry."""

from __future__ import annotations

import pytest

from repro.obs.metrics import N_BUCKETS, Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_monotonic(self):
        c = Counter("events")
        c.inc()
        c.inc(5)
        assert c.value == 6
        assert c.as_dict() == {"type": "counter", "value": 6}

    def test_negative_increment_rejected(self):
        c = Counter("events")
        with pytest.raises(ValueError):
            c.inc(-1)


class TestGauge:
    def test_set_and_inc(self):
        g = Gauge("lambda")
        g.set(0.25)
        assert g.value == 0.25
        g.inc(0.5)
        assert g.value == 0.75
        assert g.as_dict()["type"] == "gauge"


class TestHistogram:
    def test_log2_bucketing_edges(self):
        """Bucket i covers [2^(i-1), 2^i); bucket 0 covers [0, 1)."""
        h = Histogram("sizes")
        for v in (0, 0.5, 1, 2, 3, 4, 1023, 1024):
            h.observe(v)
        buckets = dict(h.nonzero_buckets())
        assert buckets[0] == 2        # 0, 0.5
        assert buckets[1] == 1        # 1
        assert buckets[2] == 2        # 2, 3
        assert buckets[3] == 1        # 4
        assert buckets[10] == 1       # 1023 ∈ [512, 1024)
        assert buckets[11] == 1       # 1024 ∈ [1024, 2048)

    def test_negative_clamps_to_bucket_zero(self):
        h = Histogram("x")
        h.observe(-5.0)
        assert dict(h.nonzero_buckets()) == {0: 1}
        assert h.min == -5.0

    def test_huge_value_clamps_to_last_bucket(self):
        h = Histogram("x")
        h.observe(float(1 << 100))
        assert dict(h.nonzero_buckets()) == {N_BUCKETS - 1: 1}

    def test_exact_aggregates(self):
        h = Histogram("x")
        for v in (1, 2, 3):
            h.observe(v)
        assert h.count == 3
        assert h.sum == 6
        assert h.mean == 2.0
        assert h.min == 1
        assert h.max == 3

    def test_quantile_upper_bound_estimate(self):
        h = Histogram("x")
        for _ in range(99):
            h.observe(10)     # bucket 4: [8, 16)
        h.observe(1000)       # bucket 10
        assert h.quantile(0.5) == 16.0
        # p100 lands in the top bucket, clamped to the observed max.
        assert h.quantile(1.0) == 1000

    def test_quantile_empty_and_domain(self):
        h = Histogram("x")
        assert h.quantile(0.99) == 0.0
        with pytest.raises(ValueError):
            h.quantile(0.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_quantile_clamped_to_observed_max(self):
        h = Histogram("x")
        h.observe(9)  # bucket upper bound is 16, but max seen is 9
        assert h.quantile(0.99) == 9


class TestRegistry:
    def test_get_or_create_by_name_and_labels(self):
        reg = MetricsRegistry()
        a = reg.counter("events", event="evict")
        b = reg.counter("events", event="evict")
        c = reg.counter("events", event="admit")
        assert a is b
        assert a is not c
        assert len(reg) == 2

    def test_same_name_different_kind_coexists(self):
        reg = MetricsRegistry()
        reg.counter("x")
        reg.gauge("x")
        assert len(reg) == 2

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("events", event="evict").inc(3)
        reg.gauge("w_mru").set(0.7)
        reg.histogram("bytes").observe(100)
        snap = reg.snapshot()
        assert snap["events"]["event=evict"] == {"type": "counter", "value": 3}
        assert snap["w_mru"][""]["value"] == 0.7
        assert snap["bytes"][""]["count"] == 1

    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        a = reg.counter("x", b="2", a="1")
        b = reg.counter("x", a="1", b="2")
        assert a is b
        assert list(reg.snapshot()["x"]) == ["a=1,b=2"]
