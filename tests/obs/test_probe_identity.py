"""The observability bargain: tracing changes *what you see*, never *what
the cache does*.

Two halves:

* replay with a probe attached is bit-identical to the committed golden
  traces (same hit/miss SHA the bare fast path is pinned to), and
* the disabled path really is disabled — no instance state, fast-replay
  eligibility restored on detach, zero events emitted.
"""

from __future__ import annotations

import hashlib
import json
import pathlib

import pytest

from repro.cache.arc import ARCCache
from repro.cache.lru import LRUCache
from repro.core.scip import SCIPCache
from repro.obs.config import ObsConfig
from repro.obs.probe import Probe
from repro.obs.sinks import RegistryRecorder

GOLDEN_PATH = (
    pathlib.Path(__file__).parent.parent / "sim" / "golden" / "golden_traces.json"
)
GOLDEN = json.loads(GOLDEN_PATH.read_text())

POLICIES = {"LRU": LRUCache, "ARC": ARCCache, "SCIP": SCIPCache}


def _hit_seq_sha256(flags) -> str:
    return hashlib.sha256(bytes(bytearray(1 if h else 0 for h in flags))).hexdigest()


@pytest.mark.parametrize("pname", sorted(POLICIES))
def test_replay_with_probe_matches_golden_traces(pname, cdn_t_small):
    """The instrumented per-request path (selected whenever a probe is
    attached) produces the exact decision sequence the golden snapshots pin."""
    trace = cdn_t_small
    gold = GOLDEN[f"CDN-T|0.02|{pname}"]
    policy = POLICIES[pname](gold["capacity"])
    recorder = RegistryRecorder()
    policy.attach_probe(Probe([recorder]))

    out: list = []
    policy.replay(trace.requests, out)

    assert policy.stats.hits == gold["hits"]
    assert policy.stats.misses == gold["misses"]
    assert policy.stats.evictions == gold["evictions"]
    assert repr(policy.stats.miss_ratio) == gold["miss_ratio"]
    assert repr(policy.stats.byte_miss_ratio) == gold["byte_miss_ratio"]
    assert _hit_seq_sha256(out) == gold["hit_seq_sha256"]
    # ...and the probe actually observed the run (ARC carries no hook
    # points of its own — identity is the whole claim there).
    if isinstance(policy, (LRUCache, SCIPCache)):
        snap = recorder.registry.snapshot()
        assert (
            snap["events"]["event=admit"]["value"]
            == policy.stats.misses - policy.stats.bypasses
        )


def test_probe_attach_disables_fast_replay_and_detach_restores_it():
    lru = LRUCache(10_000)
    assert lru._fast_replay_eligible()
    lru.attach_probe(Probe([]))
    assert not lru._fast_replay_eligible()
    lru.detach_probe()
    assert lru._fast_replay_eligible()


def test_detached_policy_emits_nothing(cdn_t_small):
    """The no-op path: no probe → no events, no instance attribute, and the
    class-level ``_probe`` stays None for every policy instance."""
    policy = SCIPCache(max(int(cdn_t_small.working_set_size * 0.02), 1))
    recorder = RegistryRecorder()
    probe = Probe([recorder])
    policy.attach_probe(probe)
    policy.detach_probe()
    policy.replay(cdn_t_small.requests[:2000])
    assert len(recorder.registry) == 0
    assert probe.seq == 0
    # Detach resets the whole learner stack, not just the queue.
    assert policy.bandit._probe is None
    assert policy.lr._probe is None


def test_scip_probe_covers_learner_stack(cdn_t_small):
    """One attach wires SCIP + bandit + λ controller; the stream contains
    ghost hits, weight updates and λ updates from a single replay."""
    policy = SCIPCache(max(int(cdn_t_small.working_set_size * 0.02), 1))
    recorder = RegistryRecorder()
    policy.attach_probe(Probe([recorder]))
    policy.replay(cdn_t_small.requests)
    snap = recorder.registry.snapshot()
    events = snap["events"]
    for name in ("event=admit", "event=evict", "event=ghost_hit", "event=weight_update"):
        assert events[name]["value"] > 0, name
    assert snap["w_mru"][""]["value"] + snap["w_lru"][""]["value"] == pytest.approx(1.0)


def test_obs_config_session_wiring(tmp_path, cdn_t_small):
    """ObsConfig.open() orders sinks recorder-first so snapshots always see
    current registry numbers, and exposes ring/jsonl handles."""
    out = tmp_path / "ev.jsonl"
    session = ObsConfig(trace_out=str(out), ring=8, snapshot_every=500).open()
    policy = LRUCache(50_000)
    policy.attach_probe(session.probe)
    policy.replay(cdn_t_small.requests[:3000])
    policy.detach_probe()
    session.close()
    payload = session.snapshot()
    # The JSONL sink additionally receives the forwarded snapshot records.
    assert payload["events_emitted"] > 0
    assert payload["events_written"] == payload["events_emitted"] + payload["snapshots"]
    assert payload["trace_out"] == str(out)
    assert payload["snapshots"] > 0
    assert len(session.ring.as_list()) == 8
    # Each snapshot was taken *after* the recorder saw the same event.
    first_snap = session.snapshots.snapshots[0]
    assert first_snap["registry"]["events"]["event=admit"]["value"] > 0
