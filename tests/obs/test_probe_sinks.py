"""Probe event fan-out and the sink set (ring, JSONL, recorder, snapshots)."""

from __future__ import annotations

import gzip
import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.probe import PROBE_EVENTS, Probe
from repro.obs.report import read_events
from repro.obs.sinks import (
    EVENT_SCHEMA,
    JSONLSink,
    RegistryRecorder,
    RingBufferSink,
    SnapshotEmitter,
)


class _ListSink:
    def __init__(self):
        self.records = []

    def write(self, record):
        self.records.append(record)


class TestProbe:
    def test_unknown_event_raises(self):
        probe = Probe([_ListSink()])
        with pytest.raises(ValueError):
            probe.emit("not_an_event")

    def test_unknown_filter_event_rejected_at_construction(self):
        with pytest.raises(ValueError):
            Probe([], events=frozenset({"evict", "bogus"}))

    def test_event_filter_drops_before_record_build(self):
        sink = _ListSink()
        probe = Probe([sink], events=frozenset({"evict"}))
        probe.emit("admit", key=1, size=2)
        probe.emit("evict", key=1, size=2)
        assert [r["event"] for r in sink.records] == ["evict"]
        # Dropped emissions don't consume sequence numbers.
        assert sink.records[0]["seq"] == 1

    def test_seq_and_clock_stamping(self):
        sink = _ListSink()
        clock = [0]
        probe = Probe([sink], now=lambda: clock[0])
        clock[0] = 7
        probe.emit("admit", key=1, size=2)
        clock[0] = 9
        probe.emit("evict", key=1, size=2, hits=0)
        assert [(r["seq"], r["t"]) for r in sink.records] == [(1, 7), (2, 9)]

    def test_explicit_t_wins_over_clock(self):
        sink = _ListSink()
        probe = Probe([sink], now=lambda: 99)
        probe.emit("snapshot", t=5)
        assert sink.records[0]["t"] == 5

    def test_fanout_order_is_registration_order(self):
        order = []

        class Tagger:
            def __init__(self, tag):
                self.tag = tag

            def write(self, record):
                order.append(self.tag)

        probe = Probe([Tagger("a"), Tagger("b")])
        probe.emit("admit", key=1, size=2)
        assert order == ["a", "b"]

    def test_vocabulary_covers_hook_points(self):
        assert {
            "admit",
            "evict",
            "ghost_hit",
            "episode_transition",
            "weight_update",
            "lambda_update",
            "lambda_restart",
            "snapshot",
        } <= PROBE_EVENTS


class TestRingBufferSink:
    def test_keeps_last_n(self):
        ring = RingBufferSink(maxlen=3)
        for i in range(5):
            ring.write({"seq": i})
        assert [r["seq"] for r in ring.as_list()] == [2, 3, 4]
        assert ring.written == 5

    def test_rejects_nonpositive_maxlen(self):
        with pytest.raises(ValueError):
            RingBufferSink(maxlen=0)


class TestJSONLSink:
    def test_roundtrip_with_schema_header(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        sink = JSONLSink(str(path))
        sink.write({"seq": 1, "event": "admit", "key": 5, "size": 10})
        sink.close()
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0] == {"event": "schema", "version": EVENT_SCHEMA}
        assert lines[1]["event"] == "admit"
        # read_events swallows the schema line.
        assert [r["event"] for r in read_events(str(path))] == ["admit"]

    def test_gz_suffix_compresses(self, tmp_path):
        path = tmp_path / "ev.jsonl.gz"
        sink = JSONLSink(str(path))
        sink.write({"seq": 1, "event": "evict", "key": 5, "size": 10, "hits": 0})
        sink.close()
        with gzip.open(path, "rt", encoding="utf-8") as fh:
            assert json.loads(fh.readline())["event"] == "schema"
        assert [r["event"] for r in read_events(str(path))] == ["evict"]

    def test_future_schema_rejected_by_reader(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        path.write_text(
            json.dumps({"event": "schema", "version": EVENT_SCHEMA + 1}) + "\n"
        )
        with pytest.raises(ValueError, match="unsupported"):
            list(read_events(str(path)))

    def test_close_is_idempotent(self, tmp_path):
        sink = JSONLSink(str(tmp_path / "ev.jsonl"))
        sink.close()
        sink.close()


class TestRegistryRecorder:
    def test_folds_learner_events(self):
        rec = RegistryRecorder()
        rec.write({"event": "weight_update", "w_mru": 0.7, "w_lru": 0.3})
        rec.write({"event": "lambda_update", "value": 0.2})
        rec.write({"event": "lambda_restart", "value": 0.05})
        rec.write({"event": "ghost_hit", "list": "m"})
        rec.write({"event": "episode_transition", "to": "DENIED"})
        rec.write({"event": "admit", "size": 100})
        rec.write({"event": "evict", "size": 100, "hits": 2})
        snap = rec.registry.snapshot()
        assert snap["w_mru"][""]["value"] == 0.7
        assert snap["lambda"][""]["value"] == 0.05
        assert snap["lambda_restarts"][""]["value"] == 1
        assert snap["ghost_hits"]["list=m"]["value"] == 1
        assert snap["episodes"]["to=DENIED"]["value"] == 1
        assert snap["admit_bytes"][""]["count"] == 1
        assert snap["evict_tenure_hits"][""]["sum"] == 2
        assert snap["events"]["event=admit"]["value"] == 1


class TestSnapshotEmitter:
    def _registry(self):
        reg = MetricsRegistry()
        reg.counter("events").inc()
        return reg

    def test_emits_on_boundary_crossing(self):
        fwd = _ListSink()
        emitter = SnapshotEmitter(self._registry(), every=100, forward=fwd)
        emitter.write({"event": "admit", "t": 99})
        assert emitter.snapshots == []
        emitter.write({"event": "admit", "t": 100})
        assert len(emitter.snapshots) == 1
        assert fwd.records[0]["event"] == "snapshot"
        assert fwd.records[0]["t"] == 100

    def test_multiple_crossed_boundaries_collapse(self):
        emitter = SnapshotEmitter(self._registry(), every=100)
        emitter.write({"event": "admit", "t": 950})
        assert len(emitter.snapshots) == 1
        # Next boundary is now past 950, not a burst of catch-up snapshots.
        emitter.write({"event": "admit", "t": 999})
        assert len(emitter.snapshots) == 1
        emitter.write({"event": "admit", "t": 1000})
        assert len(emitter.snapshots) == 2

    def test_clockless_records_ignored(self):
        emitter = SnapshotEmitter(self._registry(), every=1)
        emitter.write({"event": "weight_update"})
        assert emitter.snapshots == []

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            SnapshotEmitter(self._registry(), every=0)
