"""Smoke + shape tests for every experiment module at the smoke scale.

These assert the *relational* claims each figure makes (who wins, in which
direction), not absolute numbers — the reproduction contract of DESIGN.md.
"""

from __future__ import annotations

import pytest

import repro.experiments as E


@pytest.fixture(scope="module")
def fig8_rows():
    return E.fig8_insertion.run(scale="smoke", sizes_gb=(64,))


@pytest.fixture(scope="module")
def fig10_rows():
    return E.fig10_replacement.run(scale="smoke", workloads=("CDN-T",))


def by(rows, **kv):
    out = [r for r in rows if all(r.get(k) == v for k, v in kv.items())]
    assert out, f"no rows match {kv}"
    return out


class TestTable1:
    def test_rows_and_ordering(self):
        rows = E.table1_workloads.run(scale="smoke")
        assert len(rows) == 3
        ratio = {r["workload"]: r["req_per_obj"] for r in rows}
        assert ratio["CDN-W"] > ratio["CDN-T"] > ratio["CDN-A"]


class TestFig1:
    def test_shapes(self):
        rows = E.fig1_zro.run(scale="smoke", fractions=(0.01, 0.05))
        for r in rows:
            assert 0 <= r["zro_share_of_misses"] <= 1
            assert r["miss_ratio_treat_both"] <= r["miss_ratio_lru"] + 1e-9
        # Sanity band only at this scale — the cross-workload miss-ratio
        # ordering of Figure 1(b) needs full-length traces (CDN-W's reuse
        # builds up over ~10× more requests) and is asserted by the bench.
        for r in rows:
            assert 0.2 < r["miss_ratio_lru"] < 1.0


class TestFig3:
    def test_monotone_and_ordering(self):
        rows = E.fig3_theoretical.run(scale="smoke", fractions=(0.5, 1.0))
        for r in rows:
            assert r["mr_treat_zro"] <= r["mr_lru"] + 1e-9
        full = [r for r in rows if r["treated_fraction"] == 1.0]
        for r in full:
            assert r["mr_treat_zro"] <= r["mr_treat_pzro"] + 1e-9
            assert r["mr_treat_both"] <= r["mr_treat_zro"] + 1e-9


class TestFig4:
    def test_mab_best_on_combined(self):
        rows = E.fig4_models.run(scale="smoke")
        models = ["LinReg", "LogReg", "SVM", "NN", "GBM", "MAB"]
        both = [r for r in rows if r["task"] == "both"]
        wins = sum(r["MAB"] >= max(r[m] for m in models) - 1e-9 for r in both)
        assert wins >= 2, "MAB must lead the combined task on most workloads"

    def test_zro_easier_than_pzro_on_average(self):
        rows = E.fig4_models.run(scale="smoke")
        models = ["LinReg", "LogReg", "NN", "GBM"]
        easier = 0
        for wl in ("CDN-T", "CDN-W", "CDN-A"):
            z = by(rows, workload=wl, task="zro")[0]
            p = by(rows, workload=wl, task="pzro")[0]
            mean_z = sum(z[m] for m in models) / len(models)
            mean_p = sum(p[m] for m in models) / len(models)
            easier += mean_z > mean_p - 0.05
        # All three at bench scale; at 20 k requests allow one inversion.
        assert easier >= 2


class TestFig6:
    def test_deployment_improves(self):
        out = E.fig6_tdc.run(scale="smoke")
        assert out["bto_ratio_delta"] < 0
        assert out["bto_gbps_rel_change"] < 0
        assert out["latency_rel_change"] < 0


class TestFig7:
    def test_runs_and_reports_gap(self):
        rows = E.fig7_scip_vs_sci.run(scale="smoke")
        assert len(rows) == 3
        for r in rows:
            assert 0 < r["scip_miss_ratio"] < 1
            assert "gap" in r


class TestFig8:
    def test_belady_is_floor(self, fig8_rows):
        for wl in ("CDN-T", "CDN-W", "CDN-A"):
            rows = by(fig8_rows, trace=wl)
            belady = by(rows, policy="Belady")[0]["miss_ratio"]
            for r in rows:
                assert belady <= r["miss_ratio"] + 1e-9

    def test_scip_beats_lip(self, fig8_rows):
        for wl in ("CDN-T", "CDN-W", "CDN-A"):
            scip = by(fig8_rows, trace=wl, policy="SCIP")[0]["miss_ratio"]
            lip = by(fig8_rows, trace=wl, policy="LIP")[0]["miss_ratio"]
            assert scip < lip

    def test_scip_near_the_top_everywhere(self, fig8_rows):
        """At smoke scale (20 k requests — inside SCIP's learning window,
        and shorter than CDN-W's sweep period) SCIP must already rank in
        the top half of the nine online policies on every workload and
        within 2 points of the runner-up; the benches assert outright
        leadership at full scale."""
        for wl in ("CDN-T", "CDN-W", "CDN-A"):
            rows = [r for r in by(fig8_rows, trace=wl) if r["policy"] != "Belady"]
            ranked = sorted(rows, key=lambda r: r["miss_ratio"])
            names = [r["policy"] for r in ranked]
            assert names.index("SCIP") < len(names) // 2, (wl, names)
            assert ranked[names.index("SCIP")]["miss_ratio"] <= ranked[1]["miss_ratio"] + 0.02


class TestFig10:
    def test_scip_competitive(self, fig10_rows):
        rows = [r for r in fig10_rows if r["policy"] != "Belady"]
        best = min(r["miss_ratio"] for r in rows)
        scip = by(fig10_rows, policy="SCIP")[0]["miss_ratio"]
        # Smoke-scale tolerance; benches assert the strict Figure 10 shape.
        assert scip <= best + 0.06

    def test_all_policies_present(self, fig10_rows):
        assert len({r["policy"] for r in fig10_rows}) == 11


class TestResources:
    def test_fig9_profiles(self):
        rows = E.fig9_resources_ins.run(scale="smoke")
        assert len(rows) == 9
        for r in rows:
            assert r["tps"] > 0 and r["metadata_bytes"] > 0

    def test_fig11_learned_cost_more_cpu_than_lru(self):
        rows = E.fig11_resources_repl.run(scale="smoke")
        cpu = {r["policy"]: r["cpu_us_per_request"] for r in rows}
        assert cpu["LRB"] > cpu["LRU"], "learned policy must cost more CPU"
        assert cpu["GL-Cache"] > cpu["LRU"]


class TestFig12:
    def test_scip_enhancement_helps_lruk(self):
        rows = E.fig12_enhance.run(scale="smoke", workloads=("CDN-T",))
        mr = {r["policy"]: r["miss_ratio"] for r in rows}
        assert mr["LRU-K-SCIP"] <= mr["LRU-K"] + 0.005
        assert mr["LRB-SCIP"] <= mr["LRB"] + 0.01


class TestConvergence:
    def test_reports_convergence(self):
        rows = E.convergence.run(scale="smoke", interval=1_000)
        assert len(rows) == 3
        for r in rows:
            assert 0 <= r["converged_requests"] <= 20_000
            assert 0.0 < r["final_hit_rate"] < 1.0
            assert r["zro_denials"] >= 0
