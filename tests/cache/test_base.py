"""CachePolicy / QueueCache contract tests (capacity, bypass, stats)."""

from __future__ import annotations

import pytest

from repro.cache.base import CacheStats
from repro.cache.lru import LRUCache
from repro.sim.request import Request


class TestCacheStats:
    def test_initial(self):
        s = CacheStats()
        assert s.requests == 0
        assert s.miss_ratio == 0.0
        assert s.hit_ratio == 0.0
        assert s.byte_miss_ratio == 0.0

    def test_ratios(self):
        s = CacheStats()
        s.hits, s.misses = 3, 1
        s.bytes_hit, s.bytes_missed = 300, 100
        assert s.miss_ratio == 0.25
        assert s.hit_ratio == 0.75
        assert s.byte_miss_ratio == 0.25

    def test_reset(self):
        s = CacheStats()
        s.hits = 5
        s.reset()
        assert s.hits == 0 and s.requests == 0

    def test_as_dict_keys(self):
        d = CacheStats().as_dict()
        assert {"requests", "hits", "misses", "miss_ratio", "byte_miss_ratio"} <= set(d)


class TestPolicyContract:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)
        with pytest.raises(ValueError):
            LRUCache(-5)

    def test_miss_then_hit(self):
        c = LRUCache(100)
        assert c.request(Request(0, 1, 10)) is False
        assert c.request(Request(1, 1, 10)) is True
        assert c.stats.hits == 1 and c.stats.misses == 1

    def test_capacity_never_exceeded(self):
        c = LRUCache(50)
        for i in range(20):
            c.request(Request(i, i, 17))
            assert c.used <= 50
            c.check_invariants()

    def test_oversized_object_bypassed(self):
        c = LRUCache(100)
        c.request(Request(0, 1, 10))
        assert c.request(Request(1, 2, 500)) is False
        assert c.stats.bypasses == 1
        assert not c.contains(2)
        # The resident object survives the bypass.
        assert c.contains(1)

    def test_eviction_order_is_lru(self):
        c = LRUCache(30)
        c.request(Request(0, 1, 10))
        c.request(Request(1, 2, 10))
        c.request(Request(2, 3, 10))
        c.request(Request(3, 1, 10))  # touch 1 → LRU victim is 2
        c.request(Request(4, 4, 10))  # evicts 2
        assert not c.contains(2)
        assert c.contains(1) and c.contains(3) and c.contains(4)

    def test_size_update_on_hit(self):
        c = LRUCache(100)
        c.request(Request(0, 1, 10))
        c.request(Request(1, 1, 40))  # object grew at the origin
        assert c.used == 40
        c.check_invariants()

    def test_size_update_can_trigger_room_logic(self):
        c = LRUCache(100)
        c.request(Request(0, 1, 50))
        c.request(Request(1, 2, 50))
        # Object 1 grows on hit; accounting must stay exact.
        c.request(Request(2, 1, 30))
        assert c.used == 80
        c.check_invariants()

    def test_contains_has_no_side_effects(self):
        c = LRUCache(30)
        c.request(Request(0, 1, 10))
        c.request(Request(1, 2, 10))
        before = c.resident_keys()
        assert c.contains(1)
        assert c.resident_keys() == before

    def test_remove_is_silent(self):
        c = LRUCache(30)
        c.request(Request(0, 1, 10))
        node = c.remove(1)
        assert node is not None and node.key == 1
        assert c.stats.evictions == 0
        assert c.used == 0
        assert c.remove(99) is None

    def test_len_and_metadata(self):
        c = LRUCache(100)
        for i in range(5):
            c.request(Request(i, i, 10))
        assert len(c) == 5
        assert c.metadata_bytes() == 110 * 5

    def test_clock_advances(self):
        c = LRUCache(100)
        for i in range(7):
            c.request(Request(i, 1, 10))
        assert c.clock == 7

    def test_hit_token_counts_hits(self):
        c = LRUCache(100)
        c.request(Request(0, 1, 10))
        assert c.index[1].hit_token == 0
        c.request(Request(1, 1, 10))
        c.request(Request(2, 1, 10))
        assert c.index[1].hit_token == 2
