"""QueueCache hook contract: the template must call hooks exactly when the
documentation says, with consistent state at each call."""

from __future__ import annotations

from repro.cache.base import LRU_POS, MRU_POS, QueueCache
from repro.cache.queue import Node
from repro.sim.request import Request


class Recorder(QueueCache):
    """Instrumented policy that logs every hook invocation."""

    name = "recorder"

    def __init__(self, capacity, insert_pos=MRU_POS):
        super().__init__(capacity)
        self.log = []
        self._pos = insert_pos

    def _insert_position(self, req):
        self.log.append(("pos", req.key))
        return self._pos

    def _on_insert(self, node, req):
        self.log.append(("insert", node.key, node.inserted_mru))

    def _on_hit(self, node, req):
        self.log.append(("hit", node.key))
        super()._on_hit(node, req)

    def _on_evict(self, node):
        self.log.append(("evict", node.key, bool(node.hit_token)))


class TestHookProtocol:
    def test_miss_calls_pos_then_insert(self):
        p = Recorder(100)
        p.request(Request(0, 1, 10))
        assert p.log == [("pos", 1), ("insert", 1, True)]

    def test_lru_pos_marks_node(self):
        p = Recorder(100, insert_pos=LRU_POS)
        p.request(Request(0, 1, 10))
        assert p.log[-1] == ("insert", 1, False)

    def test_hit_calls_only_on_hit(self):
        p = Recorder(100)
        p.request(Request(0, 1, 10))
        p.log.clear()
        p.request(Request(1, 1, 10))
        assert p.log == [("hit", 1)]

    def test_eviction_fires_before_insert_hook(self):
        p = Recorder(25)
        p.request(Request(0, 1, 10))
        p.request(Request(1, 2, 10))
        p.log.clear()
        p.request(Request(2, 3, 10))  # evicts 1 first, then inserts 3
        assert p.log[0] == ("pos", 3) or p.log[0][0] == "evict"
        evict_idx = next(i for i, e in enumerate(p.log) if e[0] == "evict")
        insert_idx = next(i for i, e in enumerate(p.log) if e[0] == "insert")
        assert evict_idx < insert_idx

    def test_evict_sees_hit_token(self):
        p = Recorder(25)
        p.request(Request(0, 1, 10))
        p.request(Request(1, 1, 10))  # hit → token set
        p.request(Request(2, 2, 10))
        p.request(Request(3, 3, 10))  # evicts 1
        evicts = [e for e in p.log if e[0] == "evict"]
        assert evicts == [("evict", 1, True)]

    def test_remove_does_not_fire_evict_hook(self):
        p = Recorder(100)
        p.request(Request(0, 1, 10))
        p.log.clear()
        p.remove(1)
        assert p.log == []

    def test_bypass_fires_no_hooks(self):
        p = Recorder(100)
        p.log.clear()
        p.request(Request(0, 9, 500))
        assert p.log == []
