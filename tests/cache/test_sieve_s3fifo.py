"""SIEVE and S3-FIFO (post-paper extension policies)."""

from __future__ import annotations

from repro.cache.lru import LRUCache
from repro.cache.sieve import S3FIFOCache, SieveCache
from repro.sim.request import Request


def feed(p, keys, size=10, t0=0):
    for i, k in enumerate(keys):
        p.request(Request(t0 + i, k, size))


class TestSieve:
    def test_visited_objects_spared_in_place(self):
        c = SieveCache(30)
        feed(c, [1, 2, 3])
        c.request(Request(3, 1, 10))  # mark 1 visited
        c.request(Request(4, 4, 10))  # hand: 1 spared (bit cleared), 2 evicted
        assert c.contains(1)
        assert not c.contains(2)

    def test_one_hit_wonders_evicted_first(self):
        c = SieveCache(40)
        feed(c, [1, 2, 3, 4])
        for k in (1, 3):
            c.request(Request(10 + k, k, 10))
        c.request(Request(20, 5, 10))  # evicts 2 (oldest unvisited)
        assert not c.contains(2)
        assert c.contains(1) and c.contains(3)

    def test_hand_position_persists(self):
        c = SieveCache(30)
        feed(c, [1, 2, 3])
        for k in (1, 2, 3):
            c.request(Request(10 + k, k, 10))  # all visited
        c.request(Request(20, 4, 10))  # sweep clears bits, evicts one
        # A second eviction must not restart the sweep from scratch —
        # no infinite loop, correct eviction.
        c.request(Request(21, 5, 10))
        assert len(c) == 3
        assert c.used <= c.capacity

    def test_capacity_on_workload(self, zipf_trace):
        c = SieveCache(20_000)
        for r in zipf_trace:
            c.request(r)
            assert c.used <= c.capacity
        assert 0 < c.stats.miss_ratio < 1

    def test_competitive_with_lru_on_churn(self, cdn_t_small):
        cap = int(cdn_t_small.working_set_size * 0.02)
        sieve, lru = SieveCache(cap), LRUCache(cap)
        for r in cdn_t_small:
            sieve.request(r)
            lru.request(r)
        # SIEVE's pitch is one-hit-wonder resistance; on our periodic-core
        # synthetic it must at least stay level with LRU (it wins on the
        # classic web traces its paper evaluates).
        assert sieve.stats.miss_ratio <= lru.stats.miss_ratio + 0.02


class TestS3FIFO:
    def test_new_objects_probation_first(self):
        c = S3FIFOCache(1_000)
        feed(c, [1])
        assert c._where[1][1] == "small"

    def test_ghost_comeback_enters_main(self):
        c = S3FIFOCache(200, small_frac=0.1)  # small queue: 20 B = 2 objs
        feed(c, range(30))  # churn floods probation → ghosts
        ghost = c.ghost.keys()[0]
        c.request(Request(100, ghost, 10))
        assert c._where[ghost][1] == "main"

    def test_probation_reuse_promotes(self):
        c = S3FIFOCache(100, small_frac=0.5)
        feed(c, [1, 2])
        c.request(Request(2, 1, 10))  # reuse on probation
        feed(c, range(10, 19), t0=10)  # pressure forces small-queue drain
        # 1 must have been moved to main at some drain, not ghosted.
        if c.contains(1):
            assert c._where[1][1] == "main"

    def test_capacity_on_workload(self, zipf_trace):
        c = S3FIFOCache(20_000)
        for r in zipf_trace:
            c.request(r)
            assert c.used <= c.capacity

    def test_beats_lru_on_churn(self, cdn_a_small):
        cap = int(cdn_a_small.working_set_size * 0.014)
        s3, lru = S3FIFOCache(cap), LRUCache(cap)
        for r in cdn_a_small:
            s3.request(r)
            lru.request(r)
        assert s3.stats.miss_ratio < lru.stats.miss_ratio + 0.01
