"""Belady MIN oracle: correctness on hand-built sequences and optimality
relative to online policies."""

from __future__ import annotations

import pytest

from repro.cache import POLICIES
from repro.cache.belady import BeladyCache
from repro.cache.lru import LRUCache
from repro.sim.request import Request, Trace, annotate_next_access


def run(policy, trace):
    for r in trace:
        policy.request(r)
    return policy.stats.miss_ratio


def make_trace(keys, size=10):
    return annotate_next_access(
        Trace([Request(i, k, size) for i, k in enumerate(keys)])
    )


class TestBelady:
    def test_classic_example(self):
        # 2-slot cache, sequence where MIN beats LRU:
        # LRU on [1,2,3,1,2,3...] with cap 2 thrashes; MIN keeps 1.
        keys = [1, 2, 3, 1, 2, 3, 1, 2, 3]
        b = BeladyCache(20)
        lru = LRUCache(20)
        tr = make_trace(keys)
        assert run(b, tr) < run(lru, tr)

    def test_never_reaccessed_objects_bypassed(self):
        tr = make_trace([1, 2, 3, 4, 5])  # all singletons
        b = BeladyCache(20)
        run(b, tr)
        assert len(b) == 0, "MIN must not cache objects with no future access"

    def test_exact_min_on_known_sequence(self):
        # Belady's original example pattern, capacity 3 unit objects.
        keys = [7, 0, 1, 2, 0, 3, 0, 4, 2, 3, 0, 3, 2]
        tr = make_trace(keys, size=1)
        b = BeladyCache(3)
        misses = sum(not b.request(r) for r in tr)
        # Classic MIN faults 7 times on this prefix at capacity 3.  Our MIN
        # bypasses never-reaccessed objects (7 and 4), which saves exactly
        # one later eviction-induced fault → 6.  Bypass-MIN ≤ classic MIN.
        assert misses == 6

    def test_beats_every_online_policy(self, cdn_t_small):
        cap = int(cdn_t_small.working_set_size * 0.03)
        annotate_next_access(cdn_t_small)
        belady_mr = run(BeladyCache(cap), cdn_t_small)
        for name in ["LRU", "LFU", "S4LRU", "GDSF", "ASC-IP"]:
            p = POLICIES[name](cap)
            assert belady_mr <= run(p, cdn_t_small) + 1e-9, f"Belady lost to {name}"

    def test_requires_or_tolerates_unannotated(self):
        # Unannotated trace: every request looks like "never again" → all
        # bypassed; miss ratio 1 but no crash.
        tr = Trace([Request(i, i % 3, 10) for i in range(10)])
        b = BeladyCache(100)
        mr = run(b, tr)
        assert mr == 1.0


class TestBeladySize:
    def test_prefers_evicting_large_objects(self):
        from repro.cache.beladysize import BeladySizeCache

        # Two residents with future accesses: big (90 B, next in 3 steps)
        # costs 270 byte·steps; small (10 B, next in 4 steps) costs 40.
        # Classic MIN would evict the *farther* small object; the sized
        # oracle evicts the big one and keeps the cheap small hit.
        reqs = [
            Request(0, "big", 90),
            Request(1, "small", 10),
            Request(2, "new", 20),   # re-accessed later → admitted → evicts
            Request(3, "big", 90),
            Request(4, "small", 10),
            Request(5, "new", 20),
        ]
        tr = annotate_next_access(Trace(reqs))
        b = BeladySizeCache(100)
        b.request(tr[0])
        b.request(tr[1])
        b.request(tr[2])
        assert not b.contains("big")
        assert b.contains("small")

    def test_size_oracle_vs_classic_on_cdn(self, cdn_t_small):
        """On CDN sizes the greedy size-aware floor is usually at or below
        classic MIN for the object miss ratio; assert it's never much
        worse (greedy is not optimal, so small inversions are legal)."""
        from repro.cache.beladysize import BeladySizeCache

        annotate_next_access(cdn_t_small)
        cap = int(cdn_t_small.working_set_size * 0.02)
        classic = run(BeladyCache(cap), cdn_t_small)
        sized = run(BeladySizeCache(cap), cdn_t_small)
        assert sized <= classic + 0.02
