"""The universal policy contract, parametrised over the whole zoo.

Every registered policy must: respect its byte capacity, report hits and
misses consistently, behave deterministically given its seed, achieve a
sane miss ratio on a skewed workload (better than never caching, no worse
than random-ish), and survive adversarial patterns (scans, one-object
loops, giant objects).  Property-based random traces drive the structural
invariants where available.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import POLICIES, make_policy
from repro.cache.base import QueueCache
from repro.core.sci import SCICache
from repro.core.scip import SCIPCache
from repro.sim.request import Request, Trace, annotate_next_access

ALL_POLICIES = sorted(POLICIES) + ["SCIP", "SCI"]


def build(name: str, capacity: int):
    if name == "SCIP":
        return SCIPCache(capacity)
    if name == "SCI":
        return SCICache(capacity)
    return make_policy(name, capacity)


def replay(policy, trace):
    if "belady" in policy.name.lower() and not trace.annotated:
        annotate_next_access(trace)
    hits = 0
    for req in trace:
        hits += policy.request(req)
    return hits


@pytest.mark.parametrize("name", ALL_POLICIES)
class TestUniversalContract:
    def test_capacity_respected(self, name, zipf_trace):
        p = build(name, 20_000)
        if "Belady" in name:
            annotate_next_access(zipf_trace)
        for req in zipf_trace:
            p.request(req)
            assert p.used <= p.capacity, f"{name} exceeded capacity"

    def test_stats_consistency(self, name, zipf_trace):
        p = build(name, 50_000)
        hits = replay(p, zipf_trace)
        assert p.stats.hits == hits
        assert p.stats.hits + p.stats.misses == len(zipf_trace)
        assert 0.0 <= p.stats.miss_ratio <= 1.0

    def test_repeated_single_object_all_hits_after_first(self, name):
        if name in ("2Q", "TinyLFU", "AdaptSize"):
            pytest.skip("admission policies may legitimately deny entry")
        p = build(name, 1_000)
        reqs = [Request(i, 42, 100) for i in range(50)]
        annotate_next_access(Trace(reqs))
        misses = sum(not p.request(r) for r in reqs)
        assert misses == 1, f"{name} re-missed a permanently resident object"

    def test_determinism(self, name, zipf_trace):
        p1 = build(name, 30_000)
        p2 = build(name, 30_000)
        assert replay(p1, zipf_trace) == replay(p2, zipf_trace)

    def test_skewed_workload_beats_no_cache(self, name, zipf_trace):
        p = build(name, int(zipf_trace.working_set_size * 0.3))
        replay(p, zipf_trace)
        # Even the weakest policy must capture some reuse at 30 % of WSS.
        assert p.stats.miss_ratio < 0.95

    def test_giant_objects_dont_break(self, name):
        p = build(name, 1_000)
        reqs = [Request(i, i % 3, 5_000) for i in range(10)]
        annotate_next_access(Trace(reqs))
        for r in reqs:
            p.request(r)
        assert p.used <= p.capacity

    def test_invariants_if_available(self, name, zipf_trace):
        p = build(name, 25_000)
        if "Belady" in name:
            annotate_next_access(zipf_trace)
        for i, req in enumerate(zipf_trace):
            p.request(req)
            if i % 500 == 0 and hasattr(p, "check_invariants"):
                p.check_invariants()


@settings(max_examples=30, deadline=None)
@given(
    data=st.lists(
        st.tuples(st.integers(0, 30), st.integers(1, 400)), min_size=1, max_size=300
    ),
    capacity=st.integers(500, 5_000),
)
def test_queue_policies_random_traces(data, capacity):
    """Property: on arbitrary request streams, every queue-structured policy
    keeps byte accounting exact and the index consistent with the queue."""
    reqs = [Request(i, k, s) for i, (k, s) in enumerate(data)]
    trace = annotate_next_access(Trace(reqs))
    for name in ["LRU", "LIP", "DIP", "PIPP", "SHiP", "DAAIP", "ASC-IP", "SCIP", "SCI"]:
        p = build(name, capacity)
        for r in trace:
            p.request(r)
        if isinstance(p, QueueCache):
            p.check_invariants()


@settings(max_examples=20, deadline=None)
@given(
    data=st.lists(
        st.tuples(st.integers(0, 15), st.integers(1, 100)), min_size=5, max_size=150
    )
)
def test_hits_only_for_resident(data):
    """Property: a hit is reported iff the key was reported resident just
    before the request (cross-checked with an independent shadow set)."""
    reqs = [Request(i, k, s) for i, (k, s) in enumerate(data)]
    p = build("LRU", 2_000)
    for r in reqs:
        resident_before = p.contains(r.key)
        assert p.request(r) == resident_before
