"""Behavioural tests for the eight insertion/promotion comparators."""

from __future__ import annotations

import random

from repro.cache.ascip import ASCIPCache
from repro.cache.daaip import DAAIPCache
from repro.cache.dgippr import DGIPPRCache
from repro.cache.dta import DTACache
from repro.cache.lip import BIPCache, DIPCache, LIPCache
from repro.cache.pipp import PIPPCache
from repro.cache.ship import SHiPCache
from repro.sim.request import Request


def feed(policy, pairs):
    for i, (k, s) in enumerate(pairs):
        policy.request(Request(i, k, s))


class TestLIP:
    def test_inserts_at_lru(self):
        c = LIPCache(100)
        feed(c, [(1, 10), (2, 10)])
        # Key 2 was inserted at the tail — it is the next victim.
        assert c.queue.tail.key == 2

    def test_hit_promotes(self):
        c = LIPCache(100)
        feed(c, [(1, 10), (2, 10), (2, 10)])
        assert c.queue.head.key == 2

    def test_tail_insert_marks_non_mru(self):
        c = LIPCache(100)
        feed(c, [(1, 10)])
        assert c.index[1].inserted_mru is False


class TestBIP:
    def test_epsilon_zero_is_lip(self):
        a = BIPCache(200, epsilon=0.0, rng=random.Random(1))
        b = LIPCache(200)
        pairs = [(k % 7, 10) for k in range(100)]
        feed(a, pairs)
        feed(b, pairs)
        assert a.stats.miss_ratio == b.stats.miss_ratio

    def test_epsilon_one_is_lru(self):
        from repro.cache.lru import LRUCache

        a = BIPCache(200, epsilon=1.0, rng=random.Random(1))
        b = LRUCache(200)
        pairs = [(k % 7, 10) for k in range(100)]
        feed(a, pairs)
        feed(b, pairs)
        assert a.stats.miss_ratio == b.stats.miss_ratio

    def test_invalid_epsilon_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            BIPCache(100, epsilon=1.5)


class TestDIP:
    def test_psel_moves_on_leader_misses(self):
        c = DIPCache(100)
        start = c.psel
        # Find keys hashing into each leader group and miss them.
        lru_leader = next(k for k in range(10_000) if hash(k) % 32 == 0)
        c.request(Request(0, lru_leader, 10))
        assert c.psel == min(start + 1, c._PSEL_MAX)
        bip_leader = next(k for k in range(10_000) if hash(k) % 32 == 1)
        c.request(Request(1, bip_leader, 10))
        assert c.psel == start  # back down


class TestPIPP:
    def test_mid_queue_insertion(self):
        c = PIPPCache(1000, insert_frac=0.5, rng=random.Random(0))
        feed(c, [(k, 10) for k in range(20)])
        keys = c.resident_keys()
        # The most recent insert must not be at the MRU end (head).
        assert keys[0] != 19

    def test_promotion_is_single_step(self):
        c = PIPPCache(1000, insert_frac=0.0, p_prom=1.0, rng=random.Random(0))
        feed(c, [(1, 10), (2, 10), (3, 10)])  # tail-ish inserts: [1,2,3] queue
        before = c.resident_keys()
        i3 = before.index(3)
        c.request(Request(3, 3, 10))  # hit on 3: moves up exactly one slot
        after = c.resident_keys()
        assert after.index(3) == max(i3 - 1, 0)


class TestSHiP:
    def test_dead_signature_gets_lru_insert(self):
        c = SHiPCache(10_000, table_size=64)
        sig_counter_zero = None
        # Drive one signature to zero: insert, evict without reuse, repeat.
        small = SHiPCache(40, table_size=64)
        for i in range(200):
            small.request(Request(i, i, 20))  # pure churn: every line dies
        assert any(v == 0 for v in small._shct), "churn must train dead signatures"

    def test_reuse_trains_counter_up(self):
        c = SHiPCache(1_000, table_size=64)
        c.request(Request(0, 5, 10))
        sig = c._signature(5, 10)
        before = c._shct[sig]
        c.request(Request(1, 5, 10))
        assert c._shct[sig] == min(before + 1, c.max_counter)


class TestDAAIP:
    def test_dead_prediction_inserts_lru(self):
        c = DAAIPCache(400, table_size=16, dead_threshold=1)
        # Churn so signatures go dead.
        for i in range(200):
            c.request(Request(i, i, 100))
        # Most of the queue tail should now be dead-predicted inserts.
        marks = [n.inserted_mru for n in c.queue]
        assert not all(marks), "expected some LRU-position insertions"

    def test_first_hit_is_cautious(self):
        c = DAAIPCache(1_000, table_size=16, dead_threshold=99)  # never dead
        feed(c, [(1, 10), (2, 10), (3, 10)])
        c.request(Request(3, 1, 10))  # hit: full promotion (inserted MRU)
        assert c.queue.head.key == 1


class TestDGIPPR:
    def test_population_evolves(self):
        c = DGIPPRCache(2_000, population=4, window=64, rng=random.Random(3))
        for i in range(2_000):
            c.request(Request(i, i % 37, 10))
        # After > population*window requests, at least one GA generation ran:
        # fitness counters were reset, and chromosomes remain valid.
        for chrom in c._pop:
            assert len(chrom.genes) == 4
            assert all(0.0 <= g <= 1.0 for g in chrom.genes)

    def test_lru_seed_chromosome(self):
        c = DGIPPRCache(1_000)
        assert c._pop[0].genes == [1.0] * 4


class TestASCIP:
    def test_large_objects_denied(self):
        c = ASCIPCache(10_000, init_threshold=100, rng=random.Random(0))
        c.request(Request(0, 1, 10))     # small → MRU
        c.request(Request(1, 2, 5_000))  # large → LRU (modulo 1/32 escape)
        assert c.index[1].inserted_mru is True
        assert c.index[2].inserted_mru is False

    def test_learns_to_deny_big_oneshots(self):
        c = ASCIPCache(20_000, init_threshold=64 * 1024)
        # Dead objects are big (8k) one-shots; a slowly rotating hot set of
        # small (100 B) objects provides reused evictions for the other EWMA.
        t = 0
        denied_big = admitted_big = 0
        for round_ in range(600):
            key_big = 10_000 + t
            c.request(Request(t, key_big, 8_000))
            if round_ >= 300 and c.contains(key_big):
                admitted_big += c.index[key_big].inserted_mru
                denied_big += not c.index[key_big].inserted_mru
            t += 1
            c.request(Request(t, (round_ // 30) % 7, 100))  # rotating hot set
            t += 1
        # In the trained half, big one-shots are predominantly denied.
        assert denied_big > admitted_big

    def test_hits_always_promote(self):
        c = ASCIPCache(1_000)
        feed(c, [(1, 10), (2, 10)])
        c.request(Request(2, 1, 10))
        assert c.queue.head.key == 1
