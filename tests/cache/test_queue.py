"""Unit + property tests for the intrusive linked queue."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.queue import LinkedQueue, Node


def make(key, size=1):
    return Node(key, size)


class TestBasics:
    def test_empty(self):
        q = LinkedQueue()
        assert len(q) == 0
        assert not q
        assert q.head is None
        assert q.tail is None
        assert q.bytes == 0

    def test_push_mru_order(self):
        q = LinkedQueue()
        for k in [1, 2, 3]:
            q.push_mru(make(k))
        assert q.keys() == [3, 2, 1]
        assert q.head.key == 3
        assert q.tail.key == 1

    def test_push_lru_order(self):
        q = LinkedQueue()
        for k in [1, 2, 3]:
            q.push_lru(make(k))
        assert q.keys() == [1, 2, 3]

    def test_bytes_accounting(self):
        q = LinkedQueue()
        q.push_mru(make(1, 10))
        q.push_lru(make(2, 5))
        assert q.bytes == 15
        q.pop_lru()
        assert q.bytes == 10

    def test_pop_lru(self):
        q = LinkedQueue()
        for k in [1, 2, 3]:
            q.push_mru(make(k))
        assert q.pop_lru().key == 1
        assert q.pop_lru().key == 2
        assert q.pop_lru().key == 3
        with pytest.raises(IndexError):
            q.pop_lru()

    def test_pop_mru(self):
        q = LinkedQueue()
        for k in [1, 2]:
            q.push_mru(make(k))
        assert q.pop_mru().key == 2
        assert q.pop_mru().key == 1
        with pytest.raises(IndexError):
            q.pop_mru()

    def test_unlink_middle(self):
        q = LinkedQueue()
        nodes = [make(k) for k in [1, 2, 3]]
        for n in nodes:
            q.push_mru(n)
        q.unlink(nodes[1])  # key 2
        assert q.keys() == [3, 1]
        assert nodes[1].prev is None and nodes[1].next is None

    def test_move_to_mru(self):
        q = LinkedQueue()
        nodes = [make(k) for k in [1, 2, 3]]
        for n in nodes:
            q.push_mru(n)
        q.move_to_mru(nodes[0])
        assert q.keys() == [1, 3, 2]

    def test_move_to_lru(self):
        q = LinkedQueue()
        nodes = [make(k) for k in [1, 2, 3]]
        for n in nodes:
            q.push_mru(n)
        q.move_to_lru(nodes[2])
        assert q.keys() == [2, 1, 3]

    def test_promote_one(self):
        q = LinkedQueue()
        nodes = [make(k) for k in [1, 2, 3]]
        for n in nodes:
            q.push_mru(n)
        # keys: [3, 2, 1]; promote key 1 one step -> [3, 1, 2]
        q.promote_one(nodes[0])
        assert q.keys() == [3, 1, 2]

    def test_promote_one_at_head_is_noop(self):
        q = LinkedQueue()
        nodes = [make(k) for k in [1, 2]]
        for n in nodes:
            q.push_mru(n)
        q.promote_one(nodes[1])  # already MRU
        assert q.keys() == [2, 1]

    def test_insert_before_after(self):
        q = LinkedQueue()
        a, b = make("a"), make("b")
        q.push_mru(a)
        q.insert_before(b, a)
        assert q.keys() == ["b", "a"]
        c = make("c")
        q.insert_after(c, b)
        assert q.keys() == ["b", "c", "a"]

    def test_iter_lru(self):
        q = LinkedQueue()
        for k in [1, 2, 3]:
            q.push_mru(k_node := make(k))
        assert [n.key for n in q.iter_lru()] == [1, 2, 3]

    def test_unlink_while_iterating(self):
        q = LinkedQueue()
        nodes = [make(k) for k in range(5)]
        for n in nodes:
            q.push_mru(n)
        seen = []
        for n in q:
            seen.append(n.key)
            q.unlink(n)
        assert seen == [4, 3, 2, 1, 0]
        assert len(q) == 0


@st.composite
def queue_ops(draw):
    return draw(
        st.lists(
            st.tuples(
                st.sampled_from(
                    ["push_mru", "push_lru", "pop_lru", "pop_mru", "move_mru", "move_lru", "promote"]
                ),
                st.integers(min_value=1, max_value=500),
            ),
            min_size=1,
            max_size=120,
        )
    )


class TestProperties:
    @settings(max_examples=150, deadline=None)
    @given(queue_ops())
    def test_invariants_under_random_ops(self, ops):
        """The queue's structural invariants survive arbitrary op sequences,
        and its key order matches a plain-list reference model."""
        q = LinkedQueue()
        model = []  # list of (key, node), MRU first
        for op, size in ops:
            if op == "push_mru":
                n = make(len(model), size)
                q.push_mru(n)
                model.insert(0, n)
            elif op == "push_lru":
                n = make(len(model), size)
                q.push_lru(n)
                model.append(n)
            elif op == "pop_lru" and model:
                assert q.pop_lru() is model.pop()
            elif op == "pop_mru" and model:
                assert q.pop_mru() is model.pop(0)
            elif op == "move_mru" and model:
                n = model.pop(size % len(model))
                q.move_to_mru(n)
                model.insert(0, n)
            elif op == "move_lru" and model:
                n = model.pop(size % len(model))
                q.move_to_lru(n)
                model.append(n)
            elif op == "promote" and model:
                i = size % len(model)
                n = model[i]
                q.promote_one(n)
                if i > 0:
                    model[i - 1], model[i] = model[i], model[i - 1]
            q.check_invariants()
            assert q.keys() == [n.key for n in model]
            assert q.bytes == sum(n.size for n in model)
