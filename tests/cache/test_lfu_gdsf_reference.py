"""Differential tests: LFU and GDSF against O(n) reference models."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.gdsf import GDSFCache
from repro.cache.lfu import LFUCache
from repro.sim.request import Request

streams = st.lists(
    st.tuples(st.integers(0, 18), st.integers(1, 120)), min_size=1, max_size=250
)


class RefLFU:
    """Reference LFU: dict of (freq, last_touch) with full scans."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.freq: dict = {}
        self.touch: dict = {}
        self.sizes: dict = {}
        self.t = 0

    def request(self, key: int, size: int) -> bool:
        self.t += 1
        if key in self.sizes:
            self.freq[key] += 1
            self.touch[key] = self.t
            self.sizes[key] = size
            while sum(self.sizes.values()) > self.capacity and self.sizes:
                self._evict()
            return True
        if size > self.capacity:
            return False
        while sum(self.sizes.values()) + size > self.capacity and self.sizes:
            self._evict()
        self.freq[key] = 1
        self.touch[key] = self.t
        self.sizes[key] = size
        return False

    def _evict(self) -> None:
        victim = min(self.sizes, key=lambda k: (self.freq[k], self.touch[k]))
        del self.sizes[victim]
        del self.freq[victim]
        del self.touch[victim]


@settings(max_examples=100, deadline=None)
@given(streams, st.integers(100, 1_500))
def test_lfu_matches_reference(data, capacity):
    """The O(1) frequency-bucket LFU must agree with the brute-force model
    on every hit/miss outcome and the final resident set."""
    real = LFUCache(capacity)
    ref = RefLFU(capacity)
    for i, (k, s) in enumerate(data):
        assert real.request(Request(i, k, s)) == ref.request(k, s), (i, k, s)
    assert set(real._entries) == set(ref.sizes)


class TestGDSFPriorities:
    def test_priority_formula(self):
        c = GDSFCache(10_000)
        c.request(Request(0, 1, 100))
        # freq 1, inflation 0 → H = 0 + 1/100.
        assert c._prio[1] == 1 / 100
        c.request(Request(1, 1, 100))
        assert c._prio[1] == 2 / 100

    def test_inflation_applied_to_new_entries(self):
        c = GDSFCache(150)
        c.request(Request(0, 1, 100))
        c.request(Request(1, 2, 100))  # evicts 1 → inflation = H(1) = 0.01
        assert c.inflation == 1 / 100
        c.request(Request(2, 3, 40))
        assert c._prio[3] == c.inflation + 1 / 40

    def test_eviction_is_min_priority(self):
        c = GDSFCache(220)
        c.request(Request(0, 1, 100))   # H = .01
        c.request(Request(1, 2, 100))   # H = .01, younger
        c.request(Request(2, 1, 100))   # bump 1 → H = .02
        c.request(Request(3, 3, 100))   # must evict 2 (lowest H, oldest)
        assert not c.contains(2)
        assert c.contains(1)
