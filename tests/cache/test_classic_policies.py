"""Behavioural tests for the classic baselines (LRU, FIFO, LFU, ARC)."""

from __future__ import annotations

from repro.cache.arc import B1, T1, T2, ARCCache
from repro.cache.fifo import FIFOCache
from repro.cache.lfu import LFUCache
from repro.cache.lru import LRUCache
from repro.sim.request import Request


def feed(policy, keys, size=10):
    hits = []
    for i, k in enumerate(keys):
        hits.append(policy.request(Request(i, k, size)))
    return hits


class TestFIFO:
    def test_hits_do_not_promote(self):
        c = FIFOCache(30)
        feed(c, [1, 2, 3])
        c.request(Request(3, 1, 10))  # hit on 1 — must NOT save it
        c.request(Request(4, 4, 10))  # evicts 1 (oldest)
        assert not c.contains(1)
        assert c.contains(2)

    def test_scan_immunity_vs_lru(self, scan_trace):
        """On a pure loop-scan larger than the cache, FIFO and LRU both get
        zero hits — but FIFO must not be *worse* (sanity anchor)."""
        cap = 60 * 100  # 60 of 120 objects
        f, l = FIFOCache(cap), LRUCache(cap)
        for r in scan_trace:
            f.request(r)
            l.request(r)
        assert f.stats.miss_ratio == l.stats.miss_ratio == 1.0


class TestLFU:
    def test_evicts_least_frequent(self):
        c = LFUCache(30)
        feed(c, [1, 1, 1, 2, 2, 3])
        c.request(Request(6, 4, 10))  # must evict 3 (freq 1)
        assert not c.contains(3)
        assert c.contains(1) and c.contains(2)

    def test_tie_broken_by_recency(self):
        c = LFUCache(30)
        feed(c, [1, 2, 3])  # all freq 1; 1 is oldest
        c.request(Request(3, 4, 10))
        assert not c.contains(1)

    def test_peek_victim_matches_eviction(self):
        c = LFUCache(30)
        feed(c, [1, 1, 2, 3])
        victim = c.peek_victim()
        c.request(Request(4, 9, 10))
        assert not c.contains(victim)

    def test_frequency_survives_bumps(self):
        c = LFUCache(1000)
        feed(c, [1, 1, 1, 1, 2])
        assert c._entries[1].freq == 4
        assert c._entries[2].freq == 1

    def test_minfreq_tracking_regression(self):
        """Evictions after mixed bumps must still find the lowest bucket."""
        c = LFUCache(40)
        feed(c, [1, 1, 2, 2, 3, 4])
        c.request(Request(6, 5, 10))  # evict 3 or 4 (freq 1, 3 older)
        assert not c.contains(3)
        assert c.contains(4) or c.stats.evictions >= 1


class TestARC:
    def test_second_access_moves_to_t2(self):
        c = ARCCache(100)
        feed(c, [1])
        assert c._where[1].data == T1
        feed(c, [1])
        assert c._where[1].data == T2

    def test_ghost_hit_adapts_p(self):
        c = ARCCache(40)
        feed(c, [1, 2, 3, 4, 5])  # overflow T1 → ghosts in B1
        p_before = c.p
        # Re-request an evicted key: ghost hit in B1 should raise p.
        ghost_keys = [k for k, n in c._where.items() if n.data == B1]
        assert ghost_keys, "expected B1 ghosts"
        c.request(Request(10, ghost_keys[0], 10))
        assert c.p > p_before

    def test_scan_resistance(self, scan_trace):
        """ARC keeps a frequent working set alive through a scan that
        floods LRU."""
        cap = 3_000
        hot = [Request(i, 1000 + (i % 5), 100) for i in range(200)]
        arc, lru = ARCCache(cap), LRUCache(cap)
        # Warm both with the hot set, interleave a scan, then re-touch hot.
        seq = hot[:100] + list(scan_trace)[:400] + hot[100:]
        ah = sum(arc.request(r) for r in seq)
        lh = sum(lru.request(r) for r in seq)
        assert ah >= lh

    def test_ghost_bounded(self, zipf_trace):
        c = ARCCache(10_000)
        for r in zipf_trace:
            c.request(r)
        assert c.b1.bytes <= c.capacity
        assert c.b2.bytes <= c.capacity
