"""LRB and GL-Cache: the learned comparators."""

from __future__ import annotations

import numpy as np

from repro.cache.glcache import GLCache
from repro.cache.lrb import LRBCache, RelaxedBeladyLearner
from repro.cache.lru import LRUCache
from repro.sim.request import Request


def feed_pattern(policy, n=4_000, period=37, n_keys=400, seed=3):
    import random

    rng = random.Random(seed)
    for i in range(n):
        if rng.random() < 0.5:
            key = rng.randrange(20)           # hot set
        else:
            key = 100 + (i % n_keys)          # cyclic scan
        policy.request(Request(i, key, 50))


class TestRelaxedBeladyLearner:
    def test_trains_after_enough_samples(self):
        learner = RelaxedBeladyLearner(memory_window=500, retrain_interval=400)
        for i in range(3_000):
            learner.on_access(i % 60, 50, i)
        assert learner.trainings >= 1
        assert learner.model is not None

    def test_labels_are_log_gaps(self):
        learner = RelaxedBeladyLearner(memory_window=1000, retrain_interval=10**9)
        # Access key 1 at t=10 and t=74: the harvested label is log2(64).
        learner.on_access(1, 50, 10)
        learner.on_access(1, 50, 74)
        assert any(abs(y - 6.0) < 1e-9 for y in learner._y)

    def test_boundary_label_for_stale(self):
        learner = RelaxedBeladyLearner(memory_window=100, retrain_interval=50)
        learner.on_access(1, 50, 0)
        for i in range(1, 400):
            learner.on_access(1000 + i, 50, i)
        boundary = learner._boundary_label()
        assert any(abs(y - boundary) < 1e-9 for y in learner._y)

    def test_choose_victim_none_before_training(self):
        learner = RelaxedBeladyLearner()
        assert learner.choose_victim_key(0) is None

    def test_pool_tracking(self):
        learner = RelaxedBeladyLearner()
        for k in range(10):
            learner.track_insert(k)
        learner.track_evict(3)
        learner.track_evict(9)
        assert 3 not in learner._key_pos and 9 not in learner._key_pos
        assert len(learner._keys) == 8
        learner.track_evict(999)  # unknown key: no-op


class TestLRB:
    def test_runs_and_respects_capacity(self, cdn_t_small):
        p = LRBCache(
            int(cdn_t_small.working_set_size * 0.02),
            memory_window=3_000,
            retrain_interval=3_000,
        )
        for r in cdn_t_small:
            p.request(r)
            assert p.used <= p.capacity
        assert p.learner.trainings >= 1

    def test_not_catastrophically_worse_than_lru(self, cdn_t_small):
        cap = int(cdn_t_small.working_set_size * 0.02)
        p = LRBCache(cap, memory_window=3_000, retrain_interval=3_000)
        l = LRUCache(cap)
        for r in cdn_t_small:
            p.request(r)
            l.request(r)
        assert p.stats.miss_ratio <= l.stats.miss_ratio + 0.05


class TestGLCache:
    def test_groups_seal_at_byte_budget(self):
        c = GLCache(10_000, group_bytes=500)
        for i in range(50):
            c.request(Request(i, i, 100))
        assert len(c._groups) > 1

    def test_group_eviction_is_bulk(self):
        c = GLCache(1_000, group_bytes=300)
        for i in range(10):
            c.request(Request(i, i, 100))  # exactly fills the cache
        before = len(c)
        c.request(Request(10, 99, 100))  # overflow triggers a group eviction
        # At least a whole group's objects (>= 2) left together.
        assert before + 1 - len(c) >= 2 or c.stats.evictions >= 3

    def test_learning_kicks_in(self):
        c = GLCache(2_000, group_bytes=200, retrain_interval=8)
        feed_pattern(c, n=6_000)
        assert c.trainings >= 1
        assert c._w is not None and len(c._w) == 6

    def test_capacity_and_accounting(self, zipf_trace):
        c = GLCache(20_000)
        for r in zipf_trace:
            c.request(r)
            assert c.used <= c.capacity
        assert sum(g.bytes for g in c._groups.values()) == c.used
        assert sum(len(g.keys) for g in c._groups.values()) == len(c)

    def test_learned_beats_or_matches_cold_fifo_groups(self, cdn_t_small):
        cap = int(cdn_t_small.working_set_size * 0.02)
        learned = GLCache(cap, retrain_interval=32)
        frozen = GLCache(cap, retrain_interval=10**9)  # never trains
        for r in cdn_t_small:
            learned.request(r)
            frozen.request(r)
        assert learned.stats.miss_ratio <= frozen.stats.miss_ratio + 0.03
