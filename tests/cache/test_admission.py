"""Admission-policy substrate (2Q, TinyLFU, AdaptSize) — §7 related work."""

from __future__ import annotations

from repro.cache.admission import AdaptSizeCache, TinyLFUCache, TwoQCache, _CountMinSketch
from repro.cache.lru import LRUCache
from repro.sim.request import Request


def feed(p, keys, size=10, t0=0):
    for i, k in enumerate(keys):
        p.request(Request(t0 + i, k, size))


class TestTwoQ:
    def test_first_touch_goes_to_probation(self):
        c = TwoQCache(1_000)
        feed(c, [1])
        assert c._where[1][1] == "a1in"

    def test_probation_hit_promotes(self):
        c = TwoQCache(1_000)
        feed(c, [1, 1])
        assert c._where[1][1] == "am"

    def test_ghost_readmission_protected(self):
        c = TwoQCache(100, kin=0.5)
        feed(c, [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12])  # 1 spills to ghost
        assert 1 not in c._where
        c.request(Request(20, 1, 10))
        assert c._where[1][1] == "am"

    def test_scan_resistance_vs_lru(self, scan_trace):
        hot = [Request(1000 + i, 5000 + (i % 4), 100) for i in range(120)]
        seq = hot[:60] + list(scan_trace)[:300] + hot[60:]
        cap = 2_000
        q, l = TwoQCache(cap), LRUCache(cap)
        qh = sum(q.request(r) for r in seq)
        lh = sum(l.request(r) for r in seq)
        assert qh >= lh


class TestCountMinSketch:
    def test_estimates_lower_bounded_by_truth_modulo_reset(self):
        s = _CountMinSketch(width=1024, reset_at=10**9)
        for _ in range(7):
            s.add(42)
        assert s.estimate(42) >= 7

    def test_reset_halves(self):
        s = _CountMinSketch(width=64, reset_at=10)
        for _ in range(10):
            s.add(1)
        assert s.estimate(1) <= 5


class TestTinyLFU:
    def test_unpopular_newcomer_rejected_when_full(self):
        c = TinyLFUCache(40)
        for _ in range(5):
            feed(c, [1, 2, 3, 4])   # popular residents
        before = set(k for k in [1, 2, 3, 4] if c.contains(k))
        c.request(Request(100, 99, 10))  # freq 1 vs freq-5 victim: denied
        assert not c.contains(99)
        assert all(c.contains(k) for k in before)

    def test_popular_newcomer_admitted(self):
        c = TinyLFUCache(40)
        feed(c, [1, 2, 3, 4])
        for _ in range(6):
            c.sketch.add(99)
        c.request(Request(50, 99, 10))
        assert c.contains(99)


class TestAdaptSize:
    def test_small_objects_favoured(self):
        import random

        c = AdaptSizeCache(100_000, init_cutoff=1_000, seed=1)
        admitted_small = admitted_big = 0
        for i in range(300):
            c.request(Request(i, i, 100))
            admitted_small += c.contains(i)
            c.request(Request(i, 10_000 + i, 50_000))
            admitted_big += c.contains(10_000 + i)
        assert admitted_small > admitted_big

    def test_cutoff_tunes(self, cdn_t_small):
        c = AdaptSizeCache(
            int(cdn_t_small.working_set_size * 0.02), tune_interval=5_000
        )
        start = c.cutoff
        for r in cdn_t_small:
            c.request(r)
        assert c.cutoff != start  # the tuner moved at least once

    def test_capacity_respected(self, zipf_trace):
        c = AdaptSizeCache(20_000)
        for r in zipf_trace:
            c.request(r)
            assert c.used <= c.capacity
