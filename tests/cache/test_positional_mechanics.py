"""Mechanics of positional insertion (PIPP finger, DGIPPR depth walks) and
other internals not visible through miss ratios alone."""

from __future__ import annotations

import random

from repro.cache.dgippr import DGIPPRCache
from repro.cache.pipp import PIPPCache
from repro.sim.request import Request


def feed(p, n, size=10, key0=0):
    for i in range(n):
        p.request(Request(i, key0 + i, size))


class TestPIPPFinger:
    def test_finger_survives_eviction_of_anchor(self):
        """Evicting the node the finger points at must not crash insertion
        (the finger detects its unlinked anchor and recalibrates)."""
        c = PIPPCache(200, insert_frac=0.5, rng=random.Random(0))
        feed(c, 60)  # heavy churn: anchors get evicted constantly
        assert c.used <= c.capacity
        c.check_invariants()

    def test_insert_frac_zero_is_tail(self):
        c = PIPPCache(1_000, insert_frac=0.0, rng=random.Random(0))
        feed(c, 5)
        assert c.queue.tail.key == 4

    def test_insert_frac_extremes_validated(self):
        import pytest

        with pytest.raises(ValueError):
            PIPPCache(100, insert_frac=1.5)

    def test_recalibration_depth_tracks_queue(self):
        c = PIPPCache(10_000, insert_frac=0.5, rng=random.Random(0))
        feed(c, 100)
        c._recalibrate()
        # The finger should sit mid-queue: not head, not tail.
        keys = c.resident_keys()
        pos = keys.index(c._finger.key)
        assert 0.2 * len(keys) < pos < 0.8 * len(keys)


class TestDGIPPRDepthWalk:
    def test_depth_one_is_mru(self):
        c = DGIPPRCache(1_000, rng=random.Random(0))
        # Force the active chromosome to all-MRU genes.
        c._pop[c._active].genes = [1.0, 1.0, 1.0, 1.0]
        feed(c, 5)
        assert c.queue.head.key == 4
        assert c.index[4].inserted_mru is True

    def test_depth_zero_is_tail(self):
        c = DGIPPRCache(1_000, rng=random.Random(0))
        for chrom in c._pop:
            chrom.genes = [0.0, 0.0, 0.0, 0.0]
        feed(c, 5)
        assert c.queue.tail.key == 4

    def test_walk_bounded(self):
        """Mid-depth placement walks at most a bounded number of steps even
        on a long queue (amortised O(1) per insertion)."""
        c = DGIPPRCache(100_000, rng=random.Random(0))
        for chrom in c._pop:
            chrom.genes = [0.5, 0.5, 0.5, 0.5]
        feed(c, 2_000)
        keys = c.resident_keys()
        pos = keys.index(1_999)  # most recent insert
        # _MAX_WALK = 32: the node sits within 32 steps of the tail.
        assert pos >= len(keys) - 33

    def test_hit_count_gene_selection(self):
        c = DGIPPRCache(1_000, rng=random.Random(0))
        for chrom in c._pop:
            chrom.genes = [1.0, 0.0, 1.0, 1.0]  # first hit demotes to tail
        feed(c, 3)
        c.request(Request(10, 0, 10))  # first hit of key 0 → gene[1] = tail
        assert c.queue.tail.key == 0
        c.request(Request(11, 0, 10))  # second hit → gene[2] = MRU
        assert c.queue.head.key == 0


class TestIntervalPointMath:
    def test_byte_ratios(self):
        from repro.sim.metrics import IntervalPoint

        p = IntervalPoint(0)
        p.requests = 4
        p.hits = 1
        p.bytes_requested = 100
        p.bytes_missed = 75
        assert p.miss_ratio == 0.75
        assert p.hit_ratio == 0.25
        assert p.byte_miss_ratio == 0.75
        assert set(p.as_dict()) >= {"start", "end", "miss_ratio"}

    def test_empty_interval_safe(self):
        from repro.sim.metrics import IntervalPoint

        p = IntervalPoint(0)
        assert p.miss_ratio == 0.0
        assert p.byte_miss_ratio == 0.0
