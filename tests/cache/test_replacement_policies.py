"""Behavioural tests for the replacement comparators (LRU-K, S4LRU, SS-LRU,
GDSF, LHD, LeCaR, CACHEUS)."""

from __future__ import annotations

from repro.cache.cacheus import CacheusCache
from repro.cache.gdsf import GDSFCache
from repro.cache.lecar import LeCaRCache
from repro.cache.lhd import LHDCache
from repro.cache.lru import LRUCache
from repro.cache.lruk import LRUKCache
from repro.cache.s4lru import S4LRUCache, SegmentedLRUCache
from repro.cache import sslru
from repro.cache.sslru import SSLRUCache
from repro.sim.request import Request


def feed(policy, keys, size=10, t0=0):
    for i, k in enumerate(keys):
        policy.request(Request(t0 + i, k, size))


class TestLRUK:
    def test_prefers_sub_k_history_victims(self):
        c = LRUKCache(30, k=2)
        feed(c, [1, 1, 2, 2, 3])  # 1 and 2 have K=2 history; 3 has one access
        c.request(Request(5, 4, 10))  # must evict 3 (infinite K-distance)
        assert not c.contains(3)
        assert c.contains(1) and c.contains(2)

    def test_kdist_orders_full_history_victims(self):
        c = LRUKCache(30, k=2, sample=16)
        feed(c, [1, 1, 2, 2, 3, 3])  # all have K-history; 1's 2nd access oldest
        c.request(Request(6, 4, 10))
        assert not c.contains(1)

    def test_k1_close_to_lru(self, zipf_trace):
        a = LRUKCache(20_000, k=1, sample=1)
        b = LRUCache(20_000)
        for r in zipf_trace:
            a.request(r)
            b.request(r)
        # With k=1 and window 1, LRU-K degenerates to plain LRU.
        assert abs(a.stats.miss_ratio - b.stats.miss_ratio) < 1e-9


class TestS4LRU:
    def test_promotion_ladder(self):
        c = S4LRUCache(4_000)
        feed(c, [1])
        assert c._where[1].stamp == 0
        feed(c, [1], t0=10)
        assert c._where[1].stamp == 1
        feed(c, [1], t0=20)
        assert c._where[1].stamp == 2
        feed(c, [1], t0=30)
        assert c._where[1].stamp == 3
        feed(c, [1], t0=40)  # capped at the top segment
        assert c._where[1].stamp == 3

    def test_spill_cascades_down(self):
        c = SegmentedLRUCache(400, levels=2)  # 200 B per segment
        # Promote 8 objects of 30 B each into the top segment: 240 B > 200,
        # so the oldest promoted objects must spill back down to L0.
        for k in [1, 2, 3, 4, 5, 6, 7, 8]:
            feed(c, [k, k], size=30, t0=k * 10)
        assert c.used <= c.capacity
        levels = {k: n.stamp for k, n in c._where.items()}
        assert 0 in set(levels.values()), "spill must repopulate the bottom segment"
        assert 1 in set(levels.values())

    def test_eviction_from_bottom(self):
        c = SegmentedLRUCache(100, levels=2)
        feed(c, [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12])
        assert c.used <= 100
        assert len(c) <= 10


class TestSSLRU:
    def test_protected_capacity_respected(self, zipf_trace):
        c = SSLRUCache(20_000, protected_frac=0.5)
        for r in zipf_trace:
            c.request(r)
            assert c.protected.bytes <= c.protected_cap + max(r.size for r in [r])
        assert c.used <= c.capacity

    def test_hit_moves_to_protected(self):
        c = SSLRUCache(1_000)
        feed(c, [1])
        feed(c, [1], t0=5)
        assert c._where[1].stamp == sslru._PROTECTED

    def test_model_trains_on_evictions(self, zipf_trace):
        c = SSLRUCache(5_000)
        for r in zipf_trace:
            c.request(r)
        assert any(w != 0.0 for w in c.model.w), "logit must have learned"


class TestGDSF:
    def test_small_objects_preferred(self):
        c = GDSFCache(1_000)
        c.request(Request(0, 1, 900))  # big
        c.request(Request(1, 2, 50))   # small
        c.request(Request(2, 3, 100))  # forces eviction → big one goes
        assert not c.contains(1)
        assert c.contains(2)

    def test_frequency_matters(self):
        c = GDSFCache(300)
        feed(c, [1, 1, 1, 2], size=100)
        c.request(Request(5, 3, 150))  # evict 2 (freq 1), not 1 (freq 3)
        assert c.contains(1)
        assert not c.contains(2)

    def test_inflation_monotone(self, zipf_trace):
        c = GDSFCache(10_000)
        last = 0.0
        for r in zipf_trace:
            c.request(r)
            assert c.inflation >= last
            last = c.inflation


class TestLHD:
    def test_basic_caching(self, zipf_trace):
        c = LHDCache(int(zipf_trace.working_set_size * 0.3))
        for r in zipf_trace:
            c.request(r)
        assert 0.0 < c.stats.miss_ratio < 1.0
        assert c.used <= c.capacity

    def test_density_recurrence_shape(self):
        from repro.cache.lhd import _ClassStats

        hot = _ClassStats()
        hot.hits[0] = 100.0  # a class whose objects get hit young
        hot.recompute()
        cold = _ClassStats()
        cold.evictions[0] = 100.0  # a class whose objects die young, unused
        cold.recompute()
        assert hot.density[0] > cold.density[0], "hit-rich class must rank higher"


class TestLeCaR:
    def test_weights_stay_normalised(self, zipf_trace):
        c = LeCaRCache(15_000)
        for r in zipf_trace:
            c.request(r)
            assert abs(c.w_lru + c.w_lfu - 1.0) < 1e-9

    def test_regret_moves_weights(self):
        c = LeCaRCache(200, seed=0)
        # A reuse loop slightly wider than the cache: evicted objects come
        # back while still in the ghost lists → regret updates fire.
        for i in range(400):
            c.request(Request(i, i % 6, 50))
        assert c.w_lru != 0.5 or c.w_lfu != 0.5


class TestCACHEUS:
    def test_adaptive_lr_updates(self, zipf_trace):
        c = CacheusCache(15_000, update_interval=500)
        for r in zipf_trace:
            c.request(r)
        assert c.lr.updates >= len(zipf_trace) // 500 - 1

    def test_weights_normalised(self, zipf_trace):
        c = CacheusCache(15_000)
        for r in zipf_trace:
            c.request(r)
            assert abs(c.w_srlru + c.w_crlfu - 1.0) < 1e-9

    def test_probationary_insert(self):
        c = CacheusCache(10_000)
        for k in range(12):
            c.request(Request(k, k, 10))
        # New inserts sit near (not at) the tail; head is not the last key.
        keys = c.resident_keys()
        assert keys[0] != 11
