"""Differential testing against executable reference models.

Each production policy is replayed side-by-side with a brutally simple
reference implementation (plain lists/dicts, O(n) everywhere); hypothesis
drives arbitrary request streams and the *entire observable behaviour*
(hit/miss sequence, final resident set) must match exactly.
"""

from __future__ import annotations

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.fifo import FIFOCache
from repro.cache.lip import LIPCache
from repro.cache.lru import LRUCache
from repro.cache.queue import LinkedQueue, Node
from repro.sim.request import Request

streams = st.lists(
    st.tuples(st.integers(0, 25), st.integers(1, 300)), min_size=1, max_size=400
)


class RefLRU:
    """Reference LRU: OrderedDict, O(n) accounting."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.od: OrderedDict = OrderedDict()

    def request(self, key: int, size: int) -> bool:
        if key in self.od:
            self.od[key] = size
            self.od.move_to_end(key)
            # A grown object may overflow the cache — even itself leaves.
            while sum(self.od.values()) > self.capacity and self.od:
                self.od.popitem(last=False)
            return True
        if size > self.capacity:
            return False
        while sum(self.od.values()) + size > self.capacity and self.od:
            self.od.popitem(last=False)
        self.od[key] = size
        return False


class RefFIFO:
    """Reference FIFO: insertion order only, hits don't reorder."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.od: OrderedDict = OrderedDict()

    def request(self, key: int, size: int) -> bool:
        if key in self.od:
            self.od[key] = size  # size refresh, no reorder
            while sum(self.od.values()) > self.capacity and self.od:
                self.od.popitem(last=False)
            return True
        if size > self.capacity:
            return False
        while sum(self.od.values()) + size > self.capacity and self.od:
            self.od.popitem(last=False)
        self.od[key] = size
        return False


class RefLIP:
    """Reference LIP: misses append at the cold end, hits move to the hot
    end; victims leave from the cold end."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.order: list = []  # index 0 = next victim (LRU end)
        self.sizes: dict = {}

    def _evict(self) -> None:
        victim = self.order.pop(0)
        del self.sizes[victim]

    def request(self, key: int, size: int) -> bool:
        if key in self.sizes:
            self.sizes[key] = size
            self.order.remove(key)
            self.order.append(key)  # promote to MRU
            while sum(self.sizes.values()) > self.capacity and self.order:
                self._evict()
            return True
        if size > self.capacity:
            return False
        while sum(self.sizes.values()) + size > self.capacity and self.order:
            self._evict()
        self.order.insert(0, key)  # LRU-position insertion
        self.sizes[key] = size
        return False


@settings(max_examples=120, deadline=None)
@given(streams, st.integers(100, 2_000))
def test_lru_matches_reference(data, capacity):
    real = LRUCache(capacity)
    ref = RefLRU(capacity)
    for i, (k, s) in enumerate(data):
        assert real.request(Request(i, k, s)) == ref.request(k, s), (i, k, s)
    assert set(real.resident_keys()) == set(ref.od)


@settings(max_examples=120, deadline=None)
@given(streams, st.integers(100, 2_000))
def test_fifo_matches_reference(data, capacity):
    real = FIFOCache(capacity)
    ref = RefFIFO(capacity)
    for i, (k, s) in enumerate(data):
        assert real.request(Request(i, k, s)) == ref.request(k, s), (i, k, s)
    assert set(real.resident_keys()) == set(ref.od)


@settings(max_examples=120, deadline=None)
@given(streams, st.integers(100, 2_000))
def test_lip_matches_reference(data, capacity):
    real = LIPCache(capacity)
    ref = RefLIP(capacity)
    for i, (k, s) in enumerate(data):
        assert real.request(Request(i, k, s)) == ref.request(k, s), (i, k, s)
    assert set(real.resident_keys()) == set(ref.sizes)
    # Order must match too: reference order is LRU→MRU.
    assert real.resident_keys() == list(reversed(ref.order))


# -- intrusive queue vs naive list reference ----------------------------------
#
# The LinkedQueue is the hot-path workhorse (its splice methods are hand-
# inlined in the replay loop), so its every operation is differentially
# tested against the obvious reference: a plain Python list of keys ordered
# MRU -> LRU.  Hypothesis drives arbitrary operation sequences; after every
# single operation the full observable state (key order, length, byte count,
# popped values) must match, and the link structure must pass the O(n)
# structural audit at the end.

#: (op, selector, size) triples; ``selector`` picks a resident node (mod
#: length) for targeted ops, ``size`` the payload of newly created nodes.
queue_ops = st.lists(
    st.tuples(st.integers(0, 9), st.integers(0, 1_000), st.integers(1, 64)),
    max_size=300,
)


@settings(max_examples=150, deadline=None)
@given(queue_ops)
def test_linked_queue_matches_list_reference(ops):
    q = LinkedQueue()
    nodes: dict = {}  # key -> linked Node
    sizes: dict = {}  # key -> size
    ref: list = []  # keys, index 0 = MRU end
    next_key = 0

    for op, sel, size in ops:
        if not ref and op in (2, 3, 4, 5, 6, 7):
            op = 0  # nothing resident to target: fall back to an insert
        if op == 0:  # push_mru
            node = Node(next_key, size)
            q.push_mru(node)
            nodes[next_key] = node
            sizes[next_key] = size
            ref.insert(0, next_key)
            next_key += 1
        elif op == 1:  # push_lru
            node = Node(next_key, size)
            q.push_lru(node)
            nodes[next_key] = node
            sizes[next_key] = size
            ref.append(next_key)
            next_key += 1
        elif op == 2:  # pop_lru
            node = q.pop_lru()
            expected = ref.pop()
            assert node.key == expected
            del nodes[expected], sizes[expected]
        elif op == 3:  # pop_mru
            node = q.pop_mru()
            expected = ref.pop(0)
            assert node.key == expected
            del nodes[expected], sizes[expected]
        elif op == 4:  # unlink arbitrary
            key = ref[sel % len(ref)]
            q.unlink(nodes[key])
            ref.remove(key)
            del nodes[key], sizes[key]
        elif op == 5:  # move_to_mru
            key = ref[sel % len(ref)]
            q.move_to_mru(nodes[key])
            ref.remove(key)
            ref.insert(0, key)
        elif op == 6:  # move_to_lru
            key = ref[sel % len(ref)]
            q.move_to_lru(nodes[key])
            ref.remove(key)
            ref.append(key)
        elif op == 7:  # promote_one (PIPP): swap with toward-MRU neighbour
            idx = sel % len(ref)
            key = ref[idx]
            q.promote_one(nodes[key])
            if idx > 0:
                ref[idx - 1], ref[idx] = ref[idx], ref[idx - 1]
        elif op == 8:  # insert_before an anchor (or push_mru when empty)
            node = Node(next_key, size)
            if ref:
                idx = sel % len(ref)
                q.insert_before(node, nodes[ref[idx]])
                ref.insert(idx, next_key)
            else:
                q.push_mru(node)
                ref.insert(0, next_key)
            nodes[next_key] = node
            sizes[next_key] = size
            next_key += 1
        else:  # insert_after an anchor (or push_lru when empty)
            node = Node(next_key, size)
            if ref:
                idx = sel % len(ref)
                q.insert_after(node, nodes[ref[idx]])
                ref.insert(idx + 1, next_key)
            else:
                q.push_lru(node)
                ref.append(next_key)
            nodes[next_key] = node
            sizes[next_key] = size
            next_key += 1

        assert len(q) == len(ref)
        assert q.bytes == sum(sizes[k] for k in ref)
        assert q.keys() == ref
        assert list(reversed([n.key for n in q.iter_lru()])) == ref
        assert (q.head.key if q.head else None) == (ref[0] if ref else None)
        assert (q.tail.key if q.tail else None) == (ref[-1] if ref else None)

    q.check_invariants()
