"""Differential testing against executable reference models.

Each production policy is replayed side-by-side with a brutally simple
reference implementation (plain lists/dicts, O(n) everywhere); hypothesis
drives arbitrary request streams and the *entire observable behaviour*
(hit/miss sequence, final resident set) must match exactly.
"""

from __future__ import annotations

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.fifo import FIFOCache
from repro.cache.lip import LIPCache
from repro.cache.lru import LRUCache
from repro.sim.request import Request

streams = st.lists(
    st.tuples(st.integers(0, 25), st.integers(1, 300)), min_size=1, max_size=400
)


class RefLRU:
    """Reference LRU: OrderedDict, O(n) accounting."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.od: OrderedDict = OrderedDict()

    def request(self, key: int, size: int) -> bool:
        if key in self.od:
            self.od[key] = size
            self.od.move_to_end(key)
            # A grown object may overflow the cache — even itself leaves.
            while sum(self.od.values()) > self.capacity and self.od:
                self.od.popitem(last=False)
            return True
        if size > self.capacity:
            return False
        while sum(self.od.values()) + size > self.capacity and self.od:
            self.od.popitem(last=False)
        self.od[key] = size
        return False


class RefFIFO:
    """Reference FIFO: insertion order only, hits don't reorder."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.od: OrderedDict = OrderedDict()

    def request(self, key: int, size: int) -> bool:
        if key in self.od:
            self.od[key] = size  # size refresh, no reorder
            while sum(self.od.values()) > self.capacity and self.od:
                self.od.popitem(last=False)
            return True
        if size > self.capacity:
            return False
        while sum(self.od.values()) + size > self.capacity and self.od:
            self.od.popitem(last=False)
        self.od[key] = size
        return False


class RefLIP:
    """Reference LIP: misses append at the cold end, hits move to the hot
    end; victims leave from the cold end."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.order: list = []  # index 0 = next victim (LRU end)
        self.sizes: dict = {}

    def _evict(self) -> None:
        victim = self.order.pop(0)
        del self.sizes[victim]

    def request(self, key: int, size: int) -> bool:
        if key in self.sizes:
            self.sizes[key] = size
            self.order.remove(key)
            self.order.append(key)  # promote to MRU
            while sum(self.sizes.values()) > self.capacity and self.order:
                self._evict()
            return True
        if size > self.capacity:
            return False
        while sum(self.sizes.values()) + size > self.capacity and self.order:
            self._evict()
        self.order.insert(0, key)  # LRU-position insertion
        self.sizes[key] = size
        return False


@settings(max_examples=120, deadline=None)
@given(streams, st.integers(100, 2_000))
def test_lru_matches_reference(data, capacity):
    real = LRUCache(capacity)
    ref = RefLRU(capacity)
    for i, (k, s) in enumerate(data):
        assert real.request(Request(i, k, s)) == ref.request(k, s), (i, k, s)
    assert set(real.resident_keys()) == set(ref.od)


@settings(max_examples=120, deadline=None)
@given(streams, st.integers(100, 2_000))
def test_fifo_matches_reference(data, capacity):
    real = FIFOCache(capacity)
    ref = RefFIFO(capacity)
    for i, (k, s) in enumerate(data):
        assert real.request(Request(i, k, s)) == ref.request(k, s), (i, k, s)
    assert set(real.resident_keys()) == set(ref.od)


@settings(max_examples=120, deadline=None)
@given(streams, st.integers(100, 2_000))
def test_lip_matches_reference(data, capacity):
    real = LIPCache(capacity)
    ref = RefLIP(capacity)
    for i, (k, s) in enumerate(data):
        assert real.request(Request(i, k, s)) == ref.request(k, s), (i, k, s)
    assert set(real.resident_keys()) == set(ref.sizes)
    # Order must match too: reference order is LRU→MRU.
    assert real.resident_keys() == list(reversed(ref.order))
