"""SIEVE differential test against a list-based reference."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.sieve import SieveCache
from repro.sim.request import Request

streams = st.lists(
    st.tuples(st.integers(0, 14), st.integers(1, 80)), min_size=1, max_size=220
)


class RefSieve:
    """Reference SIEVE: list ordered old→new, visited dict, index hand.

    The hand points at the next eviction candidate (an index from the old
    end); it survives evictions and resets to the oldest entry when it
    falls off the end — mirroring the published algorithm.
    """

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.order: list = []  # index 0 = oldest
        self.visited: dict = {}
        self.sizes: dict = {}
        self.hand_key = None  # key the hand points at (None = start at tail)

    def _used(self) -> int:
        return sum(self.sizes.values())

    def _evict_one(self) -> None:
        # The hand starts at its stored position (or the oldest entry) and
        # sweeps toward newer entries, wrapping back to the oldest.
        idx = (
            self.order.index(self.hand_key)
            if self.hand_key in self.sizes
            else 0
        )
        while self.visited[self.order[idx]]:
            self.visited[self.order[idx]] = False
            idx += 1
            if idx >= len(self.order):
                idx = 0
        victim = self.order.pop(idx)
        del self.visited[victim]
        del self.sizes[victim]
        # After the pop, index idx holds the victim's next-newer neighbour
        # (None if the victim was the newest entry).
        self.hand_key = self.order[idx] if idx < len(self.order) else None

    def request(self, key: int, size: int) -> bool:
        if key in self.sizes:
            self.visited[key] = True
            self.sizes[key] = size
            while self._used() > self.capacity and len(self.order) > 1:
                self._evict_one()
            return True
        if size > self.capacity:
            return False
        while self._used() + size > self.capacity and self.order:
            self._evict_one()
        self.order.append(key)
        self.visited[key] = False
        self.sizes[key] = size
        return False


@settings(max_examples=100, deadline=None)
@given(streams, st.integers(100, 1_200))
def test_sieve_matches_reference(data, capacity):
    real = SieveCache(capacity)
    ref = RefSieve(capacity)
    for i, (k, s) in enumerate(data):
        r = real.request(Request(i, k, s))
        e = ref.request(k, s)
        assert r == e, (i, k, s, real.queue.keys(), ref.order)
    assert set(real.index) == set(ref.sizes)
