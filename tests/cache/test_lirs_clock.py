"""LIRS and CLOCK behavioural tests."""

from __future__ import annotations

from repro.cache.clock import ClockCache
from repro.cache.lirs import LIRSCache
from repro.cache.lru import LRUCache
from repro.sim.request import Request


def feed(p, keys, size=10, t0=0):
    for i, k in enumerate(keys):
        p.request(Request(t0 + i, k, size))


class TestLIRS:
    def test_cold_fills_lir_region(self):
        c = LIRSCache(100, hir_fraction=0.2)
        feed(c, [1, 2])
        assert c.contains(1) and c.contains(2)
        assert c.lir_bytes == 20

    def test_small_irr_promotes_to_lir(self):
        c = LIRSCache(1_000, hir_fraction=0.5)
        # Fill LIR (cap 500) with 50 objects of 10 B.
        feed(c, range(50))
        # 100 is new: enters HIR; re-access while still in S → LIR.
        feed(c, [100, 100], t0=100)
        from repro.cache.lirs import _LIR

        assert c._state[100][2] == _LIR

    def test_scan_resistance_beats_lru(self, scan_trace):
        """The defining LIRS property: a long scan cannot displace the LIR
        working set, unlike LRU."""
        hot_keys = [9000 + i for i in range(10)]
        warm = [Request(i, k, 100) for i, k in enumerate(hot_keys * 6)]
        scan = list(scan_trace)[:300]
        probe = [Request(9999 + i, k, 100) for i, k in enumerate(hot_keys * 2)]
        seq = warm + scan + probe
        cap = 2_500
        lirs, lru = LIRSCache(cap), LRUCache(cap)
        lh = sum(lirs.request(r) for r in seq)
        rh = sum(lru.request(r) for r in seq)
        assert lh > rh

    def test_capacity_respected(self, zipf_trace):
        c = LIRSCache(20_000)
        for r in zipf_trace:
            c.request(r)
            assert c.used <= c.capacity

    def test_nonresident_metadata_bounded(self, zipf_trace):
        c = LIRSCache(10_000, nonres_factor=1.0)
        for r in zipf_trace:
            c.request(r)
        assert c._nonres_bytes <= c._nonres_budget

    def test_rejects_bad_fraction(self):
        import pytest

        with pytest.raises(ValueError):
            LIRSCache(100, hir_fraction=1.5)


class TestClock:
    def test_second_chance(self):
        c = ClockCache(30)
        feed(c, [1, 2, 3])
        c.request(Request(3, 1, 10))  # sets 1's reference bit
        c.request(Request(4, 4, 10))  # hand clears 1's bit, evicts 2
        assert c.contains(1)
        assert not c.contains(2)

    def test_unreferenced_evicted_in_order(self):
        c = ClockCache(30)
        feed(c, [1, 2, 3])
        c.request(Request(3, 4, 10))  # no bits set: evict 1 (oldest)
        assert not c.contains(1)

    def test_close_to_lru_on_skewed_traffic(self, zipf_trace):
        cap = 20_000
        clock, lru = ClockCache(cap), LRUCache(cap)
        for r in zipf_trace:
            clock.request(r)
            lru.request(r)
        assert abs(clock.stats.miss_ratio - lru.stats.miss_ratio) < 0.08

    def test_capacity(self, zipf_trace):
        c = ClockCache(15_000)
        for r in zipf_trace:
            c.request(r)
            assert c.used <= c.capacity
