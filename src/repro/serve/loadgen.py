"""Closed-loop load generator for :class:`~repro.serve.service.CacheService`.

``concurrency`` client coroutines share one iterator over the trace: each
client issues a request, awaits its outcome, records latency, and takes
the next request — classic closed-loop load, where offered concurrency
(not arrival rate) is the control knob.  An optional ``rate`` adds an
arrival-time pacer in front of the clients, so the same harness can probe
"what happens at 5 000 req/s" instead of "what happens with 64 clients".

``run_serve_bench`` is the one-process serve+loadgen entry (``repro
serve-bench``): build the workload, the origin, the service; optionally
fire a deterministic **stampede probe** (every client hammering one cold
sentinel key — the single-flight acceptance check); drive the trace;
assemble ``BENCH_serve.json`` with an embedded run manifest.
"""

from __future__ import annotations

import asyncio
import time
from typing import List, Optional

from repro.serve.origin import OriginConfig, RetryPolicy, SimulatedOrigin
from repro.serve.results import (
    build_serve_doc,
    format_serve_doc,
    write_serve_doc,
)
from repro.serve.service import CacheService
from repro.sim.request import Request

__all__ = ["Pacer", "run_loadgen", "stampede_probe", "serve_bench_async", "run_serve_bench"]

#: Sentinel key used by the stampede probe — outside every synthetic
#: workload's keyspace (generators emit non-negative keys).
STAMPEDE_KEY = -7


class Pacer:
    """Fixed-rate arrival scheduler shared by all clients.

    Each ``wait`` claims the next slot on an ideal arrival timeline and
    sleeps until it; when the service falls behind, slots in the past
    return immediately (the backlog shows up as queueing/shedding, exactly
    like a saturated real deployment).
    """

    def __init__(self, rate: float):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.interval = 1.0 / rate
        self._next_t: Optional[float] = None

    async def wait(self) -> None:
        loop = asyncio.get_running_loop()
        if self._next_t is None:
            self._next_t = loop.time()
        slot = self._next_t
        self._next_t = slot + self.interval
        delay = slot - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)


async def run_loadgen(
    service: CacheService,
    requests,
    concurrency: int = 32,
    rate: Optional[float] = None,
    decisions: Optional[list] = None,
    tracer=None,
) -> dict:
    """Drive ``requests`` through the service with ``concurrency`` clients.

    Parameters
    ----------
    service:
        A **started** :class:`CacheService`.
    requests:
        Iterable of :class:`~repro.sim.request.Request` (a ``Trace`` works).
    concurrency:
        Number of closed-loop client coroutines.
    rate:
        Optional target arrival rate, requests/second (``None`` = as fast
        as the closed loop allows).
    decisions:
        Optional list collecting per-request hit/miss booleans in
        completion order.  Only with ``concurrency=1`` is that trace order
        — the engine-equivalence tests rely on exactly that configuration.
    tracer:
        Optional :class:`repro.obs.span.Tracer`; when given, every request
        gets a root ``request`` span threaded through the service (ended
        with status ``ok`` / ``shed`` / ``error``).  ``None`` keeps the
        path entirely trace-free.

    Latency accounting: successful requests land in ``serve_latency_us``;
    shed and error outcomes land in ``serve_degraded_latency_us`` instead,
    so the success distribution isn't polluted by microsecond sheds or
    multi-second retry failures.

    Returns the loadgen summary block of ``BENCH_serve.json``.
    """
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    it = iter(requests)
    pacer = Pacer(rate) if rate is not None else None
    latency_us = service.metrics.latency_us
    degraded_us = service.metrics.degraded_latency_us
    counts = {"requests": 0, "hits": 0, "shed": 0, "errors": 0, "coalesced": 0}

    async def client() -> None:
        # ``next(it)`` is atomic (no await point), so clients never observe
        # a torn iterator even though they share it.
        for req in it:
            if pacer is not None:
                await pacer.wait()
            span = (
                tracer.start_trace("request", key=req.key)
                if tracer is not None
                else None
            )
            t0 = time.perf_counter_ns()
            out = await service.get(req, span)
            dt_us = (time.perf_counter_ns() - t0) // 1000
            if span is not None:
                span.end(
                    "shed" if out.shed else ("error" if out.error is not None else "ok"),
                    hit=out.hit,
                    shard=out.shard,
                )
            counts["requests"] += 1
            if out.shed:
                counts["shed"] += 1
            else:
                if out.hit:
                    counts["hits"] += 1
                if decisions is not None:
                    decisions.append(out.hit)
            if out.coalesced:
                counts["coalesced"] += 1
            if out.error is not None:
                counts["errors"] += 1
            if out.shed or out.error is not None:
                degraded_us.observe(dt_us)
            else:
                latency_us.observe(dt_us)

    t0 = time.perf_counter()
    await asyncio.gather(*(client() for _ in range(concurrency)))
    elapsed = time.perf_counter() - t0
    served = counts["requests"] - counts["shed"]
    return {
        "requests": counts["requests"],
        "served": served,
        "hits": counts["hits"],
        "hit_ratio": counts["hits"] / served if served else 0.0,
        "shed": counts["shed"],
        "errors": counts["errors"],
        "coalesced": counts["coalesced"],
        "concurrency": concurrency,
        "rate_target": rate,
        "elapsed_s": elapsed,
        "throughput_rps": counts["requests"] / elapsed if elapsed > 0 else float("inf"),
    }


async def stampede_probe(
    service: CacheService, clients: int, key=STAMPEDE_KEY, size: int = 100_000
) -> dict:
    """Fire ``clients`` concurrent requests at one cold key.

    The acceptance check for single-flight: the origin must see exactly
    one fetch for the key's generation, with every other request coalesced
    (either as a miss-follower or as a metadata hit on the in-flight body).
    """
    before = service.origin.fetches_started
    reqs = [Request(0, key, size) for _ in range(clients)]
    outcomes = await asyncio.gather(*(service.get(r) for r in reqs))
    return {
        "clients": clients,
        "origin_fetches": service.origin.fetches_started - before,
        "coalesced": sum(1 for o in outcomes if o.coalesced),
        "hits": sum(1 for o in outcomes if o.hit),
        "shed": sum(1 for o in outcomes if o.shed),
        "errors": sum(1 for o in outcomes if o.error is not None),
    }


async def serve_bench_async(
    policy: str = "SCIP",
    workload: str = "CDN-T",
    n_requests: int = 50_000,
    fraction: float = 0.02,
    n_shards: int = 4,
    concurrency: int = 64,
    queue_depth: int = 256,
    rate: Optional[float] = None,
    origin_latency: float = 0.002,
    origin_concurrency: int = 64,
    failure_rate: float = 0.0,
    timeout: Optional[float] = 0.5,
    max_retries: int = 3,
    stampede_clients: Optional[int] = None,
    seed: int = 0,
    trace_sample: float = 0.0,
    span_out: Optional[str] = None,
    tail_latency_us: Optional[float] = None,
) -> dict:
    """Build service + workload, run the bench, return the result doc.

    Tracing is opt-in: ``trace_sample > 0`` (or a ``span_out`` path)
    attaches a :class:`repro.obs.span.Tracer` to the load generator —
    head-sampled at ``trace_sample`` with tail-keep for shed/error/slow
    traces (``tail_latency_us`` defaults to 5× the origin's mean latency)
    — and embeds the per-stage breakdown + SLO accounting in the doc.
    """
    from repro.cache.registry import resolve_policy
    from repro.obs.manifest import build_manifest
    from repro.traces.cdn import make_workload

    factory = resolve_policy(policy)
    trace = make_workload(workload, n_requests=n_requests)
    capacity = max(int(trace.working_set_size * fraction), n_shards)
    origin = SimulatedOrigin(
        OriginConfig(
            latency_mean=origin_latency,
            concurrency=origin_concurrency,
            failure_rate=failure_rate,
            seed=seed,
        )
    )
    retry = RetryPolicy(timeout=timeout, max_retries=max_retries)
    service = CacheService(
        factory,
        capacity,
        n_shards=n_shards,
        origin=origin,
        retry=retry,
        queue_depth=queue_depth,
        seed=seed,
    )
    config = {
        "policy": policy,
        "workload": workload,
        "n_requests": len(trace),
        "cache_fraction": fraction,
        "capacity_bytes": capacity,
        "n_shards": n_shards,
        "concurrency": concurrency,
        "queue_depth": queue_depth,
        "rate": rate,
        "origin_latency_s": origin_latency,
        "origin_concurrency": origin_concurrency,
        "failure_rate": failure_rate,
        "timeout_s": timeout,
        "max_retries": max_retries,
        "seed": seed,
    }
    tracer = None
    slo = None
    if trace_sample > 0.0 or span_out is not None:
        from repro.obs.span import SLO, SLOTracker, SpanSink, TraceConfig, Tracer

        if tail_latency_us is None:
            tail_latency_us = max(origin_latency * 5e6, 1000.0)
        slo = SLOTracker(
            [
                SLO("request", latency_us=tail_latency_us, target=0.99),
                SLO(
                    "origin_fetch",
                    latency_us=max(origin_latency * 2e6, 1000.0),
                    target=0.95,
                ),
            ],
            registry=service.metrics.registry,
        )
        tracer = Tracer(
            sinks=[SpanSink(span_out)] if span_out is not None else [],
            config=TraceConfig(
                sample=trace_sample, tail_latency_us=tail_latency_us, seed=seed
            ),
            registry=service.metrics.registry,
            slo=slo,
        )
        config["trace_sample"] = trace_sample
        config["tail_latency_us"] = tail_latency_us
    async with service:
        stampede = None
        if stampede_clients is None:
            stampede_clients = concurrency
        if stampede_clients > 1:
            stampede = await stampede_probe(service, stampede_clients)
        loadgen = await run_loadgen(
            service, trace.requests, concurrency=concurrency, rate=rate, tracer=tracer
        )
    tracing = None
    if tracer is not None:
        tracer.close()
        tracing = {
            "traces": tracer.stats(),
            "stages": tracer.stage_breakdown(),
            "slo": slo.summary() if slo is not None else None,
            "span_out": span_out,
        }
    manifest = build_manifest(trace=trace, seed=seed, extra={"serve_config": config})
    return build_serve_doc(
        config=config,
        loadgen=loadgen,
        metrics=service.metrics,
        origin_stats=origin.stats(),
        flight=service.flight_stats(),
        policy_stats=service.cache_stats(),
        stampede=stampede,
        manifest=manifest,
        tracing=tracing,
    )


def run_serve_bench(
    output: Optional[str] = "BENCH_serve.json", quick: bool = False, **kwargs
) -> dict:
    """Synchronous entry: run the bench, optionally persist the JSON doc.

    ``quick`` is the CI smoke shape: a small heavy-reuse workload with a
    visible-latency origin, so coalescing provably fires in seconds.
    """
    if quick:
        kwargs.setdefault("workload", "CDN-W")  # heavy reuse → coalescing fires
        kwargs["n_requests"] = min(kwargs.get("n_requests", 20_000), 20_000)
        kwargs.setdefault("origin_latency", 0.002)  # in-flight window is visible
        kwargs.setdefault("concurrency", 64)
    doc = asyncio.run(serve_bench_async(**kwargs))
    if output:
        write_serve_doc(doc, output)
    return doc


def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover - thin CLI shim
    from repro.cli import build_parser

    args = build_parser().parse_args(["serve-bench"] + list(argv or []))
    return args.func(args)
