"""``repro.serve`` — the concurrent serving layer over the paper's policies.

Everything else in the repo *replays* traces; this package *serves* them:
an asyncio cache service that fronts N key-sharded policy instances (each
owned by exactly one worker task, so SCIP's learner state needs no locks),
with single-flight origin-fetch coalescing, a simulated origin backend
(latency distribution, bounded concurrency, timeouts, retry with jittered
backoff, fault injection), bounded per-shard queues with load shedding,
and a closed-loop load generator reporting throughput / hit ratio /
latency percentiles into the shared :mod:`repro.obs` instruments.

Quick tour::

    from repro.core import SCIPCache
    from repro.serve import CacheService, OriginConfig, SimulatedOrigin, run_loadgen

    service = CacheService(SCIPCache, capacity, n_shards=4,
                           origin=SimulatedOrigin(OriginConfig(latency_mean=0.005)))
    async with service:
        summary = await run_loadgen(service, trace.requests, concurrency=64)

CLI: ``python -m repro serve-bench`` runs service + loadgen in one process
and writes ``BENCH_serve.json``.  Design notes: ``docs/serve_design.md``.
"""

from repro.serve.coalesce import SingleFlight
from repro.serve.loadgen import (
    Pacer,
    run_loadgen,
    run_serve_bench,
    serve_bench_async,
    stampede_probe,
)
from repro.serve.origin import (
    FetchOutcome,
    OriginConfig,
    OriginError,
    RetryPolicy,
    SimulatedOrigin,
    fetch_with_retry,
)
from repro.serve.results import (
    SERVE_BENCH_SCHEMA,
    ServeMetrics,
    ServeOutcome,
    build_serve_doc,
    format_serve_doc,
    write_serve_doc,
)
from repro.serve.service import CacheService
from repro.serve.shard import CacheShard

__all__ = [
    "SingleFlight",
    "Pacer",
    "run_loadgen",
    "run_serve_bench",
    "serve_bench_async",
    "stampede_probe",
    "FetchOutcome",
    "OriginConfig",
    "OriginError",
    "RetryPolicy",
    "SimulatedOrigin",
    "fetch_with_retry",
    "SERVE_BENCH_SCHEMA",
    "ServeMetrics",
    "ServeOutcome",
    "build_serve_doc",
    "format_serve_doc",
    "write_serve_doc",
    "CacheService",
    "CacheShard",
]
