"""Simulated origin backend: the upstream a CDN edge fetches misses from.

The origin is where concurrency effects live — a trace replay only counts
misses, but a *service* pays for them: each miss occupies an origin
connection for a latency sample, the connection pool is bounded, fetches
can fail or hang, and the client retries with jittered exponential
backoff.  Everything here is simulated time (``asyncio.sleep``), so a
50 ms origin can be driven at thousands of requests per second on one
event loop without any real network.

Determinism: latency/failure draws come from a seeded ``random.Random``.
The *values* are reproducible; their assignment to fetches depends on
event-loop scheduling, so tests that need exact failure placement use the
injection hooks (:meth:`SimulatedOrigin.inject_failures` /
:meth:`SimulatedOrigin.inject_hangs`) instead of ``failure_rate``.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from typing import Callable, Optional

__all__ = [
    "OriginError",
    "OriginConfig",
    "SimulatedOrigin",
    "RetryPolicy",
    "FetchOutcome",
    "fetch_with_retry",
]


class OriginError(Exception):
    """A (simulated) origin-side fetch failure."""


@dataclass(frozen=True)
class OriginConfig:
    """Knobs of the simulated origin.

    Parameters
    ----------
    latency_mean:
        Mean service time per fetch, seconds (0 = instant origin — the
        equivalence tests use this to strip time out of the picture).
    latency_jitter:
        Uniform jitter as a fraction of the mean: a fetch takes
        ``latency_mean * (1 ± U(0, jitter))`` seconds.
    concurrency:
        Maximum concurrent fetches the origin serves; excess fetches queue
        on the semaphore (connection-pool pressure).
    failure_rate:
        Probability that a fetch attempt raises :class:`OriginError`
        (drawn per attempt, seeded).
    seed:
        Seeds the latency/failure RNG.
    """

    latency_mean: float = 0.002
    latency_jitter: float = 0.5
    concurrency: int = 64
    failure_rate: float = 0.0
    seed: int = 0


class SimulatedOrigin:
    """Bounded-concurrency origin with injectable faults.

    Counters (all exact, single event loop):

    * ``fetches_started`` / ``fetches_ok`` / ``fetches_failed`` — attempt
      accounting (a retried fetch counts one attempt per try);
    * ``bytes_served`` — sum of sizes of successful fetches;
    * ``inflight`` / ``inflight_peak`` — live and high-watermark
      concurrency, for verifying the pool bound.
    """

    def __init__(self, config: Optional[OriginConfig] = None):
        self.config = config or OriginConfig()
        self._rng = random.Random(self.config.seed)
        self._sem = asyncio.Semaphore(max(self.config.concurrency, 1))
        self.fetches_started = 0
        self.fetches_ok = 0
        self.fetches_failed = 0
        self.bytes_served = 0
        self.inflight = 0
        self.inflight_peak = 0
        self._forced_failures = 0
        self._forced_hangs = 0
        self._hang_seconds = 3600.0

    # -- fault injection ---------------------------------------------------
    def inject_failures(self, n: int) -> None:
        """Force the next ``n`` fetch attempts to raise :class:`OriginError`
        (consumed before any ``failure_rate`` draw; deterministic)."""
        self._forced_failures += n

    def inject_hangs(self, n: int, seconds: float = 3600.0) -> None:
        """Force the next ``n`` attempts to stall for ``seconds`` — long
        enough to trip any sane client timeout."""
        self._forced_hangs += n
        self._hang_seconds = seconds

    # -- the fetch ---------------------------------------------------------
    def _latency(self) -> float:
        cfg = self.config
        if cfg.latency_mean <= 0:
            return 0.0
        jitter = cfg.latency_jitter * (2.0 * self._rng.random() - 1.0)
        return max(cfg.latency_mean * (1.0 + jitter), 0.0)

    async def fetch(self, key, size: int) -> int:
        """One fetch attempt; returns the bytes served (= ``size``).

        Raises :class:`OriginError` on an (injected or drawn) failure.  The
        caller is responsible for timeouts — an injected hang sleeps inside
        the semaphore exactly like a wedged upstream connection would.
        """
        self.fetches_started += 1
        async with self._sem:
            self.inflight += 1
            if self.inflight > self.inflight_peak:
                self.inflight_peak = self.inflight
            try:
                if self._forced_hangs > 0:
                    self._forced_hangs -= 1
                    await asyncio.sleep(self._hang_seconds)
                delay = self._latency()
                if delay > 0:
                    await asyncio.sleep(delay)
                if self._forced_failures > 0:
                    self._forced_failures -= 1
                    raise OriginError(f"injected failure for key {key!r}")
                if self.config.failure_rate > 0 and self._rng.random() < self.config.failure_rate:
                    raise OriginError(f"origin 5xx for key {key!r}")
            except OriginError:
                self.fetches_failed += 1
                raise
            finally:
                self.inflight -= 1
        self.fetches_ok += 1
        self.bytes_served += size
        return size

    def stats(self) -> dict:
        return {
            "fetches_started": self.fetches_started,
            "fetches_ok": self.fetches_ok,
            "fetches_failed": self.fetches_failed,
            "bytes_served": self.bytes_served,
            "inflight_peak": self.inflight_peak,
        }


@dataclass(frozen=True)
class RetryPolicy:
    """Client-side retry behaviour for origin fetches.

    Parameters
    ----------
    timeout:
        Per-attempt client timeout, seconds (``None`` = wait forever; the
        equivalence tests use this to avoid timer overhead).
    max_retries:
        Additional attempts after the first (0 = fail fast).
    backoff_base:
        First backoff delay, seconds; doubles per retry.
    backoff_cap:
        Upper bound on any single backoff delay.
    jitter:
        Backoff is multiplied by ``U(1 - jitter, 1)`` — full-jitter-style
        decorrelation so coordinated retries don't re-stampede the origin.
    """

    timeout: Optional[float] = 0.5
    max_retries: int = 3
    backoff_base: float = 0.005
    backoff_cap: float = 0.25
    jitter: float = 0.5

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """Delay before retry ``attempt`` (1-based)."""
        raw = min(self.backoff_base * (2 ** (attempt - 1)), self.backoff_cap)
        return raw * (1.0 - self.jitter * rng.random())


class FetchOutcome:
    """Terminal result of one (possibly retried) origin fetch."""

    __slots__ = ("key", "size", "ok", "error", "attempts", "timeouts", "elapsed")

    def __init__(
        self,
        key,
        size: int,
        ok: bool,
        error: Optional[str],
        attempts: int,
        timeouts: int,
        elapsed: float,
    ):
        self.key = key
        self.size = size
        self.ok = ok
        self.error = error
        self.attempts = attempts
        self.timeouts = timeouts
        self.elapsed = elapsed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "ok" if self.ok else f"error={self.error!r}"
        return f"FetchOutcome(key={self.key!r}, {state}, attempts={self.attempts})"


async def fetch_with_retry(
    origin: SimulatedOrigin,
    key,
    size: int,
    retry: RetryPolicy,
    rng: random.Random,
    on_retry: Optional[Callable[[int, str], None]] = None,
    span=None,
) -> FetchOutcome:
    """Fetch ``key`` with per-attempt timeout and jittered backoff.

    Never raises: failures after the final attempt are folded into the
    returned :class:`FetchOutcome` (``ok=False``), so a wedged origin
    degrades the service's metrics instead of crashing its tasks.
    ``on_retry(attempt, reason)`` fires before each backoff sleep — the
    shard wires it to the ``fetch_retry`` probe event and counter.
    ``span``, if any, parents one ``origin_attempt`` child per try (status
    ``ok`` / ``timeout`` / ``error``) and a ``retry_backoff`` child per
    backoff sleep, so retry storms are visible in the trace waterfall.
    """
    loop = asyncio.get_running_loop()
    start = loop.time()
    attempts = 0
    timeouts = 0
    error: Optional[str] = None
    for attempt in range(retry.max_retries + 1):
        attempts += 1
        aspan = (
            span.child("origin_attempt", attempt=attempts)
            if span is not None
            else None
        )
        try:
            if retry.timeout is None:
                await origin.fetch(key, size)
            else:
                await asyncio.wait_for(origin.fetch(key, size), retry.timeout)
            if aspan is not None:
                aspan.end()
            return FetchOutcome(key, size, True, None, attempts, timeouts, loop.time() - start)
        except asyncio.TimeoutError:
            timeouts += 1
            error = f"timeout after {retry.timeout}s"
            if aspan is not None:
                aspan.end("timeout")
        except OriginError as exc:
            error = str(exc)
            if aspan is not None:
                aspan.end("error")
        if attempt < retry.max_retries:
            if on_retry is not None:
                on_retry(attempts, error)
            delay = retry.backoff(attempt + 1, rng)
            if delay > 0:
                bspan = (
                    span.child("retry_backoff", attempt=attempts)
                    if span is not None
                    else None
                )
                await asyncio.sleep(delay)
                if bspan is not None:
                    bspan.end()
    return FetchOutcome(key, size, False, error, attempts, timeouts, loop.time() - start)
