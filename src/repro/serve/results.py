"""Serve-side result records: per-request outcomes, the shared metrics
bundle, and the ``BENCH_serve.json`` document.

The metrics bundle is a thin façade over a :class:`repro.obs.metrics.
MetricsRegistry` — the same instrument vocabulary the engine and the TDC
monitor use — so a serve run snapshots into the exact shape the obs sinks
and the CLI already render.  Latency histograms are the obs log2
``Histogram`` observed in **microseconds** (integer buckets cover 1 µs …
~70 min, plenty for a simulated origin).

``BENCH_serve.json`` (schema :data:`SERVE_BENCH_SCHEMA`) mirrors the
``BENCH_engine.json`` pattern: one self-describing JSON document per run,
with the run manifest (git SHA, platform, schema versions) embedded so CI
artifacts stay reproducible evidence rather than anecdotes.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.obs.metrics import Histogram, MetricsRegistry

__all__ = [
    "SERVE_BENCH_SCHEMA",
    "ServeOutcome",
    "ServeMetrics",
    "latency_summary",
    "build_serve_doc",
    "write_serve_doc",
    "format_serve_doc",
]

#: Version of the ``BENCH_serve.json`` layout; bump on breaking changes.
SERVE_BENCH_SCHEMA = 1


class ServeOutcome:
    """What one ``service.get`` call resolved to.

    Attributes
    ----------
    hit:
        Cache decision (metadata residency at lookup time) — bit-comparable
        with :meth:`repro.cache.base.CachePolicy.request`.
    coalesced:
        The request waited on another request's origin fetch instead of
        issuing its own (miss-follower or hit-on-in-flight-body).
    shed:
        The request was rejected at admission because the shard queue was
        full; it never reached the policy (``hit`` is ``False``).
    error:
        Terminal origin-fetch error string after all retries, or ``None``.
    shard:
        Index of the shard that served (or shed) the request.
    """

    __slots__ = ("hit", "coalesced", "shed", "error", "shard")

    def __init__(
        self,
        hit: bool,
        coalesced: bool = False,
        shed: bool = False,
        error: Optional[str] = None,
        shard: int = 0,
    ):
        self.hit = hit
        self.coalesced = coalesced
        self.shed = shed
        self.error = error
        self.shard = shard

    @property
    def ok(self) -> bool:
        return not self.shed and self.error is None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flags = "".join(
            f for f, on in (("H", self.hit), ("C", self.coalesced), ("S", self.shed)) if on
        )
        return f"ServeOutcome({flags or 'M'}, error={self.error!r}, shard={self.shard})"


class ServeMetrics:
    """Shared serve instruments, created once per service from a registry.

    All shards of a service feed the same instruments (one event loop —
    no contention); per-shard detail that matters (shed) is labelled.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        r = self.registry
        self.requests = r.counter("serve_requests")
        self.hits = r.counter("serve_hits")
        self.misses = r.counter("serve_misses")
        self.shed = r.counter("serve_shed")
        self.coalesced = r.counter("serve_coalesced_waits")
        self.errors = r.counter("serve_errors")
        self.unhandled = r.counter("serve_unhandled_exceptions")
        self.origin_fetches = r.counter("origin_fetches")
        self.origin_retries = r.counter("origin_retries")
        self.origin_timeouts = r.counter("origin_timeouts")
        self.origin_failures = r.counter("origin_failures")
        self.latency_us = r.histogram("serve_latency_us")
        # Shed/error requests land here, not in latency_us: a shed resolves
        # in microseconds and a terminal failure after retries takes
        # seconds — either pollutes the success distribution it isn't in.
        self.degraded_latency_us = r.histogram("serve_degraded_latency_us")
        self.origin_latency_us = r.histogram("origin_latency_us")
        self.queue_depth = r.histogram("serve_queue_depth")

    def shard_shed(self, shard_id: int):
        """Per-shard shed counter (labelled); also bump :attr:`shed`."""
        return self.registry.counter("serve_shed_by_shard", shard=str(shard_id))

    def snapshot(self) -> dict:
        return self.registry.snapshot()


def latency_summary(hist: Histogram) -> dict:
    """Render a µs-observed histogram as the doc's latency block."""
    return {
        "count": hist.count,
        "sum_us": hist.sum,
        "mean_us": hist.mean,
        "min_us": hist.min,
        "max_us": hist.max,
        "p50_us": hist.quantile(0.5),
        "p90_us": hist.quantile(0.9),
        "p99_us": hist.quantile(0.99),
    }


def build_serve_doc(
    config: dict,
    loadgen: dict,
    metrics: ServeMetrics,
    origin_stats: dict,
    flight: dict,
    policy_stats: dict,
    stampede: Optional[dict] = None,
    manifest: Optional[dict] = None,
    tracing: Optional[dict] = None,
) -> dict:
    """Assemble the ``BENCH_serve.json`` document from run pieces."""
    doc = {
        "schema": SERVE_BENCH_SCHEMA,
        "config": dict(config),
        "loadgen": dict(loadgen),
        "cache": dict(policy_stats),
        "origin": {
            **origin_stats,
            "retries": metrics.origin_retries.value,
            "timeouts": metrics.origin_timeouts.value,
            "terminal_failures": metrics.origin_failures.value,
            "coalesced_waits": metrics.coalesced.value,
            "generations": flight.get("generations", 0),
        },
        "shed": metrics.shed.value,
        "errors": metrics.errors.value,
        "unhandled_exceptions": metrics.unhandled.value,
        "latency": latency_summary(metrics.latency_us),
        "degraded_latency": latency_summary(metrics.degraded_latency_us),
        "origin_latency": latency_summary(metrics.origin_latency_us),
        "registry": metrics.snapshot(),
    }
    if stampede is not None:
        doc["stampede"] = dict(stampede)
    if manifest is not None:
        doc["manifest"] = manifest
    if tracing is not None:
        doc["tracing"] = tracing
    return doc


def write_serve_doc(doc: dict, path: str) -> str:
    """Persist the document as pretty JSON; returns the path."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return str(path)


def format_serve_doc(doc: dict) -> str:
    """Human-readable summary of one serve-bench document."""
    cfg = doc["config"]
    lg = doc["loadgen"]
    lat = doc["latency"]
    origin = doc["origin"]
    lines = [
        (
            f"serve bench — {cfg.get('workload', '?')} × {lg['requests']:,} requests, "
            f"{cfg.get('n_shards', '?')} shards × depth {cfg.get('queue_depth', '?')}, "
            f"concurrency {cfg.get('concurrency', '?')}, policy {cfg.get('policy', '?')}"
        ),
        (
            f"throughput {lg['throughput_rps']:,.0f} req/s · hit ratio "
            f"{lg['hit_ratio']:.4f} · elapsed {lg['elapsed_s']:.2f} s"
        ),
        (
            f"latency µs: p50 {lat['p50_us']:,.0f}  p90 {lat['p90_us']:,.0f}  "
            f"p99 {lat['p99_us']:,.0f}  mean {lat['mean_us']:,.0f}"
        ),
        (
            f"origin: {origin['fetches_started']:,} attempts over "
            f"{origin['generations']:,} generations · {origin['coalesced_waits']:,} "
            f"coalesced waits · {origin['retries']:,} retries "
            f"({origin['timeouts']:,} timeouts, {origin['terminal_failures']:,} terminal)"
        ),
        (
            f"shed {doc['shed']:,} · errors {doc['errors']:,} · "
            f"unhandled exceptions {doc['unhandled_exceptions']:,}"
        ),
    ]
    if "stampede" in doc:
        st = doc["stampede"]
        lines.append(
            f"stampede probe: {st['clients']:,} clients → {st['origin_fetches']:,} "
            f"origin fetch(es), {st['coalesced']:,} coalesced"
        )
    if "tracing" in doc:
        tr = doc["tracing"]
        ts = tr.get("traces", {})
        lines.append(
            f"tracing: sample {ts.get('sample')} · kept "
            f"{ts.get('traces_kept', 0):,}/{ts.get('traces_started', 0):,} traces "
            f"({ts.get('spans_written', 0):,} spans, "
            f"{ts.get('orphan_spans', 0)} orphans)"
            + (f" → {tr['span_out']}" if tr.get("span_out") else "")
        )
        stages = tr.get("stages", {})
        if stages:
            total_crit = sum(s["critical_total_us"] for s in stages.values())
            top = sorted(
                stages.items(), key=lambda kv: -kv[1]["critical_total_us"]
            )[:4]
            if total_crit > 0:
                lines.append(
                    "critical path: "
                    + " · ".join(
                        f"{name} {s['critical_total_us'] / total_crit * 100:.0f}%"
                        for name, s in top
                    )
                )
    return "\n".join(lines)
