"""Single-flight request coalescing.

When many concurrent requests miss on the same cold key, a naive service
stampedes the origin with identical fetches.  Single-flight gives each key
at most one in-flight fetch per *generation*: the first requester becomes
the **leader** and owns the fetch; everyone else **joins** the leader's
future.  Resolving the fetch closes the generation — the next miss for the
key starts a fresh one (so an evict-then-miss cycle re-fetches, but a
burst within one fetch's lifetime costs exactly one origin round trip).

The map is plain (no locks): it is only touched from the owning shard's
event-loop context, and every operation is synchronous.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Optional, Tuple

__all__ = ["SingleFlight"]


class SingleFlight:
    """Per-key in-flight fetch registry with leader/follower accounting.

    Counters:

    * ``generations`` — leases granted to leaders (= origin fetch cycles);
    * ``coalesced`` — followers that joined an existing flight instead of
      issuing their own fetch (the stampede savings).
    """

    def __init__(self) -> None:
        self._inflight: Dict[object, asyncio.Future] = {}
        self.generations = 0
        self.coalesced = 0

    def __len__(self) -> int:
        return len(self._inflight)

    def lease(self, key) -> Tuple[asyncio.Future, bool]:
        """Get-or-create the flight for ``key``.

        Returns ``(future, leader)``: ``leader=True`` means the caller must
        perform the fetch and eventually :meth:`resolve` it; ``False`` means
        an existing flight was joined (counted as coalesced).
        """
        fut = self._inflight.get(key)
        if fut is not None:
            self.coalesced += 1
            return fut, False
        fut = asyncio.get_running_loop().create_future()
        self._inflight[key] = fut
        self.generations += 1
        return fut, True

    def join(self, key) -> Optional[asyncio.Future]:
        """Join the in-flight fetch for ``key`` if one exists (counted as
        coalesced), else ``None``.  Used by the hit path: a metadata hit on
        an object whose body is still being fetched must wait for the body.
        """
        fut = self._inflight.get(key)
        if fut is not None:
            self.coalesced += 1
        return fut

    def peek(self, key) -> Optional[asyncio.Future]:
        """Observe the flight for ``key`` without counting a join."""
        return self._inflight.get(key)

    def resolve(self, key, outcome) -> None:
        """Complete ``key``'s generation, waking every joined waiter.

        Missing keys are tolerated (a defensive resolve after an already-
        handled failure is a no-op), as are futures cancelled by a dying
        waiter — the generation still closes.
        """
        fut = self._inflight.pop(key, None)
        if fut is not None and not fut.done():
            fut.set_result(outcome)

    def inflight_keys(self) -> list:
        """Snapshot of keys with an open generation (diagnostics)."""
        return list(self._inflight)
