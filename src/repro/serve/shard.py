"""One cache shard: a single-owner policy behind a bounded request queue.

Concurrency model — the whole point of the design:

* **All policy state is owned by one worker task.**  The worker pops
  requests off the shard queue and runs the *entire* cache decision
  (lookup → hit/miss → admit/evict) as one synchronous block, so policy
  internals (intrusive queue splices, SCIP's bandit state) need no locks
  and interleave with nothing — the decision sequence for a given arrival
  order is exactly what :meth:`repro.cache.base.CachePolicy.request`
  produces, which is what pins serve↔engine equivalence.
* **The worker never awaits the origin.**  A miss leases the key's
  single-flight future and, if it is the leader, spawns a separate fetch
  task; the caller's future is chained to the flight.  The worker moves
  straight to the next queued request, so one slow origin fetch never
  head-of-line-blocks the shard.
* **Backpressure is the queue bound.**  ``submit`` never blocks: when the
  queue is full the request is **shed** — counted, surfaced to the caller
  as a ``shed`` outcome, and never shown to the policy (a shed request
  must not perturb cache state).

Failure containment: a terminal origin failure (after retries) resolves
every coalesced waiter with an error outcome and silently removes the
object's metadata from the policy (it was admitted write-on-miss but the
body never arrived), so the next request starts a fresh fetch generation.
The worker itself is wrapped so a policy bug degrades one request and
increments ``serve_unhandled_exceptions`` instead of killing the shard.
"""

from __future__ import annotations

import asyncio
import random
from functools import partial
from typing import Optional

from repro.cache.base import CachePolicy
from repro.serve.coalesce import SingleFlight
from repro.serve.origin import FetchOutcome, RetryPolicy, SimulatedOrigin, fetch_with_retry
from repro.serve.results import ServeMetrics, ServeOutcome
from repro.sim.request import Request

__all__ = ["CacheShard"]

#: Queue sentinel asking the worker to exit after draining earlier items.
_CLOSE = object()


class _SwapControl:
    """Control-plane queue item: hot-swap the shard policy.

    Travels through the same queue as data requests, so the swap executes
    on the worker task *between* complete cache decisions — the policy is
    never observed mid-decision and no lock exists to take.  ``fut``
    resolves with the new policy once the migration is done.  ``span``, if
    any, parents the ``policy_swap`` span recorded around the migration.
    """

    __slots__ = ("factory", "fut", "span")

    def __init__(self, factory, fut: asyncio.Future, span=None):
        self.factory = factory
        self.fut = fut
        self.span = span


class _QuotaControl:
    """Control-plane queue item: apply per-tenant byte quotas.

    Rides the shard queue like :class:`_SwapControl`, so the resize (and
    any shrink evictions it forces) runs on the worker task between
    complete cache decisions.  ``fut`` resolves ``True`` if the shard's
    policy supports quotas (duck-typed ``set_quotas``), ``False`` otherwise.
    """

    __slots__ = ("quotas", "fut")

    def __init__(self, quotas: dict, fut: asyncio.Future):
        self.quotas = quotas
        self.fut = fut


class _FillControl:
    """Control-plane queue item: admit one object's metadata without
    serving a request (replication fill / warm handoff).

    Rides the shard queue like :class:`_SwapControl` so the admission runs
    on the worker task between complete cache decisions.  ``fut`` resolves
    ``True`` if the object was admitted, ``False`` if it was already
    resident (or too large to admit).
    """

    __slots__ = ("req", "fut")

    def __init__(self, req: Request, fut: asyncio.Future):
        self.req = req
        self.fut = fut


class CacheShard:
    """A key-shard of the service: one policy, one queue, one worker.

    Parameters
    ----------
    shard_id:
        Index within the service (metric label, outcome field).
    policy:
        The shard's private :class:`~repro.cache.base.CachePolicy`; nothing
        else may touch it.
    origin, retry:
        Shared origin backend and the client-side retry policy.
    metrics:
        The service-wide :class:`~repro.serve.results.ServeMetrics` bundle.
    queue_depth:
        Bound of the pending-request queue (0 = unbounded, no shedding).
    probe:
        Optional :class:`repro.obs.probe.Probe` for ``fetch`` /
        ``fetch_retry`` / ``fetch_error`` / ``shed`` events.
    seed:
        Seeds the backoff-jitter RNG (decorrelated per shard).
    """

    def __init__(
        self,
        shard_id: int,
        policy: CachePolicy,
        origin: SimulatedOrigin,
        retry: RetryPolicy,
        metrics: ServeMetrics,
        queue_depth: int = 1024,
        probe=None,
        seed: int = 0,
    ):
        self.shard_id = shard_id
        self.policy = policy
        self.origin = origin
        self.retry = retry
        self.metrics = metrics
        self.probe = probe
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=max(queue_depth, 0))
        self.flight = SingleFlight()
        self.shed_count = 0
        self._shed_counter = metrics.shard_shed(shard_id)
        self._rng = random.Random((seed * 2654435761 + shard_id) & 0xFFFFFFFF)
        self._worker: Optional[asyncio.Task] = None
        self._fetch_tasks: set = set()

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        if self._worker is None:
            self._worker = asyncio.get_running_loop().create_task(
                self._run(), name=f"repro-serve-shard-{self.shard_id}"
            )

    async def close(self) -> None:
        """Drain the queue, stop the worker, and settle in-flight fetches."""
        if self._worker is not None:
            await self.queue.put(_CLOSE)
            await self._worker
            self._worker = None
        while self._fetch_tasks:
            await asyncio.gather(*list(self._fetch_tasks), return_exceptions=True)

    # -- request admission (caller side) -----------------------------------
    def submit(self, req: Request, span=None) -> "asyncio.Future[ServeOutcome]":
        """Enqueue one request; never blocks.

        Returns a future resolving to the request's :class:`ServeOutcome`.
        A full queue sheds the request immediately (load shedding) — the
        future resolves right away with ``shed=True``.  ``span``, if any,
        is the request's trace span: a ``queue_wait`` child opens here and
        closes when the worker pops the request.
        """
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        qspan = (
            span.child("queue_wait", shard=self.shard_id)
            if span is not None
            else None
        )
        try:
            self.queue.put_nowait((req, fut, span, qspan))
        except asyncio.QueueFull:
            self.shed_count += 1
            self.metrics.shed.inc()
            self._shed_counter.inc()
            if qspan is not None:
                qspan.end("shed")
            if self.probe is not None:
                self.probe.emit("shed", key=req.key, shard=self.shard_id)
            fut.set_result(ServeOutcome(False, shed=True, shard=self.shard_id))
        return fut

    # -- worker side -------------------------------------------------------
    async def _run(self) -> None:
        queue = self.queue
        while True:
            item = await queue.get()
            if item is _CLOSE:
                queue.task_done()
                return
            if isinstance(item, _SwapControl):
                try:
                    self._swap(item.factory, item.span)
                except Exception as exc:
                    if not item.fut.done():
                        item.fut.set_exception(exc)
                else:
                    if not item.fut.done():
                        item.fut.set_result(self.policy)
                finally:
                    queue.task_done()
                continue
            if isinstance(item, _QuotaControl):
                try:
                    applied = self._set_quotas(item.quotas)
                except Exception:
                    self.metrics.unhandled.inc()
                    if not item.fut.done():
                        item.fut.set_result(False)
                else:
                    if not item.fut.done():
                        item.fut.set_result(applied)
                finally:
                    queue.task_done()
                continue
            if isinstance(item, _FillControl):
                try:
                    filled = self._fill(item.req)
                except Exception:
                    self.metrics.unhandled.inc()
                    if not item.fut.done():
                        item.fut.set_result(False)
                else:
                    if not item.fut.done():
                        item.fut.set_result(filled)
                finally:
                    queue.task_done()
                continue
            req, fut, span, qspan = item
            try:
                self._serve(req, fut, span, qspan)
            except Exception as exc:  # a policy bug must not kill the shard
                self.metrics.unhandled.inc()
                if not fut.done():
                    fut.set_result(
                        ServeOutcome(False, error=f"internal: {exc!r}", shard=self.shard_id)
                    )
            finally:
                queue.task_done()

    def _serve(
        self, req: Request, fut: asyncio.Future, span=None, qspan=None
    ) -> None:
        """One complete cache decision — synchronous, single-owner.

        Span topology: ``qspan`` (opened in :meth:`submit`) closes here; a
        ``policy`` child wraps the cache decision; a follower/late-hit gets
        a ``flight_wait`` child closed when the flight resolves; the
        single-flight *leader* instead parents the fetch task's
        ``origin_fetch`` child — never both, so stage critical paths don't
        double-count the same wall time.
        """
        if qspan is not None:
            qspan.end()
        m = self.metrics
        if span is not None:
            pspan = span.child("policy", shard=self.shard_id)
            hit = self.policy.request(req)
            pspan.end(hit=hit)
        else:
            hit = self.policy.request(req)
        if hit:
            m.hits.inc()
            pending = self.flight.join(req.key)
            if pending is None:
                if not fut.done():
                    fut.set_result(ServeOutcome(True, shard=self.shard_id))
            else:
                # Metadata is resident but the body is still on the wire
                # from an earlier miss: wait for that same fetch.
                m.coalesced.inc()
                wspan = (
                    span.child("flight_wait", coalesced=True)
                    if span is not None
                    else None
                )
                self._chain(pending, fut, hit=True, coalesced=True, wspan=wspan)
            return
        m.misses.inc()
        lease, leader = self.flight.lease(req.key)
        wspan = None
        if leader:
            task = asyncio.get_running_loop().create_task(
                self._fetch(req.key, req.size, span)
            )
            self._fetch_tasks.add(task)
            task.add_done_callback(partial(self._on_fetch_done, req.key))
        else:
            m.coalesced.inc()
            if span is not None:
                wspan = span.child("flight_wait", coalesced=True)
        self._chain(lease, fut, hit=False, coalesced=not leader, wspan=wspan)

    # -- live policy swap (worker side) ------------------------------------
    def _swap(self, factory, span=None) -> None:
        """Hot-swap the shard policy — runs on the worker task only.

        Mirrors :meth:`repro.tdc.node.StorageNode.swap_policy`: the old
        policy's resident set migrates through the duck-typed
        ``export_residents`` / ``import_resident`` protocol (queue policies
        export LRU → MRU so recency order is reconstructed; composite
        tenancy partitions export per-tenant; policies without a resident
        structure export nothing and the successor starts cold — no origin
        refill either way).  In-flight fetches are untouched — the
        single-flight map is shard state, not policy state, so coalesced
        waiters resolve against the same generation regardless of which
        policy admitted the key.
        """
        sspan = (
            span.child("policy_swap", shard=self.shard_id)
            if span is not None
            else None
        )
        old = self.policy
        new = factory(old.capacity)
        migrated = 0
        for key, size in old.export_residents():
            if new.import_resident(key, size):
                migrated += 1
        self.policy = new
        if sspan is not None:
            sspan.end(frm=old.name, to=new.name, migrated=migrated)
        if self.probe is not None:
            self.probe.emit(
                "policy_switch",
                shard=self.shard_id,
                frm=old.name,
                to=new.name,
                migrated=migrated,
            )

    async def request_swap(self, factory, span=None) -> CachePolicy:
        """Ask the worker to swap policies; resolves once it has happened.

        Unlike :meth:`submit`, this *blocks* on a full queue rather than
        shedding — a control-plane message must not be dropped under data-
        plane pressure.  Returns the new policy instance.
        """
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        await self.queue.put(_SwapControl(factory, fut, span))
        return await fut

    # -- replication fill (worker side) ------------------------------------
    def _fill(self, req: Request) -> bool:
        """Admit ``req``'s metadata without serving it — runs on the worker.

        The replica-fill analogue of :meth:`_swap`'s resident-set
        migration: the object enters through the policy's normal miss path
        (:meth:`repro.cache.base.CachePolicy._miss` — insertion position,
        evictions and capacity accounting all apply) but no hit/miss is
        recorded, so a fill never pollutes the policy's served-traffic
        statistics.
        """
        policy = self.policy
        if req.size > policy.capacity or policy.contains(req.key):
            return False
        policy._miss(Request(policy.clock, req.key, req.size))
        return True

    async def request_fill(self, req: Request) -> bool:
        """Ask the worker to admit ``req``'s object (replication fill).

        Control-plane semantics like :meth:`request_swap`: blocks on a full
        queue instead of shedding.  Resolves ``True`` if the object was
        admitted, ``False`` if already resident or larger than the shard.
        """
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        await self.queue.put(_FillControl(req, fut))
        return await fut

    # -- tenant quotas (worker side) ----------------------------------------
    def _set_quotas(self, quotas: dict) -> bool:
        """Apply per-tenant byte quotas — runs on the worker task only.

        Duck-typed: the policy opts in by exposing ``set_quotas`` (the
        tenancy :class:`~repro.tenancy.partition.TenantPartitionedCache`
        does); anything else ignores the control message and reports
        ``False`` so the service can surface the mismatch.
        """
        set_quotas = getattr(self.policy, "set_quotas", None)
        if set_quotas is None:
            return False
        set_quotas(quotas)
        return True

    async def request_set_quotas(self, quotas: dict) -> bool:
        """Ask the worker to apply per-tenant quotas (control plane).

        Blocks on a full queue instead of shedding, like
        :meth:`request_swap`.  Resolves ``True`` iff the shard policy
        supports quota partitioning.
        """
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        await self.queue.put(_QuotaControl(quotas, fut))
        return await fut

    def _chain(
        self,
        lease: asyncio.Future,
        fut: asyncio.Future,
        hit: bool,
        coalesced: bool,
        wspan=None,
    ) -> None:
        """Resolve ``fut`` from the flight's terminal :class:`FetchOutcome`."""
        shard_id = self.shard_id
        errors = self.metrics.errors

        def _done(f: asyncio.Future) -> None:
            if wspan is not None:
                outcome_early: FetchOutcome = f.result()
                wspan.end("ok" if outcome_early.error is None else "error")
            if fut.done():  # caller went away (cancelled loadgen)
                return
            outcome: FetchOutcome = f.result()
            if outcome.error is not None:
                errors.inc()
            fut.set_result(
                ServeOutcome(hit, coalesced=coalesced, error=outcome.error, shard=shard_id)
            )

        lease.add_done_callback(_done)

    # -- origin fetch (leader task) ----------------------------------------
    async def _fetch(self, key, size: int, span=None) -> None:
        m = self.metrics
        m.origin_fetches.inc()
        probe = self.probe
        fspan = (
            span.child("origin_fetch", shard=self.shard_id)
            if span is not None
            else None
        )
        if probe is not None:
            probe.emit("fetch", key=key, size=size, shard=self.shard_id)

        def on_retry(attempt: int, reason: str) -> None:
            m.origin_retries.inc()
            if probe is not None:
                probe.emit(
                    "fetch_retry", key=key, attempt=attempt, reason=reason, shard=self.shard_id
                )

        outcome = await fetch_with_retry(
            self.origin, key, size, self.retry, self._rng, on_retry, span=fspan
        )
        if fspan is not None:
            fspan.end(
                "ok" if outcome.ok else "error",
                attempts=outcome.attempts,
                timeouts=outcome.timeouts,
            )
        if outcome.timeouts:
            m.origin_timeouts.inc(outcome.timeouts)
        if outcome.ok:
            m.origin_latency_us.observe(int(outcome.elapsed * 1e6))
        else:
            m.origin_failures.inc()
            if probe is not None:
                probe.emit(
                    "fetch_error",
                    key=key,
                    error=outcome.error,
                    attempts=outcome.attempts,
                    shard=self.shard_id,
                )
            # The body never arrived: drop the write-on-miss metadata so the
            # policy doesn't serve phantom hits; the next request opens a
            # fresh fetch generation.
            remove = getattr(self.policy, "remove", None)
            if remove is not None:
                remove(key)
        self.flight.resolve(key, outcome)

    def _on_fetch_done(self, key, task: asyncio.Task) -> None:
        self._fetch_tasks.discard(task)
        if task.cancelled():
            return
        exc = task.exception()
        if exc is not None:
            # A bug in the fetch path itself: count it and make sure no
            # waiter is stranded on an unresolved generation.
            self.metrics.unhandled.inc()
            self.flight.resolve(
                key, FetchOutcome(key, 0, False, f"internal: {exc!r}", 0, 0, 0.0)
            )

    # -- introspection -----------------------------------------------------
    def stats(self) -> dict:
        try:
            resident = len(self.policy)
        except (NotImplementedError, TypeError):
            resident = None
        return {
            "shard": self.shard_id,
            "resident_objects": resident,
            "used_bytes": self.policy.used,
            "capacity_bytes": self.policy.capacity,
            "shed": self.shed_count,
            "generations": self.flight.generations,
            "coalesced": self.flight.coalesced,
            "policy": self.policy.stats.as_dict(),
        }
