"""The concurrent cache service: N key-sharded policy workers behind one
async ``get``.

``CacheService`` is the serving-path analogue of :func:`repro.sim.engine.
simulate`: the same policies, the same write-on-miss admission, but driven
by concurrent callers instead of a synchronous replay loop.  Requests are
routed to shards by key hash; each shard owns its policy exclusively (see
:mod:`repro.serve.shard`), misses coalesce through per-shard single-flight
maps, and origin traffic flows through one shared bounded
:class:`~repro.serve.origin.SimulatedOrigin`.

Equivalence anchor: with ``n_shards=1`` and a single closed-loop client,
requests reach the policy in trace order one at a time, so the hit/miss
sequence is bit-identical to ``sim.engine`` on the same trace —
``tests/serve/test_equivalence.py`` pins this.

Capacity is split evenly across shards (a real deployment provisions per
instance); with one shard the service sees the full budget, keeping the
equivalence comparison honest.
"""

from __future__ import annotations

import asyncio
from typing import Callable, List, Optional

from repro.cache.base import CachePolicy
from repro.obs.metrics import MetricsRegistry
from repro.serve.origin import OriginConfig, RetryPolicy, SimulatedOrigin
from repro.serve.results import ServeMetrics, ServeOutcome
from repro.serve.shard import CacheShard
from repro.sim.request import Request

__all__ = ["CacheService"]


class CacheService:
    """Asyncio cache service fronting sharded single-owner policies.

    Parameters
    ----------
    policy_factory:
        ``capacity_bytes -> CachePolicy``; called once per shard with the
        shard's slice of the budget.  Fresh instances only — shards must
        not share policy state.
    capacity:
        Total cache budget in bytes, split evenly across shards.
    n_shards:
        Number of key-shards (each with its own queue + worker).
    origin:
        Shared :class:`SimulatedOrigin` (default: a 2 ms origin).
    retry:
        Client-side :class:`RetryPolicy` for origin fetches.
    queue_depth:
        Per-shard pending-request bound; overflow is shed (0 = unbounded).
    registry:
        Metrics registry to instrument into (default: a private one);
        pass an :class:`repro.obs.ObsSession`'s registry to fold a serve
        run into an existing observability pipeline.
    probe:
        Optional obs probe for serve events (``fetch``, ``fetch_retry``,
        ``fetch_error``, ``shed``).
    seed:
        Decorrelates per-shard backoff jitter.
    """

    def __init__(
        self,
        policy_factory: Callable[[int], CachePolicy],
        capacity: int,
        n_shards: int = 4,
        origin: Optional[SimulatedOrigin] = None,
        retry: Optional[RetryPolicy] = None,
        queue_depth: int = 1024,
        registry: Optional[MetricsRegistry] = None,
        probe=None,
        seed: int = 0,
    ):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if capacity < n_shards:
            raise ValueError(
                f"capacity {capacity} cannot be split over {n_shards} shards"
            )
        self.capacity = int(capacity)
        self.origin = origin if origin is not None else SimulatedOrigin(OriginConfig())
        self.retry = retry if retry is not None else RetryPolicy()
        self.metrics = ServeMetrics(registry)
        per_shard = self.capacity // n_shards
        self.shards: List[CacheShard] = [
            CacheShard(
                i,
                policy_factory(per_shard),
                self.origin,
                self.retry,
                self.metrics,
                queue_depth=queue_depth,
                probe=probe,
                seed=seed,
            )
            for i in range(n_shards)
        ]
        self._n = n_shards
        self._started = False

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> "CacheService":
        if not self._started:
            for shard in self.shards:
                shard.start()
            self._started = True
        return self

    async def close(self) -> None:
        """Drain every shard queue and settle all in-flight origin fetches."""
        if self._started:
            for shard in self.shards:
                await shard.close()
            self._started = False

    async def __aenter__(self) -> "CacheService":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # -- live policy swap --------------------------------------------------
    async def swap_policy(
        self, policy_factory: Callable[[int], CachePolicy], span=None
    ) -> None:
        """Hot-swap every shard's policy without stopping the service.

        Each shard performs the swap on its own worker task (queued behind
        whatever requests are already pending), so no policy is ever
        touched concurrently and in-flight coalesced fetches settle
        normally against the shard's single-flight map.  Resident sets are
        migrated when both old and new policies are queue-structured (see
        :meth:`repro.serve.shard.CacheShard._swap`).  Shards swap
        concurrently; the call returns once all have completed.
        """
        if not self._started:
            raise RuntimeError("CacheService.swap_policy before start()")
        await asyncio.gather(
            *(shard.request_swap(policy_factory, span) for shard in self.shards)
        )

    # -- replication fill --------------------------------------------------
    async def fill(self, req: Request) -> bool:
        """Admit one object's metadata without serving a request.

        The cluster layer's write-all replication hook: after a miss is
        served at one node, the other replicas are *filled* so a later
        failover read finds the object resident.  Runs on the owning
        shard's worker task (control-plane message, never shed); returns
        ``True`` if the object was admitted, ``False`` if it was already
        resident or larger than the shard.  No hit/miss is recorded — a
        fill is not traffic.
        """
        if not self._started:
            raise RuntimeError("CacheService.fill before start() (use 'async with')")
        return await self.shards[hash(req.key) % self._n].request_fill(req)

    # -- health ------------------------------------------------------------
    def health(self) -> dict:
        """Cheap liveness/pressure snapshot (the cluster's node gauge feed).

        Unlike :meth:`stats` this touches no policy internals, so it is
        safe to poll from outside the event loop's request flow.
        """
        return {
            "started": self._started,
            "n_shards": self._n,
            "queue_depths": [s.queue.qsize() for s in self.shards],
            "shed": sum(s.shed_count for s in self.shards),
            "unhandled_exceptions": self.unhandled_exceptions,
        }

    def resident_entries(self):
        """Yield ``(key, size)`` for every resident object across shards.

        Walks each shard's policy synchronously through the duck-typed
        ``export_residents`` protocol (no await points, so the
        single-threaded event loop cannot observe a policy mid-decision).
        Queue policies export LRU → MRU; composite tenancy partitions
        export every tenant's residents; policies without a resident
        structure contribute nothing — warm handoff is best-effort by
        design.  Used by the cluster
        :class:`~repro.cluster.rebalance.Rebalancer` for warm handoffs.
        """
        for shard in self.shards:
            yield from shard.policy.export_residents()

    # -- tenant quotas -----------------------------------------------------
    async def set_tenant_quotas(self, quotas: dict) -> bool:
        """Apply per-tenant byte quotas across every shard.

        ``quotas`` maps tenant id → total bytes for that tenant across the
        whole service; each shard receives its even slice (mirroring how
        ``capacity`` is split at construction).  The resize runs on each
        shard's worker task (control-plane message, never shed), so quota
        shrink evictions interleave only between complete cache decisions.
        Returns ``True`` iff every shard's policy supports quotas.
        """
        if not self._started:
            raise RuntimeError("CacheService.set_tenant_quotas before start()")
        per_shard = {t: max(q // self._n, 1) for t, q in quotas.items()}
        results = await asyncio.gather(
            *(shard.request_set_quotas(dict(per_shard)) for shard in self.shards)
        )
        return all(results)

    # -- the request API ---------------------------------------------------
    def shard_for(self, key) -> CacheShard:
        return self.shards[hash(key) % self._n]

    async def get(self, req: Request, span=None) -> ServeOutcome:
        """Serve one request: route to its shard, await the outcome.

        Never raises for data-plane conditions — shedding and terminal
        origin failures come back as fields on the outcome, so one bad key
        can't unwind a caller driving thousands of concurrent gets.

        ``span`` is the request's trace span (see :mod:`repro.obs.span`);
        ``None`` — the default — keeps the path trace-free at the cost of
        one branch per hook.
        """
        if not self._started:
            raise RuntimeError("CacheService.get before start() (use 'async with')")
        m = self.metrics
        m.requests.inc()
        shard = self.shards[hash(req.key) % self._n]
        m.queue_depth.observe(shard.queue.qsize())
        return await shard.submit(req, span)

    # -- introspection -----------------------------------------------------
    @property
    def unhandled_exceptions(self) -> int:
        """Count of exceptions that escaped worker/fetch tasks (should be
        zero; CI asserts it)."""
        return self.metrics.unhandled.value

    def cache_stats(self) -> dict:
        """Aggregate policy counters across shards (engine-comparable)."""
        hits = misses = bytes_hit = bytes_missed = evictions = bypasses = 0
        resident = used = 0
        for shard in self.shards:
            st = shard.policy.stats
            hits += st.hits
            misses += st.misses
            bytes_hit += st.bytes_hit
            bytes_missed += st.bytes_missed
            evictions += st.evictions
            bypasses += st.bypasses
            used += shard.policy.used
            try:
                resident += len(shard.policy)
            except (NotImplementedError, TypeError):
                pass
        requests = hits + misses
        total_bytes = bytes_hit + bytes_missed
        return {
            "requests": requests,
            "hits": hits,
            "misses": misses,
            "hit_ratio": hits / requests if requests else 0.0,
            "miss_ratio": misses / requests if requests else 0.0,
            "byte_miss_ratio": bytes_missed / total_bytes if total_bytes else 0.0,
            "evictions": evictions,
            "bypasses": bypasses,
            "resident_objects": resident,
            "used_bytes": used,
            "capacity_bytes": self.capacity,
        }

    def flight_stats(self) -> dict:
        """Single-flight accounting summed across shards."""
        return {
            "generations": sum(s.flight.generations for s in self.shards),
            "coalesced": sum(s.flight.coalesced for s in self.shards),
            "open": sum(len(s.flight) for s in self.shards),
        }

    def stats(self) -> dict:
        return {
            "cache": self.cache_stats(),
            "flight": self.flight_stats(),
            "origin": self.origin.stats(),
            "shed": sum(s.shed_count for s in self.shards),
            "unhandled_exceptions": self.unhandled_exceptions,
            "shards": [s.stats() for s in self.shards],
        }
