"""Fully connected neural network — the paper's "NN with 1024 neurons".

One hidden layer of configurable width (default 1024, per the paper), ReLU
activation, sigmoid output, log-loss, trained by mini-batch Adam.  Pure
numpy; weights use He initialisation.  Deterministic given the seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["NNClassifier"]


class NNClassifier:
    """1-hidden-layer MLP binary classifier.

    Parameters
    ----------
    hidden:
        Hidden-layer width (paper: 1024).
    epochs, batch_size, lr:
        Training schedule; defaults keep Figure 4 runs under a second per
        workload at our trace scale.
    """

    def __init__(
        self,
        hidden: int = 1024,
        epochs: int = 8,
        batch_size: int = 256,
        lr: float = 1e-3,
        seed: int = 0,
    ):
        if hidden < 1:
            raise ValueError(f"hidden must be >= 1, got {hidden}")
        self.hidden = hidden
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.seed = seed
        self._params: dict | None = None

    # -- internals ---------------------------------------------------------------
    @staticmethod
    def _sigmoid(z: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-np.clip(z, -30, 30)))

    def _init(self, d: int) -> dict:
        rng = np.random.default_rng(self.seed)
        h = self.hidden
        return {
            "W1": rng.normal(0, np.sqrt(2.0 / d), (d, h)),
            "b1": np.zeros(h),
            "W2": rng.normal(0, np.sqrt(2.0 / h), (h, 1)),
            "b2": np.zeros(1),
        }

    def fit(self, X: np.ndarray, y: np.ndarray) -> "NNClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).reshape(-1, 1)
        if len(X) == 0:
            raise ValueError("cannot fit on an empty dataset")
        p = self._init(X.shape[1])
        # Adam state.
        m = {k: np.zeros_like(v) for k, v in p.items()}
        v = {k: np.zeros_like(v) for k, v in p.items()}
        b1, b2, eps = 0.9, 0.999, 1e-8
        rng = np.random.default_rng(self.seed + 1)
        t = 0
        for _ in range(self.epochs):
            order = rng.permutation(len(X))
            for start in range(0, len(X), self.batch_size):
                t += 1
                idx = order[start : start + self.batch_size]
                xb, yb = X[idx], y[idx]
                # Forward.
                z1 = xb @ p["W1"] + p["b1"]
                a1 = np.maximum(z1, 0.0)
                out = self._sigmoid(a1 @ p["W2"] + p["b2"])
                # Backward (log-loss).
                dz2 = (out - yb) / len(xb)
                grads = {
                    "W2": a1.T @ dz2,
                    "b2": dz2.sum(axis=0),
                }
                da1 = dz2 @ p["W2"].T
                dz1 = da1 * (z1 > 0)
                grads["W1"] = xb.T @ dz1
                grads["b1"] = dz1.sum(axis=0)
                # Adam step.
                for k in p:
                    m[k] = b1 * m[k] + (1 - b1) * grads[k]
                    v[k] = b2 * v[k] + (1 - b2) * grads[k] ** 2
                    mhat = m[k] / (1 - b1**t)
                    vhat = v[k] / (1 - b2**t)
                    p[k] -= self.lr * mhat / (np.sqrt(vhat) + eps)
        self._params = p
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self._params is None:
            raise RuntimeError("predict() before fit()")
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        p = self._params
        a1 = np.maximum(X @ p["W1"] + p["b1"], 0.0)
        return self._sigmoid(a1 @ p["W2"] + p["b2"]).ravel()

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.predict_proba(X) >= 0.5).astype(np.int64)
