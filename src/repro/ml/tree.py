"""CART regression trees, vectorised with numpy.

The building block of :mod:`repro.ml.gbm` (which in turn powers our LRB
reproduction and the Figure 4 GBM entry).  The implementation follows the
HPC guides' advice — all split scoring happens in vectorised numpy over
pre-sorted feature columns; the only Python-level recursion is over tree
nodes, whose count is bounded by ``max_leaves``.

Splits minimise the squared-error criterion: for each feature, candidate
thresholds come from quantile bins (histogram-style, like LightGBM — the
library LRB uses), scored in one vectorised pass per feature.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["RegressionTree"]


class _NodeRec:
    __slots__ = ("feature", "threshold", "left", "right", "value")

    def __init__(self) -> None:
        self.feature: int = -1
        self.threshold: float = 0.0
        self.left: Optional[_NodeRec] = None
        self.right: Optional[_NodeRec] = None
        self.value: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class RegressionTree:
    """Histogram-split CART for regression.

    Parameters
    ----------
    max_depth:
        Depth cap (root = depth 0).
    min_samples_leaf:
        Minimum rows per leaf; splits violating it are rejected.
    n_bins:
        Candidate thresholds per feature (quantile bins).
    """

    def __init__(self, max_depth: int = 4, min_samples_leaf: int = 8, n_bins: int = 32):
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.n_bins = n_bins
        self._root: Optional[_NodeRec] = None
        self.n_features_: int = 0

    # -- fitting --------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "RegressionTree":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if len(X) != len(y):
            raise ValueError("X and y length mismatch")
        if len(X) == 0:
            raise ValueError("cannot fit on an empty dataset")
        self.n_features_ = X.shape[1]
        self._root = self._build(X, y, depth=0)
        return self

    def _best_split(self, X: np.ndarray, y: np.ndarray):
        """Vectorised best (feature, threshold) by SSE reduction, or None."""
        n = len(y)
        best = (None, None, 0.0)  # feature, threshold, gain
        total_sum = y.sum()
        total_sq = (y * y).sum()
        base_sse = total_sq - total_sum * total_sum / n
        for f in range(X.shape[1]):
            col = X[:, f]
            # Quantile candidate thresholds; unique to skip degenerate cols.
            qs = np.unique(
                np.quantile(col, np.linspace(0.02, 0.98, self.n_bins))
            )
            if len(qs) < 1:
                continue
            # For every candidate threshold, compute left stats in one go.
            mask = col[None, :] <= qs[:, None]           # (bins, n)
            n_left = mask.sum(axis=1).astype(np.float64)
            sum_left = (mask * y[None, :]).sum(axis=1)
            valid = (n_left >= self.min_samples_leaf) & (
                n - n_left >= self.min_samples_leaf
            )
            if not valid.any():
                continue
            n_right = n - n_left
            sum_right = total_sum - sum_left
            with np.errstate(divide="ignore", invalid="ignore"):
                gain = (
                    sum_left * sum_left / n_left
                    + sum_right * sum_right / n_right
                    - total_sum * total_sum / n
                )
            gain = np.where(valid, gain, -np.inf)
            i = int(np.argmax(gain))
            if gain[i] > best[2] and gain[i] > 1e-12:
                best = (f, float(qs[i]), float(gain[i]))
        del base_sse  # kept for clarity of derivation
        return best

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int) -> _NodeRec:
        node = _NodeRec()
        node.value = float(y.mean())
        if depth >= self.max_depth or len(y) < 2 * self.min_samples_leaf:
            return node
        f, thr, _gain = self._best_split(X, y)
        if f is None:
            return node
        mask = X[:, f] <= thr
        node.feature = f
        node.threshold = thr
        node.left = self._build(X[mask], y[mask], depth + 1)
        node.right = self._build(X[~mask], y[~mask], depth + 1)
        return node

    # -- prediction ---------------------------------------------------------------
    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("predict() before fit()")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[None, :]
        out = np.empty(len(X), dtype=np.float64)
        # Vectorised routing: partition row indices level by level.
        stack = [(self._root, np.arange(len(X)))]
        while stack:
            node, idx = stack.pop()
            if node.is_leaf or len(idx) == 0:
                out[idx] = node.value
                continue
            mask = X[idx, node.feature] <= node.threshold
            stack.append((node.left, idx[mask]))    # type: ignore[arg-type]
            stack.append((node.right, idx[~mask]))  # type: ignore[arg-type]
        return out

    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        def d(node: Optional[_NodeRec]) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(d(node.left), d(node.right))
        return d(self._root)
