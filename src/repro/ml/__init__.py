"""From-scratch models: the Figure 4 classifier suite plus the regressors
behind LRB and GL-Cache."""

from repro.ml.features import N_FEATURES, FeatureTracker
from repro.ml.gbm import GBMClassifier, GBMRegressor
from repro.ml.linear import LinRegClassifier, LogRegClassifier, SVMClassifier
from repro.ml.mabcls import MABClassifier
from repro.ml.metrics import (
    balanced_accuracy,
    classification_report,
    confusion,
    precision_recall_f1,
)
from repro.ml.nn import NNClassifier
from repro.ml.tree import RegressionTree

__all__ = [
    "RegressionTree",
    "GBMRegressor",
    "GBMClassifier",
    "LinRegClassifier",
    "LogRegClassifier",
    "SVMClassifier",
    "NNClassifier",
    "MABClassifier",
    "FeatureTracker",
    "N_FEATURES",
    "confusion",
    "precision_recall_f1",
    "balanced_accuracy",
    "classification_report",
]
