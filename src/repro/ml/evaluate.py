"""Figure 4 harness: build labelled ZRO / P-ZRO datasets from a trace and
measure each model's decision accuracy.

Dataset construction mirrors §2.3: replay LRU at a cache size, label every
**miss** event ZRO / non-ZRO and every **hit** event P-ZRO / non-P-ZRO with
the oracle (:mod:`repro.traces.oracle`), and attach the online features the
paper's heuristic discussion centres on — object size, access frequency and
recency gap (log-scaled).  Size separates ZROs well (they skew large —
Figure 1's premise) but carries nothing about whether a *hit* object's burst
is about to end, which is what makes P-ZRO identification intrinsically
harder (§2.3) and the combined task hardest.

Three tasks, as in the paper: ``zro`` (miss events), ``pzro`` (hit events),
``both`` (all events, label = ZRO or P-ZRO).  Batch models train on the
first ``train_frac`` of events (temporal split — no leakage); the MAB is
evaluated *prequentially* on the same test stream, matching its online
nature (§2.3: it "learns the objects by perceiving continuous changes over
a period").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.ml.gbm import GBMClassifier
from repro.ml.linear import LinRegClassifier, LogRegClassifier, SVMClassifier
from repro.ml.mabcls import MABClassifier
from repro.ml.nn import NNClassifier
from repro.sim.request import Trace
from repro.traces.oracle import label_events

__all__ = ["build_dataset", "evaluate_models", "MODEL_FACTORIES", "TASKS"]

TASKS = ("zro", "pzro", "both")

#: The paper's six models.  NN width defaults to 1024 per the paper; the
#: experiment configs may shrink it for bench runtime.
MODEL_FACTORIES: Dict[str, Callable[[], object]] = {
    "LinReg": lambda: LinRegClassifier(),
    "LogReg": lambda: LogRegClassifier(),
    "SVM": lambda: SVMClassifier(),
    "NN": lambda: NNClassifier(hidden=256, epochs=4),
    "GBM": lambda: GBMClassifier(n_estimators=24, max_depth=3),
    "MAB": lambda: MABClassifier(),
}


@dataclass
class Dataset:
    """Feature matrix + binary labels for one task, in trace order."""

    X: np.ndarray
    y: np.ndarray
    task: str

    def __len__(self) -> int:
        return len(self.y)


def build_dataset(trace: Trace, cache_bytes: int, task: str) -> Dataset:
    """Build the labelled dataset for ``task`` at the given cache size."""
    if task not in TASKS:
        raise ValueError(f"task must be one of {TASKS}, got {task!r}")
    import math

    labels = label_events(trace, cache_bytes)
    rows: List[np.ndarray] = []
    ys: List[int] = []
    counts: Dict[int, int] = {}
    last_seen: Dict[int, int] = {}
    # Replay an independent LRU to know hit/miss per event; label_events
    # already produced the oracle label sets.
    from repro.cache.lru import LRUCache

    lru = LRUCache(cache_bytes)
    for idx in range(len(trace)):
        req = trace[idx]
        c = counts.get(req.key, 0)
        gap = idx - last_seen.get(req.key, idx)
        counts[req.key] = c + 1
        last_seen[req.key] = idx
        x = np.array(
            [
                math.log2(max(req.size, 1)),
                math.log2(c + 1),
                math.log2(gap + 1),
                1.0 if c == 0 else 0.0,  # first sighting (one-hit-wonder cue)
            ]
        )
        hit = lru.request(req)
        if task == "zro":
            if not hit:
                rows.append(x)
                ys.append(1 if idx in labels.zro else 0)
        elif task == "pzro":
            if hit:
                rows.append(x)
                ys.append(1 if idx in labels.pzro else 0)
        else:
            rows.append(x)
            ys.append(1 if (idx in labels.zro or idx in labels.pzro) else 0)
    if not rows:
        raise ValueError(f"no events produced for task {task!r}")
    return Dataset(X=np.vstack(rows), y=np.asarray(ys, dtype=np.int64), task=task)


def evaluate_models(
    dataset: Dataset,
    models: Dict[str, Callable[[], object]] | None = None,
    train_frac: float = 0.5,
) -> Dict[str, float]:
    """Train/test each model on a temporal split; returns accuracies.

    Batch models: fit on the head, predict the tail.  ``MABClassifier``:
    fit on the head, then *prequential* predict-then-learn on the tail.
    """
    if not 0.0 < train_frac < 1.0:
        raise ValueError(f"train_frac must be in (0, 1), got {train_frac}")
    models = models or MODEL_FACTORIES
    split = int(len(dataset) * train_frac)
    X_tr, y_tr = dataset.X[:split], dataset.y[:split]
    X_te, y_te = dataset.X[split:], dataset.y[split:]
    if len(np.unique(y_tr)) < 2:
        raise ValueError("degenerate dataset: training labels are single-class")
    # Standardise on the training statistics (gradient-trained models need
    # comparable feature scales; tree/bandit models are scale-invariant).
    mu = X_tr.mean(axis=0)
    sd = X_tr.std(axis=0)
    sd[sd == 0] = 1.0
    X_tr = (X_tr - mu) / sd
    X_te = (X_te - mu) / sd
    out: Dict[str, float] = {}
    for name, factory in models.items():
        model = factory()
        model.fit(X_tr, y_tr)
        if isinstance(model, MABClassifier):
            pred = model.predict_online(X_te, y_te)
        else:
            pred = model.predict(X_te)
        out[name] = float((pred == y_te).mean())
    return out
