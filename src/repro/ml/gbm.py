"""Gradient Boosting Machine (Friedman 2001) over our CART trees.

Supports squared-error regression (used by the LRB reuse-distance predictor
and GL-Cache's group-utility learner) and binary log-loss classification
(the Figure 4 GBM entry).  Plain stagewise boosting with shrinkage; no
subsampling — traces are small at our scale and determinism matters more.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.ml.tree import RegressionTree

__all__ = ["GBMRegressor", "GBMClassifier"]


class GBMRegressor:
    """L2-boosted regression trees.

    Parameters
    ----------
    n_estimators, learning_rate, max_depth, min_samples_leaf:
        The usual boosting knobs; defaults sized for cache-trace features
        (LRB uses 32 trees of depth ≤ 6 in its low-overhead profile).
    """

    def __init__(
        self,
        n_estimators: int = 32,
        learning_rate: float = 0.2,
        max_depth: int = 4,
        min_samples_leaf: int = 8,
    ):
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self._base: float = 0.0
        self._trees: List[RegressionTree] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GBMRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if len(X) == 0:
            raise ValueError("cannot fit on an empty dataset")
        self._base = float(y.mean())
        self._trees = []
        pred = np.full(len(y), self._base)
        for _ in range(self.n_estimators):
            resid = y - pred
            tree = RegressionTree(
                max_depth=self.max_depth, min_samples_leaf=self.min_samples_leaf
            ).fit(X, resid)
            step = tree.predict(X)
            if np.allclose(step, 0.0):
                break  # residuals exhausted; further trees are dead weight
            pred += self.learning_rate * step
            self._trees.append(tree)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[None, :]
        out = np.full(len(X), self._base)
        for tree in self._trees:
            out += self.learning_rate * tree.predict(X)
        return out

    @property
    def n_trees_(self) -> int:
        return len(self._trees)


class GBMClassifier:
    """Binary classifier via log-loss boosting (labels in {0, 1}).

    Each stage fits a tree to the log-loss gradient (y − p); predictions go
    through a sigmoid.  ``predict`` thresholds at 0.5.
    """

    def __init__(
        self,
        n_estimators: int = 32,
        learning_rate: float = 0.2,
        max_depth: int = 3,
        min_samples_leaf: int = 8,
    ):
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self._base: float = 0.0
        self._trees: List[RegressionTree] = []

    @staticmethod
    def _sigmoid(z: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-np.clip(z, -30, 30)))

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GBMClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if len(X) == 0:
            raise ValueError("cannot fit on an empty dataset")
        if not set(np.unique(y)) <= {0.0, 1.0}:
            raise ValueError("labels must be binary {0, 1}")
        p = np.clip(y.mean(), 1e-6, 1 - 1e-6)
        self._base = float(np.log(p / (1 - p)))
        self._trees = []
        raw = np.full(len(y), self._base)
        for _ in range(self.n_estimators):
            grad = y - self._sigmoid(raw)
            tree = RegressionTree(
                max_depth=self.max_depth, min_samples_leaf=self.min_samples_leaf
            ).fit(X, grad)
            step = tree.predict(X)
            if np.allclose(step, 0.0):
                break
            raw += self.learning_rate * step
            self._trees.append(tree)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[None, :]
        raw = np.full(len(X), self._base)
        for tree in self._trees:
            raw += self.learning_rate * tree.predict(X)
        return self._sigmoid(raw)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.predict_proba(X) >= 0.5).astype(np.int64)
