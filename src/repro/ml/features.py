"""Per-object feature tracking shared by LRB, GL-Cache and the Figure 4
dataset builder.

LRB's feature set (Song et al., NSDI'20) per object at decision time:

* **deltas** — gaps between the most recent accesses (up to ``n_deltas``);
* **EDCs** — exponentially decayed counters at geometrically spaced decay
  half-lives, summarising access frequency at multiple timescales;
* **static** — object size (log2) and total access count.

:class:`FeatureTracker` maintains this state incrementally in O(1) per
access and materialises numpy rows on demand.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, List, Optional

import numpy as np

__all__ = ["FeatureTracker", "N_FEATURES"]

_N_DELTAS = 4
_N_EDCS = 4
#: Total feature vector width produced by :meth:`FeatureTracker.features`.
N_FEATURES = _N_DELTAS + _N_EDCS + 2


class _ObjState:
    __slots__ = ("last_times", "edcs", "count", "size")

    def __init__(self, size: int):
        self.last_times: Deque[int] = deque(maxlen=_N_DELTAS + 1)
        self.edcs = [0.0] * _N_EDCS
        self.count = 0
        self.size = size


class FeatureTracker:
    """Incremental per-object feature state.

    Parameters
    ----------
    edc_base_halflife:
        Half-life (in requests) of the fastest EDC; each subsequent EDC is
        4× slower.
    max_objects:
        Safety cap on tracked objects; the oldest-untouched are dropped via
        periodic sweep when exceeded (keeps memory bounded on churny
        traces, mirroring LRB's memory window).
    """

    def __init__(self, edc_base_halflife: float = 1000.0, max_objects: int = 500_000):
        self._objs: Dict[int, _ObjState] = {}
        self.max_objects = max_objects
        self._decays = [
            0.5 ** (1.0 / (edc_base_halflife * 4**i)) for i in range(_N_EDCS)
        ]

    def __len__(self) -> int:
        return len(self._objs)

    def __contains__(self, key: int) -> bool:
        return key in self._objs

    def touch(self, key: int, size: int, now: int) -> None:
        """Record an access at logical time ``now``."""
        st = self._objs.get(key)
        if st is None:
            if len(self._objs) >= self.max_objects:
                self._sweep(now)
            st = _ObjState(size)
            self._objs[key] = st
        prev = st.last_times[-1] if st.last_times else now
        gap = max(now - prev, 0)
        for i, decay in enumerate(self._decays):
            st.edcs[i] = st.edcs[i] * (decay**gap) + 1.0
        st.last_times.append(now)
        st.count += 1
        st.size = size

    def _sweep(self, now: int) -> None:
        """Drop the stalest half of tracked objects (memory-window bound)."""
        items = sorted(
            self._objs.items(),
            key=lambda kv: kv[1].last_times[-1] if kv[1].last_times else 0,
        )
        for key, _ in items[: len(items) // 2]:
            del self._objs[key]

    def forget(self, key: int) -> None:
        self._objs.pop(key, None)

    def last_access(self, key: int) -> Optional[int]:
        st = self._objs.get(key)
        if st is None or not st.last_times:
            return None
        return st.last_times[-1]

    def features(self, key: int, now: int) -> Optional[np.ndarray]:
        """Feature row for ``key`` at time ``now`` (None if untracked)."""
        st = self._objs.get(key)
        if st is None:
            return None
        row = np.empty(N_FEATURES)
        times = st.last_times
        n = len(times)
        # Deltas: now − t_last, t_last − t_{last−1}, …, log-compressed.
        prev = now
        for i in range(_N_DELTAS):
            idx = n - 1 - i
            if idx >= 0:
                t = times[idx]
                row[i] = math.log2(max(prev - t, 1) + 1)
                prev = t
            else:
                row[i] = 32.0  # "never": saturate
        for i in range(_N_EDCS):
            row[_N_DELTAS + i] = st.edcs[i]
        row[_N_DELTAS + _N_EDCS] = math.log2(max(st.size, 1))
        row[_N_DELTAS + _N_EDCS + 1] = math.log2(st.count + 1)
        return row

    def metadata_bytes(self) -> int:
        # times deque (5×8) + edcs (4×8) + count/size ≈ 96 B per object.
        return 96 * len(self._objs)
