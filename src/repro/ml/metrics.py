"""Classification metrics beyond raw accuracy.

Figure 4 reports accuracy; for the class-imbalanced ZRO/P-ZRO tasks the
per-class structure is informative (the paper's §2.3 discusses exactly this
imbalance-driven misjudgment), so the extended experiment also reports
precision/recall/F1 and the confusion matrix.  Implemented here rather than
pulled from scikit-learn to keep the dependency footprint at numpy+scipy.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = ["confusion", "precision_recall_f1", "balanced_accuracy", "classification_report"]


def confusion(y_true: np.ndarray, y_pred: np.ndarray) -> Dict[str, int]:
    """Binary confusion counts (positive class = 1)."""
    y_true = np.asarray(y_true).astype(bool)
    y_pred = np.asarray(y_pred).astype(bool)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred shape mismatch")
    return {
        "tp": int((y_true & y_pred).sum()),
        "fp": int((~y_true & y_pred).sum()),
        "fn": int((y_true & ~y_pred).sum()),
        "tn": int((~y_true & ~y_pred).sum()),
    }


def precision_recall_f1(y_true: np.ndarray, y_pred: np.ndarray) -> Dict[str, float]:
    """Precision, recall and F1 for the positive class."""
    c = confusion(y_true, y_pred)
    precision = c["tp"] / (c["tp"] + c["fp"]) if c["tp"] + c["fp"] else 0.0
    recall = c["tp"] / (c["tp"] + c["fn"]) if c["tp"] + c["fn"] else 0.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall
        else 0.0
    )
    return {"precision": precision, "recall": recall, "f1": f1}


def balanced_accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean of per-class recalls — robust to the miss/hit imbalance the
    paper highlights."""
    c = confusion(y_true, y_pred)
    tpr = c["tp"] / (c["tp"] + c["fn"]) if c["tp"] + c["fn"] else 0.0
    tnr = c["tn"] / (c["tn"] + c["fp"]) if c["tn"] + c["fp"] else 0.0
    return (tpr + tnr) / 2.0


def classification_report(y_true: np.ndarray, y_pred: np.ndarray) -> Dict[str, float]:
    """Accuracy + balanced accuracy + positive-class P/R/F1 in one dict."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    out: Dict[str, float] = {"accuracy": float((y_true == y_pred).mean())}
    out["balanced_accuracy"] = balanced_accuracy(y_true, y_pred)
    out.update(precision_recall_f1(y_true, y_pred))
    return out
