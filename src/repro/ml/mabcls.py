"""MAB classifier — the paper's reinforcement-learning entry in Figure 4.

A contextual two-armed bandit: the feature vector is discretised into a
context bucket; each bucket holds a weight pair (arm "positive" = predict
ZRO/P-ZRO, arm "negative").  Correct pulls are rewarded, wrong pulls
penalised multiplicatively with an adaptive learning rate — the same
machinery as SCIP's :class:`~repro.core.mab.PositionBandit`, applied to
classification.

Unlike the batch models, the MAB *keeps learning during evaluation*
("perceiving continuous changes over a period", §2.3): the evaluation
harness feeds it the stream prequentially — predict first, then observe the
label.  This is what lets it track the drifting, interacting ZRO/P-ZRO mix
where frozen batch models fall behind, reproducing Figure 4's ordering.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

import numpy as np

__all__ = ["MABClassifier"]


class MABClassifier:
    """Online contextual bandit classifier.

    Parameters
    ----------
    bins:
        Discretisation bins per feature (contexts = bins ** n_features,
        lazily materialised).
    lr:
        Multiplicative update strength.
    decay:
        Per-update decay pulling weights back toward uniform, which lets a
        context *forget* stale evidence under drift.
    """

    def __init__(self, bins: int = 6, lr: float = 0.3, decay: float = 0.999):
        if bins < 2:
            raise ValueError(f"bins must be >= 2, got {bins}")
        self.bins = bins
        self.lr = lr
        self.decay = decay
        self._ctx: Dict[Tuple[int, ...], Tuple[float, float]] = {}
        self._lo: np.ndarray | None = None
        self._hi: np.ndarray | None = None

    # -- context discretisation -------------------------------------------------
    def _calibrate(self, X: np.ndarray) -> None:
        self._lo = np.quantile(X, 0.02, axis=0)
        self._hi = np.quantile(X, 0.98, axis=0)
        span = self._hi - self._lo
        span[span <= 0] = 1.0
        self._hi = self._lo + span

    def _bucket(self, x: np.ndarray) -> Tuple[int, ...]:
        assert self._lo is not None and self._hi is not None
        frac = (x - self._lo) / (self._hi - self._lo)
        idx = np.clip((frac * self.bins).astype(int), 0, self.bins - 1)
        return tuple(int(i) for i in idx)

    # -- bandit core ----------------------------------------------------------------
    def _weights(self, ctx: Tuple[int, ...]) -> Tuple[float, float]:
        return self._ctx.get(ctx, (0.5, 0.5))

    def _update(self, ctx: Tuple[int, ...], label: int) -> None:
        w_pos, w_neg = self._weights(ctx)
        # Penalise the arm that would have been wrong.
        if label == 1:
            w_neg *= math.exp(-self.lr)
        else:
            w_pos *= math.exp(-self.lr)
        # Decay toward uniform: stale contexts drift back to undecided.
        w_pos = self.decay * w_pos + (1 - self.decay) * 0.5
        w_neg = self.decay * w_neg + (1 - self.decay) * 0.5
        total = w_pos + w_neg
        self._ctx[ctx] = (w_pos / total, w_neg / total)

    # -- scikit-ish API -----------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "MABClassifier":
        """Online pass over the training stream in the given order."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if len(X) == 0:
            raise ValueError("cannot fit on an empty dataset")
        self._calibrate(X)
        for i in range(len(X)):
            self._update(self._bucket(X[i]), int(y[i]))
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._lo is None:
            raise RuntimeError("predict() before fit()")
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        out = np.empty(len(X), dtype=np.int64)
        for i in range(len(X)):
            w_pos, w_neg = self._weights(self._bucket(X[i]))
            out[i] = 1 if w_pos >= w_neg else 0
        return out

    def predict_online(self, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Prequential evaluation: predict each sample, then learn its label.

        This is the mode Figure 4 exercises — the bandit adapts through the
        evaluation stream exactly as SCIP adapts through the request stream.
        """
        if self._lo is None:
            raise RuntimeError("predict_online() before fit()")
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        y = np.asarray(y)
        out = np.empty(len(X), dtype=np.int64)
        for i in range(len(X)):
            ctx = self._bucket(X[i])
            w_pos, w_neg = self._weights(ctx)
            out[i] = 1 if w_pos >= w_neg else 0
            self._update(ctx, int(y[i]))
        return out
