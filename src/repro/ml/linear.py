"""Linear models for the Figure 4 accuracy comparison.

Three of the paper's six classifiers live here, all numpy-vectorised:

* :class:`LinRegClassifier` — ordinary least squares (closed form via
  ``lstsq``) used as a classifier by thresholding the regression output at
  0.5, matching how [1] is applied to a binary task;
* :class:`LogRegClassifier` — logistic regression trained by full-batch
  gradient descent with L2 regularisation (the practical CTR-style setup of
  [8]);
* :class:`SVMClassifier` — linear soft-margin SVM trained by Pegasos-style
  subgradient descent on the hinge loss [11].
"""

from __future__ import annotations

import numpy as np

__all__ = ["LinRegClassifier", "LogRegClassifier", "SVMClassifier"]


def _check_xy(X: np.ndarray, y: np.ndarray):
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if len(X) != len(y):
        raise ValueError("X and y length mismatch")
    if len(X) == 0:
        raise ValueError("cannot fit on an empty dataset")
    if not set(np.unique(y)) <= {0.0, 1.0}:
        raise ValueError("labels must be binary {0, 1}")
    return X, y


def _with_bias(X: np.ndarray) -> np.ndarray:
    return np.hstack([X, np.ones((len(X), 1))])


class LinRegClassifier:
    """Least-squares regression thresholded at 0.5."""

    def __init__(self, ridge: float = 1e-6):
        self.ridge = ridge
        self._w: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinRegClassifier":
        X, y = _check_xy(X, y)
        Xb = _with_bias(X)
        # Ridge-stabilised normal equations.
        A = Xb.T @ Xb + self.ridge * np.eye(Xb.shape[1])
        self._w = np.linalg.solve(A, Xb.T @ y)
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        if self._w is None:
            raise RuntimeError("predict() before fit()")
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        return _with_bias(X) @ self._w

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.decision_function(X) >= 0.5).astype(np.int64)


class LogRegClassifier:
    """L2-regularised logistic regression, full-batch gradient descent."""

    def __init__(self, lr: float = 0.5, n_iter: int = 300, l2: float = 1e-4):
        self.lr = lr
        self.n_iter = n_iter
        self.l2 = l2
        self._w: np.ndarray | None = None

    @staticmethod
    def _sigmoid(z: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-np.clip(z, -30, 30)))

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogRegClassifier":
        X, y = _check_xy(X, y)
        Xb = _with_bias(X)
        n, d = Xb.shape
        w = np.zeros(d)
        for _ in range(self.n_iter):
            p = self._sigmoid(Xb @ w)
            grad = Xb.T @ (p - y) / n + self.l2 * w
            w -= self.lr * grad
        self._w = w
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self._w is None:
            raise RuntimeError("predict() before fit()")
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        return self._sigmoid(_with_bias(X) @ self._w)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.predict_proba(X) >= 0.5).astype(np.int64)


class SVMClassifier:
    """Linear SVM via Pegasos subgradient descent on the hinge loss."""

    def __init__(self, lam: float = 1e-4, n_iter: int = 20, seed: int = 0):
        self.lam = lam
        self.n_iter = n_iter
        self.seed = seed
        self._w: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "SVMClassifier":
        X, y = _check_xy(X, y)
        Xb = _with_bias(X)
        ysign = 2.0 * y - 1.0  # {0,1} → {−1,+1}
        n, d = Xb.shape
        rng = np.random.default_rng(self.seed)
        w = np.zeros(d)
        t = 0
        for _ in range(self.n_iter):
            order = rng.permutation(n)
            # Mini-batched Pegasos: vectorise over chunks for speed.
            for start in range(0, n, 256):
                t += 1
                idx = order[start : start + 256]
                eta = 1.0 / (self.lam * t)
                margin = ysign[idx] * (Xb[idx] @ w)
                viol = margin < 1.0
                w *= 1.0 - eta * self.lam
                if viol.any():
                    w += (eta / len(idx)) * (ysign[idx][viol][:, None] * Xb[idx][viol]).sum(axis=0)
        self._w = w
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        if self._w is None:
            raise RuntimeError("predict() before fit()")
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        return _with_bias(X) @ self._w

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.decision_function(X) >= 0.0).astype(np.int64)
