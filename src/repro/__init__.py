"""repro — reproduction of SCIP (ICPP 2023): smart cache insertion and
promotion for content delivery networks.

Public entry points:

* :mod:`repro.core` — SCIP / SCI and the enhancement wrappers.
* :mod:`repro.cache` — the cache-policy zoo (baselines + comparators).
* :mod:`repro.sim` — the trace-driven simulator.
* :mod:`repro.traces` — synthetic CDN workloads and ZRO/P-ZRO analysis.
* :mod:`repro.ml` — from-scratch models (Figure 4, LRB, GL-Cache).
* :mod:`repro.tdc` — the two-layer production-CDN simulator (Figure 6).
* :mod:`repro.experiments` — one module per paper table/figure.
"""

__version__ = "1.0.0"

from repro.api import SmartCache  # noqa: E402  (the one-import quickstart)

__all__ = ["SmartCache", "__version__"]
