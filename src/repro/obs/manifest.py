"""Run manifests: the reproducibility record written next to every traced run.

A manifest captures everything needed to re-produce (or at least re-blame)
one simulation artifact: the policy and its scalar parameters, the trace
profile, the seed, the git SHA of the working tree, interpreter/platform
info, and the schema versions of both the manifest itself and the JSONL
event stream it accompanies.  EXPERIMENTS.md figures regenerated from a
manifest + trace are artifacts, not anecdotes.

Schema (``MANIFEST_SCHEMA`` = 1)::

    {
      "schema": 1,
      "event_schema": 1,          # JSONL stream version (repro.obs.sinks)
      "created": "2026-01-01T00:00:00",
      "python": "3.11.7",
      "platform": "Linux-...",
      "git_sha": "abc1234" | "unknown",
      "git_dirty": true | false | null,
      "policy": {"name": ..., "capacity": ..., <scalar params>},
      "trace": {"name": ..., "requests": ..., "working_set_size": ...},
      "seed": <int | null>,
      "extra": {...}              # caller-provided (CLI args, obs config)
    }
"""

from __future__ import annotations

import json
import platform
import subprocess
import time
from typing import Optional

from repro.obs.sinks import EVENT_SCHEMA

__all__ = ["MANIFEST_SCHEMA", "git_revision", "build_manifest", "write_manifest"]

#: Version of the manifest layout; bump on breaking changes.
MANIFEST_SCHEMA = 1


def git_revision() -> dict:
    """Best-effort git SHA + dirty bit; degrades to ``unknown`` outside a
    repository (or without a git binary) rather than failing the run."""
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            check=True,
        ).stdout.strip()
        dirty = bool(
            subprocess.run(
                ["git", "status", "--porcelain"],
                capture_output=True,
                text=True,
                timeout=5,
                check=True,
            ).stdout.strip()
        )
        return {"git_sha": sha, "git_dirty": dirty}
    except Exception:
        return {"git_sha": "unknown", "git_dirty": None}


def _scalar_params(policy) -> dict:
    """Public scalar attributes of a policy — its reproducible parameter set.

    Callables, containers and private/underscore state are skipped; this is
    a manifest, not a pickle.
    """
    out = {}
    for key, value in sorted(vars(policy).items()):
        if key.startswith("_"):
            continue
        if isinstance(value, (bool, int, float, str)) or value is None:
            out[key] = value
    return out


def build_manifest(
    policy=None,
    trace=None,
    seed: Optional[int] = None,
    extra: Optional[dict] = None,
) -> dict:
    """Assemble a manifest dict (no I/O beyond the git probe)."""
    doc: dict = {
        "schema": MANIFEST_SCHEMA,
        "event_schema": EVENT_SCHEMA,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "platform": platform.platform(),
    }
    doc.update(git_revision())
    if policy is not None:
        doc["policy"] = {"name": getattr(policy, "name", type(policy).__name__)}
        doc["policy"].update(_scalar_params(policy))
    if trace is not None:
        doc["trace"] = {
            "name": getattr(trace, "name", "unknown"),
            "requests": len(trace),
            "working_set_size": getattr(trace, "working_set_size", None),
        }
    if seed is None and policy is not None:
        seed = getattr(policy, "seed", None)
    doc["seed"] = seed
    if extra:
        doc["extra"] = dict(extra)
    return doc


def write_manifest(path: str, manifest: dict) -> str:
    """Persist a manifest as pretty JSON; returns the path written."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return str(path)
