"""Observability configuration: one dataclass the engine understands.

``simulate(policy, trace, obs=ObsConfig(trace_out="events.jsonl"))`` is the
whole integration surface: the engine opens an :class:`ObsSession` from the
config, attaches its probe to the policy for the duration of the replay,
and folds the final registry snapshot into the :class:`~repro.sim.engine.
SimResult`.  The session owns sink lifetime (the JSONL writer is closed
even if the replay raises) and sink ordering (registry recorder before
snapshot emitter, so snapshots always see current numbers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.probe import Probe
from repro.obs.sinks import JSONLSink, RegistryRecorder, RingBufferSink, SnapshotEmitter

__all__ = ["ObsConfig", "ObsSession"]


@dataclass(frozen=True)
class ObsConfig:
    """What to observe during one simulation run.

    Parameters
    ----------
    trace_out:
        JSONL event stream path (``.gz`` → gzip); ``None`` disables the
        file sink.
    ring:
        Keep the last ``ring`` events in memory (0 disables); exposed on
        the session for tests and interactive debugging.
    snapshot_every:
        Emit a registry snapshot every N requests of policy clock
        (0 disables).
    manifest_out:
        Write a run manifest here after the replay (``None`` disables;
        the CLI defaults it next to ``trace_out``).
    events:
        Optional event-name filter (see :data:`repro.obs.probe.
        PROBE_EVENTS`); ``None`` records everything.
    """

    trace_out: Optional[str] = None
    ring: int = 0
    snapshot_every: int = 0
    manifest_out: Optional[str] = None
    events: Optional[frozenset] = None

    def open(self) -> "ObsSession":
        return ObsSession(self)


class ObsSession:
    """Live sink set for one run; create via :meth:`ObsConfig.open`."""

    def __init__(self, config: ObsConfig):
        self.config = config
        self.registry = MetricsRegistry()
        self.ring: Optional[RingBufferSink] = None
        self.jsonl: Optional[JSONLSink] = None
        self.snapshots: Optional[SnapshotEmitter] = None
        # Sink order is contract: the recorder updates the registry that
        # the snapshot emitter reads.
        sinks: list = [RegistryRecorder(self.registry)]
        if config.ring > 0:
            self.ring = RingBufferSink(maxlen=config.ring)
            sinks.append(self.ring)
        if config.trace_out:
            self.jsonl = JSONLSink(config.trace_out)
            sinks.append(self.jsonl)
        if config.snapshot_every > 0:
            self.snapshots = SnapshotEmitter(
                self.registry, config.snapshot_every, forward=self.jsonl
            )
            sinks.append(self.snapshots)
        self.probe = Probe(sinks, events=config.events)

    def snapshot(self) -> dict:
        """Registry snapshot plus stream bookkeeping (the ``SimResult.obs``
        payload)."""
        out = {
            "events_emitted": self.probe.seq,
            "registry": self.registry.snapshot(),
        }
        if self.jsonl is not None:
            out["trace_out"] = self.jsonl.path
            out["events_written"] = self.jsonl.written
        if self.snapshots is not None:
            out["snapshots"] = len(self.snapshots.snapshots)
        return out

    def close(self) -> None:
        self.probe.close()
