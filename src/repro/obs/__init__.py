"""``repro.obs`` — zero-overhead instrumentation for the SCIP reproduction.

Three pieces:

* **metrics** — :class:`~repro.obs.metrics.MetricsRegistry` of counters,
  gauges and fixed-log2-bucket histograms, the shared numeric vocabulary
  (the TDC monitor's latency histogram is the same type);
* **probe** — :class:`~repro.obs.probe.Probe`, the named-hook-point event
  API; policies pay one ``if self._probe is None`` branch when tracing is
  off, and the bulk-replay fast loop opts out entirely;
* **sinks** — ring buffer, schema-versioned JSONL writer (gzip-able),
  registry recorder, periodic snapshot emitter; plus run **manifests**
  (seed, params, git SHA) for reproducible artifacts;
* **spans** — :class:`~repro.obs.span.Tracer` request-scoped trace trees
  with head sampling + tail-keep, per-stage critical-path attribution,
  and :class:`~repro.obs.span.SLOTracker` error budgets; rendered by
  :mod:`repro.obs.tracereport` / ``repro trace-report``.

Entry point for engine users::

    from repro.obs import ObsConfig
    res = simulate(SCIPCache(cap), trace, obs=ObsConfig(trace_out="ev.jsonl"))
    res.obs["registry"]["w_mru"]  # final learner state

CLI: ``repro simulate --trace-out ev.jsonl --obs-summary`` to record,
``repro obs ev.jsonl`` to reconstruct the ω/λ trajectories.
"""

from repro.obs.config import ObsConfig, ObsSession
from repro.obs.manifest import MANIFEST_SCHEMA, build_manifest, write_manifest
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.probe import PROBE_EVENTS, Probe
from repro.obs.sinks import (
    EVENT_SCHEMA,
    SPAN_SCHEMA,
    JSONLSink,
    RegistryRecorder,
    RingBufferSink,
    SnapshotEmitter,
    SpanSink,
)
from repro.obs.span import SLO, SLOTracker, Span, TraceConfig, Tracer, critical_path

__all__ = [
    "ObsConfig",
    "ObsSession",
    "MANIFEST_SCHEMA",
    "build_manifest",
    "write_manifest",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PROBE_EVENTS",
    "Probe",
    "EVENT_SCHEMA",
    "SPAN_SCHEMA",
    "JSONLSink",
    "RegistryRecorder",
    "RingBufferSink",
    "SnapshotEmitter",
    "SpanSink",
    "SLO",
    "SLOTracker",
    "Span",
    "TraceConfig",
    "Tracer",
    "critical_path",
]
