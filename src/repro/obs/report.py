"""Read a JSONL event stream back into learner trajectories and tables.

This is the consumer half of the observability layer: ``repro obs
events.jsonl`` reconstructs the ω_m/ω_l and λ time series that Algorithm 1
and Algorithm 2 produced during a traced run, renders them as a sampled
text table, and summarises the event mix — the debugging loop for a
convergence regression is "trace once, read the table", not print-statement
archaeology.
"""

from __future__ import annotations

import gzip
import json
from typing import Iterable, Iterator, List

from repro.obs.sinks import EVENT_SCHEMA

__all__ = [
    "read_events",
    "event_counts",
    "learner_series",
    "format_learner_table",
    "format_summary",
]


def read_events(path: str) -> Iterator[dict]:
    """Yield event records from a JSONL file (``.gz`` aware).

    The leading ``schema`` record is validated and swallowed; a stream
    written by a future incompatible writer raises ``ValueError`` instead
    of mis-parsing.  Blank lines are ignored.
    """
    opener = gzip.open if str(path).endswith(".gz") else open
    with opener(path, "rt", encoding="utf-8") as fh:  # type: ignore[operator]
        first = True
        for line in fh:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if first:
                first = False
                if rec.get("event") == "schema":
                    version = rec.get("version")
                    if version != EVENT_SCHEMA:
                        raise ValueError(
                            f"event stream schema {version!r} unsupported "
                            f"(reader understands {EVENT_SCHEMA})"
                        )
                    continue
            yield rec


def event_counts(events: Iterable[dict]) -> dict:
    """Event-name → occurrence count."""
    counts: dict = {}
    for rec in events:
        name = rec.get("event", "?")
        counts[name] = counts.get(name, 0) + 1
    return counts


def learner_series(events: Iterable[dict]) -> dict:
    """Extract the learner trajectories from an event stream.

    Returns ``{"weights": [(t, w_mru, w_lru)], "lam": [(t, λ)],
    "restarts": [(t, λ)]}`` — ``t`` falls back to the emission ``seq`` for
    records without a clock, so ordering survives either way.
    """
    weights: List[tuple] = []
    lam: List[tuple] = []
    restarts: List[tuple] = []
    for rec in events:
        t = rec.get("t", rec.get("seq", 0))
        event = rec.get("event")
        if event == "weight_update":
            weights.append((t, rec["w_mru"], rec["w_lru"]))
        elif event == "lambda_update":
            lam.append((t, rec["value"]))
        elif event == "lambda_restart":
            restarts.append((t, rec["value"]))
            lam.append((t, rec["value"]))
    return {"weights": weights, "lam": lam, "restarts": restarts}


def _sample(rows: list, max_rows: int) -> list:
    """Evenly sample ``rows`` down to ``max_rows`` (keeping first and last)."""
    if len(rows) <= max_rows:
        return rows
    step = (len(rows) - 1) / (max_rows - 1)
    return [rows[round(i * step)] for i in range(max_rows)]


def format_learner_table(series: dict, max_rows: int = 24) -> str:
    """Render the ω/λ trajectories as an aligned text table.

    The two series are merged on ``t`` (each row shows the latest known
    value of every column at that point), then evenly sampled to
    ``max_rows``.
    """
    merged: dict = {}
    for t, w_m, w_l in series["weights"]:
        merged.setdefault(t, {})["w"] = (w_m, w_l)
    for t, value in series["lam"]:
        merged.setdefault(t, {})["lam"] = value
    if not merged:
        return "(no learner events in stream)"
    rows = []
    w_m = w_l = lam = None
    for t in sorted(merged):
        cell = merged[t]
        if "w" in cell:
            w_m, w_l = cell["w"]
        if "lam" in cell:
            lam = cell["lam"]
        rows.append((t, w_m, w_l, lam))
    rows = _sample(rows, max_rows)
    fmt_f = lambda v: f"{v:.4f}" if v is not None else "-"  # noqa: E731
    lines = [f"{'t':>12} {'w_mru':>8} {'w_lru':>8} {'lambda':>8}"]
    for t, w_m, w_l, lam in rows:
        lines.append(f"{t:>12} {fmt_f(w_m):>8} {fmt_f(w_l):>8} {fmt_f(lam):>8}")
    if series["restarts"]:
        pts = ", ".join(f"t={t} λ={v:.4f}" for t, v in series["restarts"][:10])
        more = len(series["restarts"]) - 10
        lines.append(f"restarts: {pts}" + (f" (+{more} more)" if more > 0 else ""))
    return "\n".join(lines)


def format_summary(counts: dict) -> str:
    """One-line-per-event occurrence summary."""
    if not counts:
        return "(empty event stream)"
    total = sum(counts.values())
    lines = [f"{total} events"]
    for name in sorted(counts, key=lambda n: -counts[n]):
        lines.append(f"  {name:<20} {counts[name]:>10,}")
    return "\n".join(lines)
