"""Render span streams: per-stage tables, waterfalls, critical paths.

Reads the JSONL span stream written by :class:`repro.obs.sinks.SpanSink`
(`.gz` aware), reassembles traces, and renders what the `repro
trace-report` CLI prints: a per-stage latency table over every span in the
file, a critical-path breakdown attributing end-to-end time to stages, and
a waterfall of one trace (default: the slowest root).
"""

from __future__ import annotations

import gzip
import json
from typing import Dict, List, Optional, TextIO, Tuple

from repro.obs.sinks import SPAN_SCHEMA
from repro.obs.span import critical_path

__all__ = [
    "read_spans",
    "build_traces",
    "stage_table",
    "critical_path_totals",
    "format_stage_table",
    "format_waterfall",
    "format_trace_report",
]


def _open_text(path: str) -> TextIO:
    if str(path).endswith(".gz"):
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path, "r", encoding="utf-8")


def read_spans(path: str) -> List[dict]:
    """Load and validate a span stream; returns span records only."""
    spans: List[dict] = []
    with _open_text(path) as fh:
        header_line = fh.readline()
        if not header_line:
            raise ValueError(f"{path}: empty span stream (missing schema header)")
        header = json.loads(header_line)
        if header.get("event") != "schema" or header.get("stream") != "spans":
            raise ValueError(
                f"{path}: not a span stream (header {header!r}); "
                "expected a file written by repro.obs.sinks.SpanSink"
            )
        version = header.get("version")
        if version != SPAN_SCHEMA:
            raise ValueError(
                f"{path}: span schema version {version!r} not supported "
                f"(reader understands {SPAN_SCHEMA})"
            )
        for lineno, line in enumerate(fh, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: corrupt span record") from exc
            if rec.get("kind") == "span":
                spans.append(rec)
    return spans


def build_traces(spans: List[dict]) -> Dict[int, List[dict]]:
    """Group span records by trace id (insertion order preserved)."""
    traces: Dict[int, List[dict]] = {}
    for rec in spans:
        traces.setdefault(rec["trace"], []).append(rec)
    return traces


def _quantile(sorted_vals: List[float], q: float) -> float:
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, int(q * len(sorted_vals)))
    return sorted_vals[idx]


def stage_table(spans: List[dict]) -> List[dict]:
    """Exact per-stage duration stats over all spans, sorted by total."""
    by_stage: Dict[str, List[float]] = {}
    errors: Dict[str, int] = {}
    for rec in spans:
        if rec.get("end_ns") is None:
            continue
        dur_us = (rec["end_ns"] - rec["start_ns"]) / 1000.0
        by_stage.setdefault(rec["name"], []).append(dur_us)
        if rec.get("status") != "ok":
            errors[rec["name"]] = errors.get(rec["name"], 0) + 1
    rows = []
    for stage, durs in by_stage.items():
        durs.sort()
        rows.append(
            {
                "stage": stage,
                "count": len(durs),
                "total_us": sum(durs),
                "mean_us": sum(durs) / len(durs),
                "p50_us": _quantile(durs, 0.50),
                "p90_us": _quantile(durs, 0.90),
                "p99_us": _quantile(durs, 0.99),
                "max_us": durs[-1],
                "not_ok": errors.get(stage, 0),
            }
        )
    rows.sort(key=lambda r: -r["total_us"])
    return rows


def critical_path_totals(
    traces: Dict[int, List[dict]],
) -> Tuple[List[dict], float]:
    """Fold every trace's critical path into per-stage totals.

    Returns ``(rows, total_root_us)``; each row's ``share`` is its fraction
    of summed root latency, so the shares answer "where did the time go".
    """
    totals: Dict[str, List[float]] = {}
    total_root_ns = 0
    for records in traces.values():
        for stage, seg_ns in critical_path(records):
            agg = totals.setdefault(stage, [0, 0.0])
            agg[0] += 1
            agg[1] += seg_ns
        for rec in records:
            if rec["parent"] is None and rec.get("end_ns") is not None:
                total_root_ns += rec["end_ns"] - rec["start_ns"]
    rows = []
    for stage, (segs, ns) in totals.items():
        rows.append(
            {
                "stage": stage,
                "segments": segs,
                "total_us": ns / 1000.0,
                "share": (ns / total_root_ns) if total_root_ns else 0.0,
            }
        )
    rows.sort(key=lambda r: -r["total_us"])
    return rows, total_root_ns / 1000.0


def _fmt_us(us: float) -> str:
    if us >= 1_000_000:
        return f"{us / 1e6:.2f}s"
    if us >= 1_000:
        return f"{us / 1e3:.2f}ms"
    return f"{us:.0f}µs"


def format_stage_table(rows: List[dict]) -> str:
    lines = [
        f"{'stage':<16} {'count':>8} {'mean':>10} {'p50':>10} "
        f"{'p90':>10} {'p99':>10} {'max':>10} {'!ok':>6}"
    ]
    for r in rows:
        lines.append(
            f"{r['stage']:<16} {r['count']:>8} {_fmt_us(r['mean_us']):>10} "
            f"{_fmt_us(r['p50_us']):>10} {_fmt_us(r['p90_us']):>10} "
            f"{_fmt_us(r['p99_us']):>10} {_fmt_us(r['max_us']):>10} "
            f"{r['not_ok']:>6}"
        )
    return "\n".join(lines)


def format_critical_path(rows: List[dict], total_root_us: float) -> str:
    lines = [f"critical path over {_fmt_us(total_root_us)} of root latency:"]
    for r in rows:
        bar = "#" * max(1, int(r["share"] * 40))
        lines.append(
            f"  {r['stage']:<16} {_fmt_us(r['total_us']):>10} "
            f"{r['share'] * 100:5.1f}%  {bar}"
        )
    return "\n".join(lines)


def format_waterfall(records: List[dict], width: int = 56) -> str:
    """Indented time-aligned bars for one trace."""
    done = [r for r in records if r.get("end_ns") is not None]
    if not done:
        return "(no finished spans in trace)"
    root = next((r for r in done if r["parent"] is None), None)
    t0 = min(r["start_ns"] for r in done)
    t1 = max(r["end_ns"] for r in done)
    span_ns = max(1, t1 - t0)
    by_parent: Dict[Optional[int], List[dict]] = {}
    for r in done:
        by_parent.setdefault(r["parent"], []).append(r)
    for kids in by_parent.values():
        kids.sort(key=lambda r: r["start_ns"])
    trace_id = done[0]["trace"]
    header = f"trace {trace_id}"
    if root is not None:
        header += (
            f" · {root['name']} · {_fmt_us((root['end_ns'] - root['start_ns']) / 1000.0)}"
            f" · status={root['status']}"
        )
    lines = [header]

    def emit(rec: dict, depth: int) -> None:
        lo = int((rec["start_ns"] - t0) / span_ns * width)
        hi = max(lo + 1, int((rec["end_ns"] - t0) / span_ns * width))
        bar = " " * lo + "=" * (hi - lo) + " " * (width - hi)
        label = "  " * depth + rec["name"]
        status = "" if rec["status"] == "ok" else f" [{rec['status']}]"
        tags = rec.get("tags") or {}
        tag_str = (
            " {" + ",".join(f"{k}={v}" for k, v in sorted(tags.items())) + "}"
            if tags
            else ""
        )
        lines.append(
            f"{label:<26} |{bar}| "
            f"{_fmt_us((rec['end_ns'] - rec['start_ns']) / 1000.0):>9}"
            f"{status}{tag_str}"
        )
        for child in by_parent.get(rec["span"], ()):
            emit(child, depth + 1)

    roots = by_parent.get(None, [])
    if roots:
        for r in roots:
            emit(r, 0)
    else:  # orphaned fragments: render flat
        for r in sorted(done, key=lambda r: r["start_ns"]):
            emit(r, 0)
    return "\n".join(lines)


def pick_trace(traces: Dict[int, List[dict]]) -> Optional[int]:
    """Default display trace: the slowest finished root."""
    slowest, slowest_ns = None, -1
    for trace_id, records in traces.items():
        for rec in records:
            if rec["parent"] is None and rec.get("end_ns") is not None:
                dur = rec["end_ns"] - rec["start_ns"]
                if dur > slowest_ns:
                    slowest, slowest_ns = trace_id, dur
    return slowest


def format_trace_report(
    path: str,
    trace_id: Optional[int] = None,
    waterfalls: int = 1,
) -> str:
    """Everything `repro trace-report` prints, as one string."""
    spans = read_spans(path)
    if not spans:
        return f"{path}: no spans recorded"
    traces = build_traces(spans)
    parts = [
        f"{path}: {len(spans)} spans in {len(traces)} traces",
        "",
        format_stage_table(stage_table(spans)),
        "",
    ]
    cp_rows, total_root_us = critical_path_totals(traces)
    parts.append(format_critical_path(cp_rows, total_root_us))
    chosen: List[int] = []
    if trace_id is not None:
        # The CLI hands the id through as a string; span records carry ints.
        try:
            trace_id = int(trace_id)
        except (TypeError, ValueError):
            raise KeyError(f"trace id must be an integer, got {trace_id!r}")
        if trace_id not in traces:
            raise KeyError(f"trace {trace_id} not present in {path}")
        chosen = [trace_id]
    else:
        ranked = sorted(
            (
                (rec["end_ns"] - rec["start_ns"], tid)
                for tid, records in traces.items()
                for rec in records
                if rec["parent"] is None and rec.get("end_ns") is not None
            ),
            reverse=True,
        )
        chosen = [tid for _, tid in ranked[:waterfalls]]
    for tid in chosen:
        parts.append("")
        parts.append(format_waterfall(traces[tid]))
    return "\n".join(parts)
