"""Metrics primitives: counters, gauges, log2 histograms, and a registry.

The registry is the shared vocabulary of the observability layer: every
subsystem that wants a number on a dashboard (the engine, the TDC monitor,
the bench harness) creates instruments through a :class:`MetricsRegistry`
and never touches serialisation itself — ``snapshot()`` renders the whole
registry as one plain dict, which the sinks (JSONL, ring buffer, snapshot
emitter) and the CLI all consume.

Instruments are deliberately minimal:

* :class:`Counter` — monotonically increasing count (events, bytes);
* :class:`Gauge` — last-written value (ω_m, λ, resident bytes);
* :class:`Histogram` — fixed log2 bucketing: bucket ``i`` holds values in
  ``[2^(i-1), 2^i)`` (bucket 0 is ``[0, 1)``), so object sizes spanning six
  orders of magnitude need ~40 integer slots, one ``bit_length`` call per
  observation, and no dynamic rebinning.  Quantiles are bucket-upper-bound
  estimates — exact enough for monitoring, never for billing.

Labels are supported registry-side: ``registry.counter("events",
event="evict")`` get-or-creates one instrument per (name, labels) pair.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Number of log2 buckets: covers [0, 2^63) — any int the simulator produces.
N_BUCKETS = 64


class Counter:
    """Monotonically increasing counter."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter increment must be >= 0, got {n}")
        self.value += n

    def as_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-written value."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def as_dict(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed log2-bucket histogram.

    ``observe(v)`` files ``v`` under bucket ``int(v).bit_length()`` (clamped
    to the fixed bucket count), i.e. bucket ``i`` covers ``[2^(i-1), 2^i)``
    and bucket 0 covers ``[0, 1)``.  Negative values clamp to bucket 0.
    Count / sum / min / max are exact; quantiles come from the bucket upper
    bounds.
    """

    __slots__ = ("name", "labels", "buckets", "count", "sum", "min", "max")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self.buckets = [0] * N_BUCKETS
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        idx = int(value).bit_length() if value > 0 else 0
        if idx >= N_BUCKETS:
            idx = N_BUCKETS - 1
        self.buckets[idx] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-upper-bound estimate of the ``q``-quantile (0 < q <= 1)."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for i, c in enumerate(self.buckets):
            seen += c
            if seen >= target:
                upper = float(1 << i) if i else 1.0
                # Clamp the estimate to the observed range.
                return min(upper, self.max if self.max is not None else upper)
        return self.max if self.max is not None else 0.0  # pragma: no cover

    def nonzero_buckets(self) -> Iterator[Tuple[int, int]]:
        """Yield (bucket_index, count) for populated buckets only."""
        for i, c in enumerate(self.buckets):
            if c:
                yield i, c

    def as_dict(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.5),
            "p99": self.quantile(0.99),
            "buckets": {str(i): c for i, c in self.nonzero_buckets()},
        }


def _label_key(labels: dict) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Get-or-create instrument store with one-call serialisation."""

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, str, Tuple[Tuple[str, str], ...]], object] = {}

    def _get(self, kind: str, factory, name: str, labels: dict):
        key = (kind, name, _label_key(labels))
        inst = self._instruments.get(key)
        if inst is None:
            inst = factory(name, key[2])
            self._instruments[key] = inst
        return inst

    def counter(self, name: str, **labels) -> Counter:
        return self._get("counter", Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get("gauge", Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get("histogram", Histogram, name, labels)

    def __len__(self) -> int:
        return len(self._instruments)

    def snapshot(self) -> dict:
        """Render every instrument as ``{name: {label_str: payload}}``.

        The label string is ``k=v,k=v`` (sorted) or ``""`` for unlabelled
        instruments; the payload is the instrument's ``as_dict()``.
        """
        out: dict = {}
        for (_, name, labels), inst in sorted(
            self._instruments.items(), key=lambda kv: (kv[0][1], kv[0][2])
        ):
            label_str = ",".join(f"{k}={v}" for k, v in labels)
            out.setdefault(name, {})[label_str] = inst.as_dict()  # type: ignore[attr-defined]
        return out

    def as_dict(self) -> dict:
        return self.snapshot()
