"""Request-scoped span tracing: per-stage latency attribution for serving.

One end-to-end latency histogram cannot say *where* a p99 went — shard
queueing, the origin fetch, a retry storm, or a failover hop.  Spans can: a
:class:`Tracer` hands the load generator a root :class:`Span` per request,
the serve/cluster layers attach children for every stage they own
(``queue_wait``, ``policy``, ``flight_wait``, ``origin_fetch`` with
per-attempt ``origin_attempt``/``retry_backoff`` children, ``node_serve``,
``failover_hop``, ``replica_fill``, ``policy_swap``, ``warm_handoff``), and
when the root ends the finished trace is folded into per-stage histograms,
critical-path attribution, and SLO error budgets.

Design constraints, in order:

* **Explicit propagation, no global state.**  A span travels as an ordinary
  function argument (``service.get(req, span)``); code that receives
  ``None`` does no tracing work beyond one ``is not None`` branch.  There is
  no context-var, thread-local, or ambient "current span" — the asyncio
  serve path interleaves hundreds of requests on one loop, where ambient
  context is exactly what lies.
* **Cheap spans.** ``__slots__``, two ``perf_counter_ns()`` calls, no
  dict allocation until tags are attached.
* **Sampling that never loses the interesting traces.**  Head-based
  probabilistic sampling (seeded, deterministic per trace index) decides
  what is *written*; tail-keep overrides it for traces that error, shed,
  fail over, or exceed a latency threshold.  Aggregation (histograms, SLO
  accounting) always sees **every** finished trace regardless of sampling —
  sampling only gates the span stream on disk.

Span records on disk carry ``kind: "span"`` rather than an ``event`` field:
the span stream is a different artifact from the probe event stream (see
``docs/obs_schema.md``) and must not alias its namespace.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.sinks import SPAN_SCHEMA, SpanSink

__all__ = [
    "SPAN_SCHEMA",
    "Span",
    "SpanSink",
    "TraceConfig",
    "Tracer",
    "SLO",
    "SLOTracker",
    "critical_path",
]


class Span:
    """One timed stage of one request; a node in a trace tree.

    Created via :meth:`Tracer.start_trace` (roots) or :meth:`Span.child`;
    closed exactly once with :meth:`end`.  Timestamps are
    ``time.perf_counter_ns()`` — monotonic, comparable only within a
    process, which is all a single-process simulation needs.
    """

    __slots__ = (
        "_tracer",
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "t_start_ns",
        "t_end_ns",
        "tags",
        "status",
    )

    def __init__(
        self,
        tracer: "Tracer",
        trace_id: int,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        tags: Optional[dict] = None,
    ):
        self._tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.t_start_ns = time.perf_counter_ns()
        self.t_end_ns: Optional[int] = None
        self.tags = tags
        self.status = "ok"

    def child(self, name: str, **tags) -> "Span":
        """Open a child span; the caller owns ending it."""
        return self._tracer._start_span(
            self.trace_id, self.span_id, name, tags or None
        )

    def annotate(self, **tags) -> None:
        """Attach tags without closing the span."""
        if self.tags is None:
            self.tags = tags
        else:
            self.tags.update(tags)

    def end(self, status: str = "ok", **tags) -> None:
        """Close the span (idempotent; the first ``end`` wins)."""
        if self.t_end_ns is not None:
            return
        self.t_end_ns = time.perf_counter_ns()
        self.status = status
        if tags:
            self.annotate(**tags)
        self._tracer._end_span(self)

    @property
    def duration_ns(self) -> int:
        end = self.t_end_ns if self.t_end_ns is not None else time.perf_counter_ns()
        return end - self.t_start_ns

    def as_record(self) -> dict:
        """Render as one span-stream JSONL record."""
        rec = {
            "kind": "span",
            "trace": self.trace_id,
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start_ns": self.t_start_ns,
            "end_ns": self.t_end_ns,
            "dur_us": round((self.t_end_ns - self.t_start_ns) / 1000.0, 3)
            if self.t_end_ns is not None
            else None,
            "status": self.status,
        }
        if self.tags:
            rec["tags"] = self.tags
        return rec


@dataclass(frozen=True)
class TraceConfig:
    """Sampling and retention policy for a :class:`Tracer`.

    ``sample`` is the head-sampling probability in [0, 1]: decided once per
    trace at ``start_trace`` with a seeded RNG, so runs are reproducible.
    ``tail_keep`` additionally retains any trace that ends abnormally (a
    span with status other than ``"ok"``), touches a failover
    (``failover_hop`` span), or whose root exceeds ``tail_latency_us``.
    """

    sample: float = 1.0
    tail_latency_us: Optional[float] = None
    tail_keep: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.sample <= 1.0:
            raise ValueError(f"sample must be in [0, 1], got {self.sample}")
        if self.tail_latency_us is not None and self.tail_latency_us <= 0:
            raise ValueError(
                f"tail_latency_us must be > 0, got {self.tail_latency_us}"
            )


class _TraceBuf:
    """Per-trace accumulation: finished records + still-open spans."""

    __slots__ = ("records", "open", "sampled", "root_done")

    def __init__(self, sampled: bool):
        self.records: List[dict] = []
        self.open: Dict[int, Span] = {}
        self.sampled = sampled
        self.root_done = False


class Tracer:
    """Factory and collector for spans; owns sampling and aggregation.

    Spans buffer in memory per trace until the root ends and no children
    remain open; the finished trace is then (a) folded into per-stage
    ``span_duration_us{stage=}`` / ``stage_critical_us{stage=}`` histograms
    on ``registry`` and the optional :class:`SLOTracker` — always — and
    (b) written to the sinks iff head-sampled or tail-kept.

    ``close()`` force-ends anything still open with status ``"unclosed"``
    and flushes those traces as anomalous (tail-kept), so a replay that
    raises mid-trace still leaves a complete, readable span stream.
    """

    def __init__(
        self,
        sinks: Sequence = (),
        config: Optional[TraceConfig] = None,
        registry: Optional[MetricsRegistry] = None,
        slo: Optional["SLOTracker"] = None,
    ):
        self.sinks = list(sinks)
        self.config = config if config is not None else TraceConfig()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.slo = slo
        self._rng = random.Random(self.config.seed)
        self._next_trace = 0
        self._next_span = 0
        self._bufs: Dict[int, _TraceBuf] = {}
        # Exact per-stage aggregates (count, total_ns) — histogram p50/p99
        # are bucket estimates, the bench doc wants exact means too.
        self._stage_ns: Dict[str, List[int]] = {}
        self._crit_ns: Dict[str, List[int]] = {}
        # Registry handles are stable get-or-create objects; cache them per
        # stage so the per-span hot path skips the label-key lookup.
        self._dur_hist: Dict[str, Histogram] = {}
        self._crit_hist: Dict[str, Histogram] = {}
        self.traces_started = 0
        self.traces_finished = 0
        self.traces_kept = 0
        self.traces_dropped = 0
        self.spans_written = 0
        self.orphan_spans = 0
        self.unclosed_spans = 0

    # -- span lifecycle ----------------------------------------------------

    def start_trace(self, name: str = "request", **tags) -> Span:
        """Open a new trace and return its root span."""
        trace_id = self._next_trace
        self._next_trace += 1
        self.traces_started += 1
        sampled = (
            self.config.sample >= 1.0
            or self._rng.random() < self.config.sample
        )
        self._bufs[trace_id] = _TraceBuf(sampled)
        return self._start_span(trace_id, None, name, tags or None)

    def _start_span(
        self,
        trace_id: int,
        parent_id: Optional[int],
        name: str,
        tags: Optional[dict],
    ) -> Span:
        span_id = self._next_span
        self._next_span += 1
        span = Span(self, trace_id, span_id, parent_id, name, tags)
        buf = self._bufs.get(trace_id)
        if buf is not None:
            buf.open[span_id] = span
        return span

    def _end_span(self, span: Span) -> None:
        buf = self._bufs.get(span.trace_id)
        if buf is None:
            # Ended after its trace was finalised — a topology bug upstream
            # (e.g. a child outliving the code that ended the root).
            self.orphan_spans += 1
            return
        buf.open.pop(span.span_id, None)
        buf.records.append(span.as_record())
        if span.parent_id is None:
            buf.root_done = True
        if buf.root_done and not buf.open:
            del self._bufs[span.trace_id]
            self._finish(buf)

    # -- trace finalisation ------------------------------------------------

    def _finish(self, buf: _TraceBuf, forced: bool = False) -> None:
        self.traces_finished += 1
        records = buf.records
        # Aggregation sees every finished trace, sampled or not.
        reg = self.registry
        abnormal = forced
        root = None
        for rec in records:
            name = rec["name"]
            dur_ns = rec["end_ns"] - rec["start_ns"]
            hist = self._dur_hist.get(name)
            if hist is None:
                hist = self._dur_hist[name] = reg.histogram(
                    "span_duration_us", stage=name
                )
            hist.observe(dur_ns // 1000)
            agg = self._stage_ns.get(name)
            if agg is None:
                agg = self._stage_ns[name] = [0, 0]
            agg[0] += 1
            agg[1] += dur_ns
            if rec["status"] != "ok":
                abnormal = True
            if name == "failover_hop":
                abnormal = True
            if rec["parent"] is None:
                root = rec
        for stage, seg_ns in critical_path(records):
            hist = self._crit_hist.get(stage)
            if hist is None:
                hist = self._crit_hist[stage] = reg.histogram(
                    "stage_critical_us", stage=stage
                )
            hist.observe(seg_ns // 1000)
            agg = self._crit_ns.get(stage)
            if agg is None:
                agg = self._crit_ns[stage] = [0, 0]
            agg[0] += 1
            agg[1] += seg_ns
        if self.slo is not None:
            for rec in records:
                self.slo.observe(
                    rec["name"],
                    (rec["end_ns"] - rec["start_ns"]) / 1000.0,
                    ok=rec["status"] == "ok",
                )
        # Retention: head sample, overridden by tail-keep.
        keep = buf.sampled
        if not keep and self.config.tail_keep:
            if abnormal:
                keep = True
            elif (
                self.config.tail_latency_us is not None
                and root is not None
                and root["end_ns"] - root["start_ns"]
                >= self.config.tail_latency_us * 1000.0
            ):
                keep = True
        if keep and self.sinks:
            for rec in records:
                for sink in self.sinks:
                    sink.write(rec)
            self.spans_written += len(records)
        if keep:
            self.traces_kept += 1
        else:
            self.traces_dropped += 1

    def close(self) -> None:
        """Force-end open spans, flush buffered traces, close owned sinks."""
        for trace_id in list(self._bufs):
            buf = self._bufs.pop(trace_id)
            for span in list(buf.open.values()):
                span.t_end_ns = time.perf_counter_ns()
                span.status = "unclosed"
                buf.records.append(span.as_record())
                self.unclosed_spans += 1
            buf.open.clear()
            self._finish(buf, forced=True)
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()

    # -- reporting ---------------------------------------------------------

    def stats(self) -> dict:
        return {
            "traces_started": self.traces_started,
            "traces_finished": self.traces_finished,
            "traces_kept": self.traces_kept,
            "traces_dropped": self.traces_dropped,
            "spans_written": self.spans_written,
            "orphan_spans": self.orphan_spans,
            "unclosed_spans": self.unclosed_spans,
            "open_traces": len(self._bufs),
            "sample": self.config.sample,
            "tail_latency_us": self.config.tail_latency_us,
            "tail_keep": self.config.tail_keep,
        }

    def stage_breakdown(self) -> dict:
        """Per-stage durations + critical-path attribution, all traces.

        ``{stage: {count, total_us, mean_us, p50_us, p99_us,
        critical_count, critical_total_us}}`` — ``critical_total_us`` is the
        wall time this stage contributed to root latency after subtracting
        child stages (see :func:`critical_path`), so the critical columns
        sum to total root latency across traces.
        """
        out: dict = {}
        for stage, (count, total_ns) in sorted(self._stage_ns.items()):
            hist: Histogram = self.registry.histogram(
                "span_duration_us", stage=stage
            )
            crit = self._crit_ns.get(stage, (0, 0))
            out[stage] = {
                "count": count,
                "total_us": round(total_ns / 1000.0, 1),
                "mean_us": round(total_ns / count / 1000.0, 2) if count else 0.0,
                "p50_us": hist.quantile(0.5),
                "p99_us": hist.quantile(0.99),
                "critical_count": crit[0],
                "critical_total_us": round(crit[1] / 1000.0, 1),
            }
        return out


def critical_path(
    records: Iterable[dict],
) -> List[Tuple[str, int]]:
    """Attribute a finished trace's root duration to stages, exactly.

    Returns ``[(stage, ns)]`` segments: for every span, the parts of its
    interval not covered by a child (its *self time*) are credited to its
    stage, recursing down the tree — a sweep over children sorted by start,
    clipped to the parent.  By construction the segment durations sum to
    the root span's duration, so per-stage critical totals reconcile with
    the end-to-end latency histogram.  Overlapping siblings (concurrent
    children) are clipped against each other in start order; time covered
    by two children is credited to the first.
    """
    by_parent: Dict[int, List[dict]] = {}
    root = None
    for rec in records:
        if rec.get("kind", "span") != "span" or rec.get("end_ns") is None:
            continue
        parent = rec["parent"]
        if parent is None:
            root = rec
        else:
            by_parent.setdefault(parent, []).append(rec)
    if root is None:
        return []
    segments: List[Tuple[str, int]] = []

    def walk(rec: dict, lo: int, hi: int) -> None:
        children = sorted(
            by_parent.get(rec["span"], ()), key=lambda c: c["start_ns"]
        )
        cursor = lo
        for child in children:
            c_lo = max(child["start_ns"], cursor)
            c_hi = min(child["end_ns"], hi)
            if c_hi <= cursor:
                continue
            if c_lo > cursor:
                segments.append((rec["name"], c_lo - cursor))
            walk(child, c_lo, c_hi)
            cursor = c_hi
        if hi > cursor:
            segments.append((rec["name"], hi - cursor))

    walk(root, root["start_ns"], root["end_ns"])
    return segments


@dataclass(frozen=True)
class SLO:
    """One latency objective: ``target`` fraction of ``stage`` spans must
    finish OK within ``latency_us``."""

    stage: str
    latency_us: float
    target: float = 0.99

    def __post_init__(self) -> None:
        if self.latency_us <= 0:
            raise ValueError(f"latency_us must be > 0, got {self.latency_us}")
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"target must be in (0, 1), got {self.target}")


class SLOTracker:
    """Error-budget accounting over span stages.

    A span *breaches* its stage's SLO if it ended with a non-``ok`` status
    or ran longer than the objective.  The error budget is the tolerated
    breach fraction ``1 - target``; the burn rate is
    ``breach_fraction / (1 - target)`` — 1.0 means the budget is being
    consumed exactly as provisioned, above 1.0 it will be exhausted.
    Counters and burn-rate gauges land in ``registry`` so bench docs and
    snapshots carry them for free.
    """

    def __init__(
        self,
        objectives: Sequence[SLO],
        registry: Optional[MetricsRegistry] = None,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self._slos: Dict[str, SLO] = {}
        for slo in objectives:
            if slo.stage in self._slos:
                raise ValueError(f"duplicate SLO for stage {slo.stage!r}")
            self._slos[slo.stage] = slo
        self._counts: Dict[str, List[int]] = {
            stage: [0, 0] for stage in self._slos
        }
        # Stages are fixed at construction: resolve the registry handles
        # once so per-span observation is a dict hit, not a label lookup.
        self._handles = {
            stage: (
                self.registry.counter("slo_total", stage=stage),
                self.registry.counter("slo_breaches", stage=stage),
                self.registry.gauge("slo_burn_rate", stage=stage),
            )
            for stage in self._slos
        }

    def observe(self, stage: str, dur_us: float, ok: bool = True) -> None:
        slo = self._slos.get(stage)
        if slo is None:
            return
        counts = self._counts[stage]
        counts[0] += 1
        breached = (not ok) or dur_us > slo.latency_us
        total_c, breach_c, burn_g = self._handles[stage]
        total_c.inc()
        if breached:
            counts[1] += 1
            breach_c.inc()
        burn_g.set(self._burn_rate(stage))

    def _burn_rate(self, stage: str) -> float:
        slo = self._slos[stage]
        total, breaches = self._counts[stage]
        if total == 0:
            return 0.0
        return (breaches / total) / (1.0 - slo.target)

    def summary(self) -> dict:
        """``{stage: {objective_us, target, total, breaches, breach_ratio,
        burn_rate, budget_remaining}}`` — ``budget_remaining`` < 0 means the
        stage has spent more than its error budget."""
        out: dict = {}
        for stage, slo in sorted(self._slos.items()):
            total, breaches = self._counts[stage]
            ratio = breaches / total if total else 0.0
            burn = self._burn_rate(stage)
            out[stage] = {
                "objective_us": slo.latency_us,
                "target": slo.target,
                "total": total,
                "breaches": breaches,
                "breach_ratio": round(ratio, 6),
                "burn_rate": round(burn, 4),
                "budget_remaining": round(1.0 - burn, 4),
            }
        return out
