"""Probe sinks: ring buffer, JSONL writer, registry recorder, snapshots.

A sink is anything with ``write(record: dict)``; :class:`Probe` calls the
sinks in registration order, so order encodes dataflow —
:class:`RegistryRecorder` (which folds events into the metrics registry)
must come before :class:`SnapshotEmitter` (which reads the registry).

The JSONL stream is schema-versioned: the first line of every file is a
``{"event": "schema", "version": N}`` record, and readers
(:mod:`repro.obs.report`) refuse future majors rather than mis-parse.
Paths ending in ``.gz`` are gzip-compressed transparently.
"""

from __future__ import annotations

import gzip
import json
from collections import deque
from typing import List, Optional

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "EVENT_SCHEMA",
    "SPAN_SCHEMA",
    "RingBufferSink",
    "JSONLSink",
    "SpanSink",
    "RegistryRecorder",
    "SnapshotEmitter",
]

#: Version of the JSONL event schema; bump on breaking field changes.
EVENT_SCHEMA = 1

#: Version of the JSONL span stream written by :class:`SpanSink`.
SPAN_SCHEMA = 1


class RingBufferSink:
    """Keep the last ``maxlen`` event records in memory (flight recorder)."""

    def __init__(self, maxlen: int = 4096):
        if maxlen < 1:
            raise ValueError(f"maxlen must be >= 1, got {maxlen}")
        self.buffer: deque = deque(maxlen=maxlen)
        self.written = 0

    def write(self, record: dict) -> None:
        self.buffer.append(record)
        self.written += 1

    def as_list(self) -> List[dict]:
        return list(self.buffer)


class JSONLSink:
    """Append-only JSONL event writer; ``.gz`` suffix → gzip stream.

    ``header`` overrides the schema line written as the first record —
    subclasses carrying a different stream kind (spans) pass their own.
    """

    def __init__(self, path: str, header: Optional[dict] = None):
        self.path = str(path)
        if self.path.endswith(".gz"):
            self._fh = gzip.open(self.path, "wt", encoding="utf-8")
        else:
            self._fh = open(self.path, "w", encoding="utf-8")
        self.written = 0
        if header is None:
            header = {"event": "schema", "version": EVENT_SCHEMA}
        self._fh.write(json.dumps(header, sort_keys=True) + "\n")

    def write(self, record: dict) -> None:
        self._fh.write(json.dumps(record, sort_keys=True, default=str) + "\n")
        self.written += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None  # type: ignore[assignment]


class SpanSink(JSONLSink):
    """Schema-versioned JSONL span-stream writer (``.gz`` aware).

    The header line distinguishes the span stream from the event stream:
    ``{"event": "schema", "stream": "spans", "version": SPAN_SCHEMA}``.
    Readers (:mod:`repro.obs.tracereport`) refuse other streams/versions.
    """

    def __init__(self, path: str):
        super().__init__(
            path,
            header={"event": "schema", "stream": "spans", "version": SPAN_SCHEMA},
        )


class RegistryRecorder:
    """Fold the event stream into a :class:`MetricsRegistry`.

    Maintains, besides an ``events`` counter per event type:

    * gauges ``w_mru`` / ``w_lru`` / ``lambda`` — the learner trajectory's
      latest points;
    * counters ``ghost_hits{list=m|l}``, ``lambda_restarts``,
      ``episodes{to=...}``;
    * log2 histograms ``admit_bytes`` / ``evict_bytes`` and
      ``evict_tenure_hits`` (hit token at eviction — the ZRO signal).
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()

    def write(self, record: dict) -> None:
        reg = self.registry
        event = record["event"]
        reg.counter("events", event=event).inc()
        if event == "weight_update":
            reg.gauge("w_mru").set(record["w_mru"])
            reg.gauge("w_lru").set(record["w_lru"])
        elif event == "lambda_update":
            reg.gauge("lambda").set(record["value"])
        elif event == "lambda_restart":
            reg.counter("lambda_restarts").inc()
            reg.gauge("lambda").set(record["value"])
        elif event == "ghost_hit":
            reg.counter("ghost_hits", list=record["list"]).inc()
        elif event == "episode_transition":
            reg.counter("episodes", to=record["to"]).inc()
        elif event == "admit":
            reg.histogram("admit_bytes").observe(record["size"])
        elif event == "evict":
            reg.histogram("evict_bytes").observe(record["size"])
            reg.histogram("evict_tenure_hits").observe(record["hits"])


class SnapshotEmitter:
    """Periodic registry snapshots keyed to the policy's request clock.

    Watches the ``t`` field of passing events; whenever ``t`` crosses the
    next ``every``-requests boundary the current registry snapshot is
    recorded (and forwarded to ``forward`` — typically the JSONL sink — as
    a ``snapshot`` event).  Multiple crossed boundaries collapse into one
    snapshot: with event gaps longer than ``every`` there is nothing new to
    say in between.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        every: int,
        forward=None,
    ):
        if every < 1:
            raise ValueError(f"snapshot interval must be >= 1, got {every}")
        self.registry = registry
        self.every = every
        self.forward = forward
        self.snapshots: List[dict] = []
        self._next = every

    def write(self, record: dict) -> None:
        t = record.get("t")
        if t is None or t < self._next:
            return
        snap = {"event": "snapshot", "t": t, "registry": self.registry.snapshot()}
        self.snapshots.append(snap)
        if self.forward is not None:
            self.forward.write(snap)
        while self._next <= t:
            self._next += self.every
