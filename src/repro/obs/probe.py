"""The probe: named event hook points with a zero-cost disabled path.

Instrumented components (``SCIPCache``, ``PositionBandit``,
``LearningRateController``, ``QueueCache``) carry a **class-level**
``_probe = None`` attribute — the module-level no-op.  Attaching a probe
shadows it with an instance attribute; every hook point in the hot code is
therefore exactly one ``if self._probe is not None`` branch when tracing is
off, and the bulk-replay fast loop opts out entirely
(:meth:`repro.cache.base.QueueCache._fast_replay_eligible` refuses to
engage while a probe is attached, so the bare loop is never even branch-
taxed).

Event vocabulary (see ``docs/obs_schema.md`` for the field tables):

==================== ==========================================================
event                emitted by
==================== ==========================================================
``admit``            ``QueueCache._miss`` — object inserted (MRU or LRU end)
``evict``            ``QueueCache.evict_node`` — victim left the cache
``ghost_hit``        ``SCIPCache._miss`` — re-request found in H_m / H_l
``episode_transition`` SCIP per-object machine: DENIED / SUSPECT / DEMOTED /
                     RELEASED / ESCAPED
``weight_update``    ``PositionBandit.penalize_*`` — ω pair after a penalty
``lambda_update``    ``LearningRateController.update`` — λ after UPDATELR
``lambda_restart``   the Algorithm-2 random restart inside UPDATELR
``snapshot``         :class:`repro.obs.sinks.SnapshotEmitter` — registry dump
``fetch``            ``serve.CacheShard`` — leader origin fetch started
``fetch_retry``      serve fetch attempt failed/timed out; backing off
``fetch_error``      serve fetch failed terminally (after all retries)
``shed``             serve shard queue full — request rejected unserved
``shadow_hit``       ``orchestrate.ShadowRack`` — sampled hit in one shadow
``policy_switch``    ``orchestrate.Orchestrator`` promotion / ``serve.
                     CacheShard`` live swap executed on the owner task
``node_down``        ``cluster.ClusterRouter`` — a node was killed (fault
                     plan or operator action)
``node_up``          ``cluster.ClusterRouter`` — a node (re)started cold
``failover``         ``cluster.ClusterRouter`` — a request skipped one or
                     more dead owners (served by a replica or the origin)
``rebalance``        ``cluster.Rebalancer`` — ring membership changed
                     (node added/removed/replaced, optional warm handoff)
``net_tier_hit``     ``net.NetEngine`` — lookup walk found the object at a
                     cache node (serving point for this request)
``net_origin_fetch`` ``net.NetEngine`` — no cache on the path had the
                     object; served from origin
``net_placement``    ``net.NetEngine`` — on-path placement decided which
                     downstream caches admit a copy
``net_node_down``    ``net.NetEngine`` — a PoP was killed by the fault
                     plan (cache state discarded)
``net_node_up``      ``net.NetEngine`` — a killed PoP restarted cold
``tenant_realloc``   ``tenancy.TenancyController`` — the capacity split
                     across tenants was re-solved and applied
``quota_evict``      ``tenancy.TenantPartitionedCache`` — a quota shrink
                     evicted residents of the over-quota tenant
``slo_breach``       ``tenancy.TenancyController`` — a tenant's SLO burn
                     rate crossed the re-allocation trigger
==================== ==========================================================

Every record carries ``seq`` (emission order) and, when the probe has a
clock source, ``t`` (the owning policy's logical clock).  Sinks receive the
record dict in registration order — registry-updating sinks should precede
snapshotting ones.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

__all__ = ["Probe", "PROBE_EVENTS"]

#: The full hook-point vocabulary; an emit with an unknown event name is a
#: programming error and raises.
PROBE_EVENTS = frozenset(
    {
        "admit",
        "evict",
        "ghost_hit",
        "episode_transition",
        "weight_update",
        "lambda_update",
        "lambda_restart",
        "snapshot",
        "fetch",
        "fetch_retry",
        "fetch_error",
        "shed",
        "shadow_hit",
        "policy_switch",
        "node_down",
        "node_up",
        "failover",
        "rebalance",
        "net_tier_hit",
        "net_origin_fetch",
        "net_placement",
        "net_node_down",
        "net_node_up",
        "tenant_realloc",
        "quota_evict",
        "slo_breach",
    }
)


class Probe:
    """Fan-out point for instrumentation events.

    Parameters
    ----------
    sinks:
        Objects with a ``write(record: dict)`` method, called in order.
    events:
        Optional event-name filter; emissions outside the set are dropped
        before any record is built.
    now:
        Optional zero-arg callable supplying the logical clock; attached
        policies install their own (``lambda: self.clock``) so learner
        components without a clock still produce time-keyed records.
    """

    __slots__ = ("sinks", "events", "now", "seq")

    def __init__(
        self,
        sinks: Iterable = (),
        events: Optional[frozenset] = None,
        now: Optional[Callable[[], int]] = None,
    ):
        if events is not None:
            unknown = set(events) - PROBE_EVENTS
            if unknown:
                raise ValueError(f"unknown probe events: {sorted(unknown)}")
        self.sinks = list(sinks)
        self.events = events
        self.now = now
        self.seq = 0

    def emit(self, event: str, **fields) -> None:
        """Build one event record and hand it to every sink."""
        if event not in PROBE_EVENTS:
            raise ValueError(f"unknown probe event {event!r}")
        if self.events is not None and event not in self.events:
            return
        self.seq += 1
        rec = {"seq": self.seq, "event": event}
        if self.now is not None and "t" not in fields:
            rec["t"] = self.now()
        rec.update(fields)
        for sink in self.sinks:
            sink.write(rec)

    def close(self) -> None:
        """Close every sink that supports it (flushes JSONL writers)."""
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()
