"""``repro.api`` — the stable, versioned entry surface of the toolkit.

Everything an application or experiment script needs is re-exported here
with one explicit :data:`__all__`; deeper module paths remain importable
but are implementation layout, not contract.  ``tests/test_api_surface.py``
snapshots this surface so names cannot vanish silently.

The facade spans the five subsystems grown around the paper reproduction:

* **policies** — :func:`make_policy` / :func:`available_policies` (the
  unified registry, SCIP and SCI included) and :class:`SmartCache`, the
  dict-like application cache;
* **simulation** — :func:`simulate` over :class:`Request`/:class:`Trace`,
  plus the workload builders :func:`make_workload` (stationary Table-1
  profiles) and :func:`make_drift_trace` (nonstationary families);
* **paper-scale traces** — the binary trace format
  (:func:`write_bin` / :func:`read_bin` / :class:`BinTraceReader` /
  :class:`BinTraceWriter`, errors as :class:`TraceFormatError`), the
  constant-memory generators (:func:`stream_to_bin`,
  :func:`workload_to_bin`), and the array-backed replay engine
  (:func:`simulate_batch`, :func:`batch_replay`,
  :func:`batch_supported`, :func:`mrc_sweep`) that streams ``.bin``
  files chunk-at-a-time, bit-exact with :func:`simulate` on the
  batch-capable policies;
* **serving** — :class:`CacheService`, the concurrent asyncio cache with
  sharded single-owner policies, and its :class:`SimulatedOrigin` /
  :class:`OriginConfig` / :class:`RetryPolicy` knobs;
* **orchestration** — :class:`Orchestrator` (+ :class:`ControllerConfig`)
  for shadow-cache policy selection with live hot swaps;
* **cluster** — :class:`ClusterRouter` (+ :class:`ClusterConfig`,
  :func:`build_cluster`, :class:`FaultPlan`, :class:`Rebalancer`), the
  replicated multi-node cache front with failure injection;
* **cache networks** — :class:`Topology` (+ :func:`tree_topology` /
  :func:`fat_tree_topology` builders), the on-path placement registry
  (:func:`make_placement` / :func:`available_placements`),
  :class:`ZipfReceivers`, and :class:`NetEngine`, the multi-tier
  edge→regional→origin replay engine (``docs/net_design.md``);
* **observability** — :class:`ObsConfig`, :class:`MetricsRegistry` and
  :class:`Probe`, the shared instrumentation vocabulary; plus
  request-scoped tracing (:class:`Tracer`, :class:`TraceConfig`,
  :class:`SpanSink`) with SLO accounting (:class:`SLO`,
  :class:`SLOTracker`);
* **multi-tenancy** — :class:`TenantPartitionedCache` (per-tenant byte
  quotas inside one policy slot), :class:`TenantMRCEstimator` (SHARDS-
  sampled live miss-ratio curves), :class:`CapacityAllocator`
  (waterfilling over MRC marginal gains, gated by
  :class:`HysteresisGate`), and :class:`TenancyController`, the online
  loop that watches per-tenant SLO burn and re-splits capacity
  (``docs/tenancy_design.md``); tenant-tagged traces come from
  :func:`multi_tenant_trace` with key namespaces of :data:`TENANT_STRIDE`;
* **benchmarks** — the unified ``repro bench <target>`` surface:
  :func:`run_bench` over :func:`bench_registry`'s :class:`BenchSpec`
  rows, every artifact a schema-versioned :class:`BenchResult` envelope
  (:data:`BENCH_RESULT_SCHEMA`) with the run manifest embedded.

Quickstart::

    from repro import api

    trace = api.make_workload("CDN-T", n_requests=60_000)
    cap = int(trace.working_set_size * 0.02)
    print(api.simulate(api.make_policy("SCIP", cap), trace).miss_ratio)
"""

from __future__ import annotations

from repro.bench import (
    BENCH_RESULT_SCHEMA,
    BenchResult,
    BenchSpec,
    bench_registry,
    run_bench,
)
from repro.cache.registry import (
    available_policies,
    make_policy,
    register_policy,
)
from repro.cache.smart import SmartCache
from repro.cluster.config import ClusterConfig, build_cluster
from repro.cluster.faults import FaultPlan
from repro.cluster.rebalance import Rebalancer
from repro.cluster.router import ClusterRouter
from repro.net.engine import NetEngine, NetResult
from repro.net.placement import (
    available_placements,
    make_placement,
    register_placement,
)
from repro.net.receivers import ZipfReceivers
from repro.net.topology import Topology, fat_tree_topology, tree_topology
from repro.obs.config import ObsConfig
from repro.obs.metrics import MetricsRegistry
from repro.obs.probe import Probe
from repro.obs.sinks import SpanSink
from repro.obs.span import SLO, SLOTracker, TraceConfig, Tracer
from repro.orchestrate.controller import (
    ControllerConfig,
    HysteresisGate,
    Orchestrator,
)
from repro.serve.origin import OriginConfig, RetryPolicy, SimulatedOrigin
from repro.serve.service import CacheService
from repro.sim.batch import (
    batch_replay,
    batch_supported,
    simulate_batch,
)
from repro.sim.engine import simulate
from repro.sim.parallel import mrc_sweep
from repro.sim.request import Request, Trace
from repro.traces.binfmt import (
    BinTraceReader,
    BinTraceWriter,
    TraceFormatError,
    is_bin_trace,
    read_bin,
    write_bin,
)
from repro.tenancy import (
    CapacityAllocator,
    TenancyController,
    TenantMRCEstimator,
    TenantPartitionedCache,
)
from repro.traces.cdn import make_workload, workload_to_bin
from repro.traces.drift import TENANT_STRIDE, make_drift_trace, multi_tenant_trace
from repro.traces.streaming import StreamSpec, make_stream_spec, stream_to_bin

__all__ = [
    # policies
    "make_policy",
    "available_policies",
    "register_policy",
    "SmartCache",
    # simulation
    "simulate",
    "Request",
    "Trace",
    "make_workload",
    "make_drift_trace",
    # paper-scale traces: binary format + streaming generators
    "write_bin",
    "read_bin",
    "is_bin_trace",
    "BinTraceReader",
    "BinTraceWriter",
    "TraceFormatError",
    "workload_to_bin",
    "stream_to_bin",
    "make_stream_spec",
    "StreamSpec",
    # paper-scale traces: array-backed batch replay
    "simulate_batch",
    "batch_replay",
    "batch_supported",
    "mrc_sweep",
    # serving
    "CacheService",
    "SimulatedOrigin",
    "OriginConfig",
    "RetryPolicy",
    # orchestration
    "Orchestrator",
    "ControllerConfig",
    # cluster
    "ClusterRouter",
    "ClusterConfig",
    "build_cluster",
    "FaultPlan",
    "Rebalancer",
    # cache networks
    "Topology",
    "tree_topology",
    "fat_tree_topology",
    "NetEngine",
    "NetResult",
    "ZipfReceivers",
    "make_placement",
    "available_placements",
    "register_placement",
    # observability
    "ObsConfig",
    "MetricsRegistry",
    "Probe",
    "Tracer",
    "TraceConfig",
    "SpanSink",
    "SLO",
    "SLOTracker",
    # multi-tenancy
    "TenantPartitionedCache",
    "TenantMRCEstimator",
    "CapacityAllocator",
    "TenancyController",
    "HysteresisGate",
    "multi_tenant_trace",
    "TENANT_STRIDE",
    # unified benchmarks
    "run_bench",
    "bench_registry",
    "BenchSpec",
    "BenchResult",
    "BENCH_RESULT_SCHEMA",
]
