"""``repro.api`` — the stable, versioned entry surface of the toolkit.

Everything an application or experiment script needs is re-exported here
with one explicit :data:`__all__`; deeper module paths remain importable
but are implementation layout, not contract.  ``tests/test_api_surface.py``
snapshots this surface so names cannot vanish silently.

The facade spans the five subsystems grown around the paper reproduction:

* **policies** — :func:`make_policy` / :func:`available_policies` (the
  unified registry, SCIP and SCI included) and :class:`SmartCache`, the
  dict-like application cache;
* **simulation** — :func:`simulate` over :class:`Request`/:class:`Trace`,
  plus the workload builders :func:`make_workload` (stationary Table-1
  profiles) and :func:`make_drift_trace` (nonstationary families);
* **serving** — :class:`CacheService`, the concurrent asyncio cache with
  sharded single-owner policies, and its :class:`SimulatedOrigin` /
  :class:`OriginConfig` / :class:`RetryPolicy` knobs;
* **orchestration** — :class:`Orchestrator` (+ :class:`ControllerConfig`)
  for shadow-cache policy selection with live hot swaps;
* **cluster** — :class:`ClusterRouter` (+ :class:`ClusterConfig`,
  :func:`build_cluster`, :class:`FaultPlan`, :class:`Rebalancer`), the
  replicated multi-node cache front with failure injection;
* **observability** — :class:`ObsConfig`, :class:`MetricsRegistry` and
  :class:`Probe`, the shared instrumentation vocabulary.

Quickstart::

    from repro import api

    trace = api.make_workload("CDN-T", n_requests=60_000)
    cap = int(trace.working_set_size * 0.02)
    print(api.simulate(api.make_policy("SCIP", cap), trace).miss_ratio)
"""

from __future__ import annotations

from repro.cache.registry import (
    available_policies,
    make_policy,
    register_policy,
)
from repro.cache.smart import SmartCache
from repro.cluster.config import ClusterConfig, build_cluster
from repro.cluster.faults import FaultPlan
from repro.cluster.rebalance import Rebalancer
from repro.cluster.router import ClusterRouter
from repro.obs.config import ObsConfig
from repro.obs.metrics import MetricsRegistry
from repro.obs.probe import Probe
from repro.orchestrate.controller import ControllerConfig, Orchestrator
from repro.serve.origin import OriginConfig, RetryPolicy, SimulatedOrigin
from repro.serve.service import CacheService
from repro.sim.engine import simulate
from repro.sim.request import Request, Trace
from repro.traces.cdn import make_workload
from repro.traces.drift import make_drift_trace

__all__ = [
    # policies
    "make_policy",
    "available_policies",
    "register_policy",
    "SmartCache",
    # simulation
    "simulate",
    "Request",
    "Trace",
    "make_workload",
    "make_drift_trace",
    # serving
    "CacheService",
    "SimulatedOrigin",
    "OriginConfig",
    "RetryPolicy",
    # orchestration
    "Orchestrator",
    "ControllerConfig",
    # cluster
    "ClusterRouter",
    "ClusterConfig",
    "build_cluster",
    "FaultPlan",
    "Rebalancer",
    # observability
    "ObsConfig",
    "MetricsRegistry",
    "Probe",
]
