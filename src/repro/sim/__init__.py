"""Trace-driven cache simulator (the LRB-simulator replacement)."""

from repro.sim.engine import SimResult, simulate
from repro.sim.metrics import IntervalPoint, MetricsCollector
from repro.sim.request import NO_NEXT_ACCESS, Request, Trace, annotate_next_access
from repro.sim.parallel import run_grid_parallel
from repro.sim.runner import format_table, run_grid

__all__ = [
    "Request",
    "Trace",
    "annotate_next_access",
    "NO_NEXT_ACCESS",
    "simulate",
    "SimResult",
    "MetricsCollector",
    "IntervalPoint",
    "run_grid",
    "run_grid_parallel",
    "format_table",
]
