"""Trace-driven simulation engine (the LRB-simulator replacement).

:func:`simulate` replays one trace through one policy, collecting engine-
owned metrics plus resource measurements (wall-clock TPS, simulated
metadata footprint, CPU time) for the Figure 9/11 comparisons.

Two replay paths share one result type:

* the **fast path** (default) drives the policy's bulk :meth:`~repro.cache.
  base.CachePolicy.replay` loop — no per-request callback, no per-request
  allocation; aggregate metrics come from ``policy.stats`` deltas taken at
  the warm-up boundary and at the end, then folded into a
  :class:`MetricsCollector` so downstream consumers see the same shape;
* the **rich path** keeps the original per-request ``record(request(req))``
  loop, and is selected whenever interval series or ``tracemalloc`` memory
  metering are requested (the Figure 9/11 resource benches) or forced with
  ``fast=False``.

Both paths produce bit-identical hit/miss decisions and aggregate metrics —
``tests/sim/test_golden_traces.py`` pins this.  Policies that need future
knowledge (Belady) require an annotated trace; the engine checks and
annotates on demand.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.obs.config import ObsConfig
from repro.obs.manifest import build_manifest, write_manifest
from repro.sim.metrics import MetricsCollector
from repro.sim.request import Trace, annotate_next_access

if TYPE_CHECKING:  # avoid a circular import: cache.base uses sim.request
    from repro.cache.base import CachePolicy

__all__ = ["SimResult", "simulate"]


@dataclass
class SimResult:
    """Outcome of one (policy, trace) replay."""

    policy: str
    trace: str
    cache_bytes: int
    requests: int
    miss_ratio: float
    byte_miss_ratio: float
    #: wall-clock requests/second of the replay loop.
    tps: float
    #: policy CPU seconds (process time spent inside the replay).
    cpu_seconds: float
    #: simulated metadata footprint at end of run (policy-reported), bytes.
    metadata_bytes: int
    #: peak Python allocation during the run (tracemalloc), bytes; 0 when
    #: memory tracing is off.
    peak_alloc_bytes: int
    metrics: MetricsCollector = field(repr=False, default=None)  # type: ignore[assignment]
    policy_obj: "CachePolicy" = field(repr=False, default=None)  # type: ignore[assignment]
    #: observability payload (registry snapshot + stream bookkeeping) when
    #: the run was traced via ``simulate(..., obs=ObsConfig(...))``.
    obs: Optional[dict] = field(repr=False, default=None)

    def as_dict(self) -> dict:
        out = {
            "policy": self.policy,
            "trace": self.trace,
            "cache_bytes": self.cache_bytes,
            "requests": self.requests,
            "miss_ratio": self.miss_ratio,
            "byte_miss_ratio": self.byte_miss_ratio,
            "tps": self.tps,
            "cpu_seconds": self.cpu_seconds,
            "metadata_bytes": self.metadata_bytes,
            "peak_alloc_bytes": self.peak_alloc_bytes,
        }
        if self.obs is not None:
            out["obs"] = self.obs
        return out


def simulate(
    policy: "CachePolicy",
    trace: Trace,
    warmup: int = 0,
    interval: int = 0,
    measure_memory: bool = False,
    needs_future: Optional[bool] = None,
    fast: Optional[bool] = None,
    obs: Optional[ObsConfig] = None,
) -> SimResult:
    """Replay ``trace`` through ``policy`` and collect metrics.

    Parameters
    ----------
    policy:
        A fresh policy instance (the engine does not reset state).
    warmup:
        Requests excluded from the aggregate metrics.
    interval:
        Interval-series resolution (0 = no series; forces the rich path).
    measure_memory:
        Enable ``tracemalloc`` peak tracking (slows the run ~2×; used only
        by the Figure 9/11 benches; forces the rich path).
    needs_future:
        Force (or skip) next-access annotation.  Default: annotate when the
        policy is an oracle (name contains "Belady") or LRB-like.
    fast:
        Force the slim bulk-replay loop (``True``) or the per-request rich
        loop (``False``).  Default ``None`` picks fast whenever no interval
        series or memory metering was requested; forcing ``True`` alongside
        ``interval``/``measure_memory`` is contradictory (the fast loop has
        no per-request callback to feed them) and raises ``ValueError``.
        Both paths are decision-identical; the benchmark subsystem measures
        them against each other.
    obs:
        Observability configuration (:class:`repro.obs.ObsConfig`).  When
        given, a probe is attached to the policy for the duration of the
        replay (event stream → the configured sinks), the final registry
        snapshot lands in ``SimResult.obs``, and — if ``manifest_out`` is
        set — a run manifest is written.  Decisions are unchanged; the
        bulk fast loop is replaced by the instrumented per-request path
        while the probe is attached.
    """
    if fast and (interval > 0 or measure_memory):
        raise ValueError(
            "fast=True is contradictory with interval/measure_memory: the "
            "bulk loop has no per-request callback (use fast=None or "
            "fast=False for the rich path)"
        )
    if needs_future is None:
        needs_future = "belady" in policy.name.lower() or "lrb" in policy.name.lower()
    if needs_future and not trace.annotated:
        annotate_next_access(trace)
    if fast is None:
        fast = interval == 0 and not measure_memory
    session = None
    manifest = None
    if obs is not None:
        session = obs.open()
        policy.attach_probe(session.probe)
        if obs.manifest_out:
            # Capture the policy's parameter set pre-replay, so the manifest
            # records configuration rather than end-of-run counter state.
            manifest = build_manifest(
                policy=policy,
                trace=trace,
                extra={"warmup": warmup, "trace_out": obs.trace_out},
            )
    try:
        if fast:
            result = _simulate_fast(policy, trace, warmup)
        else:
            result = _simulate_rich(policy, trace, warmup, interval, measure_memory)
    finally:
        if session is not None:
            policy.detach_probe()
            session.close()
    if session is not None:
        result.obs = session.snapshot()
        if manifest is not None:
            write_manifest(obs.manifest_out, manifest)
    return result


def _finish(
    policy: "CachePolicy",
    trace: Trace,
    metrics: MetricsCollector,
    elapsed: float,
    cpu: float,
    peak: int,
) -> SimResult:
    """Assemble the shared result record."""
    return SimResult(
        policy=policy.name,
        trace=trace.name,
        cache_bytes=policy.capacity,
        requests=len(trace),
        miss_ratio=metrics.miss_ratio,
        byte_miss_ratio=metrics.byte_miss_ratio,
        tps=len(trace) / elapsed if elapsed > 0 else float("inf"),
        cpu_seconds=cpu,
        metadata_bytes=policy.metadata_bytes(),
        peak_alloc_bytes=peak,
        metrics=metrics,
        policy_obj=policy,
    )


def _simulate_fast(policy: "CachePolicy", trace: Trace, warmup: int) -> SimResult:
    """Slim inner loop: bulk replay, metrics from stats deltas.

    The policy's own :class:`~repro.cache.base.CacheStats` counters are the
    single source of truth; the engine snapshots them at the start and at
    the warm-up boundary, so the aggregate metrics cover exactly the
    post-warm-up requests — the same contract as
    :meth:`MetricsCollector.record` with ``warmup`` set.
    """
    requests = trace.requests if isinstance(trace, Trace) else list(trace)
    st = policy.stats
    t_cpu0 = time.process_time()
    t0 = time.perf_counter()
    if warmup > 0:
        policy.replay(requests[:warmup])
    h0, m0 = st.hits, st.misses
    bh0, bm0 = st.bytes_hit, st.bytes_missed
    policy.replay(requests[warmup:] if warmup > 0 else requests)
    elapsed = time.perf_counter() - t0
    cpu = time.process_time() - t_cpu0

    metrics = MetricsCollector(warmup=warmup)
    metrics._seen = len(requests)
    metrics.hits = st.hits - h0
    metrics.misses = st.misses - m0
    metrics.requests = metrics.hits + metrics.misses
    metrics.bytes_missed = st.bytes_missed - bm0
    metrics.bytes_requested = (st.bytes_hit - bh0) + metrics.bytes_missed
    return _finish(policy, trace, metrics, elapsed, cpu, peak=0)


def _simulate_rich(
    policy: "CachePolicy",
    trace: Trace,
    warmup: int,
    interval: int,
    measure_memory: bool,
) -> SimResult:
    """Per-request instrumented loop (interval series, memory metering)."""
    metrics = MetricsCollector(warmup=warmup, interval=interval)
    if measure_memory:
        tracemalloc.start()
    request = policy.request  # bind once: the hot loop is two calls/request
    record = metrics.record
    t_cpu0 = time.process_time()
    t0 = time.perf_counter()
    for req in trace:
        record(req.size, request(req))
    elapsed = time.perf_counter() - t0
    cpu = time.process_time() - t_cpu0
    peak = 0
    if measure_memory:
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    metrics.flush()
    return _finish(policy, trace, metrics, elapsed, cpu, peak)
