"""Trace-driven simulation engine (the LRB-simulator replacement).

:func:`simulate` replays one trace through one policy, collecting engine-
owned metrics plus resource measurements (wall-clock TPS, simulated
metadata footprint, CPU time) for the Figure 9/11 comparisons.

Policies that need future knowledge (Belady) require an annotated trace;
the engine checks and annotates on demand.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.sim.metrics import MetricsCollector
from repro.sim.request import Trace, annotate_next_access

if TYPE_CHECKING:  # avoid a circular import: cache.base uses sim.request
    from repro.cache.base import CachePolicy

__all__ = ["SimResult", "simulate"]


@dataclass
class SimResult:
    """Outcome of one (policy, trace) replay."""

    policy: str
    trace: str
    cache_bytes: int
    requests: int
    miss_ratio: float
    byte_miss_ratio: float
    #: wall-clock requests/second of the replay loop.
    tps: float
    #: policy CPU seconds (process time spent inside the replay).
    cpu_seconds: float
    #: simulated metadata footprint at end of run (policy-reported), bytes.
    metadata_bytes: int
    #: peak Python allocation during the run (tracemalloc), bytes; 0 when
    #: memory tracing is off.
    peak_alloc_bytes: int
    metrics: MetricsCollector = field(repr=False, default=None)  # type: ignore[assignment]
    policy_obj: "CachePolicy" = field(repr=False, default=None)  # type: ignore[assignment]

    def as_dict(self) -> dict:
        return {
            "policy": self.policy,
            "trace": self.trace,
            "cache_bytes": self.cache_bytes,
            "requests": self.requests,
            "miss_ratio": self.miss_ratio,
            "byte_miss_ratio": self.byte_miss_ratio,
            "tps": self.tps,
            "cpu_seconds": self.cpu_seconds,
            "metadata_bytes": self.metadata_bytes,
            "peak_alloc_bytes": self.peak_alloc_bytes,
        }


def simulate(
    policy: "CachePolicy",
    trace: Trace,
    warmup: int = 0,
    interval: int = 0,
    measure_memory: bool = False,
    needs_future: Optional[bool] = None,
) -> SimResult:
    """Replay ``trace`` through ``policy`` and collect metrics.

    Parameters
    ----------
    policy:
        A fresh policy instance (the engine does not reset state).
    warmup:
        Requests excluded from the aggregate metrics.
    interval:
        Interval-series resolution (0 = no series).
    measure_memory:
        Enable ``tracemalloc`` peak tracking (slows the run ~2×; used only
        by the Figure 9/11 benches).
    needs_future:
        Force (or skip) next-access annotation.  Default: annotate when the
        policy is an oracle (name contains "Belady") or LRB-like.
    """
    if needs_future is None:
        needs_future = "belady" in policy.name.lower() or "lrb" in policy.name.lower()
    if needs_future and not trace.annotated:
        annotate_next_access(trace)

    metrics = MetricsCollector(warmup=warmup, interval=interval)
    if measure_memory:
        tracemalloc.start()
    request = policy.request  # bind once: the hot loop is two calls/request
    record = metrics.record
    t_cpu0 = time.process_time()
    t0 = time.perf_counter()
    for req in trace:
        record(req.size, request(req))
    elapsed = time.perf_counter() - t0
    cpu = time.process_time() - t_cpu0
    peak = 0
    if measure_memory:
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    metrics.flush()

    return SimResult(
        policy=policy.name,
        trace=trace.name,
        cache_bytes=policy.capacity,
        requests=len(trace),
        miss_ratio=metrics.miss_ratio,
        byte_miss_ratio=metrics.byte_miss_ratio,
        tps=len(trace) / elapsed if elapsed > 0 else float("inf"),
        cpu_seconds=cpu,
        metadata_bytes=policy.metadata_bytes(),
        peak_alloc_bytes=peak,
        metrics=metrics,
        policy_obj=policy,
    )
