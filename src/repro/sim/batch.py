"""Array-backed batch replay — the paper-scale fast path.

The rich engine replays Python ``Request`` objects through linked-list
policies at ~2 M req/s; the paper's traces are 78–100 M requests.  This
module replays **structure-of-arrays chunks** (the shape
:meth:`repro.traces.binfmt.BinTraceReader.iter_chunks` yields) through
vectorised re-implementations of the stateless-hot policies — LRU, FIFO,
CLOCK, SIEVE — with **bit-exact** decisions: the equivalence harness in
``tests/sim/test_batch_equivalence.py`` pins every hit/miss and the final
resident set against the rich engine.

How the LRU/FIFO fast path works (the *slot model*)
---------------------------------------------------
Assign request ``i`` of the run the global **slot id** ``t0 + i``.  Under
byte-LRU with consistent per-key sizes, every hit or admitted miss moves
its key to its request's slot, and the resident set is always the maximal
*suffix* of slots whose cumulative bytes fit the capacity.  Hence a single
**boundary** ``B`` — the highest evicted slot — fully describes the cache:

* a request **hits** iff its key's current slot is ``> B``;
* ``B`` is monotonically nondecreasing (eviction order = slot order).

That makes the replay loop trivial: per chunk we precompute each
request's previous slot (one ``argsort`` over keys for within-chunk
chains, a vectorised hash-map probe for cross-chunk first occurrences),
then scan requests in order — a hit is a single integer comparison
(``previous slot > B``), and only misses do real work (advance ``B`` over
the slot array, counting an eviction per live slot consumed, a total
bounded by the slots created).  No per-request allocation, no linked
lists, no hashing in the loop.

FIFO differs only in that hits do not move slots; a small per-chunk
re-admission table lazily re-validates popped candidates.  CLOCK and
SIEVE have data-dependent hand movement, so they run scalar cores over
flat int arrays (no ``Node`` allocation, freelist recycling) — exact, and
still allocation-free per request.

Traces whose keys change size between requests (the rich engine's
size-update semantics) are detected per chunk and **spill**: the batch
state is migrated — in recency order — into the real registry policy,
which finishes the replay with reference semantics.  Memory stays bounded
at any trace length: slot arrays are compacted (live slots renumbered,
key map rebuilt from live slots only) as the boundary advances.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Iterable, Iterator, Optional, Tuple, Union

import numpy as np

from repro.cache.base import CacheStats
from repro.cache.queue import Node
from repro.sim.engine import SimResult
from repro.sim.metrics import MetricsCollector
from repro.sim.request import Trace, requests_from_arrays
from repro.traces.binfmt import BinTraceReader, _splitmix64

__all__ = [
    "Int64Map",
    "BatchLRU",
    "BatchFIFO",
    "BatchClock",
    "BatchSieve",
    "BATCH_POLICIES",
    "batch_supported",
    "make_batch_policy",
    "batch_replay",
    "iter_source_chunks",
    "simulate_batch",
]

_INF = 1 << 62
_U64 = np.uint64

Chunk = Tuple[np.ndarray, np.ndarray, np.ndarray]
ChunkSource = Union[str, Path, BinTraceReader, Trace, Iterable[Chunk]]


# ---------------------------------------------------------------------------
# Vectorised int64 -> int64 open-addressing hash map
# ---------------------------------------------------------------------------
class Int64Map:
    """Flat open-addressing hash map with vectorised bulk probes.

    Linear probing over power-of-two tables, splitmix64 hashing; both
    :meth:`get_many` and :meth:`put_many` resolve whole key arrays in a
    handful of numpy rounds (each round settles every probe that didn't
    collide).  ``put_many`` requires the keys *within one call* to be
    unique — the batch engine always inserts per-key aggregates.
    """

    def __init__(self, capacity: int = 1 << 12):
        cap = 8
        while cap < max(capacity, 8) * 2:
            cap <<= 1
        self._cap = cap
        self._keys = np.zeros(cap, np.int64)
        self._vals = np.zeros(cap, np.int64)
        self._full = np.zeros(cap, bool)
        self.count = 0

    def __len__(self) -> int:
        return self.count

    def _slots(self, keys: np.ndarray) -> np.ndarray:
        h = _splitmix64(keys.view(_U64)) & _U64(self._cap - 1)
        return h.astype(np.int64)

    def get_many(self, keys) -> np.ndarray:
        """Values for ``keys`` (-1 where absent)."""
        keys = np.ascontiguousarray(keys, np.int64)
        out = np.full(len(keys), -1, np.int64)
        if len(keys) == 0 or self.count == 0:
            return out
        idx = self._slots(keys)
        pending = np.arange(len(keys))
        mask = self._cap - 1
        while pending.size:
            sl = idx[pending]
            occ = self._full[sl]
            match = occ.copy()
            if match.any():
                match[occ] = self._keys[sl[occ]] == keys[pending[occ]]
                out[pending[match]] = self._vals[sl[match]]
            cont = occ & ~match
            pending = pending[cont]
            idx[pending] = (idx[pending] + 1) & mask
        return out

    def put_many(self, keys, vals) -> None:
        """Insert/update ``keys`` (unique within the call) -> ``vals``."""
        keys = np.ascontiguousarray(keys, np.int64)
        vals = np.ascontiguousarray(vals, np.int64)
        n = len(keys)
        if n == 0:
            return
        if (self.count + n) * 5 >= self._cap * 3:  # keep load < 0.6
            self._grow(self.count + n)
        idx = self._slots(keys)
        pending = np.arange(n)
        mask = self._cap - 1
        while pending.size:
            sl = idx[pending]
            occ = self._full[sl]
            match = occ.copy()
            if match.any():
                match[occ] = self._keys[sl[occ]] == keys[pending[occ]]
                self._vals[sl[match]] = vals[pending[match]]
            losers = pending[:0]
            emp = ~occ
            if emp.any():
                cand = pending[emp]
                csl = sl[emp]
                # Several pending keys may race for one empty slot; a
                # reversed scatter makes the *first* candidate's write land
                # last (duplicate-index assignment keeps the final write),
                # then a gather identifies the winners — no sort needed.
                self._keys[csl[::-1]] = keys[cand[::-1]]
                self._vals[csl[::-1]] = vals[cand[::-1]]
                won = self._keys[csl] == keys[cand]
                self._full[csl] = True
                self.count += int(np.count_nonzero(won))
                losers = cand[~won]
            adv = pending[occ & ~match]
            idx[adv] = (idx[adv] + 1) & mask
            pending = np.concatenate((adv, losers)) if losers.size else adv

    def exchange_many(self, keys, vals) -> np.ndarray:
        """Fused probe-and-update: write ``keys -> vals``, return the prior
        values (-1 where absent).  One table traversal instead of a
        ``get_many`` + ``put_many`` pair over the same keys."""
        keys = np.ascontiguousarray(keys, np.int64)
        vals = np.ascontiguousarray(vals, np.int64)
        n = len(keys)
        out = np.full(n, -1, np.int64)
        if n == 0:
            return out
        if (self.count + n) * 5 >= self._cap * 3:  # keep load < 0.6
            self._grow(self.count + n)
        idx = self._slots(keys)
        pending = np.arange(n)
        mask = self._cap - 1
        while pending.size:
            sl = idx[pending]
            occ = self._full[sl]
            match = occ.copy()
            if match.any():
                match[occ] = self._keys[sl[occ]] == keys[pending[occ]]
                hit = pending[match]
                out[hit] = self._vals[sl[match]]
                self._vals[sl[match]] = vals[hit]
            losers = pending[:0]
            emp = ~occ
            if emp.any():
                cand = pending[emp]
                csl = sl[emp]
                self._keys[csl[::-1]] = keys[cand[::-1]]
                self._vals[csl[::-1]] = vals[cand[::-1]]
                won = self._keys[csl] == keys[cand]
                self._full[csl] = True
                self.count += int(np.count_nonzero(won))
                losers = cand[~won]
            adv = pending[occ & ~match]
            idx[adv] = (idx[adv] + 1) & mask
            pending = np.concatenate((adv, losers)) if losers.size else adv
        return out

    def _grow(self, need: int) -> None:
        old_keys = self._keys[self._full].copy()
        old_vals = self._vals[self._full].copy()
        cap = self._cap
        while need * 5 >= cap * 3:
            cap <<= 1
        self._cap = cap
        self._keys = np.zeros(cap, np.int64)
        self._vals = np.zeros(cap, np.int64)
        self._full = np.zeros(cap, bool)
        self.count = 0
        self.put_many(old_keys, old_vals)

    # scalar conveniences (tests / diagnostics)
    def get(self, key: int, default: int = -1) -> int:
        v = int(self.get_many(np.asarray([key]))[0])
        return default if v == -1 else v

    def put(self, key: int, val: int) -> None:
        self.put_many(np.asarray([key]), np.asarray([val]))


# ---------------------------------------------------------------------------
# LRU / FIFO: slot-model vectorised cores
# ---------------------------------------------------------------------------
_REP_HASH_BITS = 21
_REP_FULLSORT_NUM = 3  # fall back to the full sort when repeats > 3/4


def _group_occurrences(keys, sizes, nb, promote):
    """Group a chunk's requests by key, preserving request order.

    Returns ``(fidx, lidx, pred, succ, gassign)``:

    * ``fidx`` / ``lidx`` — request index of each distinct key's first /
      last occurrence (one entry per distinct key, unordered);
    * ``pred`` / ``succ`` — within-chunk chain edges: ``succ[j]`` is a
      repeat occurrence and ``pred[j]`` the same key's immediately
      preceding occurrence (non-bypassed keys only);
    * ``gassign`` — per-request index into ``fidx`` of the request's key
      (built only when ``promote`` is false; the LRU path never needs it);

    or ``None`` when a key changes size within the chunk (spill signal).

    The stable argsort dominates chunk preprocessing, so keys that
    provably occur once are pre-filtered with a hashed occupancy count
    and skip the sort: a key whose hash bucket holds a single occurrence
    cannot repeat.  Collisions only add stray singletons to the sorted
    subset — never a correctness hazard — and chunks that are mostly
    repeats fall back to the plain full sort.
    """
    m = len(keys)
    hb = (
        (keys.view(_U64) * _U64(0x9E3779B97F4A7C15))
        >> _U64(64 - _REP_HASH_BITS)
    ).astype(np.intp)
    counts = np.bincount(hb, minlength=1 << _REP_HASH_BITS)
    rep = counts[hb] >= 2
    nrep = int(np.count_nonzero(rep))
    if nrep * 4 >= m * _REP_FULLSORT_NUM:
        singles = None
        order = np.argsort(keys, kind="stable")
    else:
        sub = np.flatnonzero(rep)
        singles = np.flatnonzero(~rep)
        order = sub[np.argsort(keys[sub], kind="stable")]
    ns = len(order)
    ks = keys[order]
    same = np.zeros(ns, bool)
    if ns > 1:
        same[1:] = ks[1:] == ks[:-1]
    cp = np.flatnonzero(same)
    if cp.size:
        szs = sizes[order]
        if not bool((szs[cp] == szs[cp - 1]).all()):
            return None
    gfirst = order[np.flatnonzero(~same)]
    last_pos = np.ones(ns, bool)
    if ns > 1:
        last_pos[:-1] = ~same[1:]
    glast = order[last_pos]
    chsel = cp[nb[order[cp]]]  # bypass status is per-key uniform
    pred = order[chsel - 1]
    succ = order[chsel]
    if singles is None:
        fidx, lidx = gfirst, glast
    else:
        fidx = np.concatenate((singles, gfirst))
        lidx = np.concatenate((singles, glast))
    gassign = None
    if not promote:
        gassign = np.empty(m, np.intp)
        if singles is None:
            gassign[order] = np.cumsum(~same) - 1
        else:
            nsing = len(singles)
            gassign[singles] = np.arange(nsing)
            gassign[order] = np.cumsum(~same) - 1 + nsing
    return fidx, lidx, pred, succ, gassign


class _BatchQueueCore:
    """Shared slot-model machinery for the LRU and FIFO batch paths."""

    name = "abstract"
    #: Whether hits move the key to the request's slot (LRU) or not (FIFO).
    _promote = True
    #: Registry policy class used when inconsistent sizes force a spill.
    _policy_cls = None

    #: Compact when this many dead slots accumulate in the window.
    _COMPACT_SLACK = 1 << 18

    def __init__(self, capacity: int):
        capacity = int(capacity)
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.stats = CacheStats()
        self.clock = 0
        self.used = 0
        self.resident = 0
        self.B = -1  # highest evicted slot; residents live strictly above
        self.base = 0  # absolute slot id of slot-array element 0
        self.next_slot = 0
        n0 = 1 << 12
        self.slot_key = np.zeros(n0, np.int64)
        self.slot_size = np.zeros(n0, np.int64)
        self.slot_next = np.full(n0, _INF, np.int64)
        self.map = Int64Map()
        self._policy = None  # set once a spill migrates state
        #: Structural maintenance counters (surfaced on ``SimResult.obs``).
        self.compactions = 0
        self.spills = 0

    # -- capacity management ------------------------------------------------
    def _ensure(self, length: int) -> None:
        cap = len(self.slot_key)
        if length <= cap:
            return
        new = max(cap * 2, length)
        for attr, fill in (("slot_key", 0), ("slot_size", 0), ("slot_next", _INF)):
            old = getattr(self, attr)
            arr = np.full(new, fill, np.int64)
            arr[: len(old)] = old
            setattr(self, attr, arr)

    def _live_rel(self) -> np.ndarray:
        """Array indices (relative to ``base``) of live slots, ascending =
        eviction order (oldest first)."""
        lo = max(self.B + 1 - self.base, 0)
        hi = self.next_slot - self.base
        sz = self.slot_size[lo:hi]
        live = sz > 0
        if self._promote:
            live &= self.slot_next[lo:hi] >= self.next_slot
        return np.flatnonzero(live) + lo

    def _compact(self) -> None:
        """Renumber live slots to a fresh id range and rebuild the key map
        from live slots **only** (purging stale entries), keeping memory
        proportional to residents + one chunk at any trace length."""
        rel = self._live_rel()
        nlive = len(rel)
        assert nlive == self.resident, (nlive, self.resident)
        self.compactions += 1
        base2 = self.next_slot  # fresh ids stay globally monotone
        self._ensure(nlive)
        self.slot_key[:nlive] = self.slot_key[rel]
        self.slot_size[:nlive] = self.slot_size[rel]
        self.slot_next[:nlive] = _INF
        self.base = base2
        self.B = base2 - 1
        self.next_slot = base2 + nlive
        self.map = Int64Map(max(nlive * 2, 1 << 12))
        self.map.put_many(
            self.slot_key[:nlive], base2 + np.arange(nlive, dtype=np.int64)
        )

    # -- spill: inconsistent per-key sizes -> reference policy ---------------
    def _spill(self) -> None:
        self.spills += 1
        policy = self._policy_cls(self.capacity)
        rel = self._live_rel()
        # Ascending slot order is oldest-first; push_mru each in turn to
        # rebuild the exact recency/insertion order.
        for k, s in zip(self.slot_key[rel].tolist(), self.slot_size[rel].tolist()):
            node = Node(k, s)
            policy.queue.push_mru(node)
            policy.index[k] = node
        policy.used = self.used
        policy.stats = self.stats  # shared object: counters stay unified
        policy.clock = self.clock
        self._policy = policy
        self.slot_key = self.slot_size = self.slot_next = None  # type: ignore[assignment]
        self.map = None  # type: ignore[assignment]

    def _replay_policy(self, times, keys, sizes, out) -> None:
        reqs = requests_from_arrays(keys, sizes, times)
        self._policy.replay(reqs, out)
        self.clock = self._policy.clock
        self.used = self._policy.used
        self.resident = len(self._policy)

    # -- main entry ----------------------------------------------------------
    def process_chunk(self, times, keys, sizes, out: Optional[list] = None) -> None:
        """Replay one structure-of-arrays chunk.

        ``out``, when given, receives one boolean per request (hit=True) —
        the same decision stream :meth:`CachePolicy.replay` produces.
        """
        keys = np.ascontiguousarray(keys, np.int64)
        sizes = np.ascontiguousarray(sizes, np.int64)
        m = len(keys)
        if len(sizes) != m:
            raise ValueError(f"keys/sizes length mismatch: {m} vs {len(sizes)}")
        if m == 0:
            return
        if self._policy is not None:
            return self._replay_policy(times, keys, sizes, out)

        C = self.capacity
        t0 = self.next_slot
        base = self.base
        self._ensure(t0 + m - base)
        off = t0 - base

        promote = self._promote
        bypass = sizes > C
        nb = ~bypass
        n_byp = int(np.count_nonzero(bypass))

        # --- grouping: occurrences of each key, in request order ----------
        grouped = _group_occurrences(keys, sizes, nb, promote)
        if grouped is None:
            # A key changes size within this chunk: reference semantics.
            self._spill()
            return self._replay_policy(times, keys, sizes, out)
        fidx, lidx, pred, succ, gassign = grouped

        if promote:
            # LRU re-slots every key to its last occurrence regardless of
            # hit/miss, so probe-old and write-new fuse into one traversal.
            # Bypassed keys are probed but never written (an oversized key
            # must not enter the map), falling back to a plain lookup.
            gsel = nb[fidx]
            prev = np.full(len(fidx), -1, np.int64)
            prev[gsel] = self.map.exchange_many(
                keys[fidx[gsel]], t0 + lidx[gsel]
            )
            if not bool(gsel.all()):
                bsel = ~gsel
                prev[bsel] = self.map.get_many(keys[fidx[bsel]])
        else:
            prev = self.map.get_many(keys[fidx])
        valid = prev >= base  # below base => already evicted (or purged)
        if valid.any():
            stored = self.slot_size[prev[valid] - base]
            if not bool((stored == sizes[fidx[valid]]).all()):
                # Size changed across chunks (covers resident-but-oversized
                # requests too: stored <= C < new size).
                self._spill()
                return self._replay_policy(times, keys, sizes, out)

        # --- static slot state for this chunk -----------------------------
        self.slot_key[off : off + m] = keys
        if promote:
            self.slot_size[off : off + m] = np.where(nb, sizes, 0)
        else:
            self.slot_size[off : off + m] = 0  # filled per confirmed miss

        # Previous-slot per request: -1 = no live prior residency known.
        fv = fidx[valid]
        pv = prev[valid]
        sel = nb[fv]
        if promote:
            # slot_next is only consulted for promotion liveness; FIFO
            # skips it entirely (a FIFO slot dies only by eviction).
            self.slot_next[off : off + m] = _INF
            pslot = np.full(m, -1, np.int64)
            pslot[fv[sel]] = pv[sel]
            self.slot_next[pv[sel] - base] = t0 + fv[sel]
            if len(succ):
                # LRU: each occurrence chains to the immediately previous one.
                pslot[succ] = t0 + pred
                self.slot_next[off + pred] = t0 + succ
        else:
            # FIFO: hits don't move, so every occurrence tests the slot of
            # the key's first occurrence; in-chunk re-admissions are
            # re-validated lazily in the loop below.
            pfirst = np.full(len(fidx), -1, np.int64)
            pfirst[valid] = prev[valid]
            pslot = pfirst[gassign]
            pslot[bypass] = -1

        # --- vectorised no-eviction fast path ------------------------------
        # With ``B`` frozen, classification is already exact: request ``i``
        # misses iff its key's slot is at-or-below the boundary (for FIFO,
        # only first occurrences can miss — later ones hit the in-chunk
        # admission).  When the admitted bytes fit without evicting, the
        # scalar loop would be pure bookkeeping — fold it with array ops.
        B0 = self.B
        if promote:
            adm_mask = (pslot <= B0) & nb
        else:
            first_mask = np.zeros(m, bool)
            first_mask[fidx] = True
            adm_mask = first_mask & (pslot <= B0) & nb
        mi = np.flatnonzero(adm_mask)
        adm_bytes = int(sizes[mi].sum()) if len(mi) else 0
        curslot: dict = {}
        ev = 0
        if self.used + adm_bytes <= C:
            self.used += adm_bytes
            self.resident += len(mi)
        else:
            # --- scalar hit/miss scan --------------------------------------
            # The key's current slot is ``pslot`` (LRU: every request
            # re-slots its key, so the chain value is exact; FIFO: the map
            # slot, overridden by the in-chunk re-admission table), and a
            # request hits iff that slot is still above the boundary.  Hits
            # cost one comparison; only misses do eviction work, advancing
            # ``B`` over the slot window.
            cidx = np.flatnonzero(nb)
            ci_l = cidx.tolist()
            cp_l = pslot[cidx].tolist()
            cs_l = sizes[cidx].tolist()
            shift = max(B0 + 1, base)  # slots below are settled, never read
            lo = shift - base
            hi = off + m
            # Materialise only the window prefix ``B`` can actually reach:
            # consuming slots whose *guaranteed*-freed cumulative bytes
            # cover the worst-case byte demand (every candidate admitted)
            # provably satisfies the loop condition, so ``B`` never passes
            # that point.  Slight overflows of a huge resident window (the
            # common near-capacity case) then cost O(overflow), not
            # O(window), in list conversion.
            seg_sz = self.slot_size[lo:hi]
            if promote:
                freed = np.where(
                    (seg_sz > 0) & (self.slot_next[lo:hi] >= t0 + m), seg_sz, 0
                )
            else:
                # FIFO frees every nonzero slot; chunk slots read as 0 until
                # admitted (conservative: undercounts freed bytes).
                freed = seg_sz
            need = self.used + int(sizes[cidx].sum()) - C
            wrel = min(int(np.searchsorted(np.cumsum(freed), need)) + 1, hi - lo)
            sz_l = seg_sz[:wrel].tolist()
            if not promote and wrel < hi - lo:
                # Admissions write their size at ``step - shift``, which may
                # lie past the read bound; pad (never read back past wrel).
                sz_l.extend([0] * (hi - lo - wrel))
            ck_l = keys[cidx].tolist() if not promote else None

            miss_idx: list = []
            miss_append = miss_idx.append
            B = B0
            used = self.used
            resident = self.resident
            used0 = used
            res0 = resident
            fb = 0
            if promote and out is None:
                # Counting-only variant: per-miss identity is never consumed
                # (no decision stream, LRU writes no per-miss slot sizes), so
                # admissions are recovered from the used/resident deltas plus
                # freed bytes instead of materialising an index list.
                nx_l = self.slot_next[lo : lo + wrel].tolist()
                for i, p, s in zip(ci_l, cp_l, cs_l):
                    if p > B:
                        continue  # still resident above the boundary: hit
                    step = t0 + i
                    while used + s > C and resident:
                        B += 1
                        q = B - shift
                        sz = sz_l[q]
                        if sz > 0 and nx_l[q] > step:
                            used -= sz
                            fb += sz
                            resident -= 1
                            ev += 1
                    used += s
                    resident += 1
            elif promote:
                nx_l = self.slot_next[lo : lo + wrel].tolist()
                for i, p, s in zip(ci_l, cp_l, cs_l):
                    if p > B:
                        continue  # still resident above the boundary: hit
                    step = t0 + i
                    while used + s > C and resident:
                        B += 1
                        q = B - shift
                        sz = sz_l[q]
                        if sz > 0 and nx_l[q] > step:
                            used -= sz
                            resident -= 1
                            ev += 1
                    used += s
                    resident += 1
                    miss_append(i)
            else:
                get = curslot.get
                for i, p, s, k in zip(ci_l, cp_l, cs_l, ck_l):
                    if get(k, p) > B:
                        continue  # hit (maybe via an in-chunk re-admission)
                    step = t0 + i
                    while used + s > C and resident:
                        B += 1
                        q = B - shift
                        if sz_l[q] > 0:
                            used -= sz_l[q]
                            resident -= 1
                            ev += 1
                    used += s
                    resident += 1
                    sz_l[step - shift] = s
                    curslot[k] = step
                    miss_append(i)
            self.B = B
            self.used = used
            self.resident = resident
            if promote and out is None:
                mi = None
                n_adm = (resident - res0) + ev
                adm_bytes = (used - used0) + fb
            else:
                mi = np.asarray(miss_idx, np.int64)
                n_adm = len(mi)
                adm_bytes = int(sizes[mi].sum()) if n_adm else 0

        # --- fold results --------------------------------------------------
        if mi is not None:
            n_adm = len(mi)
        if not promote and n_adm:
            self.slot_size[mi + off] = sizes[mi]
        byp_bytes = int(sizes[bypass].sum()) if n_byp else 0
        total_bytes = int(sizes.sum())
        st = self.stats
        n_miss = n_adm + n_byp
        st.misses += n_miss
        st.hits += m - n_miss
        st.bytes_missed += adm_bytes + byp_bytes
        st.bytes_hit += total_bytes - adm_bytes - byp_bytes
        st.evictions += ev
        st.bypasses += n_byp
        self.clock += m
        self.next_slot = t0 + m

        # Key map: FIFO points each key at its end-of-chunk slot (the LRU
        # path already did, fused into the prev-slot probe above).
        dead = (self.next_slot - self.base) - self.resident
        # Amortised: a rebuild costs O(resident), so demand a multiple of
        # that in dead slots — the window stays <= 3x resident + chunk
        # while large resident sets (no-eviction replays) compact rarely.
        will_compact = dead > self._COMPACT_SLACK and dead > 2 * self.resident
        if not will_compact and not promote:
            if curslot:
                n = len(curslot)
                self.map.put_many(
                    np.fromiter(curslot.keys(), np.int64, n),
                    np.fromiter(curslot.values(), np.int64, n),
                )
            elif n_adm:
                # Fast path: only admissions move keys to new slots.
                self.map.put_many(keys[mi], t0 + mi)

        if out is not None:
            hits_mask = nb
            if n_adm:
                hits_mask = nb.copy()
                hits_mask[mi] = False
            out.extend(hits_mask.tolist())

        if will_compact:
            self._compact()

    # -- introspection -------------------------------------------------------
    def __len__(self) -> int:
        return len(self._policy) if self._policy is not None else self.resident

    def resident_keys(self) -> list:
        """Keys MRU -> LRU, matching :meth:`QueueCache.resident_keys`."""
        if self._policy is not None:
            return self._policy.resident_keys()
        return self.slot_key[self._live_rel()[::-1]].tolist()

    def metadata_bytes(self) -> int:
        return 110 * len(self)

    @property
    def spilled(self) -> bool:
        """Whether inconsistent sizes forced the reference-policy fallback."""
        return self._policy is not None


class BatchLRU(_BatchQueueCore):
    """Vectorised byte-LRU (bit-exact with :class:`repro.cache.lru.LRUCache`)."""

    name = "LRU"
    _promote = True

    @property
    def _policy_cls(self):
        from repro.cache.lru import LRUCache

        return LRUCache


class BatchFIFO(_BatchQueueCore):
    """Vectorised byte-FIFO (bit-exact with :class:`repro.cache.fifo.FIFOCache`)."""

    name = "FIFO"
    _promote = False

    @property
    def _policy_cls(self):
        from repro.cache.fifo import FIFOCache

        return FIFOCache


# ---------------------------------------------------------------------------
# CLOCK / SIEVE: scalar array cores (no Node allocation)
# ---------------------------------------------------------------------------
class _ScalarRingCore:
    """Intrusive ring over flat int lists: slot 0 is the sentinel; ``prv``
    points toward the MRU/head end (mirroring :class:`LinkedQueue`).
    Evicted positions are recycled through a freelist, so steady-state
    replay allocates nothing per request."""

    name = "abstract"

    def __init__(self, capacity: int):
        capacity = int(capacity)
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.stats = CacheStats()
        self.clock = 0
        self.used = 0
        self.index: dict = {}
        self.key = [0]
        self.size = [0]
        self.ref = [False]
        self.nxt = [0]
        self.prv = [0]
        self.free: list = []

    def _alloc(self, k: int, s: int) -> int:
        if self.free:
            p = self.free.pop()
            self.key[p] = k
            self.size[p] = s
            self.ref[p] = False
            return p
        self.key.append(k)
        self.size.append(s)
        self.ref.append(False)
        self.nxt.append(0)
        self.prv.append(0)
        return len(self.key) - 1

    def _link_head(self, p: int) -> None:
        h = self.nxt[0]
        self.prv[p] = 0
        self.nxt[p] = h
        self.prv[h] = p
        self.nxt[0] = p

    def _unlink(self, p: int) -> None:
        self.nxt[self.prv[p]] = self.nxt[p]
        self.prv[self.nxt[p]] = self.prv[p]

    def _evict_pos(self, p: int) -> None:
        self._unlink(p)
        del self.index[self.key[p]]
        self.used -= self.size[p]
        self.stats.evictions += 1
        self.free.append(p)

    def __len__(self) -> int:
        return len(self.index)

    def resident_keys(self) -> list:
        """Keys newest -> oldest (the ring's MRU -> LRU order)."""
        out = []
        p = self.nxt[0]
        while p != 0:
            out.append(self.key[p])
            p = self.nxt[p]
        return out

    def metadata_bytes(self) -> int:
        return 110 * len(self.index)

    def _on_hit(self, p: int, s: int) -> None:
        raise NotImplementedError

    def _evict_one(self) -> None:
        raise NotImplementedError

    def process_chunk(self, times, keys, sizes, out: Optional[list] = None) -> None:
        C = self.capacity
        st = self.stats
        index = self.index
        size = self.size
        app = out.append if out is not None else None
        keys = np.asarray(keys)
        sizes = np.asarray(sizes)
        for k, s in zip(keys.tolist(), sizes.tolist()):
            p = index.get(k)
            if p is not None:
                st.hits += 1
                st.bytes_hit += s
                if size[p] != s:
                    self.used += s - size[p]
                    size[p] = s
                self._on_hit(p, s)
                while self.used > C and len(index) > 1:
                    self._evict_one()
                if app is not None:
                    app(True)
            else:
                st.misses += 1
                st.bytes_missed += s
                if s > C:
                    st.bypasses += 1
                else:
                    while self.used + s > C and index:
                        self._evict_one()
                    p = self._alloc(k, s)
                    self._link_head(p)
                    index[k] = p
                    self.used += s
                if app is not None:
                    app(False)
        self.clock += len(keys)


class BatchClock(_ScalarRingCore):
    """Second-chance CLOCK (bit-exact with :class:`ClockCache`)."""

    name = "CLOCK"

    def _on_hit(self, p: int, s: int) -> None:
        self.ref[p] = True  # reference bit; no movement on hits

    def _evict_one(self) -> None:
        ref = self.ref
        prv = self.prv
        while True:
            v = prv[0]  # tail = oldest
            if ref[v]:
                ref[v] = False
                self._unlink(v)
                self._link_head(v)  # second chance
            else:
                self._evict_pos(v)
                return


class BatchSieve(_ScalarRingCore):
    """SIEVE (bit-exact with :class:`SieveCache`): hand survives across
    evictions, sweeps tail -> head sparing visited entries in place."""

    name = "SIEVE"

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self.hand = 0  # 0 = no saved position (start from the tail)

    def _on_hit(self, p: int, s: int) -> None:
        self.ref[p] = True  # visited bit; SIEVE never moves nodes

    def _evict_one(self) -> None:
        ref = self.ref
        prv = self.prv
        hand = self.hand
        if hand == 0:
            hand = prv[0]  # tail
        while ref[hand]:
            ref[hand] = False
            nh = prv[hand]  # toward head
            hand = nh if nh != 0 else prv[0]  # wrap to the tail
        self.hand = prv[hand]  # may be 0: next sweep restarts at the tail
        self._evict_pos(hand)


# ---------------------------------------------------------------------------
# Registry + engine entry points
# ---------------------------------------------------------------------------
BATCH_POLICIES = {
    "LRU": BatchLRU,
    "FIFO": BatchFIFO,
    "CLOCK": BatchClock,
    "SIEVE": BatchSieve,
}


def batch_supported(name: str) -> bool:
    """Whether the batch engine has a bit-exact core for this policy name."""
    return name in BATCH_POLICIES


def make_batch_policy(name: str, capacity: int):
    """Instantiate a batch core by registry policy name."""
    try:
        cls = BATCH_POLICIES[name]
    except KeyError:
        raise KeyError(
            f"policy {name!r} has no batch core; batch-capable: "
            f"{sorted(BATCH_POLICIES)}"
        ) from None
    return cls(capacity)


def iter_source_chunks(
    source: ChunkSource, chunk_size: int = 1 << 20
) -> Iterator[Chunk]:
    """Normalise any trace source into ``(times, keys, sizes)`` chunks.

    Accepts a binary trace path, an open :class:`BinTraceReader`, an
    in-memory :class:`Trace`, or any iterable already yielding chunk
    tuples (e.g. :func:`repro.traces.streaming.stream_chunks`).
    """
    if isinstance(source, (str, Path)):
        reader = BinTraceReader(source)
        try:
            yield from reader.iter_chunks(chunk_size)
        finally:
            reader.close()
    elif isinstance(source, BinTraceReader):
        yield from source.iter_chunks(chunk_size)
    elif isinstance(source, Trace):
        reqs = source.requests
        for lo in range(0, len(reqs), chunk_size):
            blk = reqs[lo : lo + chunk_size]
            n = len(blk)
            times = np.fromiter((r.time for r in blk), np.int64, n)
            keys = np.fromiter((r.key for r in blk), np.int64, n)
            sizes = np.fromiter((r.size for r in blk), np.int64, n)
            yield times, keys, sizes
    else:
        yield from source


def _source_name(source: ChunkSource) -> str:
    if isinstance(source, (str, Path)):
        return Path(source).stem
    if isinstance(source, BinTraceReader):
        return source.name
    if isinstance(source, Trace):
        return source.name
    return "stream"


def _as_int64_sizes(sizes: np.ndarray) -> np.ndarray:
    sizes = np.asarray(sizes)
    if sizes.dtype == np.uint64 and sizes.size and int(sizes.max()) > 2**63 - 1:
        raise ValueError("object sizes exceed int64 range")
    return sizes.astype(np.int64, copy=False)


def batch_replay(
    policy: str,
    source: ChunkSource,
    cache_bytes: int,
    chunk_size: int = 1 << 20,
    out: Optional[list] = None,
):
    """Replay a source through a batch core; returns the finished core
    (stats, resident set).  The decision-stream ``out`` matches
    :meth:`CachePolicy.replay` bit for bit."""
    core = make_batch_policy(policy, cache_bytes) if isinstance(policy, str) else policy
    for times, keys, sizes in iter_source_chunks(source, chunk_size):
        core.process_chunk(times, keys, _as_int64_sizes(sizes), out)
    return core


def simulate_batch(
    policy: str,
    source: ChunkSource,
    cache_bytes: int,
    warmup: int = 0,
    chunk_size: int = 1 << 20,
    trace_name: Optional[str] = None,
) -> SimResult:
    """Batch-engine counterpart of :func:`repro.sim.engine.simulate`.

    Streams ``source`` through the named policy's batch core and returns
    the same :class:`SimResult` shape as the rich engine (aggregate
    metrics from stats deltas at the warm-up boundary, wall-clock TPS over
    the whole replay).  Memory stays bounded by chunk size + resident set
    regardless of trace length.
    """
    from repro.obs.metrics import MetricsRegistry

    core = make_batch_policy(policy, cache_bytes) if isinstance(policy, str) else policy
    name = trace_name or _source_name(source)
    st = core.stats
    seen = 0
    snap = (0, 0, 0, 0)
    # Batch cores never see individual requests, so per-event probes are
    # impossible by design — instead each chunk boundary folds the stats
    # *delta* into aggregate registry counters (the same instrument names
    # the rich engine's RegistryRecorder maintains, minus per-event detail).
    registry = MetricsRegistry()
    c_req = registry.counter("sim_requests")
    c_hit = registry.counter("sim_hits")
    c_evict = registry.counter("sim_evictions")
    c_compact = registry.counter("batch_compactions")
    c_spill = registry.counter("batch_spills")
    c_chunks = registry.counter("batch_chunks")
    prev = (0, 0, 0, 0, 0)  # requests, hits, evictions, compactions, spills
    t_cpu0 = time.process_time()
    t0 = time.perf_counter()
    for times, keys, sizes in iter_source_chunks(source, chunk_size):
        sizes = _as_int64_sizes(sizes)
        n = len(keys)
        if seen < warmup and seen + n > warmup:
            cut = warmup - seen
            core.process_chunk(times[:cut], keys[:cut], sizes[:cut])
            snap = (st.hits, st.misses, st.bytes_hit, st.bytes_missed)
            core.process_chunk(times[cut:], keys[cut:], sizes[cut:])
        else:
            core.process_chunk(times, keys, sizes)
            if seen + n == warmup:
                snap = (st.hits, st.misses, st.bytes_hit, st.bytes_missed)
        seen += n
        cur = (
            st.requests,
            st.hits,
            st.evictions,
            getattr(core, "compactions", 0),
            getattr(core, "spills", 0),
        )
        c_req.inc(cur[0] - prev[0])
        c_hit.inc(cur[1] - prev[1])
        c_evict.inc(cur[2] - prev[2])
        c_compact.inc(cur[3] - prev[3])
        c_spill.inc(cur[4] - prev[4])
        c_chunks.inc()
        prev = cur
    elapsed = time.perf_counter() - t0
    cpu = time.process_time() - t_cpu0
    if warmup > 0 and seen <= warmup:
        snap = (st.hits, st.misses, st.bytes_hit, st.bytes_missed)

    h0, m0, bh0, bm0 = snap
    metrics = MetricsCollector(warmup=warmup)
    metrics._seen = seen
    metrics.hits = st.hits - h0
    metrics.misses = st.misses - m0
    metrics.requests = metrics.hits + metrics.misses
    metrics.bytes_missed = st.bytes_missed - bm0
    metrics.bytes_requested = (st.bytes_hit - bh0) + metrics.bytes_missed
    return SimResult(
        policy=core.name,
        trace=name,
        cache_bytes=core.capacity,
        requests=seen,
        miss_ratio=metrics.miss_ratio,
        byte_miss_ratio=metrics.byte_miss_ratio,
        tps=seen / elapsed if elapsed > 0 else float("inf"),
        cpu_seconds=cpu,
        metadata_bytes=core.metadata_bytes(),
        peak_alloc_bytes=0,
        metrics=metrics,
        policy_obj=core,
        obs={"registry": registry.snapshot(), "chunks": int(c_chunks.value)},
    )
