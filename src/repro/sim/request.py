"""Request and trace containers for trace-driven cache simulation.

A *trace* is an ordered sequence of :class:`Request` records, each carrying a
logical timestamp, an object key, and an object size in bytes.  This mirrors
the on-disk format used by the LRB simulator (``timestamp id size`` per line)
that the paper's evaluation is built on.

Traces can optionally be annotated with *next-access indices* (used by the
Belady oracle and by the ZRO/P-ZRO analyzers) via :func:`annotate_next_access`.
The annotation is computed in a single backwards pass, O(n) time and O(u)
extra space for ``u`` unique keys.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence

import numpy as np

__all__ = ["Request", "Trace", "annotate_next_access", "NO_NEXT_ACCESS"]

#: Sentinel next-access index meaning "this key is never requested again".
NO_NEXT_ACCESS: int = 2**62


class Request:
    """A single cache request.

    Attributes
    ----------
    time:
        Logical timestamp (monotonically non-decreasing within a trace).
        In synthetic traces this is the request index; in TDC-style traces
        it may carry wall-clock seconds.
    key:
        Object identifier.  Any hashable; synthetic traces use ``int``.
    size:
        Object size in bytes (``>= 1``).
    next_access:
        Index into the trace of the *next* request for the same key, or
        :data:`NO_NEXT_ACCESS` if there is none.  Populated only after
        :func:`annotate_next_access`; oracle policies require it.
    tenant:
        Owning tenant id (``0`` for single-tenant traces).  The multi-tenant
        machinery (:mod:`repro.tenancy`) routes quota accounting by this
        field; policies that don't partition ignore it.  Deliberately not
        part of equality/hashing — a request is identified by
        (time, key, size) exactly as before tenancy existed.
    """

    __slots__ = ("time", "key", "size", "next_access", "tenant")

    def __init__(
        self,
        time: int,
        key: int,
        size: int,
        next_access: int = NO_NEXT_ACCESS,
        tenant: int = 0,
    ):
        if size < 1:
            raise ValueError(f"request size must be >= 1 byte, got {size}")
        self.time = time
        self.key = key
        self.size = size
        self.next_access = next_access
        self.tenant = tenant

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Request(time={self.time}, key={self.key!r}, size={self.size})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Request)
            and self.time == other.time
            and self.key == other.key
            and self.size == other.size
        )

    def __hash__(self) -> int:
        return hash((self.time, self.key, self.size))


class Trace:
    """An ordered, indexable sequence of requests plus summary statistics.

    The container is deliberately thin — the simulation engine iterates it
    once per run — but it caches aggregate statistics (working-set size,
    unique-object count) that experiments repeatedly need, so they are
    computed lazily and memoised.
    """

    def __init__(self, requests: Sequence[Request], name: str = "trace"):
        self._requests: List[Request] = list(requests)
        self.name = name
        self._wss: int | None = None
        self._unique: int | None = None
        self._annotated = False

    # -- sequence protocol ------------------------------------------------
    def __len__(self) -> int:
        return len(self._requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self._requests)

    def __getitem__(self, idx: int) -> Request:
        return self._requests[idx]

    @property
    def requests(self) -> List[Request]:
        """The backing request list (the engine's bulk-replay loops iterate
        this directly rather than paying a generator per request).  Treat as
        read-only."""
        return self._requests

    # -- statistics --------------------------------------------------------
    def _scan(self) -> None:
        sizes: dict = {}
        for r in self._requests:
            sizes[r.key] = r.size
        self._unique = len(sizes)
        self._wss = sum(sizes.values())

    @property
    def working_set_size(self) -> int:
        """Total bytes of all unique objects (last-seen size per key)."""
        if self._wss is None:
            self._scan()
        assert self._wss is not None
        return self._wss

    @property
    def unique_objects(self) -> int:
        """Number of distinct keys in the trace."""
        if self._unique is None:
            self._scan()
        assert self._unique is not None
        return self._unique

    @property
    def total_bytes(self) -> int:
        """Sum of request sizes over the whole trace (requested traffic)."""
        return sum(r.size for r in self._requests)

    def size_stats(self) -> dict:
        """Min / max / mean object size over unique objects, in bytes."""
        sizes: dict = {}
        for r in self._requests:
            sizes[r.key] = r.size
        arr = np.fromiter(sizes.values(), dtype=np.float64)
        return {
            "min": float(arr.min()),
            "max": float(arr.max()),
            "mean": float(arr.mean()),
        }

    @property
    def annotated(self) -> bool:
        """Whether next-access indices have been populated."""
        return self._annotated

    def summary(self) -> dict:
        """Table-1-style summary of the trace."""
        s = self.size_stats()
        return {
            "name": self.name,
            "total_requests": len(self),
            "unique_objects": self.unique_objects,
            "max_object_size": s["max"],
            "min_object_size": s["min"],
            "mean_object_size": s["mean"],
            "working_set_size": self.working_set_size,
        }


def annotate_next_access(trace: Trace | Sequence[Request]) -> Trace:
    """Populate ``next_access`` on every request via one backwards pass.

    After this call, ``req.next_access`` is the trace index of the next
    request with the same key, or :data:`NO_NEXT_ACCESS`.  Returns the trace
    (converted to :class:`Trace` if a plain sequence was given) for chaining.
    """
    if not isinstance(trace, Trace):
        trace = Trace(trace)
    last_seen: dict = {}
    for idx in range(len(trace) - 1, -1, -1):
        req = trace[idx]
        req.next_access = last_seen.get(req.key, NO_NEXT_ACCESS)
        last_seen[req.key] = idx
    trace._annotated = True
    return trace


def requests_from_arrays(
    keys: Iterable[int], sizes: Iterable[int], times: Iterable[int] | None = None
) -> List[Request]:
    """Build a request list from parallel key/size (and optional time) arrays.

    Convenience used by the numpy-vectorised trace generators: the bulk of
    trace synthesis happens in numpy, and only the final materialisation
    allocates Python objects.
    """
    keys = list(keys)
    sizes = list(sizes)
    if times is None:
        times = range(len(keys))
    return [Request(int(t), int(k), int(s)) for t, k, s in zip(times, keys, sizes)]
