"""Experiment sweep runner: policy × trace × cache-size grids.

The experiment modules express each figure as a grid over policy factories
and traces; :func:`run_grid` executes it and returns tidy row dicts that the
benches print as tables.  Policies are constructed fresh per cell from a
factory ``f(capacity) -> CachePolicy``, so no state leaks across cells.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Sequence

from typing import TYPE_CHECKING

from repro.sim.engine import SimResult, simulate
from repro.sim.request import Trace

if TYPE_CHECKING:
    from repro.cache.base import CachePolicy

__all__ = ["PolicyFactory", "run_grid", "format_table"]

PolicyFactory = Callable[[int], "CachePolicy"]


def run_grid(
    policies: Mapping[str, PolicyFactory],
    traces: Iterable[Trace],
    cache_fractions: Mapping[str, Sequence[float]] | Sequence[float],
    warmup_frac: float = 0.0,
    measure_memory: bool = False,
) -> List[dict]:
    """Run every policy on every trace at every cache size.

    Parameters
    ----------
    policies:
        Display name → factory.
    traces:
        Trace objects (reused across policies; traces are read-only apart
        from next-access annotation).
    cache_fractions:
        Either a flat sequence of fractions of the working-set size, or a
        per-trace-name mapping (the paper's absolute 64/128/256 GB sizes
        correspond to different fractions of each workload's WSS).
    warmup_frac:
        Fraction of the trace excluded from aggregate metrics.
    """
    rows: List[dict] = []
    for trace in traces:
        if isinstance(cache_fractions, Mapping):
            fractions = cache_fractions[trace.name]
        else:
            fractions = cache_fractions
        wss = trace.working_set_size
        warmup = int(len(trace) * warmup_frac)
        for frac in fractions:
            cap = max(int(wss * frac), 1)
            for name, factory in policies.items():
                policy = factory(cap)
                result = simulate(
                    policy, trace, warmup=warmup, measure_memory=measure_memory
                )
                row = result.as_dict()
                row["policy"] = name
                row["cache_fraction"] = frac
                rows.append(row)
    return rows


def format_table(
    rows: List[dict],
    row_key: str = "policy",
    col_key: str = "trace",
    value_key: str = "miss_ratio",
    fmt: str = "{:.4f}",
) -> str:
    """Pivot rows into a printable text table (paper-style)."""
    col_values: List = []
    row_values: List = []
    cells: Dict = {}
    for r in rows:
        cv, rv = r[col_key], r[row_key]
        if cv not in col_values:
            col_values.append(cv)
        if rv not in row_values:
            row_values.append(rv)
        cells[(rv, cv)] = r[value_key]
    width = max([len(str(v)) for v in row_values] + [10])
    header = " " * width + "  " + "  ".join(f"{str(c):>10}" for c in col_values)
    lines = [header]
    for rv in row_values:
        cells_str = []
        for cv in col_values:
            v = cells.get((rv, cv))
            cells_str.append(f"{fmt.format(v) if v is not None else '-':>10}")
        lines.append(f"{str(rv):<{width}}  " + "  ".join(cells_str))
    return "\n".join(lines)
