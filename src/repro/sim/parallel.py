"""Process-parallel experiment sweeps.

Experiment grids are embarrassingly parallel — each (policy, trace, size)
cell is an independent replay — so the full Figure 8/10 grids fan out over
a process pool (per the HPC guides: parallelise at the coarsest independent
granularity; each worker re-generates its trace from the spec rather than
pickling multi-MB request lists across processes).

Workers are specified declaratively — policy *name* + kwargs and workload
*name* + scale — so the task payload is a few strings, and determinism is
preserved exactly (same seeds as the serial path).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = ["default_worker_count", "run_grid_parallel", "mrc_sweep", "Cell", "MrcCell"]


def default_worker_count() -> int:
    """Affinity-aware usable-CPU count for pool sizing.

    ``os.cpu_count()`` reports the machine; a containerised or
    ``taskset``-restricted process may own far fewer cores, and
    oversubscribing a trace-replay pool just thrashes.  Preference order:
    ``os.process_cpu_count`` (3.13+), the scheduler affinity mask, then
    plain ``cpu_count`` — never less than 1.
    """
    getter = getattr(os, "process_cpu_count", None)
    if getter is not None:
        n = getter()
        if n:
            return n
    if hasattr(os, "sched_getaffinity"):
        try:
            return max(len(os.sched_getaffinity(0)), 1)
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return os.cpu_count() or 1

#: (policy_name, policy_kwargs, workload_name, n_requests, cache_fraction)
Cell = Tuple[str, dict, str, int, float]


def _run_cell(cell: Cell) -> dict:
    # Imports inside the worker: keeps the module importable without
    # multiprocessing side effects and plays nicely with spawn start.
    from repro.cache.registry import make_policy
    from repro.sim.engine import simulate
    from repro.traces.cdn import make_workload

    policy_name, kwargs, workload, n_requests, fraction = cell
    trace = make_workload(workload, n_requests=n_requests)
    cap = max(int(trace.working_set_size * fraction), 1)
    result = simulate(make_policy(policy_name, cap, **kwargs), trace)
    row = result.as_dict()
    row["policy"] = policy_name
    row["cache_fraction"] = fraction
    return row


def run_grid_parallel(
    policies: Mapping[str, dict] | Sequence[str],
    workloads: Sequence[str],
    n_requests: int,
    cache_fractions: Mapping[str, Sequence[float]] | Sequence[float],
    max_workers: Optional[int] = None,
) -> List[dict]:
    """Parallel analogue of :func:`repro.sim.runner.run_grid`.

    Parameters
    ----------
    policies:
        Policy names (from the registry, plus "SCIP"/"SCI"), optionally
        mapping to constructor kwargs.
    workloads:
        Workload names from :data:`repro.traces.cdn.WORKLOADS`.
    n_requests:
        Trace length (each worker regenerates its trace deterministically).
    cache_fractions:
        Flat fractions or per-workload mapping.
    max_workers:
        Pool size; ``None`` uses :func:`default_worker_count` (affinity-
        aware, not raw ``os.cpu_count``), clamped to the cell count.  A
        one-cell grid (or ``max_workers=1``) runs in-process — no pool
        spawn, pickling, or fork overhead for what is a serial job anyway.
    """
    if not isinstance(policies, Mapping):
        policies = {name: {} for name in policies}
    cells: List[Cell] = []
    for workload in workloads:
        fractions = (
            cache_fractions[workload]
            if isinstance(cache_fractions, Mapping)
            else cache_fractions
        )
        for fraction in fractions:
            for name, kwargs in policies.items():
                cells.append((name, dict(kwargs), workload, n_requests, fraction))
    if max_workers is None:
        max_workers = default_worker_count()
    if max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")
    max_workers = min(max_workers, max(len(cells), 1))
    if max_workers == 1 or len(cells) <= 1:
        return [_run_cell(cell) for cell in cells]
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        return list(pool.map(_run_cell, cells))


#: (bin_path, policy_name, cache_bytes, chunk_size)
MrcCell = Tuple[str, str, int, int]


def _run_mrc_cell(cell: MrcCell) -> dict:
    from repro.sim.batch import batch_replay

    path, policy, cache_bytes, chunk_size = cell
    core = batch_replay(policy, path, cache_bytes, chunk_size=chunk_size)
    st = core.stats
    classified = st.hits + st.misses
    return {
        "policy": policy,
        "cache_bytes": cache_bytes,
        "miss_ratio": st.misses / classified if classified else 0.0,
        "byte_miss_ratio": (
            st.bytes_missed / (st.bytes_hit + st.bytes_missed)
            if st.bytes_hit + st.bytes_missed
            else 0.0
        ),
        "hits": st.hits,
        "misses": st.misses,
        "bypasses": st.bypasses,
        "evictions": st.evictions,
        "spilled": core.spilled,
    }


def mrc_sweep(
    path,
    policy: str = "LRU",
    fractions: Sequence[float] = (0.005, 0.01, 0.05, 0.1),
    cache_sizes: Optional[Sequence[int]] = None,
    chunk_size: int = 1 << 20,
    max_workers: Optional[int] = None,
) -> List[dict]:
    """Trace-parallel miss-ratio curve over one binary trace file.

    Each cache size is an independent batch replay, so the sweep fans the
    *same* ``.bin`` file out over a process pool — workers mmap it
    independently and share its pages through the OS cache, so a
    paper-scale trace is read from disk once, not once per point.

    ``fractions`` are of the header's working-set estimate (the Figure 1
    x-axis); pass explicit ``cache_sizes`` (bytes) to bypass the estimate.
    Rows come back sorted by ``cache_bytes``, each tagged with
    ``cache_fraction`` when derived from a fraction.
    """
    from repro.sim.batch import BATCH_POLICIES, batch_supported
    from repro.traces.binfmt import BinTraceReader

    if not batch_supported(policy):
        raise KeyError(
            f"policy {policy!r} has no batch core; batch-capable: {sorted(BATCH_POLICIES)}"
        )
    path = str(path)
    if cache_sizes is None:
        with BinTraceReader(path) as reader:
            wss = reader.wss_estimate
        sizes = [max(int(wss * f), 1) for f in fractions]
        frac_of = dict(zip(sizes, fractions))
    else:
        sizes = [int(c) for c in cache_sizes]
        if any(c < 1 for c in sizes):
            raise ValueError(f"cache_sizes must be >= 1, got {cache_sizes}")
        frac_of = {}
    cells: List[MrcCell] = [(path, policy, c, chunk_size) for c in sizes]
    if max_workers is None:
        max_workers = default_worker_count()
    if max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")
    max_workers = min(max_workers, max(len(cells), 1))
    if max_workers == 1 or len(cells) <= 1:
        rows = [_run_mrc_cell(cell) for cell in cells]
    else:
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            rows = list(pool.map(_run_mrc_cell, cells))
    for row in rows:
        if row["cache_bytes"] in frac_of:
            row["cache_fraction"] = frac_of[row["cache_bytes"]]
    rows.sort(key=lambda r: r["cache_bytes"])
    return rows
