"""Simulation metrics: aggregate and interval-resolved hit/miss accounting.

The engine owns these counters (policies keep their own, but experiment
results always come from the engine so a buggy policy cannot misreport).
Interval series feed the TDC monitoring plots (Figure 6) and the adaptive
components' diagnostics.
"""

from __future__ import annotations

from typing import List, Optional

__all__ = ["MetricsCollector", "IntervalPoint"]


class IntervalPoint:
    """One interval of the time-resolved series."""

    __slots__ = ("start", "end", "requests", "hits", "bytes_requested", "bytes_missed")

    def __init__(self, start: int):
        self.start = start
        self.end = start
        self.requests = 0
        self.hits = 0
        self.bytes_requested = 0
        self.bytes_missed = 0

    @property
    def miss_ratio(self) -> float:
        return 1.0 - self.hits / self.requests if self.requests else 0.0

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    @property
    def byte_miss_ratio(self) -> float:
        return self.bytes_missed / self.bytes_requested if self.bytes_requested else 0.0

    def as_dict(self) -> dict:
        return {
            "start": self.start,
            "end": self.end,
            "requests": self.requests,
            "miss_ratio": self.miss_ratio,
            "byte_miss_ratio": self.byte_miss_ratio,
        }


class MetricsCollector:
    """Aggregate + per-interval metrics with an optional warm-up cutoff.

    Parameters
    ----------
    warmup:
        Requests ignored by the *aggregate* counters (the interval series
        still records them, flagged by position).  The paper's simulator
        starts from an empty cache; a warm-up window avoids crediting
        compulsory-miss noise to the policies.
    interval:
        Requests per interval point (0 disables the series).
    """

    def __init__(self, warmup: int = 0, interval: int = 0):
        if warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {warmup}")
        self.warmup = warmup
        self.interval = interval
        self.requests = 0
        self.hits = 0
        self.misses = 0
        self.bytes_requested = 0
        self.bytes_missed = 0
        self._seen = 0
        self.series: List[IntervalPoint] = []
        self._current: Optional[IntervalPoint] = None

    def record(self, size: int, hit: bool) -> None:
        """Record one request outcome."""
        self._seen += 1
        if self.interval > 0:
            if self._current is None:
                self._current = IntervalPoint(self._seen - 1)
            cur = self._current
            cur.end = self._seen
            cur.requests += 1
            cur.bytes_requested += size
            if hit:
                cur.hits += 1
            else:
                cur.bytes_missed += size
            if cur.requests >= self.interval:
                self.series.append(cur)
                self._current = None
        if self._seen <= self.warmup:
            return
        self.requests += 1
        self.bytes_requested += size
        if hit:
            self.hits += 1
        else:
            self.misses += 1
            self.bytes_missed += size

    def flush(self) -> None:
        """Close the trailing partial interval."""
        if self._current is not None and self._current.requests:
            self.series.append(self._current)
            self._current = None

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.requests if self.requests else 0.0

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.requests if self.requests else 0.0

    @property
    def byte_miss_ratio(self) -> float:
        return self.bytes_missed / self.bytes_requested if self.bytes_requested else 0.0

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "hits": self.hits,
            "misses": self.misses,
            "miss_ratio": self.miss_ratio,
            "byte_miss_ratio": self.byte_miss_ratio,
            "warmup": self.warmup,
        }
