"""``repro.orchestrate`` — online shadow-cache policy orchestration.

The SCIP bandit adapts *where* a fixed policy inserts; this subsystem
adapts *which policy serves at all*.  Under nonstationary CDN traffic
(catalog churn, size-mix shifts, flash crowds, diurnal rotation — see
:mod:`repro.traces.drift`) no fixed replacement policy dominates, so the
orchestrator continuously answers "who would be best right now" with
three pieces:

* :class:`~repro.orchestrate.sampler.SpatialSampler` — SHARDS spatial
  hash sampling: shadow caches replay only a hash-selected fraction ``R``
  of the stream against capacity ``R · C``, keeping per-object reuse
  structure intact at ~``R``× the cost;
* :class:`~repro.orchestrate.shadow.ShadowRack` — K candidate policies as
  sampled mini-caches beside the live cache, scored by exponentially
  decayed windowed miss ratios (object or byte);
* :class:`~repro.orchestrate.controller.Orchestrator` — a switching
  controller with hysteresis, cooldown and regret accounting that
  promotes the winning shadow through a hot swap: synchronous via
  :meth:`repro.tdc.node.StorageNode.swap_policy`, or live on a running
  service via :meth:`repro.serve.service.CacheService.swap_policy`
  (executed on each shard's owner task — no locks).

``repro orchestrate-bench`` (:mod:`repro.orchestrate.bench`) measures the
orchestrated cache against every fixed candidate on a drift trace and
writes ``BENCH_orchestrate.json`` with an embedded, replayable manifest.
"""

from repro.orchestrate.bench import (
    DEFAULT_CANDIDATES,
    ORCHESTRATE_BENCH_SCHEMA,
    config_from_doc,
    format_orchestrate_doc,
    run_orchestrate_bench,
    write_orchestrate_doc,
)
from repro.orchestrate.controller import (
    ControllerConfig,
    Orchestrator,
    SwitchController,
    SwitchEvent,
    resolve_candidates,
    run_orchestrated,
)
from repro.orchestrate.sampler import SpatialSampler
from repro.orchestrate.shadow import DecayedRatio, ShadowCache, ShadowRack

__all__ = [
    "SpatialSampler",
    "DecayedRatio",
    "ShadowCache",
    "ShadowRack",
    "ControllerConfig",
    "SwitchController",
    "SwitchEvent",
    "Orchestrator",
    "resolve_candidates",
    "run_orchestrated",
    "ORCHESTRATE_BENCH_SCHEMA",
    "DEFAULT_CANDIDATES",
    "run_orchestrate_bench",
    "config_from_doc",
    "format_orchestrate_doc",
    "write_orchestrate_doc",
]
