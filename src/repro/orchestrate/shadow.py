"""Shadow caches: K candidate policies replaying the sampled stream.

A :class:`ShadowRack` runs every candidate policy as a mini-cache at
``R · C`` capacity, fed only the :class:`~repro.orchestrate.sampler.
SpatialSampler`-selected fraction of the live request stream.  Each shadow
tracks two views of its quality:

* **cumulative** object/byte miss ratios (the policy's own
  :class:`~repro.cache.base.CacheStats`) — what the SHARDS validation
  tests compare against ground truth;
* **windowed** miss ratios with exponential decay (:class:`DecayedRatio`)
  — what the switching controller compares, because under nonstationary
  traffic the question is "who is best *now*", not "who was best since
  boot".

All shadows see exactly the same sampled sub-stream, so their scores are
directly comparable: sampling noise is common-mode between candidates even
when it biases the absolute miss ratio.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional

from repro.cache.base import CachePolicy
from repro.orchestrate.sampler import SpatialSampler
from repro.sim.request import Request

__all__ = ["DecayedRatio", "ShadowCache", "ShadowRack"]


class DecayedRatio:
    """Exponentially decayed ratio of two accumulators (misses / requests).

    Both numerator and denominator decay by the same factor per
    observation, so the ratio is a smoothly windowed average with
    effective window ``~1 / (1 - decay)`` observations; early on (before a
    full window accrues) it degrades gracefully to the plain cumulative
    ratio instead of being dominated by an arbitrary prior.
    """

    __slots__ = ("decay", "num", "den")

    def __init__(self, window: int):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.decay = 1.0 - 1.0 / window
        self.num = 0.0
        self.den = 0.0

    def update(self, indicator: float, weight: float = 1.0) -> None:
        self.num = self.num * self.decay + indicator * weight
        self.den = self.den * self.decay + weight

    @property
    def value(self) -> float:
        """The windowed ratio; 1.0 (pessimal) before any observation."""
        return self.num / self.den if self.den > 0 else 1.0


class ShadowCache:
    """One candidate policy plus its windowed quality trackers."""

    __slots__ = ("name", "policy", "object_mr", "byte_mr")

    def __init__(self, name: str, policy: CachePolicy, window: int):
        self.name = name
        self.policy = policy
        self.object_mr = DecayedRatio(window)
        self.byte_mr = DecayedRatio(window)

    def observe(self, req: Request) -> bool:
        hit = self.policy.request(req)
        miss = 0.0 if hit else 1.0
        self.object_mr.update(miss)
        self.byte_mr.update(miss, float(req.size))
        return hit

    def score(self, objective: str = "object") -> float:
        return self.object_mr.value if objective == "object" else self.byte_mr.value


class ShadowRack:
    """The rack of shadow caches beside one live cache.

    Parameters
    ----------
    candidates:
        Ordered mapping ``name -> factory(capacity) -> CachePolicy``.
        Order matters: the first entry is the conventional starting policy.
    capacity:
        The **live** cache capacity; shadows run at ``rate ·`` this.
    rate:
        SHARDS sample rate (see :class:`SpatialSampler`).
    seed:
        Sampler seed — part of the run's reproducibility record.
    window:
        Effective decay window in *sampled* requests for the windowed
        scores (``rate · window`` live requests' worth of signal).
    registry:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; per-candidate
        ``shadow_requests`` / ``shadow_hits`` counters land here.
    probe:
        Optional obs probe; emits a ``shadow_hit`` event per sampled
        shadow hit (high volume — filter or leave detached in production).
    """

    def __init__(
        self,
        candidates: Mapping[str, Callable[[int], CachePolicy]],
        capacity: int,
        rate: float = 0.1,
        seed: int = 0,
        window: int = 2_000,
        registry=None,
        probe=None,
    ):
        if not candidates:
            raise ValueError("need at least one candidate policy")
        self.sampler = SpatialSampler(rate, seed=seed)
        self.capacity = int(capacity)
        self.shadow_capacity = self.sampler.scaled_capacity(capacity)
        self.shadows: Dict[str, ShadowCache] = {}
        for name, factory in candidates.items():
            self.shadows[name] = ShadowCache(name, factory(self.shadow_capacity), window)
        self.sampled_requests = 0
        self.probe = probe
        self._hit_counters = None
        self._req_counter = None
        if registry is not None:
            self._req_counter = registry.counter("shadow_requests")
            self._hit_counters = {
                name: registry.counter("shadow_hits", policy=name) for name in self.shadows
            }

    @property
    def names(self) -> list:
        return list(self.shadows)

    def observe(self, req: Request) -> bool:
        """Offer one live request to the rack; returns whether it was
        sampled (and therefore replayed into every shadow)."""
        if not self.sampler.sampled(req.key):
            return False
        self.sampled_requests += 1
        if self._req_counter is not None:
            self._req_counter.inc()
        probe = self.probe
        for shadow in self.shadows.values():
            hit = shadow.observe(req)
            if hit:
                if self._hit_counters is not None:
                    self._hit_counters[shadow.name].inc()
                if probe is not None:
                    probe.emit("shadow_hit", key=req.key, policy=shadow.name)
        return True

    def scores(self, objective: str = "object") -> Dict[str, float]:
        """Windowed miss-ratio score per candidate (lower is better)."""
        return {name: s.score(objective) for name, s in self.shadows.items()}

    def best(self, objective: str = "object") -> str:
        """Name of the currently best candidate (ties break by rack order)."""
        scores = self.scores(objective)
        return min(scores, key=scores.get)

    def cumulative(self) -> Dict[str, dict]:
        """Per-candidate cumulative policy counters (stable, un-windowed)."""
        return {name: s.policy.stats.as_dict() for name, s in self.shadows.items()}

    def snapshot(self, objective: str = "object") -> dict:
        return {
            "sample_rate": self.sampler.rate,
            "seed": self.sampler.seed,
            "shadow_capacity": self.shadow_capacity,
            "sampled_requests": self.sampled_requests,
            "scores": self.scores(objective),
            "cumulative": self.cumulative(),
        }
