"""The switching controller: promote the best shadow policy, carefully.

The raw decision rule — "serve whatever shadow is best right now" — flaps:
windowed scores wander within sampling noise, and every switch has a real
cost (the migrated resident set obeys the *old* policy's placement until
it churns through).  The controller therefore wraps three dampers around
the comparison:

* **hysteresis** — the challenger must beat the incumbent's score by a
  relative margin, not merely edge it;
* **cooldown** — after a switch, no new switch for a fixed number of live
  requests, so the promoted policy's effect is actually measured before
  being second-guessed;
* **minimum evidence** — no switching until every shadow has replayed
  enough sampled requests to have meaningful windowed scores.

Regret accounting: at every evaluation the live cache's windowed miss
ratio is compared against the best shadow's; the positive excess times the
window size accumulates as an *estimated excess miss count* — the price
paid (in misses) for not having run the oracle-best candidate all along.
A bounded, slowly-growing regret is the orchestrator working; a regret
growing linearly at a constant rate is a controller stuck on the wrong
policy.

:class:`Orchestrator` glues sampler + rack + controller to a live cache
through a single ``swap(name, factory)`` callback, so the same logic
drives a synchronous :meth:`repro.tdc.node.StorageNode.swap_policy` and
the asyncio :meth:`repro.serve.service.CacheService.swap_policy` path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

from repro.cache.base import CachePolicy
from repro.orchestrate.shadow import DecayedRatio, ShadowRack
from repro.sim.request import Request
from repro.tdc.node import StorageNode

__all__ = [
    "ControllerConfig",
    "HysteresisGate",
    "SwitchEvent",
    "SwitchController",
    "Orchestrator",
    "resolve_candidates",
    "run_orchestrated",
]


def resolve_candidates(names) -> Dict[str, Callable[[int], CachePolicy]]:
    """Resolve display names to policy factories via the unified
    :mod:`repro.cache.registry` (the zoo plus SCIP/SCI)."""
    from repro.cache.registry import resolve_policy

    return {name: resolve_policy(name) for name in names}


@dataclass
class ControllerConfig:
    """Switching-controller knobs (see the module docstring for rationale)."""

    #: Relative score margin a challenger must win by (0.10 = 10 % fewer
    #: windowed misses than the incumbent's shadow).
    hysteresis: float = 0.10
    #: Absolute score margin required on top of the relative one — in
    #: low-miss regimes (windowed scores near zero) relative gaps are
    #: mostly sampling noise, and a switch costs a possible cold restart.
    min_gap: float = 0.01
    #: Live requests that must pass after a switch before the next one.
    cooldown: int = 10_000
    #: Minimum sampled requests the rack must have replayed before any
    #: switch (shadow warm-up).
    min_samples: int = 300
    #: Live requests between controller evaluations.
    eval_every: int = 500
    #: Scoring objective: ``"object"`` or ``"byte"`` miss ratio.
    objective: str = "object"

    def __post_init__(self) -> None:
        if not 0.0 <= self.hysteresis < 1.0:
            raise ValueError(f"hysteresis must be in [0, 1), got {self.hysteresis}")
        if self.eval_every < 1:
            raise ValueError(f"eval_every must be >= 1, got {self.eval_every}")
        if self.objective not in ("object", "byte"):
            raise ValueError(f"objective must be 'object' or 'byte', got {self.objective!r}")


@dataclass
class SwitchEvent:
    """One promotion decision, for the bench doc and the event stream."""

    at: int  # live request index of the decision
    frm: str
    to: str
    scores: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {"at": self.at, "from": self.frm, "to": self.to, "scores": dict(self.scores)}


class HysteresisGate:
    """The reusable damper triple: evidence + cooldown + win margins.

    Extracted from :class:`SwitchController` so other online decision
    loops — the tenancy :class:`~repro.tenancy.allocator.CapacityAllocator`
    re-solving capacity splits — apply exactly the same anti-flap
    semantics to their own "act now or hold?" question:

    * :meth:`ready` — enough evidence accrued and the cooldown elapsed;
    * :meth:`improves` — the challenger beats the incumbent by the
      relative ``hysteresis`` margin *and* the absolute ``min_gap``
      (scores are lower-is-better);
    * :meth:`fire` — record the action, starting the next cooldown.
    """

    __slots__ = ("config", "last_fired_at")

    def __init__(self, config: Optional[ControllerConfig] = None):
        self.config = config if config is not None else ControllerConfig()
        self.last_fired_at: Optional[int] = None

    def ready(self, now: int, sampled: int) -> bool:
        """Evidence + cooldown: may any action be taken at ``now``?"""
        cfg = self.config
        if sampled < cfg.min_samples:
            return False
        return self.last_fired_at is None or now - self.last_fired_at >= cfg.cooldown

    def improves(self, challenger: float, incumbent: float) -> bool:
        """Does ``challenger`` (lower-is-better) win by both margins?"""
        cfg = self.config
        return (
            challenger < incumbent * (1.0 - cfg.hysteresis)
            and incumbent - challenger >= cfg.min_gap
        )

    def fire(self, now: int) -> None:
        """Record an action at ``now``; the cooldown restarts here."""
        self.last_fired_at = now


class SwitchController:
    """Hysteresis + cooldown gate over the rack's windowed scores."""

    def __init__(self, config: Optional[ControllerConfig] = None):
        self.gate = HysteresisGate(config)
        self.config = self.gate.config
        self.evaluations = 0

    @property
    def last_switch_at(self) -> Optional[int]:
        return self.gate.last_fired_at

    @last_switch_at.setter
    def last_switch_at(self, value: Optional[int]) -> None:
        self.gate.last_fired_at = value

    def consider(
        self, now: int, current: str, scores: Mapping[str, float], sampled: int
    ) -> Optional[str]:
        """Return the challenger to promote, or ``None`` to hold.

        Parameters
        ----------
        now:
            Live request index (the cooldown clock).
        current:
            Name of the policy serving the live cache.
        scores:
            The rack's windowed scores (lower is better).
        sampled:
            Total sampled requests the rack has replayed (evidence gate).
        """
        self.evaluations += 1
        if not self.gate.ready(now, sampled):
            return None
        best = min(scores, key=scores.get)
        if best == current:
            return None
        if self.gate.improves(scores[best], scores[current]):
            self.gate.fire(now)
            return best
        return None


class Orchestrator:
    """Online policy orchestration for one live cache.

    Feed every live request through :meth:`record` (after the live cache
    has served it); the orchestrator replays the sampled sub-stream into
    the shadow rack, evaluates every ``eval_every`` requests, and invokes
    ``swap`` when the controller promotes a challenger.

    Parameters
    ----------
    candidates:
        Ordered ``name -> factory`` mapping; the first name must be the
        policy the live cache starts on (pass ``current=`` otherwise).
    capacity:
        Live cache capacity (shadows scale off it).
    swap:
        ``(name, factory) -> None`` callback executing the live promotion.
        ``None`` turns the orchestrator into a pure observer (scores and
        regret still accumulate — useful for what-if analysis).
    rate, seed, window:
        Shadow rack parameters (see :class:`ShadowRack`).
    config:
        :class:`ControllerConfig`.
    registry:
        Optional metrics registry: ``orchestrate_regret`` gauge,
        ``orchestrate_switches`` counter, per-candidate
        ``shadow_miss_ratio`` gauges, plus the rack's counters.
    probe:
        Optional obs probe (``policy_switch`` on promotion; the rack emits
        ``shadow_hit``).
    tracer:
        Optional :class:`repro.obs.span.Tracer`: each promotion becomes a
        ``policy_switch`` trace whose root wraps the swap callback, so the
        cost of a live migration is measurable next to the requests it
        delayed.
    """

    def __init__(
        self,
        candidates: Mapping[str, Callable[[int], CachePolicy]],
        capacity: int,
        swap: Optional[Callable[[str, Callable[[int], CachePolicy]], None]] = None,
        current: Optional[str] = None,
        rate: float = 0.1,
        seed: int = 0,
        window: int = 2_000,
        config: Optional[ControllerConfig] = None,
        registry=None,
        probe=None,
        tracer=None,
    ):
        self.candidates = dict(candidates)
        if current is None:
            current = next(iter(self.candidates))
        if current not in self.candidates:
            raise ValueError(f"current policy {current!r} not among candidates")
        self.current = current
        self.capacity = int(capacity)
        self.swap = swap
        self.rack = ShadowRack(
            candidates, capacity, rate=rate, seed=seed, window=window,
            registry=registry, probe=probe,
        )
        self.controller = SwitchController(config)
        self.probe = probe
        self.tracer = tracer
        cfg = self.controller.config
        self.live_mr = DecayedRatio(max(int(cfg.eval_every * 2), 1))
        self.regret = 0.0
        self.switches: List[SwitchEvent] = []
        self.t = 0
        self._window_misses = 0
        self._window_requests = 0
        self._regret_gauge = None
        self._switch_counter = None
        self._score_gauges = None
        if registry is not None:
            self._regret_gauge = registry.gauge("orchestrate_regret")
            self._switch_counter = registry.counter("orchestrate_switches")
            self._score_gauges = {
                name: registry.gauge("shadow_miss_ratio", policy=name)
                for name in self.candidates
            }

    # -- the per-request hook ------------------------------------------------
    def record(self, req: Request, hit: bool) -> Optional[SwitchEvent]:
        """Account one live request; returns the switch performed, if any."""
        self.t += 1
        miss = 0.0 if hit else 1.0
        self.live_mr.update(miss)
        self._window_requests += 1
        if not hit:
            self._window_misses += 1
        self.rack.observe(req)
        if self.t % self.controller.config.eval_every == 0:
            return self._evaluate()
        return None

    # -- evaluation ----------------------------------------------------------
    def _evaluate(self) -> Optional[SwitchEvent]:
        objective = self.controller.config.objective
        scores = self.rack.scores(objective)
        if self._score_gauges is not None:
            for name, value in scores.items():
                self._score_gauges[name].set(value)
        # Regret: estimated excess misses of the live cache over the best
        # shadow, accumulated over this evaluation window.
        if self._window_requests and self.rack.sampled_requests:
            best_score = min(scores.values())
            window_mr = self._window_misses / self._window_requests
            self.regret += max(0.0, window_mr - best_score) * self._window_requests
            if self._regret_gauge is not None:
                self._regret_gauge.set(self.regret)
        self._window_misses = 0
        self._window_requests = 0
        target = self.controller.consider(
            self.t, self.current, scores, self.rack.sampled_requests
        )
        if target is None:
            return None
        event = SwitchEvent(at=self.t, frm=self.current, to=target, scores=scores)
        self.switches.append(event)
        if self.swap is not None:
            span = (
                self.tracer.start_trace(
                    "policy_switch", frm=event.frm, to=event.to, at=self.t
                )
                if self.tracer is not None
                else None
            )
            self.swap(target, self.candidates[target])
            if span is not None:
                span.end()
        self.current = target
        if self._switch_counter is not None:
            self._switch_counter.inc()
        if self.probe is not None:
            self.probe.emit(
                "policy_switch",
                at=self.t,
                frm=event.frm,
                to=event.to,
                score_from=scores[event.frm],
                score_to=scores[event.to],
            )
        return event

    # -- introspection -------------------------------------------------------
    def summary(self) -> dict:
        return {
            "requests": self.t,
            "current": self.current,
            "switches": [e.as_dict() for e in self.switches],
            "regret_excess_misses": self.regret,
            "live_windowed_mr": self.live_mr.value,
            "shadow": self.rack.snapshot(self.controller.config.objective),
            "evaluations": self.controller.evaluations,
        }


def run_orchestrated(
    trace,
    candidates: Mapping[str, Callable[[int], CachePolicy]],
    capacity: int,
    rate: float = 0.1,
    seed: int = 0,
    window: int = 2_000,
    config: Optional[ControllerConfig] = None,
    registry=None,
    probe=None,
) -> dict:
    """Replay a trace through an orchestrated :class:`StorageNode`.

    The node starts on the first candidate (the "deployed LRU" of the TDC
    story); promotions hot-swap via :meth:`StorageNode.swap_policy`, which
    preserves the resident set.  Returns the orchestrator summary plus the
    live cache's end-to-end stats.
    """
    candidates = dict(candidates)
    first = next(iter(candidates))
    node = StorageNode("orchestrated", candidates[first](capacity))
    orch = Orchestrator(
        candidates,
        capacity,
        swap=lambda name, factory: node.swap_policy(factory),
        current=first,
        rate=rate,
        seed=seed,
        window=window,
        config=config,
        registry=registry,
        probe=probe,
    )
    hits = misses = bytes_hit = bytes_missed = 0
    record = orch.record
    get = node.get
    for req in trace:
        hit = get(req)
        if hit:
            hits += 1
            bytes_hit += req.size
        else:
            misses += 1
            bytes_missed += req.size
        record(req, hit)
    n = hits + misses
    total_bytes = bytes_hit + bytes_missed
    result = orch.summary()
    result["live"] = {
        "requests": n,
        "hits": hits,
        "misses": misses,
        "miss_ratio": misses / n if n else 0.0,
        "byte_miss_ratio": bytes_missed / total_bytes if total_bytes else 0.0,
        "final_policy": orch.current,
    }
    return result
