"""SHARDS-style spatial hash sampling for shadow caches.

Shadow caches must be cheap — running K full-size candidate policies
beside the live cache would K+1-tuple the metadata footprint and the
per-request work.  SHARDS (Waldspurger et al., FAST'15) shows that a cache
model fed only the requests whose **key hash** falls below a threshold
``R`` (the sample rate), with its capacity scaled to ``R · C``, reproduces
the full-trace miss ratio at capacity ``C`` to within a small error: the
key-hash filter keeps *every* request of a sampled object, so per-object
reuse structure is intact, and reuse *distances* scale by ``R`` uniformly
— exactly compensated by the scaled capacity.

(Request-level thinning would instead stretch reuse distances without
compensation; see :func:`repro.traces.transform.sample_objects` for the
same argument on the trace side.)

:class:`SpatialSampler` is the hash filter: deterministic per (rate,
seed), O(1) per key, integer-only on the hot path.  The hash is a
splitmix64 finalizer — consecutive integer keys (the synthetic
generators' raw namespaces) decorrelate fully, so the sampled population
is unbiased even on unscrambled traces.
"""

from __future__ import annotations

import hashlib

__all__ = ["SpatialSampler"]

_M64 = (1 << 64) - 1


def _mix64(x: int) -> int:
    """splitmix64 finalizer: a bijective 64-bit avalanche mix."""
    x &= _M64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _M64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _M64
    x ^= x >> 31
    return x


class SpatialSampler:
    """Keep a key iff ``mix(key ^ seed) / 2^64 < rate``.

    Parameters
    ----------
    rate:
        Sample rate ``R`` in ``(0, 1]``.  ``1.0`` keeps everything (the
        shadow then replays the full stream at full scale).
    seed:
        Decorrelates the sampled population between runs (and between
        racks, so two racks never study the same biased subset).
    """

    __slots__ = ("rate", "seed", "_threshold", "_salt")

    def __init__(self, rate: float, seed: int = 0):
        if not 0.0 < rate <= 1.0:
            raise ValueError(f"sample rate must be in (0, 1], got {rate}")
        self.rate = float(rate)
        self.seed = int(seed)
        self._threshold = int(self.rate * (1 << 64))
        self._salt = _mix64(self.seed ^ 0xA5A5A5A5A5A5A5A5)

    def sampled(self, key) -> bool:
        """Whether ``key`` belongs to the sampled population."""
        if isinstance(key, int):
            h = _mix64(key ^ self._salt)
        else:
            # Non-int keys (rare: string URLs in imported traces) go through
            # a stable digest — builtin hash() is salted per process and
            # would break run-to-run determinism.
            digest = hashlib.blake2b(
                repr(key).encode(), digest_size=8, key=self._salt.to_bytes(8, "big")
            ).digest()
            h = int.from_bytes(digest, "big")
        return h < self._threshold

    def scaled_capacity(self, capacity: int) -> int:
        """Shadow capacity matched to the sample rate (``R · C``, >= 1)."""
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        return max(int(capacity * self.rate), 1)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SpatialSampler(rate={self.rate}, seed={self.seed})"
