"""``repro orchestrate-bench`` — orchestration vs every fixed candidate.

One run, three measurements on the same drift trace:

1. **fixed baselines** — every candidate policy replayed alone at full
   capacity (the menu the orchestrator chooses from);
2. **orchestrated** — the live cache starting on the first candidate,
   shadows + controller promoting at runtime;
3. **comparison** — the orchestrated miss ratio relative to the best and
   worst fixed candidate (the acceptance band: within a few percent of
   the best, never behind the worst).

The resulting ``BENCH_orchestrate.json`` (schema
:data:`ORCHESTRATE_BENCH_SCHEMA`) embeds a run manifest whose ``extra``
block carries the *complete* orchestration configuration — trace family,
seed, candidate list, sample rate, controller knobs — so a run is
reproducible from the artifact alone (``config_from_doc`` rebuilds the
keyword set; the tests round-trip it).
"""

from __future__ import annotations

import json
from typing import Optional, Sequence

from repro.obs.manifest import build_manifest
from repro.obs.metrics import MetricsRegistry
from repro.orchestrate.controller import (
    ControllerConfig,
    resolve_candidates,
    run_orchestrated,
)
from repro.traces.drift import make_drift_trace

__all__ = [
    "ORCHESTRATE_BENCH_SCHEMA",
    "DEFAULT_CANDIDATES",
    "run_orchestrate_bench",
    "config_from_doc",
    "format_orchestrate_doc",
    "write_orchestrate_doc",
]

#: Version of the ``BENCH_orchestrate.json`` layout; bump on breaking changes.
ORCHESTRATE_BENCH_SCHEMA = 1

#: Default candidate menu: the deployed baseline first (the orchestrator
#: starts there), then the paper's policy, then three structurally
#: different replacement families.
DEFAULT_CANDIDATES = ("LRU", "SCIP", "SIEVE", "S4LRU", "GDSF")


def run_orchestrate_bench(
    trace: str = "diurnal",
    n_requests: int = 120_000,
    fraction: float = 0.02,
    candidates: Sequence[str] = DEFAULT_CANDIDATES,
    sample_rate: float = 0.2,
    window: int = 400,
    hysteresis: float = 0.06,
    min_gap: float = 0.015,
    cooldown: int = 10_000,
    min_samples: int = 300,
    eval_every: int = 500,
    objective: str = "object",
    seed: int = 0,
    output: Optional[str] = "BENCH_orchestrate.json",
    quick: bool = False,
) -> dict:
    """Run the orchestrate bench; returns (and optionally persists) the doc."""
    if quick:
        # CI smoke shape: a short drift trace and a two-candidate menu with
        # a decisive gap (deployed-LRU baseline vs the size-aware champion),
        # so a promotion provably fires in seconds.
        n_requests = min(n_requests, 40_000)
        if tuple(candidates) == DEFAULT_CANDIDATES:
            candidates = ("LRU", "GDSF")
    factories = resolve_candidates(candidates)
    tr = make_drift_trace(trace, n_requests=n_requests, seed=seed)
    capacity = max(int(tr.working_set_size * fraction), 1)

    fixed = {}
    for name, factory in factories.items():
        policy = factory(capacity)
        policy.replay(tr.requests)
        fixed[name] = {
            "miss_ratio": policy.stats.miss_ratio,
            "byte_miss_ratio": policy.stats.byte_miss_ratio,
            "evictions": policy.stats.evictions,
        }

    config = ControllerConfig(
        hysteresis=hysteresis,
        min_gap=min_gap,
        cooldown=cooldown,
        min_samples=min_samples,
        eval_every=eval_every,
        objective=objective,
    )
    registry = MetricsRegistry()
    orchestrated = run_orchestrated(
        tr,
        factories,
        capacity,
        rate=sample_rate,
        seed=seed,
        window=window,
        config=config,
        registry=registry,
    )

    key = "miss_ratio" if objective == "object" else "byte_miss_ratio"
    best_name = min(fixed, key=lambda n: fixed[n][key])
    worst_name = max(fixed, key=lambda n: fixed[n][key])
    orch_mr = orchestrated["live"][key]
    best_mr = fixed[best_name][key]
    worst_mr = fixed[worst_name][key]

    # n_requests is the *requested* budget, not len(tr): the generators
    # truncate bursts/sweeps, and reproducing the run means re-asking for
    # the same budget, not asking for the (smaller) realised length.
    orch_config = {
        "trace": trace,
        "n_requests": n_requests,
        "cache_fraction": fraction,
        "capacity_bytes": capacity,
        "candidates": list(factories),
        "sample_rate": sample_rate,
        "window": window,
        "hysteresis": hysteresis,
        "min_gap": min_gap,
        "cooldown": cooldown,
        "min_samples": min_samples,
        "eval_every": eval_every,
        "objective": objective,
        "seed": seed,
    }
    manifest = build_manifest(trace=tr, seed=seed, extra={"orchestrate": orch_config})
    doc = {
        "schema": ORCHESTRATE_BENCH_SCHEMA,
        "config": orch_config,
        "fixed": fixed,
        "orchestrated": orchestrated,
        "comparison": {
            "objective": objective,
            "best_fixed": best_name,
            "best_fixed_mr": best_mr,
            "worst_fixed": worst_name,
            "worst_fixed_mr": worst_mr,
            "orchestrated_mr": orch_mr,
            "rel_to_best": orch_mr / best_mr if best_mr else 0.0,
            "beats_worst": orch_mr < worst_mr,
            "n_switches": len(orchestrated["switches"]),
        },
        "registry": registry.snapshot(),
        "manifest": manifest,
    }
    if output:
        write_orchestrate_doc(doc, output)
    return doc


def config_from_doc(doc: dict) -> dict:
    """Rebuild ``run_orchestrate_bench`` keywords from a persisted doc.

    This is the reproducibility contract: everything needed to re-run the
    bench lives in the embedded manifest's ``extra.orchestrate`` block.
    """
    cfg = dict(doc["manifest"]["extra"]["orchestrate"])
    cfg["n_requests"] = cfg.pop("n_requests")
    cfg.pop("capacity_bytes", None)  # derived from trace × fraction
    cfg["fraction"] = cfg.pop("cache_fraction")
    return cfg


def write_orchestrate_doc(doc: dict, path: str) -> str:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return str(path)


def format_orchestrate_doc(doc: dict) -> str:
    """Human-readable summary of one orchestrate-bench document."""
    cfg = doc["config"]
    cmp_ = doc["comparison"]
    n_live = doc["orchestrated"]["live"]["requests"]
    lines = [
        (
            f"orchestrate bench — drift '{cfg['trace']}' × {n_live:,} "
            f"requests, cache {cfg['capacity_bytes'] / 1e6:.0f} MB, "
            f"shadows @ R={cfg['sample_rate']:g}, seed {cfg['seed']}"
        ),
        "fixed candidates ({}):".format(cmp_["objective"]),
    ]
    key = "miss_ratio" if cmp_["objective"] == "object" else "byte_miss_ratio"
    for name, row in doc["fixed"].items():
        marks = ""
        if name == cmp_["best_fixed"]:
            marks = "  <- best"
        elif name == cmp_["worst_fixed"]:
            marks = "  <- worst"
        lines.append(f"  {name:8s} mr={row[key]:.4f}{marks}")
    switches = doc["orchestrated"]["switches"]
    path = " -> ".join(
        [cfg["candidates"][0]] + [s["to"] for s in switches]
    )
    lines += [
        (
            f"orchestrated mr={cmp_['orchestrated_mr']:.4f} "
            f"({cmp_['rel_to_best']:.3f}x best fixed, beats worst: "
            f"{cmp_['beats_worst']}), {cmp_['n_switches']} switch(es): {path}"
        ),
        (
            f"regret ~{doc['orchestrated']['regret_excess_misses']:.0f} excess "
            f"misses over {n_live:,} requests; final policy "
            f"{doc['orchestrated']['live']['final_policy']}"
        ),
    ]
    return "\n".join(lines)
