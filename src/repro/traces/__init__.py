"""Synthetic CDN workloads, trace I/O, and ZRO/P-ZRO oracle analysis."""

from repro.traces.analysis import CACHE_SIZE_FRACTIONS, Fig1Row, fig1_panel, reuse_statistics
from repro.traces.cdn import WORKLOADS, make_workload, workload_names
from repro.traces.drift import (
    DRIFT_TRACES,
    diurnal,
    drift_trace_names,
    flash_crowd,
    make_drift_trace,
    popularity_churn,
    size_mix_shift,
)
from repro.traces.mrc import miss_ratio_curve, stack_distances
from repro.traces.oracle import OracleLabels, label_events, treated_replay
from repro.traces.synthetic import WorkloadSpec, generate_trace, zipf_probs
from repro.traces.transform import concat, interleave, sample_objects, slice_trace

__all__ = [
    "WorkloadSpec",
    "generate_trace",
    "zipf_probs",
    "WORKLOADS",
    "make_workload",
    "workload_names",
    "OracleLabels",
    "label_events",
    "treated_replay",
    "fig1_panel",
    "Fig1Row",
    "reuse_statistics",
    "miss_ratio_curve",
    "stack_distances",
    "CACHE_SIZE_FRACTIONS",
    "slice_trace",
    "concat",
    "interleave",
    "sample_objects",
    "DRIFT_TRACES",
    "drift_trace_names",
    "make_drift_trace",
    "popularity_churn",
    "size_mix_shift",
    "flash_crowd",
    "diurnal",
]
