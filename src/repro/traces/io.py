"""Trace file I/O.

Two formats:

* **LRB format** — whitespace-separated ``timestamp key size`` per line,
  the format the LRB simulator (and thus the paper's evaluation) consumes.
* **CSV** — ``time,key,size`` with a header, friendlier for pandas-style
  downstream analysis.

Both round-trip exactly through :class:`~repro.sim.request.Trace`.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Union

from repro.sim.request import Request, Trace

__all__ = ["write_lrb", "read_lrb", "write_csv", "read_csv"]

PathLike = Union[str, Path]


def write_lrb(trace: Trace, path: PathLike) -> None:
    """Write in the LRB simulator's ``timestamp key size`` format."""
    with open(path, "w") as fh:
        for req in trace:
            fh.write(f"{req.time} {req.key} {req.size}\n")


def read_lrb(path: PathLike, name: str | None = None) -> Trace:
    """Read an LRB-format trace file."""
    requests = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            parts = line.split()
            if not parts:
                continue
            if len(parts) != 3:
                raise ValueError(f"{path}:{lineno}: expected 'time key size', got {line!r}")
            t, k, s = parts
            requests.append(Request(int(t), int(k), int(s)))
    return Trace(requests, name=name or Path(path).stem)


def write_csv(trace: Trace, path: PathLike) -> None:
    """Write as CSV with a ``time,key,size`` header."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["time", "key", "size"])
        for req in trace:
            writer.writerow([req.time, req.key, req.size])


def read_csv(path: PathLike, name: str | None = None) -> Trace:
    """Read a ``time,key,size`` CSV trace."""
    requests = []
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header != ["time", "key", "size"]:
            raise ValueError(f"{path}: expected header 'time,key,size', got {header}")
        for row in reader:
            if not row:
                continue
            t, k, s = row
            requests.append(Request(int(t), int(k), int(s)))
    return Trace(requests, name=name or Path(path).stem)
