"""Trace file I/O.

Two text formats:

* **LRB format** — whitespace-separated ``timestamp key size`` per line,
  the format the LRB simulator (and thus the paper's evaluation) consumes.
* **CSV** — ``time,key,size`` with a header, friendlier for pandas-style
  downstream analysis.

Both round-trip exactly through :class:`~repro.sim.request.Trace`.

Each format has two readers: ``read_*`` materialises a whole
:class:`Trace` (fine for experiment-scale files), while ``iter_*``
streams ``(times, keys, sizes)`` numpy chunks with **O(chunk) memory**
— the shape the batch engine and :class:`~repro.traces.binfmt.BinTraceWriter`
consume, so paper-scale text traces convert to the binary format without
ever being resident in full (see :func:`text_to_bin`).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterator, Tuple, Union

import numpy as np

from repro.sim.request import Trace, requests_from_arrays

__all__ = [
    "write_lrb",
    "read_lrb",
    "iter_lrb",
    "write_csv",
    "read_csv",
    "iter_csv",
    "text_to_bin",
    "bin_to_text",
]

PathLike = Union[str, Path]
Chunk = Tuple[np.ndarray, np.ndarray, np.ndarray]


def write_lrb(trace: Trace, path: PathLike) -> None:
    """Write in the LRB simulator's ``timestamp key size`` format."""
    with open(path, "w") as fh:
        for req in trace:
            fh.write(f"{req.time} {req.key} {req.size}\n")


def _flush(times: list, keys: list, sizes: list) -> Chunk:
    n = len(keys)
    return (
        np.fromiter(times, np.int64, n),
        np.fromiter(keys, np.int64, n),
        np.fromiter(sizes, np.int64, n),
    )


def iter_lrb(path: PathLike, chunk_size: int = 1 << 20) -> Iterator[Chunk]:
    """Stream an LRB-format file as ``(times, keys, sizes)`` chunks.

    Peak memory is one chunk regardless of file length; malformed lines
    raise the same ``path:lineno``-prefixed :class:`ValueError` as
    :func:`read_lrb`.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    times: list = []
    keys: list = []
    sizes: list = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            parts = line.split()
            if not parts:
                continue
            if len(parts) != 3:
                raise ValueError(
                    f"{path}:{lineno}: expected 'time key size', got {line!r}"
                )
            t, k, s = parts
            times.append(int(t))
            keys.append(int(k))
            sizes.append(int(s))
            if len(keys) >= chunk_size:
                yield _flush(times, keys, sizes)
                times, keys, sizes = [], [], []
    if keys:
        yield _flush(times, keys, sizes)


def read_lrb(path: PathLike, name: str | None = None) -> Trace:
    """Read an LRB-format trace file."""
    requests: list = []
    for times, keys, sizes in iter_lrb(path):
        requests.extend(requests_from_arrays(keys, sizes, times))
    return Trace(requests, name=name or Path(path).stem)


def write_csv(trace: Trace, path: PathLike) -> None:
    """Write as CSV with a ``time,key,size`` header."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["time", "key", "size"])
        for req in trace:
            writer.writerow([req.time, req.key, req.size])


def iter_csv(path: PathLike, chunk_size: int = 1 << 20) -> Iterator[Chunk]:
    """Stream a ``time,key,size`` CSV as ``(times, keys, sizes)`` chunks."""
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    times: list = []
    keys: list = []
    sizes: list = []
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header != ["time", "key", "size"]:
            raise ValueError(f"{path}: expected header 'time,key,size', got {header}")
        for row in reader:
            if not row:
                continue
            t, k, s = row
            times.append(int(t))
            keys.append(int(k))
            sizes.append(int(s))
            if len(keys) >= chunk_size:
                yield _flush(times, keys, sizes)
                times, keys, sizes = [], [], []
    if keys:
        yield _flush(times, keys, sizes)


def read_csv(path: PathLike, name: str | None = None) -> Trace:
    """Read a ``time,key,size`` CSV trace."""
    requests: list = []
    for times, keys, sizes in iter_csv(path):
        requests.extend(requests_from_arrays(keys, sizes, times))
    return Trace(requests, name=name or Path(path).stem)


def text_to_bin(
    src: PathLike, dst: PathLike, fmt: str | None = None, chunk_size: int = 1 << 20
) -> dict:
    """Convert an LRB/CSV text trace to the binary format, streaming.

    ``fmt`` is ``"lrb"`` or ``"csv"`` (default: sniffed from the ``src``
    suffix, ``.csv`` -> csv, anything else lrb).  Returns the written
    header dict.  Peak memory is one chunk at any file size.
    """
    from repro.traces.binfmt import BinTraceWriter

    if fmt is None:
        fmt = "csv" if str(src).lower().endswith(".csv") else "lrb"
    if fmt not in ("lrb", "csv"):
        raise ValueError(f"fmt must be 'lrb' or 'csv', got {fmt!r}")
    it = iter_csv(src, chunk_size) if fmt == "csv" else iter_lrb(src, chunk_size)
    with BinTraceWriter(dst) as w:
        for times, keys, sizes in it:
            w.write_chunk(times, keys, sizes)
    return w.header_dict()


def bin_to_text(
    src: PathLike, dst: PathLike, fmt: str | None = None, chunk_size: int = 1 << 20
) -> int:
    """Export a binary trace to LRB or CSV text, streaming.

    ``fmt`` defaults from the ``dst`` suffix (``.csv`` -> csv, else lrb).
    Returns the number of requests written.
    """
    from repro.traces.binfmt import BinTraceReader

    if fmt is None:
        fmt = "csv" if str(dst).lower().endswith(".csv") else "lrb"
    if fmt not in ("lrb", "csv"):
        raise ValueError(f"fmt must be 'lrb' or 'csv', got {fmt!r}")
    written = 0
    with BinTraceReader(src) as reader, open(dst, "w", newline="") as fh:
        writer = csv.writer(fh) if fmt == "csv" else None
        if writer is not None:
            writer.writerow(["time", "key", "size"])
        for times, keys, sizes in reader.iter_chunks(chunk_size):
            if writer is not None:
                writer.writerows(zip(times.tolist(), keys.tolist(), sizes.tolist()))
            else:
                fh.writelines(
                    f"{t} {k} {s}\n"
                    for t, k, s in zip(times.tolist(), keys.tolist(), sizes.tolist())
                )
            written += len(keys)
    return written
