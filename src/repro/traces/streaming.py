"""Chunk-deterministic streaming workload generators for paper-scale traces.

:mod:`repro.traces.synthetic` builds a rich multi-population workload by
materialising every per-object array and interleaving with one argsort —
faithful, but O(trace) memory: at the paper's 100 M-request scale the
intermediate arrays alone are tens of GB.  This module is the scale path:
a simpler generative model (stable Zipf hot set + one-shot churn + slow
popularity drift, the three ingredients the paper's Table 1 statistics
pin) that is generated **chunk by chunk** with O(chunk) memory and written
straight into a :class:`~repro.traces.binfmt.BinTraceWriter`.

Determinism contract
--------------------
Chunk ``i`` is drawn from ``np.random.default_rng([seed, i])`` — each
chunk's randomness depends only on ``(seed, chunk_index)``, never on how
many chunks were drawn before it.  Consequently:

* regenerating any chunk in isolation (parallel workers, resumed writes)
  reproduces it bit-exactly;
* ``chunk_requests`` is **part of the contract**: the same spec with a
  different chunk size is a *different trace*.

Object sizes are a pure hash of the key (splitmix64 → Box–Muller →
lognormal), so every occurrence of a key carries the same size without the
generator remembering anything — which is also what keeps the batch
engine's vectorised path (consistent per-key sizes) on these traces.

The three ``CDN-*-stream`` profiles reproduce Table 1's requests-per-object
ratio, mean/max object size, and popularity skew at any request count:
e.g. CDN-T's ``0.25`` one-shot share plus a ``0.063·n`` hot set gives
``n/3.19`` unique objects, the published ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterator, Tuple

import numpy as np

from repro.sim.request import Trace, requests_from_arrays
from repro.traces.binfmt import BinTraceWriter, PathLike, _splitmix64
from repro.traces.synthetic import zipf_probs

__all__ = [
    "StreamSpec",
    "stream_chunks",
    "stream_to_bin",
    "stream_trace",
    "cdn_t_stream_spec",
    "cdn_w_stream_spec",
    "cdn_a_stream_spec",
    "STREAM_WORKLOADS",
    "make_stream_spec",
]

#: One-shot keys live far above any hot-set id so populations never collide.
_ONE_SHOT_BASE = 1 << 40
_U64 = np.uint64


@dataclass(frozen=True)
class StreamSpec:
    """Knobs of the streaming workload (see module docstring).

    Frozen: a spec is a value — workers regenerate chunks from it.
    """

    n_requests: int = 1_000_000
    #: Fraction of requests that are one-shot objects (unique key each).
    one_shot_frac: float = 0.25
    #: Hot-set size as a fraction of ``n_requests``.
    hot_frac: float = 0.063
    #: Zipf skew of hot-set popularity.
    zipf_alpha: float = 0.85
    #: Lognormal size model (same meaning as :class:`WorkloadSpec`).
    mean_size: int = 44_560
    size_sigma: float = 0.6
    min_size: int = 2
    max_size: int = 19_970_000
    #: Median-size multiplier for one-shot objects (ZROs skew large).
    one_shot_size_bias: float = 1.5
    #: Popularity drift: the hot ranking rotates this many times over the
    #: trace (1 disables).
    drift_epochs: int = 8
    #: Rotation amount per epoch, as a fraction of the hot-set size.
    drift_shift_frac: float = 0.05
    #: Requests per generation chunk — part of the determinism contract.
    chunk_requests: int = 1 << 20
    seed: int = 0
    name: str = "stream"

    @property
    def n_hot(self) -> int:
        return max(round(self.n_requests * self.hot_frac), 1)


def _hash_sizes(
    keys_u64: np.ndarray, spec: StreamSpec, bias: np.ndarray
) -> np.ndarray:
    """Deterministic per-key lognormal sizes: splitmix64 → Box–Muller."""
    h1 = _splitmix64(keys_u64)
    h2 = _splitmix64(h1 ^ _U64(0xD6E8FEB86659FD93))
    # 53-bit mantissa uniforms; u1 in (0, 1] so log() is finite.
    u1 = ((h1 >> _U64(11)).astype(np.float64) + 1.0) * 2.0**-53
    u2 = (h2 >> _U64(11)).astype(np.float64) * 2.0**-53
    z = np.sqrt(-2.0 * np.log(u1)) * np.cos(2.0 * np.pi * u2)
    mu = np.log(spec.mean_size * bias) - spec.size_sigma**2 / 2.0
    sizes = np.exp(mu + spec.size_sigma * z)
    return np.clip(sizes, spec.min_size, spec.max_size).astype(np.uint64)


def stream_chunks(
    spec: StreamSpec,
) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Yield ``(times, keys, sizes)`` chunks; O(chunk + hot-set) memory."""
    if spec.n_requests < 0:
        raise ValueError(f"n_requests must be >= 0, got {spec.n_requests}")
    if not 0.0 <= spec.one_shot_frac <= 1.0:
        raise ValueError(f"one_shot_frac must be in [0, 1], got {spec.one_shot_frac}")
    if spec.chunk_requests < 1:
        raise ValueError(f"chunk_requests must be >= 1, got {spec.chunk_requests}")
    n_hot = spec.n_hot
    cdf = np.cumsum(zipf_probs(n_hot, spec.zipf_alpha))
    epoch_len = max(spec.n_requests // max(spec.drift_epochs, 1), 1)
    shift = (
        max(int(n_hot * spec.drift_shift_frac), 1) if spec.drift_epochs > 1 else 0
    )
    for ci, lo in enumerate(range(0, spec.n_requests, spec.chunk_requests)):
        m = min(spec.chunk_requests, spec.n_requests - lo)
        rng = np.random.default_rng([spec.seed, ci])
        idx = lo + np.arange(m, dtype=np.int64)
        one_mask = rng.random(m) < spec.one_shot_frac
        ranks = np.searchsorted(cdf, rng.random(m), side="right")
        np.minimum(ranks, n_hot - 1, out=ranks)
        if shift:
            epoch = idx // epoch_len
            hot_keys = (ranks + epoch * shift) % n_hot
        else:
            hot_keys = ranks
        keys = np.where(one_mask, _ONE_SHOT_BASE + idx, hot_keys)
        bias = np.where(one_mask, spec.one_shot_size_bias, 1.0)
        sizes = _hash_sizes(keys.view(_U64), spec, bias)
        # Scramble: splitmix64 is a bijection on u64, so per-object identity
        # (and the size hash already computed) survives while key locality —
        # which would leak population membership — is destroyed.
        keys = np.ascontiguousarray(_splitmix64(keys.view(_U64))).view(np.int64)
        yield idx, keys, sizes


def stream_to_bin(spec: StreamSpec, path: PathLike) -> dict:
    """Generate the trace straight into a binary file; returns the header."""
    with BinTraceWriter(path) as w:
        for times, keys, sizes in stream_chunks(spec):
            w.write_chunk(times, keys, sizes)
        return w.header_dict()


def stream_trace(spec: StreamSpec) -> Trace:
    """Materialise a (small) streaming workload as a :class:`Trace`."""
    reqs = []
    for times, keys, sizes in stream_chunks(spec):
        reqs.extend(requests_from_arrays(keys, sizes.astype(np.int64), times))
    return Trace(reqs, name=spec.name)


def cdn_t_stream_spec(n_requests: int, seed: int = 7) -> StreamSpec:
    """CDN-T profile: n/3.19 uniques, 44.56 KB mean, 19.97 MB max."""
    return StreamSpec(
        n_requests=n_requests,
        one_shot_frac=0.25,
        hot_frac=0.063,
        zipf_alpha=0.85,
        mean_size=44_560,
        size_sigma=0.6,
        max_size=19_970_000,
        seed=seed,
        name="CDN-T-stream",
    )


def cdn_w_stream_spec(n_requests: int, seed: int = 11) -> StreamSpec:
    """CDN-W profile: n/42.7 uniques, 35.07 KB mean, 674.38 MB max."""
    return StreamSpec(
        n_requests=n_requests,
        one_shot_frac=0.02,
        hot_frac=0.0034,
        zipf_alpha=1.0,
        mean_size=35_070,
        size_sigma=0.55,
        min_size=10,
        max_size=674_380_000,
        seed=seed,
        name="CDN-W-stream",
    )


def cdn_a_stream_spec(n_requests: int, seed: int = 13) -> StreamSpec:
    """CDN-A profile: n/1.83 uniques, 31.21 KB mean, 7.99 MB max."""
    return StreamSpec(
        n_requests=n_requests,
        one_shot_frac=0.48,
        hot_frac=0.066,
        zipf_alpha=0.75,
        mean_size=31_210,
        size_sigma=0.55,
        max_size=7_990_000,
        seed=seed,
        name="CDN-A-stream",
    )


#: Name → spec factory, mirroring :data:`repro.traces.cdn.WORKLOADS`.
STREAM_WORKLOADS: Dict[str, object] = {
    "CDN-T": cdn_t_stream_spec,
    "CDN-W": cdn_w_stream_spec,
    "CDN-A": cdn_a_stream_spec,
}


def make_stream_spec(
    name: str, n_requests: int, seed: int | None = None, **overrides
) -> StreamSpec:
    """Look up a streaming profile by workload name."""
    try:
        factory = STREAM_WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; choose from {list(STREAM_WORKLOADS)}"
        ) from None
    spec = factory(n_requests) if seed is None else factory(n_requests, seed)  # type: ignore[operator]
    return replace(spec, **overrides) if overrides else spec
