"""Miss-ratio curves via Mattson's stack algorithm, size-aware.

The paper's Figure 1(b)/(e) sweeps cache sizes by replaying LRU once per
size; Mattson's classic observation is that LRU's *inclusion property*
yields the entire curve from a single pass: each re-access's **stack
distance** (bytes above the object in the recency stack) tells exactly
which cache sizes would have hit.

The implementation keeps the recency stack as a balanced-order list with a
Fenwick (binary-indexed) tree over byte sizes, giving O(log n) per request
— the standard approach, vectorless but n log n overall.  For variable
object sizes the result is the standard byte-stack-distance approximation
(exact for unit sizes; within sampling noise of replayed LRU otherwise —
the tests quantify the agreement).

Used by :func:`miss_ratio_curve` for trace characterisation and by the
workload tests to verify the generators put reuse-distance mass where the
experiment configuration expects it.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.sim.request import Trace

__all__ = ["stack_distances", "miss_ratio_curve"]


class _Fenwick:
    """Binary-indexed tree over slot byte-sizes (point update, prefix sum)."""

    def __init__(self, n: int):
        self.n = n
        self.tree = [0] * (n + 1)

    def add(self, i: int, delta: int) -> None:
        i += 1
        while i <= self.n:
            self.tree[i] += delta
            i += i & (-i)

    def prefix(self, i: int) -> int:
        """Sum of slots [0, i)."""
        s = 0
        while i > 0:
            s += self.tree[i]
            i -= i & (-i)
        return s


def stack_distances(trace: Trace) -> List[Tuple[int, int]]:
    """One Mattson pass; returns ``(stack_distance_bytes, size)`` per
    re-access (first accesses are compulsory misses and excluded).

    The recency stack is laid out right-to-left over slot indices: each
    access takes a fresh slot at the right end; a re-access's distance is
    the byte-sum of slots *more recent* than its previous slot.
    """
    n = len(trace)
    fen = _Fenwick(n)
    last_slot: Dict[int, int] = {}
    out: List[Tuple[int, int]] = []
    for i in range(n):
        req = trace[i]
        prev = last_slot.get(req.key)
        if prev is not None:
            # Bytes in slots (prev, i) = stack distance.
            dist = fen.prefix(i) - fen.prefix(prev + 1)
            out.append((dist, req.size))
            fen.add(prev, -req.size)
        fen.add(i, req.size)
        last_slot[req.key] = i
    return out


def miss_ratio_curve(
    trace: Trace, cache_sizes: Sequence[int]
) -> Dict[int, float]:
    """LRU object miss ratio at each cache size, from one Mattson pass.

    A re-access hits at cache size ``c`` iff its stack distance plus its
    own size fits within ``c``.
    """
    if not cache_sizes:
        raise ValueError("need at least one cache size")
    dists = stack_distances(trace)
    n = len(trace)
    if not dists:
        return {c: 1.0 for c in cache_sizes}
    arr = np.asarray([d + s for d, s in dists], dtype=np.int64)
    arr.sort()
    out: Dict[int, float] = {}
    for c in cache_sizes:
        hits = int(np.searchsorted(arr, c, side="right"))
        out[c] = 1.0 - hits / n
    return out
