"""Schema-versioned binary trace format with mmap streaming readers.

The paper evaluates on 78–100 M-request CDN traces; text formats (LRB /
CSV) and Python ``Request`` lists cannot carry that scale — parsing alone
dominates replay, and a materialised list of 100 M requests is tens of GB
of objects.  This module defines the repo's on-disk trace interchange
format, built for zero-copy streaming:

* **fixed-width little-endian records** — ``time: i64, key: i64,
  size: u64`` (24 bytes per request, no padding), so a trace file is a
  single :data:`RECORD_DTYPE` numpy array that can be ``mmap``-ed and
  sliced without parsing;
* **an 80-byte header** — magic, format version, record count, key-space
  statistics (exact min/max key, request-byte total, max object size, plus
  SHARDS-sampled *unique-object* and *working-set-byte* estimates — the
  two numbers cache-sizing needs, collected in bounded memory while
  writing), and a CRC32 checksum over the record payload;
* **one canonical error** — every malformed input (truncated header,
  truncated tail record, bad magic, unsupported version, checksum
  mismatch, trailing bytes) raises :class:`TraceFormatError` carrying the
  offending ``path`` and byte ``offset``; a reader never crashes with a
  stray ``struct.error`` and never silently yields a partial trace.

Versioning rules (see ``docs/trace_format.md``): the record layout and the
meaning of existing header fields are frozen per ``version``; any change
to either bumps :data:`FORMAT_VERSION`, and readers reject versions they
do not know rather than guessing.  ``header_size`` is stored explicitly so
a future version may *append* header fields without moving the payload.

:class:`BinTraceWriter` accepts numpy chunks (the streaming generators
yield straight into it); :class:`BinTraceReader` memory-maps the payload
and exposes :meth:`~BinTraceReader.iter_chunks` (structure-of-arrays
chunks for the batch engine) and :meth:`~BinTraceReader.stream_requests`
(:class:`~repro.sim.request.Request` objects for the rich engine) — in
both cases no full-trace list ever lives in RAM.
"""

from __future__ import annotations

import os
import struct
import zlib
from pathlib import Path
from typing import Iterable, Iterator, Optional, Tuple, Union

import numpy as np

from repro.sim.request import Request, Trace

__all__ = [
    "FORMAT_VERSION",
    "MAGIC",
    "RECORD_DTYPE",
    "RECORD_SIZE",
    "TraceFormatError",
    "BinTraceWriter",
    "BinTraceReader",
    "write_bin",
    "read_bin",
    "is_bin_trace",
]

PathLike = Union[str, Path]

#: First 8 bytes of every trace file.
MAGIC = b"SCIPTRC1"
#: Current format version; bump on any record-layout or field-meaning change.
FORMAT_VERSION = 1
#: Fixed header size for version 1 (stored in the header for forward compat).
HEADER_SIZE = 80
#: ``time, key, size`` — three 8-byte little-endian fields, no padding.
RECORD_DTYPE = np.dtype([("time", "<i8"), ("key", "<i8"), ("size", "<u8")])
RECORD_SIZE = RECORD_DTYPE.itemsize  # 24

# magic, version, header_size, count, key_min, key_max, total_bytes,
# max_size, unique_est, wss_est, checksum, reserved
_HEADER = struct.Struct("<8sIIQqqQQQQII")
assert _HEADER.size == HEADER_SIZE

#: SHARDS sampler bound: at most this many keys tracked while writing.
_SAMPLE_CAP = 8192
_U64 = np.uint64
_FULL_RATE = 1 << 64


class TraceFormatError(ValueError):
    """Canonical malformed-binary-trace error.

    Attributes
    ----------
    path:
        The offending file.
    offset:
        Byte offset of the problem (0 for whole-header issues).
    """

    def __init__(self, path: PathLike, offset: int, message: str):
        self.path = str(path)
        self.offset = int(offset)
        super().__init__(f"{self.path}: {message} (offset {self.offset})")


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorised splitmix64 finaliser over a uint64 array (wrapping)."""
    x = (x + _U64(0x9E3779B97F4A7C15)) & _U64(0xFFFFFFFFFFFFFFFF)
    x = (x ^ (x >> _U64(30))) * _U64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> _U64(27))) * _U64(0x94D049BB133111EB)
    return x ^ (x >> _U64(31))


class _ShardsSampler:
    """Bounded-memory distinct-key statistics (SHARDS-max).

    Tracks ``{key: last size}`` for keys whose 64-bit hash falls below an
    adaptive threshold.  The threshold halves whenever the sample exceeds
    :data:`_SAMPLE_CAP`, so memory stays bounded while the expansion factor
    ``2**64 / threshold`` turns sample counts into whole-trace estimates —
    exact as long as the threshold never dropped.
    """

    def __init__(self) -> None:
        self.threshold = _FULL_RATE
        self.sample: dict = {}

    def update(self, keys: np.ndarray, sizes: np.ndarray) -> None:
        h = _splitmix64(keys.astype(np.int64).view(np.uint64))
        if self.threshold < _FULL_RATE:
            mask = h < _U64(self.threshold)
            keys, sizes = keys[mask], sizes[mask]
        for k, s in zip(keys.tolist(), sizes.tolist()):
            self.sample[k] = s
        while len(self.sample) > _SAMPLE_CAP:
            self.threshold >>= 1
            t = _U64(self.threshold)
            kept = np.fromiter(self.sample, dtype=np.int64, count=len(self.sample))
            keep_mask = _splitmix64(kept.view(np.uint64)) < t
            self.sample = {
                int(k): self.sample[int(k)] for k in kept[keep_mask].tolist()
            }

    @property
    def factor(self) -> float:
        return _FULL_RATE / self.threshold

    def unique_estimate(self) -> int:
        return round(len(self.sample) * self.factor)

    def wss_estimate(self) -> int:
        return round(sum(self.sample.values()) * self.factor)


class BinTraceWriter:
    """Streaming binary-trace writer (context manager).

    Chunks of parallel numpy arrays go in via :meth:`write_chunk`; the
    header (count, key-space stats, checksum) is finalised on
    :meth:`close`.  A writer abandoned mid-stream leaves a file whose
    header ``count`` is 0 but whose payload is not — which the reader
    rejects — so partially-written traces cannot be read as valid.
    """

    def __init__(self, path: PathLike):
        self.path = Path(path)
        self._fh = open(self.path, "wb")
        self._fh.write(b"\x00" * HEADER_SIZE)  # placeholder until close()
        self._crc = 0
        self.count = 0
        self._key_min: Optional[int] = None
        self._key_max: Optional[int] = None
        self._total_bytes = 0
        self._max_size = 0
        self._sampler = _ShardsSampler()
        self._closed = False

    # -- writing ----------------------------------------------------------
    def write_chunk(
        self,
        times: Optional[np.ndarray],
        keys: np.ndarray,
        sizes: np.ndarray,
    ) -> None:
        """Append one structure-of-arrays chunk.

        ``times`` may be ``None`` for the common synthetic case where the
        timestamp is the request index.  Sizes must be ``>= 1`` (the
        :class:`~repro.sim.request.Request` contract).
        """
        if self._closed:
            raise ValueError(f"writer for {self.path} is closed")
        keys = np.asarray(keys, dtype=np.int64)
        sizes_in = np.asarray(sizes)
        if sizes_in.dtype.kind not in "iu":
            raise TypeError(f"sizes must be integers, got dtype {sizes_in.dtype}")
        m = len(keys)
        if len(sizes_in) != m:
            raise ValueError(f"keys/sizes length mismatch: {m} vs {len(sizes_in)}")
        if m == 0:
            return
        if times is None:
            times = np.arange(self.count, self.count + m, dtype=np.int64)
        else:
            times = np.asarray(times, dtype=np.int64)
            if len(times) != m:
                raise ValueError(f"keys/times length mismatch: {m} vs {len(times)}")
        sizes = sizes_in.astype(np.uint64)
        if sizes_in.dtype.kind == "i" and bool((sizes_in < 1).any()):
            raise ValueError("request sizes must be >= 1 byte")
        if bool((sizes < 1).any()):
            raise ValueError("request sizes must be >= 1 byte")

        rec = np.empty(m, dtype=RECORD_DTYPE)
        rec["time"] = times
        rec["key"] = keys
        rec["size"] = sizes
        buf = rec.tobytes()
        self._crc = zlib.crc32(buf, self._crc)
        self._fh.write(buf)

        self.count += m
        kmin = int(keys.min())
        kmax = int(keys.max())
        self._key_min = kmin if self._key_min is None else min(self._key_min, kmin)
        self._key_max = kmax if self._key_max is None else max(self._key_max, kmax)
        self._total_bytes += int(sizes.sum(dtype=np.uint64))
        self._max_size = max(self._max_size, int(sizes.max()))
        self._sampler.update(keys, sizes)

    def write_requests(self, requests: Iterable[Request], chunk_size: int = 65536) -> None:
        """Append request objects, internally batched into array chunks."""
        times: list = []
        keys: list = []
        sizes: list = []
        for req in requests:
            times.append(req.time)
            keys.append(req.key)
            sizes.append(req.size)
            if len(keys) >= chunk_size:
                self.write_chunk(
                    np.asarray(times, dtype=np.int64),
                    np.asarray(keys, dtype=np.int64),
                    np.asarray(sizes, dtype=np.uint64),
                )
                times, keys, sizes = [], [], []
        if keys:
            self.write_chunk(
                np.asarray(times, dtype=np.int64),
                np.asarray(keys, dtype=np.int64),
                np.asarray(sizes, dtype=np.uint64),
            )

    # -- finalisation -----------------------------------------------------
    def header_dict(self) -> dict:
        """The header fields as they would be written right now."""
        return {
            "version": FORMAT_VERSION,
            "count": self.count,
            "key_min": self._key_min if self._key_min is not None else 0,
            "key_max": self._key_max if self._key_max is not None else 0,
            "total_bytes": self._total_bytes,
            "max_size": self._max_size,
            "unique_estimate": self._sampler.unique_estimate(),
            "wss_estimate": self._sampler.wss_estimate(),
            "checksum": self._crc & 0xFFFFFFFF,
        }

    def close(self) -> None:
        if self._closed:
            return
        h = self.header_dict()
        self._fh.seek(0)
        self._fh.write(
            _HEADER.pack(
                MAGIC,
                FORMAT_VERSION,
                HEADER_SIZE,
                h["count"],
                h["key_min"],
                h["key_max"],
                h["total_bytes"],
                h["max_size"],
                h["unique_estimate"],
                h["wss_estimate"],
                h["checksum"],
                0,
            )
        )
        self._fh.close()
        self._closed = True

    def __enter__(self) -> "BinTraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class BinTraceReader:
    """mmap-backed reader over a binary trace file.

    The payload is exposed as a read-only structured :func:`numpy.memmap`
    — opening a 100 M-request (2.4 GB) trace touches only the header, and
    chunked iteration streams pages through the OS cache without ever
    materialising the trace.

    Parameters
    ----------
    path:
        A file written by :class:`BinTraceWriter`.
    verify_checksum:
        Recompute the payload CRC32 on open (one full sequential read).
        Off by default — opening must stay O(1); call :meth:`verify`
        explicitly when integrity matters more than latency.
    """

    def __init__(self, path: PathLike, verify_checksum: bool = False):
        self.path = Path(path)
        self.name = self.path.stem
        try:
            fh = open(self.path, "rb")
        except OSError:
            raise
        with fh:
            header = fh.read(HEADER_SIZE)
            if len(header) < HEADER_SIZE:
                raise TraceFormatError(
                    self.path,
                    len(header),
                    f"truncated header: {len(header)} bytes, need {HEADER_SIZE}",
                )
            (
                magic,
                version,
                header_size,
                count,
                key_min,
                key_max,
                total_bytes,
                max_size,
                unique_est,
                wss_est,
                checksum,
                _reserved,
            ) = _HEADER.unpack(header)
            if magic != MAGIC:
                raise TraceFormatError(
                    self.path, 0, f"bad magic {magic!r}, expected {MAGIC!r}"
                )
            if version != FORMAT_VERSION:
                raise TraceFormatError(
                    self.path,
                    8,
                    f"unsupported format version {version} (reader supports "
                    f"{FORMAT_VERSION})",
                )
            if header_size < HEADER_SIZE:
                raise TraceFormatError(
                    self.path, 12, f"header_size {header_size} < {HEADER_SIZE}"
                )
            file_size = os.fstat(fh.fileno()).st_size
        payload = file_size - header_size
        expected = count * RECORD_SIZE
        if payload != expected:
            full = header_size + (max(payload, 0) // RECORD_SIZE) * RECORD_SIZE
            if payload < expected:
                msg = (
                    f"truncated payload: header promises {count} records "
                    f"({expected} bytes), file holds {payload}"
                )
            else:
                msg = (
                    f"trailing bytes after payload: header promises {count} "
                    f"records ({expected} bytes), file holds {payload}"
                )
            raise TraceFormatError(self.path, min(full, file_size), msg)

        self.count = count
        self.key_min = key_min
        self.key_max = key_max
        self.total_bytes = total_bytes
        self.max_size = max_size
        self.unique_estimate = unique_est
        self.wss_estimate = wss_est
        self.checksum = checksum
        self._header_size = header_size
        if count:
            self._records = np.memmap(
                self.path,
                dtype=RECORD_DTYPE,
                mode="r",
                offset=header_size,
                shape=(count,),
            )
        else:
            self._records = np.empty(0, dtype=RECORD_DTYPE)
        if verify_checksum:
            self.verify()

    # -- integrity --------------------------------------------------------
    def verify(self, chunk_bytes: int = 4 << 20) -> None:
        """Recompute the payload CRC32; raise :class:`TraceFormatError` on
        mismatch."""
        crc = 0
        with open(self.path, "rb") as fh:
            fh.seek(self._header_size)
            while True:
                buf = fh.read(chunk_bytes)
                if not buf:
                    break
                crc = zlib.crc32(buf, crc)
        if (crc & 0xFFFFFFFF) != self.checksum:
            raise TraceFormatError(
                self.path,
                self._header_size,
                f"checksum mismatch: header 0x{self.checksum:08x}, "
                f"payload 0x{crc & 0xFFFFFFFF:08x}",
            )

    # -- access -----------------------------------------------------------
    def __len__(self) -> int:
        return self.count

    @property
    def records(self) -> np.ndarray:
        """The raw structured record array (mmap view)."""
        return self._records

    def iter_chunks(
        self, chunk_size: int = 1 << 20
    ) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Yield ``(times, keys, sizes)`` array chunks (views, no copy)."""
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        for lo in range(0, self.count, chunk_size):
            block = self._records[lo : lo + chunk_size]
            yield block["time"], block["key"], block["size"]

    def stream_requests(self, chunk_size: int = 65536) -> Iterator[Request]:
        """Yield :class:`Request` objects, materialising one chunk at a
        time — the rich engine's streaming entry point."""
        for times, keys, sizes in self.iter_chunks(chunk_size):
            for t, k, s in zip(times.tolist(), keys.tolist(), sizes.tolist()):
                yield Request(t, k, s)

    def __iter__(self) -> Iterator[Request]:
        return self.stream_requests()

    def to_trace(self, name: Optional[str] = None) -> Trace:
        """Materialise the whole file as a :class:`Trace` (small traces /
        compatibility; defeats the purpose at paper scale)."""
        return Trace(list(self.stream_requests()), name=name or self.name)

    def summary(self) -> dict:
        """Header-level summary (no payload scan)."""
        return {
            "name": self.name,
            "path": str(self.path),
            "version": FORMAT_VERSION,
            "total_requests": self.count,
            "key_min": self.key_min,
            "key_max": self.key_max,
            "total_bytes": self.total_bytes,
            "max_object_size": self.max_size,
            "unique_estimate": self.unique_estimate,
            "wss_estimate": self.wss_estimate,
            "checksum": f"0x{self.checksum:08x}",
        }

    def close(self) -> None:
        rec = self._records
        self._records = np.empty(0, dtype=RECORD_DTYPE)
        self.count = 0
        del rec

    def __enter__(self) -> "BinTraceReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def write_bin(trace, path: PathLike) -> dict:
    """Write a trace to the binary format; returns the final header dict.

    ``trace`` may be a :class:`Trace`, any iterable of :class:`Request`,
    or an iterable of ``(times, keys, sizes)`` array chunks (the streaming
    generators' shape).
    """
    with BinTraceWriter(path) as w:
        if isinstance(trace, Trace):
            w.write_requests(trace)
        else:
            it = iter(trace)
            first = next(it, None)
            if first is None:
                pass
            elif isinstance(first, Request):
                w.write_requests(_chain_one(first, it))
            else:
                times, keys, sizes = first
                w.write_chunk(times, keys, sizes)
                for times, keys, sizes in it:
                    w.write_chunk(times, keys, sizes)
        return w.header_dict()


def _chain_one(first, rest):
    yield first
    yield from rest


def read_bin(path: PathLike, name: Optional[str] = None, verify: bool = False) -> Trace:
    """Read a whole binary trace into a :class:`Trace` (small traces)."""
    with BinTraceReader(path, verify_checksum=verify) as reader:
        return reader.to_trace(name=name)


def is_bin_trace(path: PathLike) -> bool:
    """Cheap sniff: does the file start with the trace magic?"""
    try:
        with open(path, "rb") as fh:
            return fh.read(len(MAGIC)) == MAGIC
    except OSError:
        return False
