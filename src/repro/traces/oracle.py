"""Oracle LRU replay: event-level ZRO / P-ZRO / A-ZRO / A-P-ZRO labelling.

Definitions, operationalised from §1–§2 of the paper (all relative to a
*reference LRU replay* at a given cache size):

* **ZRO event** — a miss whose inserted object is later evicted without a
  single hit ("will not be accessed as long as they appear in the cache").
* **P-ZRO event** — a hit after which the object receives no further hit
  before being evicted ("the hit object may immediately become a ZRO").
* **A-ZRO event** — a ZRO event whose object *is* hit in the cache at some
  later point of the trace (a ZRO is "not a fixed property"; the object
  re-enters and proves reusable).
* **A-P-ZRO event** — the same degradation for P-ZRO events.

The labelling requires knowing the future, so it runs as a two-phase oracle:
phase 1 replays LRU recording, for every insertion and every hit, whether
another hit happens before the corresponding eviction; phase 2 back-fills
the A- variants from each key's later in-cache hits.

:func:`treated_replay` then re-runs LRU while *treating* a chosen subset of
the labelled events (inserting ZROs at the LRU position / demoting P-ZROs
to the LRU position on their hit) — the counterfactual behind Figure 1's
slashed bars and Figure 3's fractional-treatment curves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.cache.base import QueueCache
from repro.cache.queue import Node
from repro.sim.request import Request, Trace

__all__ = ["OracleLabels", "label_events", "treated_replay"]


@dataclass
class OracleLabels:
    """Event-index label sets from a reference LRU replay.

    All sets contain *trace indices*; ``miss_events`` / ``hit_events`` are
    total counts so proportions can be formed without rescanning.
    """

    cache_bytes: int
    miss_events: int = 0
    hit_events: int = 0
    zro: Set[int] = field(default_factory=set)
    pzro: Set[int] = field(default_factory=set)
    a_zro: Set[int] = field(default_factory=set)
    a_pzro: Set[int] = field(default_factory=set)
    miss_ratio: float = 0.0

    # -- the Figure 1 proportions -------------------------------------------------
    @property
    def zro_share_of_misses(self) -> float:
        return len(self.zro) / self.miss_events if self.miss_events else 0.0

    @property
    def pzro_share_of_hits(self) -> float:
        return len(self.pzro) / self.hit_events if self.hit_events else 0.0

    @property
    def azro_share_of_zros(self) -> float:
        return len(self.a_zro) / len(self.zro) if self.zro else 0.0

    @property
    def apzro_share_of_pzros(self) -> float:
        return len(self.a_pzro) / len(self.pzro) if self.pzro else 0.0


class _TrackingLRU(QueueCache):
    """LRU that records insertion/last-hit events for oracle labelling.

    Optional treatment sets let the labeller run *on top of* an already
    treated replay — the combined-treatment counterfactual needs P-ZRO
    labels that are valid under ZRO treatment (§2.2's interaction effect:
    "changing the insertion positions of the ZROs or P-ZROs will change the
    subsequent ZROs and P-ZROs").
    """

    name = "oracle-LRU"

    def __init__(
        self,
        capacity: int,
        labels: OracleLabels,
        treat_miss: Optional[Set[int]] = None,
        treat_hit: Optional[Set[int]] = None,
    ):
        super().__init__(capacity)
        self.labels = labels
        self.treat_miss = treat_miss or set()
        self.treat_hit = treat_hit or set()
        self._now = -1  # trace index of the request being processed

    def process(self, idx: int, req: Request) -> bool:
        self._now = idx
        return self.request(req)

    def _insert_position(self, req: Request) -> int:
        from repro.cache.base import LRU_POS, MRU_POS

        return LRU_POS if self._now in self.treat_miss else MRU_POS

    def _on_insert(self, node: Node, req: Request) -> None:
        # data = [insert_event_idx, last_hit_event_idx or None]
        node.data = [self._now, None]

    def _on_hit(self, node: Node, req: Request) -> None:
        rec = node.data
        if rec is not None:
            rec[1] = self._now
        if self._now in self.treat_hit:
            self.queue.move_to_lru(node)
        else:
            self.queue.move_to_mru(node)

    def _finalize(self, node: Node) -> None:
        rec = node.data
        if rec is None:
            return
        insert_idx, last_hit_idx = rec
        if last_hit_idx is None:
            self.labels.zro.add(insert_idx)
        else:
            self.labels.pzro.add(last_hit_idx)

    def _on_evict(self, node: Node) -> None:
        self._finalize(node)

    def drain(self) -> None:
        """End of trace: objects still resident never got evicted, so their
        episodes are *not* ZRO/P-ZRO — the paper's definition requires the
        zero-reuse tenure to complete.  Nothing to record."""


def label_events(
    trace: Trace,
    cache_bytes: int,
    treat_miss: Optional[Set[int]] = None,
    treat_hit: Optional[Set[int]] = None,
) -> OracleLabels:
    """Replay LRU at ``cache_bytes`` and label all ZRO/P-ZRO events.

    With ``treat_miss`` / ``treat_hit``, the replay applies the given
    treatments while labelling — used to derive labels valid *under* a prior
    treatment (the combined-treatment construction of Figures 1 and 3).
    """
    labels = OracleLabels(cache_bytes=cache_bytes)
    lru = _TrackingLRU(cache_bytes, labels, treat_miss=treat_miss, treat_hit=treat_hit)
    hit_flags: List[bool] = []
    for idx in range(len(trace)):
        hit = lru.process(idx, trace[idx])
        hit_flags.append(hit)
        if hit:
            labels.hit_events += 1
        else:
            labels.miss_events += 1
    lru.drain()
    labels.miss_ratio = labels.miss_events / max(len(trace), 1)

    # Phase 2: A-variants — does the event's key get an in-cache hit later?
    # For every key, collect its hit indices; an event degrades to the A-
    # variant if any hit of the same key occurs strictly after the event.
    last_hit_of_key: dict = {}
    for idx in range(len(trace) - 1, -1, -1):
        req = trace[idx]
        later = last_hit_of_key.get(req.key)
        if later is not None:
            if idx in labels.zro:
                labels.a_zro.add(idx)
            elif idx in labels.pzro:
                labels.a_pzro.add(idx)
        if hit_flags[idx]:
            last_hit_of_key[req.key] = idx
    return labels


class _TreatedLRU(QueueCache):
    """LRU with oracle treatment: selected miss events insert at the LRU
    position; selected hit events demote to the LRU position instead of
    promoting."""

    name = "treated-LRU"

    def __init__(self, capacity: int, treat_miss: Set[int], treat_hit: Set[int]):
        super().__init__(capacity)
        self.treat_miss = treat_miss
        self.treat_hit = treat_hit
        self._now = -1

    def process(self, idx: int, req: Request) -> bool:
        self._now = idx
        return self.request(req)

    def _insert_position(self, req: Request) -> int:
        from repro.cache.base import LRU_POS, MRU_POS

        return LRU_POS if self._now in self.treat_miss else MRU_POS

    def _on_hit(self, node: Node, req: Request) -> None:
        if self._now in self.treat_hit:
            self.queue.move_to_lru(node)
        else:
            self.queue.move_to_mru(node)


def treated_replay(
    trace: Trace,
    cache_bytes: int,
    labels: OracleLabels,
    treat_zro: bool = True,
    treat_pzro: bool = True,
    fraction: float = 1.0,
) -> float:
    """Miss ratio of LRU when (a fraction of) labelled events are treated.

    ``fraction`` selects the first ``fraction`` of each label set *in trace
    order* — Figure 3's x-axis ("percentages … at the top of the access
    sequence").  Returns the resulting miss ratio.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")

    def take(events: Set[int]) -> Set[int]:
        if fraction >= 1.0:
            return set(events)
        ordered = sorted(events)
        return set(ordered[: int(len(ordered) * fraction)])

    treat_miss = take(labels.zro) if treat_zro else set()
    if treat_zro and treat_pzro:
        # Combined treatment: P-ZRO labels from the *reference* replay go
        # stale once ZROs are re-routed (the §2.2 interaction), so re-label
        # hits under the ZRO treatment before treating them.
        relabelled = label_events(trace, cache_bytes, treat_miss=treat_miss)
        treat_hit = take(relabelled.pzro)
    elif treat_pzro:
        treat_hit = take(labels.pzro)
    else:
        treat_hit = set()
    lru = _TreatedLRU(cache_bytes, treat_miss, treat_hit)
    misses = 0
    for idx in range(len(trace)):
        if not lru.process(idx, trace[idx]):
            misses += 1
    return misses / max(len(trace), 1)
