"""CDN-T / CDN-W / CDN-A workload profiles — Table 1, scaled.

Each profile is a :class:`~repro.traces.synthetic.WorkloadSpec` whose knobs
are matched to the published statistics of the corresponding trace:

=============================  ========  ========  ========
Statistic (paper)                 CDN-T     CDN-W     CDN-A
=============================  ========  ========  ========
Requests (M)                      78.75     100.0     99.55
Unique objects (M)                24.71      2.34     54.43
Requests / object                  3.19      42.7      1.83
Mean object size (KB)             44.56     35.07     31.21
Max object size (MB)              19.97    674.38      7.99
=============================  ========  ========  ========

We scale request counts down (default 200 k requests ≈ 400–500× smaller)
while preserving the request:object ratio, the size distribution bounds and
means, and the qualitative reuse structure:

* **CDN-T** (Tencent TDC, mixed content): moderate reuse, a substantial
  one-shot population — the workload where Figure 8 shows SCIP's largest
  margin (−4.69 pts vs ASC-IP, −35.32 vs LIP).
* **CDN-W** (Wikipedia, from the LRB paper): heavy reuse (42.7 req/object),
  the *highest P-ZRO share of hits* (21.7 % on average — Figure 1(d)); we
  realise that with a large burst component of longer bursts.
* **CDN-A** (Tencent photo store): churn-dominated, 1.83 req/object — the
  highest miss ratios in Figure 1(b); realised with a dominant one-shot
  population and light reuse.

Cache sizes in experiments are expressed as fractions of each trace's
working-set size, exactly as Figure 1 does (0.5 %, 1 %, 5 %, 10 % of X).
"""

from __future__ import annotations

from typing import Dict

from repro.sim.request import Trace
from repro.traces.synthetic import WorkloadSpec, generate_trace, spec_to_bin

__all__ = [
    "WORKLOADS",
    "cdn_t_spec",
    "cdn_w_spec",
    "cdn_a_spec",
    "make_workload",
    "workload_to_bin",
    "workload_names",
]


def cdn_t_spec(n_requests: int = 200_000, seed: int = 7) -> WorkloadSpec:
    """CDN-T: mixed CDN content, ~3.2 requests/object."""
    return WorkloadSpec(
        n_requests=n_requests,
        # req:obj ratio 3.19 → uniques ≈ n/3.19; apportioned core/one/burst.
        n_core=int(n_requests * 0.065),
        zipf_alpha=0.85,
        one_shot_frac=0.22,
        burst_frac=0.18,
        burst_mean_len=2.5,
        burst_window=1_500,
        mean_size=44_560,
        size_sigma=0.6,
        min_size=2,
        max_size=19_970_000,
        zro_size_bias=1.55,
        sweep_frac=0.20,
        sweep_period=12_000,
        sweep_pair_frac=0.7,
        core_gap_scale=n_requests * 0.18,
        drift_period=max(n_requests // 4, 1),
        drift_shift=int(n_requests * 0.065) // 12,
        storm_period=max(n_requests // 5, 1),
        storm_duty=0.3,
        storm_churn_weight=0.6,
        storm_core_weight=0.2,
        burst_revive_gap=25_000.0,
        seed=seed,
        name="CDN-T",
    )


def cdn_w_spec(n_requests: int = 200_000, seed: int = 11) -> WorkloadSpec:
    """CDN-W: Wikipedia-like, heavy reuse, highest P-ZRO share of hits."""
    return WorkloadSpec(
        n_requests=n_requests,
        # 42.7 req/object → small unique set, strong Zipf head.
        n_core=max(int(n_requests * 0.012), 64),
        zipf_alpha=1.0,
        one_shot_frac=0.06,
        burst_frac=0.38,        # largest burst share → most P-ZRO hits
        burst_mean_len=3.2,     # short bursts: 1 of ~2.2 hits ends a burst
        burst_window=2_500,
        mean_size=35_070,
        size_sigma=0.55,        # heaviest size tail (max 674 MB in paper)
        min_size=10,
        max_size=674_380_000,
        zro_size_bias=1.7,
        sweep_frac=0.14,
        sweep_period=20_000,
        sweep_pair_frac=0.55,
        core_gap_scale=n_requests * 0.10,
        drift_period=max(n_requests // 5, 1),
        drift_shift=max(int(n_requests * 0.012) // 10, 1),
        storm_period=max(n_requests // 5, 1),
        storm_duty=0.25,
        burst_revive_gap=25_000.0,
        seed=seed,
        name="CDN-W",
    )


def cdn_a_spec(n_requests: int = 200_000, seed: int = 13) -> WorkloadSpec:
    """CDN-A: photo-store churn, 1.83 requests/object, highest miss ratios."""
    return WorkloadSpec(
        n_requests=n_requests,
        n_core=int(n_requests * 0.09),
        zipf_alpha=0.75,        # flat popularity: little concentration
        one_shot_frac=0.48,     # churn-dominated
        burst_frac=0.07,
        burst_mean_len=2.0,
        burst_window=1_200,
        mean_size=31_210,
        size_sigma=0.55,
        min_size=2,
        max_size=7_990_000,
        zro_size_bias=1.5,
        sweep_frac=0.18,
        sweep_period=10_000,
        sweep_pair_frac=0.65,
        core_gap_scale=n_requests * 0.25,
        drift_period=max(n_requests // 3, 1),
        drift_shift=int(n_requests * 0.09) // 8,
        storm_period=max(n_requests // 4, 1),
        storm_duty=0.35,
        storm_churn_weight=0.6,
        storm_core_weight=0.2,
        burst_revive_gap=25_000.0,
        seed=seed,
        name="CDN-A",
    )


#: Name → spec factory, the registry experiments iterate over.
WORKLOADS: Dict[str, object] = {
    "CDN-T": cdn_t_spec,
    "CDN-W": cdn_w_spec,
    "CDN-A": cdn_a_spec,
}


def workload_names() -> list:
    return list(WORKLOADS)


def make_workload(name: str, n_requests: int = 200_000, seed: int | None = None) -> Trace:
    """Generate one of the three named workloads at the requested scale."""
    try:
        factory = WORKLOADS[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; choose from {list(WORKLOADS)}") from None
    spec = factory(n_requests=n_requests) if seed is None else factory(n_requests=n_requests, seed=seed)  # type: ignore[operator]
    return generate_trace(spec)


def workload_to_bin(
    name: str, n_requests: int, path, seed: int | None = None
) -> dict:
    """Generate a named workload straight into a binary trace file.

    Same trace as :func:`make_workload` (bit-exact keys/sizes/order) but
    written via :func:`~repro.traces.synthetic.spec_to_bin`, skipping the
    Python ``Request`` list.  Returns the written header dict.
    """
    try:
        factory = WORKLOADS[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; choose from {list(WORKLOADS)}") from None
    spec = factory(n_requests=n_requests) if seed is None else factory(n_requests=n_requests, seed=seed)  # type: ignore[operator]
    return spec_to_bin(spec, path)
