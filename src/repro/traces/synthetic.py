"""Synthetic CDN workload generator.

Real CDN traces (the paper's CDN-T / CDN-W / CDN-A) are proprietary; this
module generates traces whose *mechanistic structure* matches what the
paper's figures measure.  Three object populations are mixed:

* **core** — a stable Zipf-popular set, re-accessed throughout the trace
  with long inter-access gaps.  Supplies the reusable bytes a cache exists
  to serve, and the A-ZROs: a core object whose gap exceeds the cache
  lifetime gets evicted unused (a ZRO episode) and then comes back.
* **one-shot** — objects accessed exactly once (CDN one-hit wonders).
  Every such miss is a ZRO: inserting it anywhere but the LRU position is
  pure pollution.
* **burst** — ephemeral objects receiving a short run of accesses inside a
  tight window, then never again.  The *last* hit of a burst is exactly a
  P-ZRO: a hit object that has just become zero-reuse.

Object size is drawn lognormally and (configurably) *negatively correlated
with reuse*: one-shot and burst objects skew larger, reproducing the
size→ZRO signal that ASC-IP exploits and Figure 1 documents.

Generation is numpy-vectorised end to end (per the HPC guides): per-object
access counts, birth times and inter-access gaps are drawn as arrays; the
final interleaving is a single argsort.  Python objects are materialised
once, at the end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.sim.request import Request, Trace

__all__ = ["WorkloadSpec", "generate_trace", "generate_arrays", "spec_to_bin", "zipf_probs"]


def zipf_probs(n: int, alpha: float) -> np.ndarray:
    """Normalised Zipf(α) probabilities over ranks 1..n."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    w = ranks**-alpha
    return w / w.sum()


@dataclass
class WorkloadSpec:
    """Knobs of the synthetic workload.

    The defaults describe a generic CDN; :mod:`repro.traces.cdn` ships the
    three per-workload profiles matched to Table 1.
    """

    n_requests: int = 200_000
    #: Objects in the stable Zipf core.
    n_core: int = 8_000
    #: Zipf skew of the core popularity.
    zipf_alpha: float = 0.9
    #: Core access model.  ``"periodic"`` (default): each core object has a
    #: characteristic revisit period drawn log-uniformly from
    #: [``core_period_lo``, ``core_period_hi``]·n_requests and is accessed
    #: on a jittered periodic train.  This matches two properties of real
    #: CDN traces that a memoryless Zipf stream lacks: the reuse-distance
    #: distribution has dense mass around typical cache lifetimes (real
    #: miss-ratio curves are steep near the deployed size), and an object's
    #: revisit behaviour is temporally consistent — the regularity every
    #: history-based policy (ours and the paper's) relies on.  ``"zipf"``
    #: keeps the i.i.d. Zipf draws with drift.
    core_model: str = "periodic"
    core_period_lo: float = 0.005
    core_period_hi: float = 1.0
    #: Jitter applied to each periodic visit, as a fraction of the period.
    core_jitter: float = 0.15
    #: Fraction of requests that are one-shot objects (each a unique key).
    one_shot_frac: float = 0.25
    #: Fraction of requests belonging to burst objects.
    burst_frac: float = 0.25
    #: Burst length distribution: geometric with this mean (≥ 2).
    burst_mean_len: float = 3.0
    #: Burst temporal tightness: gaps between burst accesses are uniform in
    #: [1, burst_window] request slots.
    burst_window: int = 2_000
    #: Resurgence: this fraction of burst objects gets a *second* episode a
    #: long gap after the first (content that goes viral again).  The first
    #: episode's final hit is a P-ZRO event that later degrades to an
    #: A-P-ZRO (Figure 1(f)), and recurrence is what lets history-based
    #: policies learn an object's P-ZRO signature.
    burst_revive_frac: float = 0.3
    #: Mean gap (request slots) between a burst's death and its revival.
    burst_revive_gap: float = 25_000.0
    #: Sweep traffic: a fixed population of objects visited cyclically with
    #: a period far beyond any cache tenure — crawler sweeps, monitoring
    #: probes, periodic revalidation.  Every sweep visit is a ZRO episode
    #: under LRU (a miss followed by a full unused tenure), but the objects
    #: are *normal-sized*, so size heuristics (ASC-IP) cannot see them while
    #: history-based recurrence detection (SCIP's ``H_m``) can.  A
    #: ``sweep_pair_frac`` share of visits arrives as a tight pair
    #: (request + revalidation): the pair's second access is a hit that
    #: instantly goes zero-reuse — a *recurring P-ZRO* population.
    sweep_frac: float = 0.15
    #: Sweep cycle length in request slots.
    sweep_period: int = 50_000
    #: Fraction of sweep visits that are (miss, hit) pairs.
    sweep_pair_frac: float = 0.5
    #: Gap between consecutive accesses of a pair, uniform in [1, this].
    sweep_pair_gap: int = 200
    #: A paired visit carries 1 + Geometric extra accesses with this mean
    #: (≥ 1).  Values above 1 make "is this hit the last?" intrinsically
    #: uncertain — the paper's argument for why P-ZRO identification is
    #: harder than ZRO identification (§2.3).
    sweep_pair_extra_mean: float = 1.45
    #: Mean object size in bytes (lognormal).
    mean_size: int = 44 * 1024
    #: Lognormal sigma of sizes.
    size_sigma: float = 1.2
    #: Min/max size clamps in bytes.
    min_size: int = 2
    max_size: int = 20 * 1024 * 1024
    #: Multiplier applied to the median size of one-shot objects (> 1 makes
    #: true ZROs larger — the signal ASC-IP exploits, Figure 1's "ZROs skew
    #: large").  Burst and sweep objects stay at bias 1.0: large objects
    #: that *do* get reused are exactly the misjudgment surface the paper
    #: holds against size-only heuristics (§2.3).
    zro_size_bias: float = 2.0
    #: Core inter-access gap scale, in request slots (exponential).  Larger
    #: values push more core accesses past cache lifetimes → more A-ZROs.
    core_gap_scale: float = 30_000.0
    #: Popularity drift: every ``drift_period`` requests the core ranking
    #: rotates by ``drift_shift`` positions (0 disables).
    drift_period: int = 50_000
    drift_shift: int = 500
    #: Short-term temporal locality: *echoing* core objects see rapid
    #: re-accesses — each access spawns an echo of the same object a short
    #: exponential gap later (mean ``echo_gap`` slots) with probability
    #: ``echo_frac``.  Whether an object echoes is a stable per-object
    #: property (``echo_obj_frac`` of core objects do): real content is
    #: consistently hot-bursty or consistently cold, which is precisely the
    #: per-object regularity that history-based policies learn.
    echo_obj_frac: float = 0.5
    echo_frac: float = 0.6
    echo_gap: float = 300.0
    #: Phase structure ("churn storms"): CDN traffic alternates between
    #: stable periods dominated by the popular core and storm periods
    #: (flash crowds, crawler sweeps, catalog refreshes) dominated by
    #: one-shot and ephemeral objects.  A storm occupies ``storm_duty`` of
    #: every ``storm_period`` requests; ``storm_churn_weight`` of all
    #: one-shot/burst mass lands inside storms, ``storm_core_weight`` of
    #: core mass does.  Phases are what an adaptive global policy (the
    #: paper's MAB) can exploit and a fixed policy cannot.
    storm_period: int = 40_000
    storm_duty: float = 0.3
    storm_churn_weight: float = 0.85
    storm_core_weight: float = 0.10
    #: Scramble final object keys through a bijective multiplicative hash.
    #: The generator assigns keys as consecutive integers per population —
    #: a layout that leaks population identity to any key-locality-based
    #: predictor (SHiP-style group signatures would read "one-shot" off the
    #: key itself).  Real CDN keys are URL hashes with no such locality;
    #: scrambling restores that property while keeping per-object identity.
    scramble_keys: bool = True
    seed: int = 0
    name: str = "synthetic"
    #: Extra: key namespace offset so mixed traces never collide.
    key_offset: int = field(default=0, repr=False)


def _phase_times(
    rng: np.random.Generator, n: int, spec: WorkloadSpec, in_weight: float
) -> np.ndarray:
    """Draw ``n`` timestamps from the piecewise-uniform storm/calm density.

    Mass ``in_weight`` falls inside storm windows (the first ``storm_duty``
    of every ``storm_period``), the rest outside.  With no phase structure
    (``storm_period <= 0``) this degenerates to uniform.
    """
    R = spec.n_requests
    if n == 0:
        return np.empty(0)
    if spec.storm_period <= 0 or not 0.0 < spec.storm_duty < 1.0:
        return rng.uniform(0, R, n)
    P = spec.storm_period
    duty = spec.storm_duty
    in_storm = rng.random(n) < in_weight
    # Position within a cycle: storm windows are [0, duty·P); calm the rest.
    cycle = rng.integers(0, max(int(np.ceil(R / P)), 1), n) * P
    offset = np.where(
        in_storm,
        rng.uniform(0, duty * P, n),
        rng.uniform(duty * P, P, n),
    )
    return np.minimum(cycle + offset, R - 1)


def _periodic_core(
    rng: np.random.Generator, spec: WorkloadSpec, budget: int
):
    """Per-object periodic revisit trains (see ``WorkloadSpec.core_model``).

    Draws objects with log-uniform periods until the visit budget is met,
    lays each object's visits on a jittered arithmetic train, then trims a
    random excess to hit the budget exactly.  Returns (keys, times); keys
    are indices < ``spec.n_core`` (capped population, reused cyclically).
    """
    R = spec.n_requests
    lo = max(spec.core_period_lo * R, 10.0)
    hi = max(spec.core_period_hi * R, lo * 1.01)
    # Expected visits per object with period T is ~R/T; for log-uniform T
    # the mean of R/T is R·(1/lo − 1/hi)/ln(hi/lo).
    mean_visits = R * (1.0 / lo - 1.0 / hi) / np.log(hi / lo)
    n_obj = min(max(int(budget / max(mean_visits, 1e-9)), 1), spec.n_core)
    periods = np.exp(rng.uniform(np.log(lo), np.log(hi), n_obj))
    phase0 = rng.uniform(0, periods)
    counts = np.maximum(((R - phase0) / periods).astype(np.int64) + 1, 1)
    total = int(counts.sum())
    obj_idx = np.repeat(np.arange(n_obj), counts)
    # Segmented arange: visit number k within each object's train.
    seg_starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
    k = np.arange(total) - np.repeat(seg_starts, counts)
    times = (
        np.repeat(phase0, counts)
        + k * np.repeat(periods, counts)
        + rng.uniform(-spec.core_jitter, spec.core_jitter, total)
        * np.repeat(periods, counts)
    )
    valid = (times >= 0) & (times < R)
    obj_idx, times = obj_idx[valid], times[valid]
    if len(times) > budget:
        sel = rng.choice(len(times), budget, replace=False)
        obj_idx, times = obj_idx[sel], times[sel]
    return obj_idx.astype(np.int64), times


def _draw_sizes(
    rng: np.random.Generator, n: int, spec: WorkloadSpec, bias: float
) -> np.ndarray:
    """Lognormal sizes with the given median multiplier, clamped."""
    if n == 0:
        return np.empty(0, dtype=np.int64)
    # Choose mu so the *mean* of the unclamped lognormal ≈ mean_size·bias.
    mu = np.log(spec.mean_size * bias) - spec.size_sigma**2 / 2.0
    sizes = rng.lognormal(mu, spec.size_sigma, n)
    return np.clip(sizes, spec.min_size, spec.max_size).astype(np.int64)


def generate_arrays(spec: WorkloadSpec):
    """Generate the workload as parallel ``(keys, sizes)`` int64 arrays.

    This is the whole generator short of materialising ``Request`` objects
    — the timestamp of request ``i`` is ``i``.  :func:`generate_trace`
    wraps it for the rich engine; :func:`spec_to_bin` streams the arrays
    into the binary format without ever building the Python list.
    """
    if spec.one_shot_frac + spec.burst_frac > 0.95:
        raise ValueError("one_shot_frac + burst_frac must leave room for the core")
    rng = np.random.default_rng(spec.seed)
    R = spec.n_requests

    n_one = int(R * spec.one_shot_frac)
    n_burst_req = int(R * spec.burst_frac)
    n_sweep_req = int(R * spec.sweep_frac)
    n_core_req = R - n_one - n_burst_req - n_sweep_req
    if n_core_req <= 0:
        raise ValueError("component fractions must leave room for the core")

    # --- core accesses ---------------------------------------------------------------
    if spec.core_model == "periodic":
        core_keys, core_times = _periodic_core(rng, spec, n_core_req)
    elif spec.core_model == "zipf":
        probs = zipf_probs(spec.n_core, spec.zipf_alpha)
        core_ranks = rng.choice(spec.n_core, size=n_core_req, p=probs)
        core_times = np.sort(
            _phase_times(rng, n_core_req, spec, spec.storm_core_weight)
        )
        if spec.drift_period > 0 and spec.drift_shift > 0:
            epoch = (core_times // spec.drift_period).astype(np.int64)
            core_keys = (core_ranks + epoch * spec.drift_shift) % spec.n_core
        else:
            core_keys = core_ranks
        # Stretch a slice of accesses into long-gap revisits (A-ZRO fuel).
        n_shift = n_core_req // 5
        if n_shift:
            idx = rng.choice(n_core_req, n_shift, replace=False)
            core_times[idx] = np.minimum(
                core_times[idx] + rng.exponential(spec.core_gap_scale, n_shift),
                R - 1,
            )
    else:
        raise ValueError(f"unknown core_model {spec.core_model!r}")
    # Short-term locality echoes: accesses of *echoing* objects repeat
    # shortly after.  Each echo replaces an original draw (keeping
    # n_core_req fixed) so the request budget and Zipf marginals stay
    # intact.  Echoing is a per-object property — see ``echo_obj_frac``.
    echoing_obj = rng.random(spec.n_core) < spec.echo_obj_frac
    n_core_actual = len(core_keys)  # the periodic model may return < budget
    eligible = np.flatnonzero(echoing_obj[core_keys])
    n_echo = min(int(len(eligible) * spec.echo_frac), n_core_actual)
    if n_echo:
        src = rng.choice(eligible, n_echo, replace=False)
        dst = rng.choice(n_core_actual, n_echo, replace=False)
        core_keys = core_keys.copy()
        core_keys[dst] = core_keys[src]
        core_times[dst] = np.minimum(
            core_times[src] + rng.exponential(spec.echo_gap, n_echo) + 1.0, R - 1
        )

    # --- one-shot objects ------------------------------------------------------------
    one_keys = spec.n_core + np.arange(n_one)
    one_times = _phase_times(rng, n_one, spec, spec.storm_churn_weight)

    # --- burst objects -----------------------------------------------------------------
    mean_extra = max(spec.burst_mean_len - 1.0, 1e-6)
    # Reserve part of the burst budget for resurgence episodes.
    revive_share = spec.burst_revive_frac / (1.0 + spec.burst_revive_frac)
    base_budget = int(n_burst_req * (1.0 - revive_share))
    lens: list = []
    total = 0
    # Draw burst lengths until the request budget is met (geometric ≥ 2).
    while total < base_budget:
        chunk = 2 + rng.geometric(1.0 / (1.0 + mean_extra), size=1024) - 1
        for L in chunk:
            if total >= base_budget:
                break
            L = int(min(L, base_budget - total)) or 1
            lens.append(L)
            total += L
    lens_arr = np.array(lens, dtype=np.int64)
    n_burst_obj = len(lens_arr)
    burst_births = np.minimum(
        _phase_times(rng, n_burst_obj, spec, spec.storm_churn_weight),
        max(R - spec.burst_window, 1),
    )
    burst_key_base = spec.n_core + n_one
    burst_keys = burst_key_base + np.repeat(np.arange(n_burst_obj), lens_arr)
    gaps = rng.uniform(1, spec.burst_window, total)
    # Within-object cumulative gaps: segmented cumsum (reset per object).
    cum = np.cumsum(gaps)
    seg_starts = np.concatenate([[0], np.cumsum(lens_arr)[:-1]])
    base = np.where(seg_starts > 0, cum[np.maximum(seg_starts - 1, 0)], 0.0)
    offset = cum - np.repeat(base, lens_arr)
    burst_times = np.repeat(burst_births, lens_arr) + offset
    burst_times = np.clip(burst_times, 0, R - 1)

    # Resurgence: a slice of burst objects returns for a second episode a
    # long gap after the first one ends.  Same key, fresh geometric length.
    if spec.burst_revive_frac > 0 and n_burst_obj:
        n_rev = int(n_burst_obj * spec.burst_revive_frac)
        rev_idx = rng.choice(n_burst_obj, n_rev, replace=False)
        rev_lens = 2 + rng.geometric(1.0 / (1.0 + mean_extra), size=n_rev) - 1
        first_end = burst_births + offset[np.cumsum(lens_arr) - 1]
        rev_births = first_end[rev_idx] + rng.exponential(
            spec.burst_revive_gap, n_rev
        )
        rev_total = int(rev_lens.sum())
        rev_gaps = rng.uniform(1, spec.burst_window, rev_total)
        rev_cum = np.cumsum(rev_gaps)
        rev_starts = np.concatenate([[0], np.cumsum(rev_lens)[:-1]])
        rev_base = np.where(rev_starts > 0, rev_cum[np.maximum(rev_starts - 1, 0)], 0.0)
        rev_offset = rev_cum - np.repeat(rev_base, rev_lens)
        rev_times = np.repeat(rev_births, rev_lens) + rev_offset
        keep = rev_times < R - 1
        burst_keys = np.concatenate(
            [burst_keys, (burst_key_base + rev_idx).repeat(rev_lens)[keep]]
        )
        burst_times = np.concatenate([burst_times, rev_times[keep]])
        rev_sizes = np.repeat(np.arange(n_rev), rev_lens)[keep]  # index into rev_idx
        burst_size_index = np.concatenate(
            [np.repeat(np.arange(n_burst_obj), lens_arr), rev_idx[rev_sizes]]
        )
    else:
        burst_size_index = np.repeat(np.arange(n_burst_obj), lens_arr)

    # --- sweep objects -------------------------------------------------------------
    # Population size chosen so visits over all cycles meet the budget.
    n_cycles = max(int(np.ceil(R / spec.sweep_period)), 1)
    per_visit = 1.0 + spec.sweep_pair_frac
    n_sweep_obj = max(int(n_sweep_req / (n_cycles * per_visit)), 0)
    if n_sweep_obj and n_sweep_req:
        obj_ids = np.arange(n_sweep_obj)
        # Each object visited once per cycle, spread across the cycle with a
        # per-object phase plus small per-cycle jitter.
        phase = rng.uniform(0, spec.sweep_period, n_sweep_obj)
        cyc = np.repeat(np.arange(n_cycles), n_sweep_obj)
        base_t = cyc * spec.sweep_period + np.tile(phase, n_cycles)
        jitter = rng.uniform(-0.01 * spec.sweep_period, 0.01 * spec.sweep_period, len(base_t))
        visit_t = base_t + jitter
        visit_keys = np.tile(obj_ids, n_cycles)
        # Pairs: follow-up accesses shortly after the visit.  Paired-ness is
        # a stable per-object property (a URL either triggers revalidation
        # on every visit or never does), but the *number* of follow-ups per
        # visit is random, so the last hit is not identifiable in advance.
        paired_obj = rng.random(n_sweep_obj) < spec.sweep_pair_frac
        is_pair = paired_obj[visit_keys]
        pair_src = np.flatnonzero(is_pair)
        # Follow-up count is mostly a per-object trait (a page triggers the
        # same revalidation chain every visit) with light per-visit noise —
        # enough regularity for history-based policies to learn, enough
        # noise that the last hit is never a certainty.
        p_extra = 1.0 / max(spec.sweep_pair_extra_mean, 1.0)
        extra_per_obj = np.minimum(rng.geometric(p_extra, n_sweep_obj), 3)
        n_extra = extra_per_obj[visit_keys[pair_src]]
        jitter = rng.random(len(pair_src))
        n_extra = np.where(jitter < 0.1, n_extra + 1, n_extra)
        n_extra = np.maximum(np.where(jitter > 0.9, n_extra - 1, n_extra), 1)
        rep_src = np.repeat(pair_src, n_extra)
        gaps_p = rng.uniform(1, spec.sweep_pair_gap, len(rep_src))
        cum_p = np.cumsum(gaps_p)
        starts_p = np.concatenate([[0], np.cumsum(n_extra)[:-1]])
        base_p = np.where(starts_p > 0, cum_p[np.maximum(starts_p - 1, 0)], 0.0)
        offs_p = cum_p - np.repeat(base_p, n_extra)
        pair_t = visit_t[rep_src] + offs_p
        pair_keys = visit_keys[rep_src]
        sweep_times = np.concatenate([visit_t, pair_t])
        sweep_key_idx = np.concatenate([visit_keys, pair_keys])
        keep = (sweep_times >= 0) & (sweep_times < R)
        sweep_times = sweep_times[keep]
        sweep_key_idx = sweep_key_idx[keep]
        sweep_key_base = spec.n_core + n_one + 10_000_000
        sweep_keys = sweep_key_base + sweep_key_idx
        sweep_sizes_per_obj = _draw_sizes(rng, n_sweep_obj, spec, bias=1.0)
        sweep_sizes = sweep_sizes_per_obj[sweep_key_idx]
    else:
        sweep_times = np.empty(0)
        sweep_keys = np.empty(0, dtype=np.int64)
        sweep_sizes = np.empty(0, dtype=np.int64)

    # --- sizes ---------------------------------------------------------------------------
    core_sizes_per_obj = _draw_sizes(rng, spec.n_core, spec, bias=1.0)
    one_sizes = _draw_sizes(rng, n_one, spec, bias=spec.zro_size_bias)
    burst_sizes_per_obj = _draw_sizes(rng, n_burst_obj, spec, bias=1.0)

    # --- interleave -------------------------------------------------------------------------
    all_keys = np.concatenate([core_keys, one_keys, burst_keys, sweep_keys])
    all_times = np.concatenate([core_times, one_times, burst_times, sweep_times])
    all_sizes = np.concatenate(
        [
            core_sizes_per_obj[core_keys],
            one_sizes,
            burst_sizes_per_obj[burst_size_index],
            sweep_sizes,
        ]
    )
    all_keys = all_keys + spec.key_offset
    if spec.scramble_keys:
        # Fibonacci-hash scramble: bijective on 64-bit ints, so object
        # identity is preserved while key locality is destroyed.
        all_keys = (all_keys.astype(np.uint64) * np.uint64(0x9E3779B97F4A7C15)) >> np.uint64(1)
        all_keys = all_keys.astype(np.int64)
    order = np.argsort(all_times, kind="stable")
    return all_keys[order], all_sizes[order]


def generate_trace(spec: WorkloadSpec) -> Trace:
    """Generate a trace according to ``spec``.  Deterministic per seed."""
    ks, ss = generate_arrays(spec)
    requests = [Request(t, int(k), int(s)) for t, (k, s) in enumerate(zip(ks, ss))]
    return Trace(requests, name=spec.name)


def spec_to_bin(spec: WorkloadSpec, path, chunk_size: int = 1 << 20) -> dict:
    """Generate a workload straight into a binary trace file.

    The numpy arrays are produced in full (this generator's interleaving
    needs a global argsort) but the Python ``Request`` list — the dominant
    memory cost at scale — is never built.  Returns the written header
    dict.  For O(chunk)-memory generation at 100 M-request scale use
    :mod:`repro.traces.streaming` instead.
    """
    from repro.traces.binfmt import BinTraceWriter

    ks, ss = generate_arrays(spec)
    with BinTraceWriter(path) as w:
        for lo in range(0, len(ks), chunk_size):
            w.write_chunk(None, ks[lo : lo + chunk_size], ss[lo : lo + chunk_size])
        return w.header_dict()
