"""Nonstationary trace generators — the orchestration workloads.

Every generator here produces a trace whose *best fixed policy changes
over time*, which is exactly the regime the :mod:`repro.orchestrate`
subsystem exists for (SCION's motivating observation: on drifting object
workloads no fixed policy dominates).  Four drift families:

* :func:`popularity_churn` — the hot set is completely replaced every
  phase (catalog rotation): each phase opens with a compulsory-miss storm
  and history learned on the old namespace is worthless.
* :func:`size_mix_shift` — alternating phases swap the object-size regime
  (small-object recency traffic vs large-object traffic), flipping the
  advantage between recency policies and size-aware ones (GDSF).
* :func:`flash_crowd` — a calm, core-dominated stream punctured by
  one-shot/burst storms (flash-crowd onsets): during a storm,
  scan-resistant insertion beats classic LRU; during calm, plain recency
  wins.
* :func:`diurnal` — A/B/A/B rotation between a "day" profile (tight
  recency core) and a "night" profile (churn-heavy batch/crawler mix),
  with each profile's key namespace persisting across its own phases so
  content genuinely recurs the next "day".

All phases are spliced with :func:`repro.traces.transform.concat` (dense
re-timed clock) and are deterministic per seed.  :data:`DRIFT_TRACES`
registers the families for the CLI/bench; :func:`make_drift_trace` builds
one by name.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict

from repro.sim.request import Request, Trace
from repro.traces.synthetic import WorkloadSpec, generate_trace
from repro.traces.transform import concat

__all__ = [
    "popularity_churn",
    "size_mix_shift",
    "flash_crowd",
    "diurnal",
    "DRIFT_TRACES",
    "drift_trace_names",
    "make_drift_trace",
    "TENANT_STRIDE",
    "multi_tenant_trace",
]

#: Key-namespace stride between independent phases (far above any
#: generator's internal namespace span).
_PHASE_STRIDE = 10**10

#: Key-namespace stride between tenants in a multi-tenant trace.  Two
#: orders of magnitude above the largest per-phase offset any family uses,
#: so ``key // TENANT_STRIDE`` recovers the owning tenant exactly.
TENANT_STRIDE = 10**12


def _splice(phases, name: str) -> Trace:
    """Concat phases and record their boundaries on the result.

    The generators emit slightly fewer requests than asked (burst/sweep
    truncation), so phase boundaries cannot be reconstructed from the
    nominal per-phase budget; ``trace.phase_bounds`` — a list of
    ``(start, end, phase_name)`` request-index ranges — is the ground
    truth the drift tests and per-phase analyses slice by.
    """
    tr = concat(phases, name=name)
    bounds = []
    pos = 0
    for p in phases:
        bounds.append((pos, pos + len(p), p.name))
        pos += len(p)
    tr.phase_bounds = bounds
    return tr


def _base_spec(n: int, seed: int) -> WorkloadSpec:
    """Common phase skeleton: no internal drift/storm structure (the drift
    is the point of *this* module and lives between phases, not inside
    them), moderate core with periodic revisits."""
    return WorkloadSpec(
        n_requests=n,
        n_core=3_000,
        seed=seed,
        drift_period=0,
        drift_shift=0,
        storm_period=0,
        sweep_frac=0.05,
    )


def popularity_churn(
    n_requests: int = 120_000, seed: int = 0, n_phases: int = 4
) -> Trace:
    """Hot-set replacement: each phase lives in a fresh key namespace."""
    if n_phases < 2:
        raise ValueError(f"need >= 2 phases for drift, got {n_phases}")
    per = n_requests // n_phases
    phases = []
    for p in range(n_phases):
        spec = replace(
            _base_spec(per, seed * 1_000 + p),
            one_shot_frac=0.20,
            burst_frac=0.20,
            key_offset=p * _PHASE_STRIDE,
            name=f"churn-p{p}",
        )
        phases.append(generate_trace(spec))
    return _splice(phases, name="drift-churn")


def size_mix_shift(
    n_requests: int = 120_000, seed: int = 0, n_phases: int = 4
) -> Trace:
    """Alternating size regimes: small-object recency vs large-object mix.

    Small phases (16 KB median, tight core, few one-shots) reward plain
    recency; large phases (heavy-tailed ~350 KB objects, large one-shot
    spray) reward size-aware victim selection — a fixed policy is wrong
    half the time.
    """
    if n_phases < 2:
        raise ValueError(f"need >= 2 phases for drift, got {n_phases}")
    per = n_requests // n_phases
    phases = []
    for p in range(n_phases):
        base = _base_spec(per, seed * 1_000 + p)
        if p % 2 == 0:
            spec = replace(
                base,
                mean_size=16 * 1024,
                size_sigma=0.6,
                one_shot_frac=0.08,
                burst_frac=0.15,
                key_offset=0,
                name=f"sizeshift-small-p{p}",
            )
        else:
            spec = replace(
                base,
                mean_size=350 * 1024,
                size_sigma=1.4,
                one_shot_frac=0.45,
                burst_frac=0.15,
                zro_size_bias=3.0,
                key_offset=_PHASE_STRIDE,
                name=f"sizeshift-large-p{p}",
            )
        phases.append(generate_trace(spec))
    return _splice(phases, name="drift-sizeshift")


def flash_crowd(
    n_requests: int = 120_000, seed: int = 0, n_storms: int = 2
) -> Trace:
    """Calm core traffic punctured by one-shot/burst storm onsets.

    Calm segments share one namespace (the stable catalog); each storm is
    an independent spray of ephemeral objects that will never recur.
    """
    if n_storms < 1:
        raise ValueError(f"need >= 1 storm, got {n_storms}")
    n_segments = 2 * n_storms + 1
    per = n_requests // n_segments
    segments = []
    for i in range(n_segments):
        if i % 2 == 0:  # calm: persistent catalog, mild churn
            spec = replace(
                _base_spec(per, seed * 1_000 + i),
                one_shot_frac=0.05,
                burst_frac=0.10,
                key_offset=0,
                name=f"flash-calm-{i}",
            )
        else:  # storm: ephemeral spray, oversized one-hit wonders
            spec = replace(
                _base_spec(per, seed * 1_000 + i),
                n_core=400,
                one_shot_frac=0.60,
                burst_frac=0.25,
                burst_mean_len=2.5,
                burst_window=400,
                zro_size_bias=3.0,
                key_offset=(i + 1) * _PHASE_STRIDE,
                name=f"flash-storm-{i}",
            )
        segments.append(generate_trace(spec))
    return _splice(segments, name="drift-flash")


def diurnal(n_requests: int = 120_000, seed: int = 0, cycles: int = 2) -> Trace:
    """Day/night rotation between two persistent workload profiles.

    The "day" profile is interactive recency traffic over a stable
    catalog; the "night" profile is batch/crawler churn (large scans,
    heavy one-shot mass) over its own namespace.  Each profile's keys
    persist across its phases, so day content recurs the next day.
    """
    if cycles < 1:
        raise ValueError(f"need >= 1 cycle, got {cycles}")
    per = n_requests // (2 * cycles)
    phases = []
    for c in range(cycles):
        day = replace(
            _base_spec(per, seed * 1_000 + 2 * c),
            mean_size=24 * 1024,
            size_sigma=0.8,
            one_shot_frac=0.06,
            burst_frac=0.12,
            key_offset=0,
            name=f"diurnal-day-{c}",
        )
        night = replace(
            _base_spec(per, seed * 1_000 + 2 * c + 1),
            n_core=1_200,
            mean_size=200 * 1024,
            size_sigma=1.3,
            one_shot_frac=0.50,
            burst_frac=0.20,
            zro_size_bias=2.5,
            key_offset=_PHASE_STRIDE,
            name=f"diurnal-night-{c}",
        )
        phases.append(generate_trace(day))
        phases.append(generate_trace(night))
    return _splice(phases, name="drift-diurnal")


def multi_tenant_trace(
    n_requests: int = 120_000,
    seed: int = 0,
    tenants=("churn", "flash", "diurnal"),
) -> Trace:
    """Splice K drift families into one tenant-tagged request stream.

    Each entry of ``tenants`` names a :data:`DRIFT_TRACES` family; tenant
    ``t`` gets an independent instance of its family (per-tenant seed,
    per-tenant budget ``n_requests // K``) whose keys are offset by
    ``t * TENANT_STRIDE`` — key namespaces never collide and
    ``key // TENANT_STRIDE`` recovers the owner.  Every request carries
    ``req.tenant = t``.

    The merge interleaves tenants **deterministically by scaled position**
    (request ``j`` of a tenant with ``L`` requests lands at fraction
    ``j / L`` of the merged stream, ties broken by tenant id), so each
    tenant's internal order — and therefore its reuse structure and its
    family's drift phases — is preserved while the streams genuinely
    compete for the same cache at every point in time.

    Metadata on the result:

    * ``trace.phase_bounds`` — the per-family phase boundaries remapped to
      merged global indices, labelled ``t<t>:<phase>`` (the flash tenant's
      storm onsets are what the tenancy bench's reallocations chase);
    * ``trace.tenant_meta`` — ``{tenant: {"family", "requests",
      "working_set_size", "phase_bounds"}}`` with tenant-local bounds.
    """
    families = list(tenants)
    if len(families) < 2:
        raise ValueError(f"need >= 2 tenants, got {len(families)}")
    per = n_requests // len(families)
    if per < 1:
        raise ValueError(
            f"n_requests={n_requests} too small for {len(families)} tenants"
        )
    subs = []
    for t, family in enumerate(families):
        try:
            builder = DRIFT_TRACES[family]
        except KeyError:
            raise KeyError(
                f"unknown drift trace {family!r}; available: {drift_trace_names()}"
            ) from None
        subs.append(builder(n_requests=per, seed=seed * 7919 + t))

    # Scaled-position merge: stable order within a tenant, ties by tenant.
    tagged = []
    for t, sub in enumerate(subs):
        length = len(sub)
        for j, r in enumerate(sub):
            tagged.append((j / length, t, j, r))
    tagged.sort(key=lambda item: (item[0], item[1]))

    merged = []
    global_idx = [dict() for _ in subs]  # tenant -> {local j -> global i}
    for i, (_, t, j, r) in enumerate(tagged):
        merged.append(
            Request(i, r.key + t * TENANT_STRIDE, r.size, tenant=t)
        )
        global_idx[t][j] = i

    name = "tenancy-" + "+".join(families)
    tr = Trace(merged, name=name)
    bounds = []
    tenant_meta = {}
    for t, sub in enumerate(subs):
        local = getattr(sub, "phase_bounds", [(0, len(sub), sub.name)])
        for start, end, phase in local:
            bounds.append(
                (global_idx[t][start], global_idx[t][end - 1] + 1, f"t{t}:{phase}")
            )
        tenant_meta[t] = {
            "family": families[t],
            "requests": len(sub),
            "working_set_size": sub.working_set_size,
            "phase_bounds": list(local),
        }
    bounds.sort()
    tr.phase_bounds = bounds
    tr.tenant_meta = tenant_meta
    return tr


#: Registered drift families: name -> builder(n_requests, seed) -> Trace.
DRIFT_TRACES: Dict[str, Callable[..., Trace]] = {
    "churn": popularity_churn,
    "sizeshift": size_mix_shift,
    "flash": flash_crowd,
    "diurnal": diurnal,
}


def drift_trace_names() -> list:
    return sorted(DRIFT_TRACES)


def make_drift_trace(name: str, n_requests: int = 120_000, seed: int = 0) -> Trace:
    """Build a registered drift trace by family name."""
    try:
        builder = DRIFT_TRACES[name]
    except KeyError:
        raise KeyError(
            f"unknown drift trace {name!r}; available: {drift_trace_names()}"
        ) from None
    return builder(n_requests=n_requests, seed=seed)
