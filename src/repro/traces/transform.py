"""Trace transformations: slicing, concatenation, interleaving, sampling.

Experiment building blocks:

* :func:`slice_trace` — contiguous sub-trace (e.g. a storm window);
* :func:`concat` — phase splicing (build regime-shift traces by hand);
* :func:`interleave` — merge traces by timestamp with key-space isolation
  (multi-tenant mixes);
* :func:`sample_requests` — uniform request thinning (spatial sampling is
  *wrong* for reuse structure — thinning keeps per-object patterns intact
  by sampling objects, not requests).

All functions re-time the output to a dense 0..n-1 clock and return fresh
:class:`~repro.sim.request.Trace` objects (inputs are never mutated).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.sim.request import Request, Trace

__all__ = ["slice_trace", "concat", "interleave", "sample_objects"]


def _retime(requests: List[Request], name: str) -> Trace:
    return Trace(
        [Request(i, r.key, r.size) for i, r in enumerate(requests)], name=name
    )


def slice_trace(trace: Trace, start: int, stop: Optional[int] = None) -> Trace:
    """Contiguous sub-trace ``[start, stop)``, re-timed from 0."""
    n = len(trace)
    stop = n if stop is None else min(stop, n)
    if not 0 <= start < stop:
        raise ValueError(f"invalid slice [{start}, {stop}) of {n}")
    return _retime([trace[i] for i in range(start, stop)], f"{trace.name}[{start}:{stop}]")


def concat(traces: Sequence[Trace], name: Optional[str] = None) -> Trace:
    """Splice traces back to back (regime-shift construction).

    Key spaces are kept as-is — concatenating a trace with itself models a
    workload repeat; offset keys beforehand for independence.
    """
    if not traces:
        raise ValueError("need at least one trace")
    reqs: List[Request] = []
    for tr in traces:
        reqs.extend(tr)
    return _retime(reqs, name or "+".join(t.name for t in traces))


def interleave(
    traces: Sequence[Trace], name: Optional[str] = None, isolate_keys: bool = True
) -> Trace:
    """Merge traces by their timestamps (multi-tenant traffic mix).

    With ``isolate_keys`` each input's keys are offset into a disjoint
    namespace, so tenants never share objects.
    """
    if not traces:
        raise ValueError("need at least one trace")
    streams = []
    for idx, tr in enumerate(traces):
        offset = idx * 10**12 if isolate_keys else 0
        streams.append([(r.time, r.key + offset, r.size) for r in tr])
    merged: List[tuple] = []
    for s in streams:
        merged.extend(s)
    merged.sort(key=lambda t: t[0])
    return _retime(
        [Request(t, k, s) for t, k, s in merged],
        name or "|".join(t.name for t in traces),
    )


def sample_objects(trace: Trace, fraction: float, seed: int = 0) -> Trace:
    """Spatial sampling: keep all requests of a ``fraction`` of objects.

    This is the SHARDS-style downscaling that preserves per-object reuse
    patterns (request-level thinning would stretch every reuse distance).
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    rng = random.Random(seed)
    keep: dict = {}
    reqs = []
    for r in trace:
        flag = keep.get(r.key)
        if flag is None:
            flag = rng.random() < fraction
            keep[r.key] = flag
        if flag:
            reqs.append(r)
    if not reqs:
        raise ValueError("sampling removed every request; raise the fraction")
    return _retime(reqs, f"{trace.name}~{fraction:g}")
