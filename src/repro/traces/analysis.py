"""Workload analysis helpers on top of the oracle labeller.

Produces the Figure 1 panel data — ZRO/A-ZRO/P-ZRO/A-P-ZRO proportions and
the achievable miss-ratio reductions — across the paper's cache-size grid
(0.5 %, 1 %, 5 %, 10 % of the working-set size), plus general reuse
statistics (one-hit-wonder rate, reuse-distance distribution) used by the
trace tests to validate the generators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.sim.request import Trace
from repro.traces.oracle import OracleLabels, label_events, treated_replay

__all__ = [
    "CACHE_SIZE_FRACTIONS",
    "Fig1Row",
    "fig1_panel",
    "reuse_statistics",
]

#: The paper's Figure 1 cache sizes: A/B/C/D = {0.5, 1, 5, 10} % of X (WSS).
CACHE_SIZE_FRACTIONS: Sequence[float] = (0.005, 0.01, 0.05, 0.10)


@dataclass
class Fig1Row:
    """One cache-size point of the Figure 1 panels for one workload."""

    workload: str
    cache_fraction: float
    cache_bytes: int
    # (a) and (d): event proportions.
    zro_share_of_misses: float
    pzro_share_of_hits: float
    # (c) and (f): degradation proportions.
    azro_share_of_zros: float
    apzro_share_of_pzros: float
    # (b) and (e): the baseline LRU miss ratio and the oracle-treated ones.
    miss_ratio_lru: float
    miss_ratio_treat_zro: float
    miss_ratio_treat_pzro: float
    miss_ratio_treat_both: float

    def as_dict(self) -> dict:
        return dict(self.__dict__)


def fig1_panel(
    trace: Trace, fractions: Sequence[float] = CACHE_SIZE_FRACTIONS
) -> List[Fig1Row]:
    """Compute the full Figure 1 data for one workload across cache sizes."""
    rows: List[Fig1Row] = []
    wss = trace.working_set_size
    for frac in fractions:
        cache_bytes = max(int(wss * frac), 1)
        labels = label_events(trace, cache_bytes)
        rows.append(
            Fig1Row(
                workload=trace.name,
                cache_fraction=frac,
                cache_bytes=cache_bytes,
                zro_share_of_misses=labels.zro_share_of_misses,
                pzro_share_of_hits=labels.pzro_share_of_hits,
                azro_share_of_zros=labels.azro_share_of_zros,
                apzro_share_of_pzros=labels.apzro_share_of_pzros,
                miss_ratio_lru=labels.miss_ratio,
                miss_ratio_treat_zro=treated_replay(
                    trace, cache_bytes, labels, treat_zro=True, treat_pzro=False
                ),
                miss_ratio_treat_pzro=treated_replay(
                    trace, cache_bytes, labels, treat_zro=False, treat_pzro=True
                ),
                miss_ratio_treat_both=treated_replay(
                    trace, cache_bytes, labels, treat_zro=True, treat_pzro=True
                ),
            )
        )
    return rows


def reuse_statistics(trace: Trace) -> Dict[str, float]:
    """Trace-level reuse structure used to validate the generators.

    Returns the one-hit-wonder rate (objects requested exactly once), the
    mean requests per object, and reuse-distance quantiles (in requests,
    over *re*-accesses only).
    """
    counts: dict = {}
    last_seen: dict = {}
    reuse_dists: List[int] = []
    for idx in range(len(trace)):
        key = trace[idx].key
        counts[key] = counts.get(key, 0) + 1
        if key in last_seen:
            reuse_dists.append(idx - last_seen[key])
        last_seen[key] = idx
    n_obj = len(counts)
    one_hit = sum(1 for c in counts.values() if c == 1)
    out: Dict[str, float] = {
        "objects": float(n_obj),
        "one_hit_wonder_rate": one_hit / n_obj if n_obj else 0.0,
        "requests_per_object": len(trace) / n_obj if n_obj else 0.0,
    }
    if reuse_dists:
        arr = np.asarray(reuse_dists, dtype=np.float64)
        out["reuse_distance_p50"] = float(np.quantile(arr, 0.5))
        out["reuse_distance_p90"] = float(np.quantile(arr, 0.9))
        out["reuse_distance_mean"] = float(arr.mean())
    else:  # pragma: no cover - degenerate all-unique trace
        out["reuse_distance_p50"] = float("nan")
        out["reuse_distance_p90"] = float("nan")
        out["reuse_distance_mean"] = float("nan")
    return out
