"""The unified bench surface: one registry, one envelope, one CLI verb.

Five benches grew five entry points (``repro bench``, ``serve-bench``,
``orchestrate-bench``, ``cluster-bench``, ``net-bench``) with five
artifact layouts and five CLI arg conventions.  This module collapses the
*surface* without touching the *runners*: every subsystem keeps its
``run_*_bench`` function and per-target document (those doc shapes are
pinned by that subsystem's tests), and gains a registry entry —
a :class:`BenchSpec` — that ``repro bench <target>`` drives.

What a unified run writes is the **envelope** (schema
:data:`BENCH_RESULT_SCHEMA`), a :class:`BenchResult` serialised as JSON:

.. code-block:: text

    {
      "schema":        1,            # envelope version
      "target":        "serve",     # registry key
      "target_schema": 1,            # the inner doc's own schema version
      "config":        {...},        # the run's knobs (target-shaped)
      "results":       {...},        # the target doc minus schema/config/manifest
      "manifest":      {...}         # run manifest, hoisted to the top level
    }

The manifest is hoisted *unchanged*, so each subsystem's
``config_from_doc`` — which only reads ``doc["manifest"]["extra"]`` —
reproduces a run from the envelope exactly as it did from the legacy doc
(:func:`config_from_doc` here dispatches on ``target``).  Tooling that
gates on metrics (``tools/check_bench_regression.py``) addresses them
uniformly as ``results.<dotted.path>`` regardless of target.

Old command names still work as thin shims that emit a
``DeprecationWarning`` and forward to ``repro bench <target>``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

__all__ = [
    "BENCH_RESULT_SCHEMA",
    "BenchSpec",
    "BenchResult",
    "bench_registry",
    "run_bench",
    "config_from_doc",
    "write_bench_doc",
    "load_bench_doc",
]

#: Version of the unified envelope; bump on breaking envelope changes
#: (inner docs version themselves via ``target_schema``).
BENCH_RESULT_SCHEMA = 1


@dataclass(frozen=True)
class BenchSpec:
    """One registry entry: how to run and render a bench target."""

    target: str
    description: str
    #: ``(output=None, quick=..., **kwargs) -> legacy doc``.  Runners are
    #: always invoked with ``output=None``; the envelope is what persists.
    runner: Callable[..., dict]
    #: ``legacy doc -> str`` human summary for the CLI.
    formatter: Callable[[dict], str]
    #: Canonical artifact path for ``repro bench <target>``.
    default_output: str
    #: ``legacy doc -> (config, manifest)`` — how to lift the two envelope
    #: blocks out of this target's document (popping them from it).
    lift: Callable[[dict], tuple] = None  # type: ignore[assignment]


@dataclass
class BenchResult:
    """One bench run in envelope form (what ``BENCH_<target>.json`` holds)."""

    target: str
    target_schema: Optional[int]
    config: Dict[str, Any]
    results: Dict[str, Any]
    manifest: Optional[Dict[str, Any]] = None
    schema: int = BENCH_RESULT_SCHEMA
    path: Optional[str] = None  # where it was persisted, if anywhere

    def as_doc(self) -> dict:
        return {
            "schema": self.schema,
            "target": self.target,
            "target_schema": self.target_schema,
            "config": self.config,
            "results": self.results,
            "manifest": self.manifest,
        }

    @classmethod
    def from_doc(cls, doc: dict, path: Optional[str] = None) -> "BenchResult":
        if doc.get("schema") != BENCH_RESULT_SCHEMA:
            raise ValueError(
                f"not a unified bench doc (schema {doc.get('schema')!r}, "
                f"expected {BENCH_RESULT_SCHEMA})"
            )
        return cls(
            target=doc["target"],
            target_schema=doc.get("target_schema"),
            config=doc.get("config") or {},
            results=doc["results"],
            manifest=doc.get("manifest"),
            schema=doc["schema"],
            path=path,
        )

    def legacy_doc(self) -> dict:
        """Reconstruct the target-shaped document the subsystem's
        formatter and tests understand."""
        doc = dict(self.results)
        if self.target_schema is not None:
            doc["schema"] = self.target_schema
        if self.config:
            doc.setdefault("config", self.config)
        if self.manifest is not None:
            doc.setdefault("manifest", self.manifest)
        return doc


def _lift_standard(doc: dict) -> tuple:
    """Most targets embed ``config`` + ``manifest`` keys; hoist them."""
    return doc.pop("config", {}), doc.pop("manifest", None)


def _lift_engine(doc: dict) -> tuple:
    """The engine doc is flat and manifest-less: synthesise both blocks
    from its own fields so the envelope is uniform across targets."""
    from repro.obs.manifest import build_manifest

    config = {
        "workload": doc.get("workload"),
        "n_requests": doc.get("n_requests"),
        "cache_fraction": doc.get("cache_fraction"),
        "capacity_bytes": doc.get("capacity_bytes"),
        "repeats": doc.get("repeats"),
        "policies": sorted(doc.get("results", {})),
    }
    manifest = build_manifest(extra={"engine": config})
    return config, manifest


def bench_registry() -> Dict[str, BenchSpec]:
    """``target -> BenchSpec`` for every bench the toolkit ships.

    Imports are deferred into the spec constructors' closures so listing
    the registry stays cheap (the CLI builds it for ``--help``).
    """

    def engine_runner(**kw):
        from repro.perf.bench import run_engine_bench

        return run_engine_bench(**kw)

    def engine_formatter(doc):
        from repro.perf.bench import format_bench

        return format_bench(doc)

    def serve_runner(**kw):
        from repro.serve.loadgen import run_serve_bench

        return run_serve_bench(**kw)

    def serve_formatter(doc):
        from repro.serve.results import format_serve_doc

        return format_serve_doc(doc)

    def orchestrate_runner(**kw):
        from repro.orchestrate.bench import run_orchestrate_bench

        return run_orchestrate_bench(**kw)

    def orchestrate_formatter(doc):
        from repro.orchestrate.bench import format_orchestrate_doc

        return format_orchestrate_doc(doc)

    def cluster_runner(**kw):
        from repro.cluster.bench import run_cluster_bench

        return run_cluster_bench(**kw)

    def cluster_formatter(doc):
        from repro.cluster.bench import format_cluster_doc

        return format_cluster_doc(doc)

    def net_runner(**kw):
        from repro.net.bench import run_net_bench

        return run_net_bench(**kw)

    def net_formatter(doc):
        from repro.net.bench import format_net_doc

        return format_net_doc(doc)

    def tenancy_runner(**kw):
        from repro.tenancy.bench import run_tenancy_bench

        return run_tenancy_bench(**kw)

    def tenancy_formatter(doc):
        from repro.tenancy.bench import format_tenancy_doc

        return format_tenancy_doc(doc)

    return {
        "engine": BenchSpec(
            target="engine",
            description="single-policy replay micro-benchmark (legacy vs fast path)",
            runner=engine_runner,
            formatter=engine_formatter,
            default_output="BENCH_engine.json",
            lift=_lift_engine,
        ),
        "serve": BenchSpec(
            target="serve",
            description="concurrent cache service + closed-loop load generator",
            runner=serve_runner,
            formatter=serve_formatter,
            default_output="BENCH_serve.json",
            lift=_lift_standard,
        ),
        "orchestrate": BenchSpec(
            target="orchestrate",
            description="shadow-cache policy orchestration vs fixed candidates",
            runner=orchestrate_runner,
            formatter=orchestrate_formatter,
            default_output="BENCH_orchestrate.json",
            lift=_lift_standard,
        ),
        "cluster": BenchSpec(
            target="cluster",
            description="replicated multi-node cluster under a fault schedule",
            runner=cluster_runner,
            formatter=cluster_formatter,
            default_output="BENCH_cluster.json",
            lift=_lift_standard,
        ),
        "net": BenchSpec(
            target="net",
            description="placement x edge-policy grid over a cache tree",
            runner=net_runner,
            formatter=net_formatter,
            default_output="BENCH_net.json",
            lift=_lift_standard,
        ),
        "tenancy": BenchSpec(
            target="tenancy",
            description="online multi-tenant capacity allocation vs static split",
            runner=tenancy_runner,
            formatter=tenancy_formatter,
            default_output="BENCH_tenancy.json",
            lift=_lift_standard,
        ),
    }


def run_bench(
    target: str,
    output: Optional[str] = "",
    quick: bool = False,
    seed: Optional[int] = None,
    **kwargs,
) -> BenchResult:
    """Run one registered bench target and wrap its doc in the envelope.

    Parameters
    ----------
    target:
        Registry key (``engine``, ``serve``, ``orchestrate``, ``cluster``,
        ``net``, ``tenancy``).
    output:
        Envelope path; ``""`` (the default) means the target's canonical
        ``BENCH_<target>.json``, ``None`` skips writing.
    quick:
        The target's CI smoke shape.
    seed:
        Seed forwarded to the runner; ``None`` keeps the target's own
        default so unseeded runs reproduce the historical streams.
    kwargs:
        Target-specific knobs, passed through to the runner verbatim.
    """
    registry = bench_registry()
    try:
        spec = registry[target]
    except KeyError:
        raise KeyError(
            f"unknown bench target {target!r}; available: {sorted(registry)}"
        ) from None
    if seed is not None:
        kwargs["seed"] = seed
    legacy = spec.runner(output=None, quick=quick, **kwargs)
    inner = dict(legacy)
    target_schema = inner.pop("schema", None)
    config, manifest = spec.lift(inner)
    result = BenchResult(
        target=target,
        target_schema=target_schema,
        config=config,
        results=inner,
        manifest=manifest,
    )
    if output == "":
        output = spec.default_output
    if output:
        result.path = write_bench_doc(result.as_doc(), output)
    return result


def config_from_doc(doc: dict) -> dict:
    """Rebuild the runner keyword set from a persisted envelope.

    Dispatches on ``doc["target"]`` to the subsystem's own
    ``config_from_doc`` where one exists (the manifest travels unchanged,
    so those functions read the envelope directly); targets without a
    reproducibility contract of their own fall back to the envelope's
    ``config`` block minus derived fields.
    """
    target = doc.get("target")
    if target == "orchestrate":
        from repro.orchestrate.bench import config_from_doc as lift

        return lift(doc)
    if target == "cluster":
        from repro.cluster.bench import config_from_doc as lift

        return lift(doc)
    if target == "tenancy":
        from repro.tenancy.bench import config_from_doc as lift

        return lift(doc)
    cfg = dict(doc.get("config") or {})
    cfg.pop("capacity_bytes", None)  # always derived from trace x fraction
    if "cache_fraction" in cfg:
        cfg["fraction"] = cfg.pop("cache_fraction")
    if target == "engine":
        cfg["policies"] = list(cfg.pop("policies", []))
    return cfg


def write_bench_doc(doc: dict, path: str) -> str:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return str(path)


def load_bench_doc(path: str) -> BenchResult:
    with open(path, encoding="utf-8") as fh:
        return BenchResult.from_doc(json.load(fh), path=path)
