"""TDC cluster topology — Figure 2's CDN acceleration module.

Requests flow **user → OC layer → DC layer → COS (origin)**:

* the OC (outside cache) layer sits near users; each request is routed to
  one OC node by key hash;
* an OC miss falls through to the DC (data-center) layer, again key-hashed;
* a DC miss is a **back-to-origin** fetch from COS, the expensive path the
  monitoring system tracks.

Both layers admit the object on the way back (write-on-miss), as TDC does.
The cluster records every request in a :class:`~repro.tdc.monitor.Monitor`
with latencies from :class:`~repro.tdc.latency.LatencyModel`.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from repro.cache.base import CachePolicy
from repro.sim.request import Request, Trace
from repro.tdc.latency import LatencyModel
from repro.tdc.monitor import Monitor
from repro.tdc.node import StorageNode

__all__ = ["TDCCluster"]


class TDCCluster:
    """Two-layer CDN cache cluster with an origin behind it.

    Parameters
    ----------
    oc_nodes, dc_nodes:
        Node counts per layer.
    oc_capacity, dc_capacity:
        Per-node capacities in bytes.
    policy_factory:
        ``f(capacity) -> CachePolicy`` used for every node (swap later per
        layer with :meth:`deploy_policy`).
    use_hashring:
        Route by consistent hashing (:mod:`repro.tdc.hashring`) instead of
        ``hash % n`` — what a production fleet does so that node changes
        reshuffle only ~1/n of the keyspace.
    """

    def __init__(
        self,
        oc_nodes: int,
        dc_nodes: int,
        oc_capacity: int,
        dc_capacity: int,
        policy_factory: Callable[[int], CachePolicy],
        latency: LatencyModel | None = None,
        monitor: Monitor | None = None,
        use_hashring: bool = False,
    ):
        if oc_nodes < 1 or dc_nodes < 1:
            raise ValueError("need at least one node per layer")
        self.oc: List[StorageNode] = [
            StorageNode(f"oc{i}", policy_factory(oc_capacity)) for i in range(oc_nodes)
        ]
        self.dc: List[StorageNode] = [
            StorageNode(f"dc{i}", policy_factory(dc_capacity)) for i in range(dc_nodes)
        ]
        self.latency = latency or LatencyModel()
        self.monitor = monitor or Monitor()
        self.origin_fetches = 0
        self.origin_bytes = 0
        if use_hashring:
            from repro.tdc.hashring import HashRing

            self._oc_ring = HashRing([n.name for n in self.oc])
            self._dc_ring = HashRing([n.name for n in self.dc])
            self._by_name = {n.name: n for n in self.oc + self.dc}
        else:
            self._oc_ring = self._dc_ring = None

    # -- routing ------------------------------------------------------------------
    def _route(self, nodes: Sequence[StorageNode], key: int) -> StorageNode:
        if self._oc_ring is not None:
            ring = self._oc_ring if nodes is self.oc else self._dc_ring
            return self._by_name[ring.route(key)]
        return nodes[hash(key) % len(nodes)]

    def serve(self, req: Request) -> float:
        """Serve one request end-to-end; returns user-visible latency (ms)."""
        oc = self._route(self.oc, req.key)
        if oc.get(req):
            lat = self.latency.oc_hit()
            self.monitor.record(False, req.size, lat)
            return lat
        dc = self._route(self.dc, req.key)
        if dc.get(req):
            lat = self.latency.dc_hit()
            self.monitor.record(False, req.size, lat)
            return lat
        # Back to origin.
        self.origin_fetches += 1
        self.origin_bytes += req.size
        lat = self.latency.origin_fetch(req.size)
        self.monitor.record(True, req.size, lat)
        return lat

    def run(self, trace: Trace) -> None:
        """Replay a whole trace through the cluster."""
        for req in trace:
            self.serve(req)
        self.monitor.flush()

    # -- deployment -----------------------------------------------------------------
    def deploy_policy(
        self, factory: Callable[[int], CachePolicy], layer: str = "both"
    ) -> None:
        """Roll a new policy onto a layer mid-run (the §5 SCIP deployment)."""
        if layer not in ("oc", "dc", "both"):
            raise ValueError(f"layer must be 'oc', 'dc' or 'both', got {layer!r}")
        targets: List[StorageNode] = []
        if layer in ("oc", "both"):
            targets += self.oc
        if layer in ("dc", "both"):
            targets += self.dc
        for node in targets:
            node.swap_policy(factory)

    # -- introspection ----------------------------------------------------------------
    def total_inode_bytes(self) -> int:
        return sum(n.inode_bytes() for n in self.oc + self.dc)

    def layer_miss_ratios(self) -> dict:
        def ratio(nodes: Sequence[StorageNode]) -> float:
            hits = sum(n.policy.stats.hits for n in nodes)
            total = sum(n.policy.stats.requests for n in nodes)
            return 1.0 - hits / total if total else 0.0

        return {"oc": ratio(self.oc), "dc": ratio(self.dc)}
