"""TDC storage node — the cache server of Figure 2.

A node wraps one cache policy behind the metadata model §5.1 describes: an
in-memory *inode table* (MD5-keyed index with object size, queue pointers
and the ``insert_pos`` bit, ~110 bytes each) in front of raw-disk object
storage.  The node exposes a ``get`` that returns (hit?, service_latency)
— latency modelling lives in :mod:`repro.tdc.latency`.

The policy is pluggable exactly as in the deployment story: *"since
engineers have deployed LRU in TDC, we have merely replaced LRU's insertion
policy with SCIP"* — :meth:`swap_policy` performs that hot swap, preserving
resident objects in recency order.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.cache.base import CachePolicy, QueueCache
from repro.sim.request import Request

__all__ = ["StorageNode"]

#: Bytes per inode (§5.1: MD5 index, size, queue pointers, insert_pos).
INODE_BYTES = 110


class StorageNode:
    """One cache node of a TDC layer.

    Parameters
    ----------
    name:
        Node identifier (monitoring label).
    policy:
        The cache policy instance serving this node.
    """

    def __init__(self, name: str, policy: CachePolicy):
        self.name = name
        self.policy = policy

    @property
    def capacity(self) -> int:
        return self.policy.capacity

    def get(self, req: Request) -> bool:
        """Serve a request; returns hit/miss.  On a miss the caller (the
        cluster) is responsible for fetching upstream — the node admits the
        object per its policy either way, modelling write-on-miss."""
        return self.policy.request(req)

    def inode_bytes(self) -> int:
        """In-memory metadata footprint (the §5.1 sizing)."""
        return INODE_BYTES * len(self.policy)

    def swap_policy(self, factory: Callable[[int], CachePolicy]) -> None:
        """Hot-swap the cache policy, migrating resident objects.

        Mirrors the TDC deployment: the resident set is preserved (walked
        LRU → MRU so recency order is reconstructed in the new policy);
        only the placement logic changes.  Works for queue-structured
        policies; others restart cold, which is also what a production
        rollout without state migration would do.
        """
        old = self.policy
        new = factory(old.capacity)
        if isinstance(old, QueueCache) and isinstance(new, QueueCache):
            clock = old.clock
            for node in old.queue.iter_lru():
                new._miss(Request(clock, node.key, node.size))
        self.policy = new

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"StorageNode({self.name!r}, policy={self.policy.name}, used={self.policy.used})"
