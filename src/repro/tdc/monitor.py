"""TDC monitoring system — the time series behind Figure 6.

Tracks, per wall-clock bucket:

* **BTO ratio** — fraction of requests served from the origin (the paper's
  "Backing To Origin" ratio, i.e. the end-to-end miss ratio);
* **BTO bandwidth** — origin traffic in Gbps (bytes fetched from COS per
  bucket ÷ bucket duration);
* **average user access latency** in milliseconds.

`requests_per_second` converts logical request indices to wall time so the
bandwidth axis has physical units, mirroring the production monitoring
plots.

Latency is additionally folded into a shared observability histogram
(:class:`repro.obs.metrics.Histogram`, fixed log2 buckets) so the summary
carries tail quantiles, not just the per-bucket means — the same instrument
type the rest of the telemetry layer snapshots.
"""

from __future__ import annotations

from typing import List

from repro.obs.metrics import Histogram

__all__ = ["Monitor", "MonitorBucket"]


class MonitorBucket:
    """Aggregates for one monitoring interval."""

    __slots__ = ("start", "requests", "origin_fetches", "origin_bytes", "latency_sum")

    def __init__(self, start: int):
        self.start = start
        self.requests = 0
        self.origin_fetches = 0
        self.origin_bytes = 0
        self.latency_sum = 0.0

    @property
    def bto_ratio(self) -> float:
        return self.origin_fetches / self.requests if self.requests else 0.0

    @property
    def avg_latency_ms(self) -> float:
        return self.latency_sum / self.requests if self.requests else 0.0


class Monitor:
    """Bucketed BTO/latency collector.

    Parameters
    ----------
    bucket_requests:
        Requests per monitoring bucket.
    requests_per_second:
        Simulated request rate, used to express origin traffic in Gbps.
    """

    def __init__(self, bucket_requests: int = 10_000, requests_per_second: float = 2_000.0):
        if bucket_requests < 1:
            raise ValueError(f"bucket_requests must be >= 1, got {bucket_requests}")
        self.bucket_requests = bucket_requests
        self.requests_per_second = requests_per_second
        self.buckets: List[MonitorBucket] = []
        self._current = MonitorBucket(0)
        self._seen = 0
        self.latency_hist = Histogram("latency_ms")

    def record(self, origin_fetch: bool, size: int, latency_ms: float) -> None:
        cur = self._current
        cur.requests += 1
        cur.latency_sum += latency_ms
        self.latency_hist.observe(latency_ms)
        if origin_fetch:
            cur.origin_fetches += 1
            cur.origin_bytes += size
        self._seen += 1
        if cur.requests >= self.bucket_requests:
            self.buckets.append(cur)
            self._current = MonitorBucket(self._seen)

    def flush(self) -> None:
        if self._current.requests:
            self.buckets.append(self._current)
            self._current = MonitorBucket(self._seen)

    # -- series accessors ---------------------------------------------------------
    def bto_ratio_series(self) -> List[float]:
        return [b.bto_ratio for b in self.buckets]

    def bto_gbps_series(self) -> List[float]:
        # Each bucket's wall time follows from the requests it actually
        # holds — a flushed partial tail bucket spans only its own
        # ``b.requests / requests_per_second`` seconds, not the full
        # ``bucket_requests`` duration (which would understate its Gbps).
        rps = self.requests_per_second
        return [
            b.origin_bytes * 8 / 1e9 / (b.requests / rps) if b.requests else 0.0
            for b in self.buckets
        ]

    def latency_series(self) -> List[float]:
        return [b.avg_latency_ms for b in self.buckets]

    @staticmethod
    def _avg(xs: List[float]) -> float:
        return sum(xs) / len(xs) if xs else 0.0

    def summary(self, split_at_bucket: int | None = None) -> dict:
        """Aggregate stats; with ``split_at_bucket``, before/after averages
        (the Figure 6 deployment comparison).

        ``split_at_bucket`` counts whole buckets from the front: 0 puts
        everything in ``after``, a value past the end puts everything in
        ``before`` (empty sides average to 0.0).  Negative values are
        rejected — a Python-style from-the-end split would silently invert
        the comparison.
        """
        ratios = self.bto_ratio_series()
        gbps = self.bto_gbps_series()
        lat = self.latency_series()
        out = {
            "bto_ratio": self._avg(ratios),
            "bto_gbps": self._avg(gbps),
            "latency_ms": self._avg(lat),
            "latency_p50_ms": self.latency_hist.quantile(0.5),
            "latency_p99_ms": self.latency_hist.quantile(0.99),
        }
        if split_at_bucket is not None:
            if split_at_bucket < 0:
                raise ValueError(
                    f"split_at_bucket must be >= 0, got {split_at_bucket}"
                )
            out["before"] = {
                "bto_ratio": self._avg(ratios[:split_at_bucket]),
                "bto_gbps": self._avg(gbps[:split_at_bucket]),
                "latency_ms": self._avg(lat[:split_at_bucket]),
            }
            out["after"] = {
                "bto_ratio": self._avg(ratios[split_at_bucket:]),
                "bto_gbps": self._avg(gbps[split_at_bucket:]),
                "latency_ms": self._avg(lat[split_at_bucket:]),
            }
        return out
