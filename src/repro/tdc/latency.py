"""Per-hop latency model for the TDC cluster.

Figure 6(b) reports *average user access latency*; we model it as the sum
of the hops a request traverses before finding its object:

* OC hit — the edge cache answers (fast);
* DC hit — OC missed, the data-center cache answers;
* origin (COS) — both layers missed: "Backing To Origin", the slow path
  whose traffic Figure 6(a) monitors.

Latencies are drawn from lognormal distributions around configurable
medians, seeded for determinism.  Defaults approximate public CDN numbers
(edge ~15 ms, regional DC ~50 ms, origin ~200 ms + size-proportional
transfer time at 1 Gbps).
"""

from __future__ import annotations

import math
import random

__all__ = ["LatencyModel"]


class LatencyModel:
    """Three-tier latency sampler.

    Parameters
    ----------
    oc_ms, dc_ms, origin_ms:
        Median latencies per tier (milliseconds).
    sigma:
        Lognormal shape (spread) of each draw.
    origin_gbps:
        Origin transfer bandwidth; adds ``size / bandwidth`` to origin
        fetches so large BTO objects cost proportionally more.
    """

    def __init__(
        self,
        oc_ms: float = 15.0,
        dc_ms: float = 50.0,
        origin_ms: float = 200.0,
        sigma: float = 0.25,
        origin_gbps: float = 1.0,
        seed: int = 0,
    ):
        if min(oc_ms, dc_ms, origin_ms) <= 0:
            raise ValueError("latencies must be positive")
        self.oc_ms = oc_ms
        self.dc_ms = dc_ms
        self.origin_ms = origin_ms
        self.sigma = sigma
        self.origin_bytes_per_ms = origin_gbps * 1e9 / 8 / 1e3
        self.rng = random.Random(seed)

    def _draw(self, median_ms: float) -> float:
        return median_ms * math.exp(self.rng.gauss(0.0, self.sigma))

    def oc_hit(self) -> float:
        """Latency (ms) when the OC layer hits."""
        return self._draw(self.oc_ms)

    def dc_hit(self) -> float:
        """Latency (ms) when OC misses but DC hits."""
        return self._draw(self.oc_ms) + self._draw(self.dc_ms)

    def origin_fetch(self, size: int) -> float:
        """Latency (ms) for a full back-to-origin fetch of ``size`` bytes."""
        return (
            self._draw(self.oc_ms)
            + self._draw(self.dc_ms)
            + self._draw(self.origin_ms)
            + size / self.origin_bytes_per_ms
        )
