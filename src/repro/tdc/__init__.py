"""TDC production-system simulator: the two-layer CDN of Figure 2 and the
§5 deployment experiment behind Figure 6."""

from repro.tdc.cluster import TDCCluster
from repro.tdc.deploy import DeploymentResult, run_deployment
from repro.tdc.hashring import HashRing
from repro.tdc.latency import LatencyModel
from repro.tdc.monitor import Monitor, MonitorBucket
from repro.tdc.node import StorageNode

__all__ = [
    "StorageNode",
    "TDCCluster",
    "LatencyModel",
    "HashRing",
    "Monitor",
    "MonitorBucket",
    "run_deployment",
    "DeploymentResult",
]
