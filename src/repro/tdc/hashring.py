"""Consistent-hash routing for the TDC cluster.

The basic cluster routes by ``hash(key) % n`` — correct for a fixed fleet,
but a production CDN adds and drains nodes continuously, and modulo routing
re-shuffles nearly every key on any fleet change (each reshuffled key is a
cold miss at its new node).  A consistent-hash ring with virtual nodes
bounds the reshuffle to ~1/n of the keyspace per node change, which is why
every real CDN (and TDC's MCP++ stack) routes this way.

:class:`HashRing` is deliberately standalone so the cluster can adopt it via
``TDCCluster``'s router hook and tests can measure reshuffle fractions
directly.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence

__all__ = ["HashRing"]


def _hash64(data: str) -> int:
    return int.from_bytes(hashlib.blake2b(data.encode(), digest_size=8).digest(), "big")


class HashRing:
    """Consistent-hash ring with virtual nodes.

    Parameters
    ----------
    nodes:
        Initial node identifiers.
    vnodes:
        Virtual nodes per physical node (more = smoother balance; 64 keeps
        the ring small while bounding imbalance to a few percent).
    """

    def __init__(self, nodes: Sequence[str], vnodes: int = 64):
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._ring: List[int] = []
        self._owner: Dict[int, str] = {}
        self._nodes: set = set()
        for node in nodes:
            self.add_node(node)
        if not self._nodes:
            raise ValueError("ring needs at least one node")

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def nodes(self) -> List[str]:
        return sorted(self._nodes)

    def add_node(self, node: str) -> None:
        """Add a node (idempotent)."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        for v in range(self.vnodes):
            point = _hash64(f"{node}#{v}")
            idx = bisect.bisect_left(self._ring, point)
            self._ring.insert(idx, point)
            self._owner[point] = node

    def remove_node(self, node: str) -> None:
        """Drain a node; its keyspace falls to the ring successors."""
        if node not in self._nodes:
            raise KeyError(f"unknown node {node!r}")
        if len(self._nodes) == 1:
            raise ValueError("cannot remove the last node")
        self._nodes.discard(node)
        for v in range(self.vnodes):
            point = _hash64(f"{node}#{v}")
            idx = bisect.bisect_left(self._ring, point)
            # The point is present exactly once per vnode.
            if idx < len(self._ring) and self._ring[idx] == point:
                self._ring.pop(idx)
                del self._owner[point]

    def route(self, key: int) -> str:
        """Owning node for ``key`` (first ring point clockwise)."""
        h = _hash64(str(key))
        idx = bisect.bisect_right(self._ring, h)
        if idx == len(self._ring):
            idx = 0
        return self._owner[self._ring[idx]]

    def preference_list(self, key: int, n: int) -> List[str]:
        """The first ``n`` *distinct* nodes clockwise from ``key``'s point.

        This is the replica placement rule of every consistent-hash store
        (Dynamo-style): entry 0 is the primary (identical to :meth:`route`),
        entries 1..n-1 are the successor replicas.  When the ring holds
        fewer than ``n`` nodes the list is simply shorter — callers degrade
        to the replicas that exist.
        """
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        h = _hash64(str(key))
        start = bisect.bisect_right(self._ring, h)
        owners: List[str] = []
        seen = set()
        ring_len = len(self._ring)
        for step in range(ring_len):
            node = self._owner[self._ring[(start + step) % ring_len]]
            if node not in seen:
                seen.add(node)
                owners.append(node)
                if len(owners) == n:
                    break
        return owners

    def load_distribution(self, keys: Sequence[int]) -> Dict[str, int]:
        """Keys per node over a sample (balance diagnostics)."""
        out: Dict[str, int] = {n: 0 for n in self._nodes}
        for k in keys:
            out[self.route(k)] += 1
        return out
