"""The §5.2 deployment experiment: LRU → SCIP rollout on a live cluster.

Replays a CDN-T-profile trace through a :class:`~repro.tdc.cluster.TDCCluster`
running LRU, switches the cache policy to SCIP at a configurable point of
the timeline (the production rollout), and reports the before/after change
in BTO ratio, BTO bandwidth and user latency — the three panels of
Figure 6.

Paper reference points: BTO ratio 8.87 % → 6.59 % (−2.28 pts), BTO traffic
−25.7 %, average latency −26.1 %.  Our cluster is ~10⁶× smaller, so the
check is the *direction and rough relative magnitude* of all three deltas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.cache.base import CachePolicy
from repro.cache.lru import LRUCache
from repro.core.scip import SCIPCache
from repro.sim.request import Trace
from repro.tdc.cluster import TDCCluster
from repro.tdc.latency import LatencyModel
from repro.tdc.monitor import Monitor

__all__ = ["DeploymentResult", "run_deployment"]


@dataclass
class DeploymentResult:
    """Before/after monitoring aggregates across the rollout."""

    before_bto_ratio: float
    after_bto_ratio: float
    before_bto_gbps: float
    after_bto_gbps: float
    before_latency_ms: float
    after_latency_ms: float
    cluster: TDCCluster

    @property
    def bto_ratio_delta(self) -> float:
        """Absolute BTO-ratio change (negative = improvement)."""
        return self.after_bto_ratio - self.before_bto_ratio

    @property
    def bto_gbps_rel_change(self) -> float:
        if self.before_bto_gbps == 0:
            return 0.0
        return (self.after_bto_gbps - self.before_bto_gbps) / self.before_bto_gbps

    @property
    def latency_rel_change(self) -> float:
        if self.before_latency_ms == 0:
            return 0.0
        return (self.after_latency_ms - self.before_latency_ms) / self.before_latency_ms

    def as_dict(self) -> dict:
        return {
            "before_bto_ratio": self.before_bto_ratio,
            "after_bto_ratio": self.after_bto_ratio,
            "before_bto_gbps": self.before_bto_gbps,
            "after_bto_gbps": self.after_bto_gbps,
            "before_latency_ms": self.before_latency_ms,
            "after_latency_ms": self.after_latency_ms,
            "bto_ratio_delta": self.bto_ratio_delta,
            "bto_gbps_rel_change": self.bto_gbps_rel_change,
            "latency_rel_change": self.latency_rel_change,
        }


def run_deployment(
    trace: Trace,
    oc_nodes: int = 4,
    dc_nodes: int = 2,
    oc_capacity: Optional[int] = None,
    dc_capacity: Optional[int] = None,
    switch_at_frac: float = 0.5,
    settle_frac: float = 0.1,
    new_policy: Optional[Callable[[int], CachePolicy]] = None,
    bucket_requests: int = 5_000,
    seed: int = 0,
) -> DeploymentResult:
    """Run the rollout experiment.

    Parameters
    ----------
    switch_at_frac:
        Point of the trace at which SCIP replaces LRU on every node.
    settle_frac:
        Fraction of the trace after the switch excluded from the "after"
        averages, letting SCIP's history lists warm up (production rollouts
        are likewise judged after convergence).
    new_policy:
        Policy deployed at the switch (default SCIP with our defaults).
    """
    if not 0.0 < switch_at_frac < 1.0:
        raise ValueError(f"switch_at_frac must be in (0, 1), got {switch_at_frac}")
    wss = trace.working_set_size
    # TDC runs at a low (<10 %) BTO ratio: the combined layers hold a large
    # slice of the hot set.  Per-node defaults give the cluster ~12 % of
    # WSS at the OC layer and ~8 % at the DC layer.
    oc_capacity = oc_capacity or max(int(wss * 0.12) // oc_nodes, 1)
    dc_capacity = dc_capacity or max(int(wss * 0.08) // dc_nodes, 1)

    cluster = TDCCluster(
        oc_nodes,
        dc_nodes,
        oc_capacity,
        dc_capacity,
        policy_factory=lambda cap: LRUCache(cap),
        latency=LatencyModel(seed=seed),
        monitor=Monitor(bucket_requests=bucket_requests),
    )
    switch_idx = int(len(trace) * switch_at_frac)
    factory = new_policy or (lambda cap: SCIPCache(cap))
    for i in range(len(trace)):
        if i == switch_idx:
            cluster.deploy_policy(factory)
        cluster.serve(trace[i])
    cluster.monitor.flush()

    switch_bucket = switch_idx // bucket_requests
    settle_buckets = int(len(trace) * settle_frac) // bucket_requests
    ratios = cluster.monitor.bto_ratio_series()
    lat = cluster.monitor.latency_series()
    before = slice(0, switch_bucket)
    after = slice(switch_bucket + settle_buckets, None)

    def avg(xs):
        xs = list(xs)
        return sum(xs) / len(xs) if xs else 0.0

    def gbps_avg(buckets) -> float:
        # Duration-weighted aggregate: total origin bytes over total wall
        # time.  An unweighted mean of per-bucket Gbps would give the short
        # flushed tail bucket the same weight as a full one.
        buckets = list(buckets)
        requests = sum(b.requests for b in buckets)
        if not requests:
            return 0.0
        secs = requests / cluster.monitor.requests_per_second
        return sum(b.origin_bytes for b in buckets) * 8 / 1e9 / secs

    return DeploymentResult(
        before_bto_ratio=avg(ratios[before]),
        after_bto_ratio=avg(ratios[after]),
        before_bto_gbps=gbps_avg(cluster.monitor.buckets[before]),
        after_bto_gbps=gbps_avg(cluster.monitor.buckets[after]),
        before_latency_ms=avg(lat[before]),
        after_latency_ms=avg(lat[after]),
        cluster=cluster,
    )
