"""Scripted failure injection: what breaks, where, and at which request.

A :class:`FaultPlan` is a deterministic schedule of node-level faults
keyed by **request offset** (the cluster replay's logical clock), not by
wall time — the same plan against the same trace produces the same
failure placement on every run, which is what makes ``BENCH_cluster.json``
reproducible from its manifest and lets tests pin exact failover counts.

Four action kinds:

``kill``
    Stop the node and discard its cache state (crash semantics).
``restart``
    Bring a killed node back **cold** — its recovery ramp is the point.
``slow``
    Degrade the node: every data-plane call pays ``extra_latency_s`` more
    (an overloaded box that still answers, just late).
``recover``
    Clear a ``slow`` degradation.

The plan itself is pure data; :meth:`ClusterRouter.apply_faults
<repro.cluster.router.ClusterRouter.apply_faults>` consumes due actions
as the replay clock advances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

__all__ = ["FaultAction", "FaultPlan", "FAULT_KINDS"]

#: Recognised action kinds.
FAULT_KINDS = ("kill", "restart", "slow", "recover")


@dataclass(frozen=True)
class FaultAction:
    """One scheduled fault.

    Parameters
    ----------
    at:
        Request offset at which the action fires (0-based; an action at
        ``at=N`` is applied before request ``N`` is routed).
    kind:
        One of :data:`FAULT_KINDS`.
    node:
        Target node id.
    extra_latency_s:
        For ``slow``: the additive per-call latency.  Ignored otherwise.
    """

    at: int
    kind: str
    node: str
    extra_latency_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; one of {FAULT_KINDS}")
        if self.at < 0:
            raise ValueError(f"fault offset must be >= 0, got {self.at}")
        if self.kind == "slow" and self.extra_latency_s <= 0:
            raise ValueError("slow fault needs extra_latency_s > 0")

    def as_dict(self) -> dict:
        doc = {"at": self.at, "kind": self.kind, "node": self.node}
        if self.kind == "slow":
            doc["extra_latency_s"] = self.extra_latency_s
        return doc


class FaultPlan:
    """An ordered, consumable schedule of :class:`FaultAction`.

    Build it fluently::

        plan = (FaultPlan()
                .kill("n0", at=20_000)
                .restart("n0", at=40_000)
                .slow("n1", at=5_000, extra_latency_s=0.002)
                .recover("n1", at=8_000))

    or from persisted dicts via :meth:`from_dicts` (the manifest
    round-trip).  :meth:`due` pops every action scheduled at or before the
    given offset, in schedule order; a plan is exhausted once all actions
    have been consumed.
    """

    def __init__(self, actions: Iterable[FaultAction] = ()):
        self._actions: List[FaultAction] = sorted(actions, key=lambda a: a.at)
        self._cursor = 0

    # -- fluent builders ---------------------------------------------------
    def add(self, action: FaultAction) -> "FaultPlan":
        if self._cursor:
            raise RuntimeError("cannot extend a partially consumed FaultPlan")
        self._actions.append(action)
        self._actions.sort(key=lambda a: a.at)
        return self

    def kill(self, node: str, at: int) -> "FaultPlan":
        return self.add(FaultAction(at=at, kind="kill", node=node))

    def restart(self, node: str, at: int) -> "FaultPlan":
        return self.add(FaultAction(at=at, kind="restart", node=node))

    def slow(self, node: str, at: int, extra_latency_s: float) -> "FaultPlan":
        return self.add(
            FaultAction(at=at, kind="slow", node=node, extra_latency_s=extra_latency_s)
        )

    def recover(self, node: str, at: int) -> "FaultPlan":
        return self.add(FaultAction(at=at, kind="recover", node=node))

    # -- consumption -------------------------------------------------------
    def due(self, offset: int) -> Tuple[FaultAction, ...]:
        """Pop (and return) every action with ``at <= offset``."""
        start = self._cursor
        cursor = start
        actions = self._actions
        while cursor < len(actions) and actions[cursor].at <= offset:
            cursor += 1
        self._cursor = cursor
        return tuple(actions[start:cursor])

    @property
    def next_at(self) -> Optional[int]:
        """Offset of the next unconsumed action (``None`` when exhausted)."""
        if self._cursor < len(self._actions):
            return self._actions[self._cursor].at
        return None

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self._actions)

    def __len__(self) -> int:
        return len(self._actions)

    def __iter__(self):
        return iter(self._actions)

    # -- (de)serialisation -------------------------------------------------
    def as_dicts(self) -> List[dict]:
        """Manifest-ready representation (see :meth:`from_dicts`)."""
        return [a.as_dict() for a in self._actions]

    @classmethod
    def from_dicts(cls, docs: Iterable[dict]) -> "FaultPlan":
        """Rebuild a plan persisted by :meth:`as_dicts`."""
        return cls(
            FaultAction(
                at=d["at"],
                kind=d["kind"],
                node=d["node"],
                extra_latency_s=d.get("extra_latency_s", 0.0),
            )
            for d in docs
        )
