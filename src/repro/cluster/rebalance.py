"""Ring membership changes on a live cluster: joins, drains, replacements.

The consistent-hash ring already bounds the blast radius of a membership
change to ~1/n of the keyspace per node (measured by
:meth:`Rebalancer.moved_fraction`; a replacement = one leave + one join ≈
2/n).  What the ring cannot do is move *cache contents*: every reshuffled
key is a cold miss at its new owner.  The :class:`Rebalancer` closes that
gap with an optional **warm handoff** — after the ring changes, resident
object metadata is walked (:meth:`CacheService.resident_entries
<repro.serve.service.CacheService.resident_entries>`) and re-admitted at
each entry's new live owners through the replication fill path, so the
reshuffled slice of the keyspace arrives warm instead of cold.

Handoff is best-effort by design: only queue-structured policies expose
their resident set, fills respect per-node capacity (an object that no
longer fits is simply dropped), and a node that dies mid-handoff just
loses its share.  Every membership change emits a ``rebalance`` obs event
and bumps ``cluster_rebalances``.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.cluster.node import ClusterNode
from repro.cluster.router import ClusterRouter
from repro.sim.request import Request

__all__ = ["Rebalancer"]


class Rebalancer:
    """Membership-change operator for a live :class:`ClusterRouter`.

    ``tracer`` (optional :class:`repro.obs.span.Tracer`) gives each
    membership change its own trace — a ``rebalance`` root with a
    ``warm_handoff`` child covering the fills — so migration cost shows up
    in the same span stream as the requests it competes with.
    """

    def __init__(self, router: ClusterRouter, tracer=None):
        self.router = router
        self.tracer = tracer

    # -- reshuffle measurement ---------------------------------------------
    def snapshot_owners(self, keys: Iterable[int]) -> Dict[int, str]:
        """Primary owner per key at current membership (take *before* a
        change, compare with :meth:`moved_fraction` after)."""
        ring = self.router.ring
        return {k: ring.route(k) for k in keys}

    def moved_fraction(self, before: Dict[int, str]) -> float:
        """Fraction of the snapshot whose primary owner changed.

        For a single join or drain on an n-node ring this should land near
        1/n (a replacement, being one of each, near 2/n) — the bound that
        justifies consistent hashing over modulo routing.
        """
        if not before:
            return 0.0
        ring = self.router.ring
        moved = sum(1 for k, owner in before.items() if ring.route(k) != owner)
        return moved / len(before)

    # -- membership changes ------------------------------------------------
    async def add_node(self, node: ClusterNode, warm: bool = False) -> dict:
        """Join a (cold) node: start it, extend the ring, optionally warm
        the reshuffled slice from the surviving owners' resident sets."""
        router = self.router
        if node.node_id in router.nodes:
            raise ValueError(f"duplicate node id {node.node_id!r}")
        span = (
            self.tracer.start_trace("rebalance", action="add", node=node.node_id)
            if self.tracer is not None
            else None
        )
        await node.start()
        router.nodes[node.node_id] = node
        router.ring.add_node(node.node_id)
        router.metrics.node_up(node.node_id, True)
        moved = 0
        if warm:
            hspan = span.child("warm_handoff") if span is not None else None
            moved = await self._warm_into(node)
            if hspan is not None:
                hspan.end(moved=moved)
        doc = self._record("add", node.node_id, moved)
        if span is not None:
            span.end(moved=moved, ring_size=len(router.ring))
        return doc

    async def remove_node(self, node_id: str, warm: bool = False) -> dict:
        """Drain a node: shrink the ring, optionally hand its residents to
        their new owners, then stop and forget it."""
        router = self.router
        node = router.nodes.get(node_id)
        if node is None:
            raise KeyError(f"unknown node {node_id!r}")
        if len(router.nodes) == 1:
            raise ValueError("cannot remove the last node")
        span = (
            self.tracer.start_trace("rebalance", action="remove", node=node_id)
            if self.tracer is not None
            else None
        )
        router.ring.remove_node(node_id)
        moved = 0
        if warm and node.up:
            hspan = span.child("warm_handoff") if span is not None else None
            moved = await self._hand_off(node)
            if hspan is not None:
                hspan.end(moved=moved)
        await node.stop()
        del router.nodes[node_id]
        router.metrics.node_up(node_id, False)
        doc = self._record("remove", node_id, moved)
        if span is not None:
            span.end(moved=moved, ring_size=len(router.ring))
        return doc

    async def replace_node(
        self, old_id: str, new_node: ClusterNode, warm: bool = False
    ) -> dict:
        """Swap a node for a cold replacement (one drain + one join, so the
        reshuffle is ~2/n).  With ``warm=True`` the leaver hands off first
        and the joiner is then warmed from the survivors."""
        removed = await self.remove_node(old_id, warm=warm)
        added = await self.add_node(new_node, warm=warm)
        moved = removed["moved_entries"] + added["moved_entries"]
        return self._record("replace", new_node.node_id, moved, frm=old_id)

    # -- warm handoff internals --------------------------------------------
    async def _hand_off(self, leaver: ClusterNode) -> int:
        """Re-admit the leaver's residents at their new live owners."""
        router = self.router
        moved = 0
        for key, size in list(leaver.service.resident_entries()):
            req = Request(0, key, size)
            for owner in router.owners_for(key):
                target = router.nodes.get(owner)
                if target is None or not target.up:
                    continue
                if await target.fill(req):
                    moved += 1
        return moved

    async def _warm_into(self, joiner: ClusterNode) -> int:
        """Copy entries the ring now assigns to the joiner from survivors."""
        router = self.router
        moved = 0
        seen = set()
        for other in list(router.nodes.values()):
            if other is joiner or not other.up:
                continue
            for key, size in list(other.service.resident_entries()):
                if key in seen:
                    continue
                if joiner.node_id not in router.owners_for(key):
                    continue
                seen.add(key)
                if await joiner.fill(Request(0, key, size)):
                    moved += 1
        return moved

    def _record(self, action: str, node_id: str, moved: int, frm=None) -> dict:
        router = self.router
        router.metrics.rebalances.inc()
        doc = {
            "action": action,
            "node": node_id,
            "moved_entries": moved,
            "ring_size": len(router.ring),
        }
        if frm is not None:
            doc["frm"] = frm
        if router.probe is not None:
            router.probe.emit("rebalance", at=router.t, **doc)
        return doc
