"""Declarative cluster construction: one config dataclass, one builder.

``ClusterConfig`` is the cluster analogue of the serve/orchestrate config
objects: a flat, JSON-serialisable description of the fleet (node count,
replication, policy name + kwargs, capacity split, origin/retry knobs)
with ``as_dict``/``from_dict`` so a ``BENCH_cluster.json`` manifest can
rebuild the exact cluster that produced it.

:func:`build_cluster` turns the config into a started-but-cold
:class:`~repro.cluster.router.ClusterRouter`: one shared
:class:`~repro.serve.origin.SimulatedOrigin` (cluster-wide origin
accounting), N :class:`~repro.cluster.node.ClusterNode` whose factories
build fresh :class:`~repro.serve.service.CacheService` instances through
the unified policy registry (:func:`repro.cache.registry.resolve_policy`)
— so ``policy="scip"`` works here exactly as it does in ``simulate`` and
``serve-bench``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, Optional

from repro.cache.registry import resolve_policy
from repro.cluster.node import ClusterNode
from repro.cluster.router import ClusterRouter
from repro.obs.metrics import MetricsRegistry
from repro.serve.origin import OriginConfig, RetryPolicy, SimulatedOrigin
from repro.serve.service import CacheService

__all__ = ["ClusterConfig", "build_cluster"]


@dataclass
class ClusterConfig:
    """Everything needed to rebuild a cluster, as plain data.

    Parameters
    ----------
    n_nodes:
        Fleet size; node ids are ``n0 .. n{N-1}``.
    replication:
        R — primary plus R−1 replicas per key.
    policy:
        Registry name (see :func:`repro.cache.registry.available_policies`).
    policy_kwargs:
        Extra keywords for the policy constructor.
    capacity_bytes:
        **Total cluster budget**, split evenly across nodes (and then
        across each node's shards) — so R=1 vs R=2 comparisons hold
        hardware constant, not per-node capacity.
    n_shards:
        Shards per node service.
    queue_depth:
        Per-shard pending bound (overflow sheds).
    vnodes:
        Virtual nodes per physical node on the ring.
    origin_latency_mean / origin_latency_jitter / origin_concurrency /
    origin_failure_rate:
        Shared-origin knobs (see :class:`OriginConfig`).
    retry_timeout / retry_max_retries:
        Client retry knobs (see :class:`RetryPolicy`).
    seed:
        Seeds origin RNG and per-shard backoff jitter.
    """

    n_nodes: int = 3
    replication: int = 2
    policy: str = "LRU"
    policy_kwargs: Dict = field(default_factory=dict)
    capacity_bytes: int = 3 * 1024 * 1024
    n_shards: int = 1
    queue_depth: int = 4096
    vnodes: int = 64
    origin_latency_mean: float = 0.0
    origin_latency_jitter: float = 0.0
    origin_concurrency: int = 64
    origin_failure_rate: float = 0.0
    retry_timeout: Optional[float] = 0.5
    retry_max_retries: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {self.n_nodes}")
        if not 1 <= self.replication <= self.n_nodes:
            raise ValueError(
                f"replication must be in [1, n_nodes={self.n_nodes}], "
                f"got {self.replication}"
            )
        if self.capacity_bytes < self.n_nodes * self.n_shards:
            raise ValueError(
                f"capacity_bytes {self.capacity_bytes} cannot be split over "
                f"{self.n_nodes} nodes x {self.n_shards} shards"
            )
        # Fail fast on unknown policy names (KeyError lists the registry).
        resolve_policy(self.policy)

    @property
    def node_ids(self) -> list:
        return [f"n{i}" for i in range(self.n_nodes)]

    @property
    def per_node_capacity(self) -> int:
        return self.capacity_bytes // self.n_nodes

    def as_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, doc: dict) -> "ClusterConfig":
        return cls(**doc)


def build_cluster(
    config: ClusterConfig,
    registry: Optional[MetricsRegistry] = None,
    probe=None,
) -> ClusterRouter:
    """Materialise a (cold, unstarted) :class:`ClusterRouter` from config.

    All nodes share one origin — so ``router.origin.stats()`` is the
    cluster-wide origin load — and every node (re)start builds a fresh
    service via the unified policy registry, which is what makes
    kill/restart cycles come back cold.
    """
    factory = resolve_policy(config.policy)
    kwargs = dict(config.policy_kwargs)
    origin = SimulatedOrigin(
        OriginConfig(
            latency_mean=config.origin_latency_mean,
            latency_jitter=config.origin_latency_jitter,
            concurrency=config.origin_concurrency,
            failure_rate=config.origin_failure_rate,
            seed=config.seed,
        )
    )
    retry = RetryPolicy(
        timeout=config.retry_timeout, max_retries=config.retry_max_retries
    )
    per_node = config.per_node_capacity

    def make_service_factory(node_index: int):
        def service_factory() -> CacheService:
            return CacheService(
                lambda cap: factory(cap, **kwargs),
                capacity=per_node,
                n_shards=config.n_shards,
                origin=origin,
                retry=retry,
                queue_depth=config.queue_depth,
                seed=config.seed + node_index,
            )

        return service_factory

    nodes = [
        ClusterNode(node_id, make_service_factory(i))
        for i, node_id in enumerate(config.node_ids)
    ]
    return ClusterRouter(
        nodes,
        replication=config.replication,
        origin=origin,
        retry=retry,
        vnodes=config.vnodes,
        registry=registry,
        probe=probe,
        seed=config.seed,
    )
