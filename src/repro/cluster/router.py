"""The cluster front: consistent-hash routing with replication and
graceful failover.

``ClusterRouter.get`` is the cluster's only data-plane entry and it
**never raises for data-plane conditions** — the whole design:

1. The key's owners come from the ring's preference list (primary +
   R−1 successor replicas, Dynamo-style).
2. The request is served by the first *live* owner (**read-one**).  Dead
   owners are skipped and counted; serving at any non-primary, or with
   any dead owner skipped, is a **failover** (obs event + counter), not
   an exception.
3. A miss served at one owner **fills** every other live owner
   (**write-all fill**, via the serve layer's control-plane fill path) so
   a later failover read finds the object resident — this is what makes
   R=2's hit-ratio dip shallower than R=1's when a node dies.
4. With *no* live owner the request goes **direct to origin**: it is
   served (slowly, uncached) and counted, and only a terminal origin
   failure after retries surfaces as an error string on the outcome.

Node kills wipe cache state (crash semantics — a restart comes back
cold); slow-node degradation adds latency without affecting correctness.
Both are applied through :meth:`ClusterRouter.apply_faults` from a
:class:`~repro.cluster.faults.FaultPlan`, or directly by the operator
methods (:meth:`kill_node`, :meth:`restart_node`, :meth:`set_slow`).
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional

from repro.cluster.faults import FaultAction, FaultPlan
from repro.cluster.node import ClusterNode
from repro.obs.metrics import MetricsRegistry
from repro.serve.origin import RetryPolicy, SimulatedOrigin, fetch_with_retry
from repro.sim.request import Request
from repro.tdc.hashring import HashRing

__all__ = ["ClusterOutcome", "ClusterMetrics", "ClusterRouter"]


class ClusterOutcome:
    """What one ``ClusterRouter.get`` call resolved to.

    Attributes
    ----------
    hit:
        Cache decision at the serving node (``False`` for origin-direct).
    node:
        Serving node id, or ``None`` when the request went direct to
        origin.
    failover:
        At least one dead owner was skipped on the way to whoever served.
    served_from:
        ``"cache"`` (a node served it, hit or miss) or ``"origin"``
        (no live owner — uncached direct fetch).
    shed:
        The serving node's shard queue was full; the request was rejected
        unserved (backpressure, not failure — no failover is attempted).
    error:
        Terminal origin-fetch error string after all retries, or ``None``.
    """

    __slots__ = ("hit", "node", "failover", "served_from", "shed", "error")

    def __init__(
        self,
        hit: bool,
        node: Optional[str],
        failover: bool = False,
        served_from: str = "cache",
        shed: bool = False,
        error: Optional[str] = None,
    ):
        self.hit = hit
        self.node = node
        self.failover = failover
        self.served_from = served_from
        self.shed = shed
        self.error = error

    @property
    def ok(self) -> bool:
        return not self.shed and self.error is None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flags = "".join(
            f
            for f, on in (
                ("H", self.hit),
                ("F", self.failover),
                ("S", self.shed),
            )
            if on
        )
        return (
            f"ClusterOutcome({flags or 'M'}, node={self.node!r}, "
            f"from={self.served_from}, error={self.error!r})"
        )


class ClusterMetrics:
    """Cluster-level instruments plus per-node gauges.

    Node liveness is a labelled gauge (``cluster_node_up{node=...}``) so a
    registry snapshot at any moment reads as a fleet health panel; request
    placement is a labelled counter per serving node.
    """

    def __init__(self, registry: Optional[MetricsRegistry], node_ids: Iterable[str]):
        self.registry = registry if registry is not None else MetricsRegistry()
        r = self.registry
        self.requests = r.counter("cluster_requests")
        self.hits = r.counter("cluster_hits")
        self.misses = r.counter("cluster_misses")
        self.failovers = r.counter("cluster_failovers")
        self.origin_direct = r.counter("cluster_origin_direct")
        self.fills = r.counter("cluster_fills")
        self.shed = r.counter("cluster_shed")
        self.errors = r.counter("cluster_errors")
        self.node_downs = r.counter("cluster_node_downs")
        self.node_ups = r.counter("cluster_node_ups")
        self.rebalances = r.counter("cluster_rebalances")
        self._node_up = {
            n: r.gauge("cluster_node_up", node=n) for n in node_ids
        }
        self._node_served = {
            n: r.counter("cluster_node_requests", node=n) for n in node_ids
        }
        self._node_slow = {
            n: r.gauge("cluster_node_slow_s", node=n) for n in node_ids
        }

    def track_node(self, node_id: str) -> None:
        """Create the per-node instruments for a node joining the fleet."""
        r = self.registry
        self._node_up.setdefault(node_id, r.gauge("cluster_node_up", node=node_id))
        self._node_served.setdefault(
            node_id, r.counter("cluster_node_requests", node=node_id)
        )
        self._node_slow.setdefault(
            node_id, r.gauge("cluster_node_slow_s", node=node_id)
        )

    def node_up(self, node_id: str, up: bool) -> None:
        self.track_node(node_id)
        self._node_up[node_id].set(1 if up else 0)

    def node_served(self, node_id: str) -> None:
        self._node_served[node_id].inc()

    def node_slow(self, node_id: str, slow_s: float) -> None:
        self.track_node(node_id)
        self._node_slow[node_id].set(slow_s)

    def snapshot(self) -> dict:
        return self.registry.snapshot()


class ClusterRouter:
    """Replicated consistent-hash front over N :class:`ClusterNode`.

    Parameters
    ----------
    nodes:
        The fleet (ids must be unique; order fixes the default ring).
    replication:
        R — each key has one primary plus R−1 successor replicas; reads
        are served by the first live owner, miss fills go to all of them.
    origin:
        The shared :class:`SimulatedOrigin` used for origin-direct serving
        when every owner is dead (normally the same instance the node
        services fetch through, so origin accounting stays cluster-wide).
    retry:
        Retry policy for origin-direct fetches.
    vnodes:
        Virtual nodes per physical node on the ring.
    registry:
        Metrics registry for the cluster instruments (default private).
    probe:
        Optional obs probe (``failover`` / ``node_down`` / ``node_up`` /
        ``rebalance`` events).
    seed:
        Decorrelates origin-direct retry backoff jitter.
    """

    def __init__(
        self,
        nodes: Iterable[ClusterNode],
        replication: int = 1,
        origin: Optional[SimulatedOrigin] = None,
        retry: Optional[RetryPolicy] = None,
        vnodes: int = 64,
        registry: Optional[MetricsRegistry] = None,
        probe=None,
        seed: int = 0,
    ):
        self.nodes: Dict[str, ClusterNode] = {}
        for node in nodes:
            if node.node_id in self.nodes:
                raise ValueError(f"duplicate node id {node.node_id!r}")
            self.nodes[node.node_id] = node
        if not self.nodes:
            raise ValueError("cluster needs at least one node")
        if replication < 1:
            raise ValueError(f"replication must be >= 1, got {replication}")
        self.replication = int(replication)
        self.ring = HashRing(list(self.nodes), vnodes=vnodes)
        self.origin = origin
        self.retry = retry if retry is not None else RetryPolicy()
        self.metrics = ClusterMetrics(registry, self.nodes)
        self.probe = probe
        self._rng = random.Random(seed)
        self._started = False
        #: Replay clock: requests routed so far (the fault-plan offset).
        self.t = 0

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> "ClusterRouter":
        if not self._started:
            for node in self.nodes.values():
                await node.start()
                self.metrics.node_up(node.node_id, True)
            self._started = True
        return self

    async def close(self) -> None:
        if self._started:
            for node in self.nodes.values():
                await node.stop()
                self.metrics.node_up(node.node_id, False)
            self._started = False

    async def __aenter__(self) -> "ClusterRouter":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # -- fault control plane -----------------------------------------------
    async def kill_node(self, node_id: str) -> None:
        """Crash a node: state wiped, requests fail over (idempotent)."""
        node = self.nodes[node_id]
        if not node.up:
            return
        await node.stop()
        node.kills += 1
        self.metrics.node_up(node_id, False)
        self.metrics.node_downs.inc()
        if self.probe is not None:
            self.probe.emit("node_down", node=node_id, at=self.t)

    async def restart_node(self, node_id: str) -> None:
        """Bring a killed node back — cold (idempotent)."""
        node = self.nodes[node_id]
        if node.up:
            return
        await node.start()
        self.metrics.node_up(node_id, True)
        self.metrics.node_ups.inc()
        if self.probe is not None:
            self.probe.emit("node_up", node=node_id, at=self.t)

    def set_slow(self, node_id: str, extra_latency_s: float) -> None:
        """Degrade a node's data-plane latency (0 restores it)."""
        if extra_latency_s < 0:
            raise ValueError(f"extra_latency_s must be >= 0, got {extra_latency_s}")
        self.nodes[node_id].slow_s = extra_latency_s
        self.metrics.node_slow(node_id, extra_latency_s)

    async def apply_fault(self, action: FaultAction) -> None:
        """Execute one fault action against the fleet."""
        if action.kind == "kill":
            await self.kill_node(action.node)
        elif action.kind == "restart":
            await self.restart_node(action.node)
        elif action.kind == "slow":
            self.set_slow(action.node, action.extra_latency_s)
        else:  # "recover" — FaultAction validated the kind already
            self.set_slow(action.node, 0.0)

    async def apply_faults(self, plan: FaultPlan, offset: Optional[int] = None) -> int:
        """Apply every plan action due at ``offset`` (default: the replay
        clock :attr:`t`).  Returns the number of actions applied."""
        due = plan.due(self.t if offset is None else offset)
        for action in due:
            await self.apply_fault(action)
        return len(due)

    # -- the data plane ----------------------------------------------------
    def owners_for(self, key) -> List[str]:
        """The key's preference list (primary first) at current membership."""
        return self.ring.preference_list(key, self.replication)

    async def get(self, req: Request, span=None) -> ClusterOutcome:
        """Serve one request; never raises for data-plane conditions.

        Dead owners are skipped (failover), a miss fills the other live
        owners, and a fully-dead preference list degrades to an
        origin-direct fetch — every branch lands on a
        :class:`ClusterOutcome`, not an exception.

        ``span`` (optional trace span) gets exactly one ``failover_hop``
        child per failed-over request — the same condition that increments
        the ``cluster_failovers`` counter, so hop-span counts and the
        counter reconcile — plus ``node_serve``/``replica_fill``/
        ``origin_direct`` children for the serve and fill stages.
        """
        if not self._started:
            raise RuntimeError("ClusterRouter.get before start() (use 'async with')")
        m = self.metrics
        m.requests.inc()
        self.t += 1
        owners = self.owners_for(req.key)
        skipped = 0
        for name in owners:
            node = self.nodes[name]
            if not node.up:
                skipped += 1
                continue
            failover = skipped > 0
            hop = None
            parent = span
            if failover:
                m.failovers.inc()
                if span is not None:
                    hop = span.child(
                        "failover_hop",
                        frm=owners[0],
                        to=name,
                        skipped=skipped,
                        failover=True,
                    )
                    parent = hop
                if self.probe is not None:
                    self.probe.emit(
                        "failover", key=req.key, frm=owners[0], to=name, at=self.t
                    )
            nspan = (
                parent.child("node_serve", node=name)
                if parent is not None
                else None
            )
            out = await node.get(req, nspan)
            if nspan is not None:
                nspan.end(
                    "shed" if out.shed else ("error" if out.error else "ok"),
                    hit=out.hit,
                )
            m.node_served(name)
            if out.shed:
                m.shed.inc()
                if hop is not None:
                    hop.end("shed")
                return ClusterOutcome(
                    False, name, failover=failover, shed=True
                )
            if out.error is not None:
                m.errors.inc()
            if out.hit:
                m.hits.inc()
            else:
                m.misses.inc()
                if out.error is None:
                    await self._fill_replicas(req, owners, served_by=name, span=parent)
            if hop is not None:
                hop.end("ok" if out.error is None else "error")
            return ClusterOutcome(
                out.hit, name, failover=failover, error=out.error
            )
        # Every owner is dead: degrade to an uncached origin-direct fetch.
        m.misses.inc()
        m.failovers.inc()
        m.origin_direct.inc()
        hop = (
            span.child(
                "failover_hop",
                frm=owners[0] if owners else None,
                to="origin",
                skipped=skipped,
                failover=True,
            )
            if span is not None
            else None
        )
        if self.probe is not None:
            self.probe.emit(
                "failover", key=req.key, frm=owners[0] if owners else None,
                to="origin", at=self.t,
            )
        if self.origin is None:
            m.errors.inc()
            if hop is not None:
                hop.end("error")
            return ClusterOutcome(
                False, None, failover=True, served_from="origin",
                error="no live owner and no origin configured",
            )
        dspan = hop.child("origin_direct") if hop is not None else None
        outcome = await fetch_with_retry(
            self.origin, req.key, req.size, self.retry, self._rng, span=dspan
        )
        if dspan is not None:
            dspan.end("ok" if outcome.ok else "error", attempts=outcome.attempts)
        if hop is not None:
            hop.end("ok" if outcome.error is None else "error")
        if outcome.error is not None:
            m.errors.inc()
        return ClusterOutcome(
            False, None, failover=True, served_from="origin", error=outcome.error
        )

    async def _fill_replicas(
        self, req: Request, owners: List[str], served_by: str, span=None
    ) -> None:
        """Write-all fill: admit the just-fetched object on the other live
        owners so a failover read finds it resident."""
        for name in owners:
            if name == served_by:
                continue
            node = self.nodes.get(name)
            if node is None or not node.up:
                continue
            fspan = (
                span.child("replica_fill", node=name) if span is not None else None
            )
            filled = await node.fill(req)
            if fspan is not None:
                fspan.end(filled=filled)
            if filled:
                self.metrics.fills.inc()

    # -- introspection -----------------------------------------------------
    @property
    def unhandled_exceptions(self) -> int:
        """Exceptions escaping any node's shard workers (CI asserts 0)."""
        return sum(
            node.service.unhandled_exceptions
            for node in self.nodes.values()
            if node.up
        )

    def live_nodes(self) -> List[str]:
        return [n for n, node in self.nodes.items() if node.up]

    def health(self) -> dict:
        return {
            "replication": self.replication,
            "nodes": {n: node.health() for n, node in self.nodes.items()},
            "live": self.live_nodes(),
            "ring_size": len(self.ring),
        }

    def stats(self) -> dict:
        m = self.metrics
        requests = m.requests.value
        served = requests - m.shed.value
        return {
            "requests": requests,
            "hits": m.hits.value,
            "hit_ratio": m.hits.value / served if served else 0.0,
            "failovers": m.failovers.value,
            "origin_direct": m.origin_direct.value,
            "fills": m.fills.value,
            "shed": m.shed.value,
            "errors": m.errors.value,
            "node_downs": m.node_downs.value,
            "node_ups": m.node_ups.value,
            "rebalances": m.rebalances.value,
            "unhandled_exceptions": self.unhandled_exceptions,
            "nodes": {n: node.stats() for n, node in self.nodes.items()},
        }
