"""``repro.cluster`` — a replicated multi-node cache cluster with failure
injection.

PR 3/4 built a single-process sharded :class:`~repro.serve.service.
CacheService` with live policy swaps; a real CDN edge is a *network* of
such caches, where node loss, replication and rebalancing dominate
behaviour.  This package grows the serving layer outward:

* :class:`~repro.cluster.node.ClusterNode` — one cache node: a cold-
  startable :class:`CacheService` (its own shards, policies and metrics)
  plus liveness and slow-node degradation state;
* :class:`~repro.cluster.router.ClusterRouter` — the client-facing front:
  routes keys over a :class:`~repro.tdc.hashring.HashRing` preference
  list with replication factor R (read-one / write-all fill), failing
  over dead owners to replicas or the origin instead of raising;
* :class:`~repro.cluster.faults.FaultPlan` — scripted node kills,
  restarts and slow-node latency degradation at request offsets;
* :class:`~repro.cluster.rebalance.Rebalancer` — ring membership changes
  (cold replacement nodes, bounded ~2/n key reshuffle, optional warm
  handoff of resident metadata);
* :mod:`~repro.cluster.bench` — ``repro cluster-bench``: R=1 vs R=2 under
  a kill/recover scenario, written to a schema-versioned
  ``BENCH_cluster.json`` with an embedded reproducibility manifest.

Failure semantics: data-plane trouble (dead nodes, terminal origin
errors, shedding) comes back on the :class:`~repro.cluster.router.
ClusterOutcome` and in obs events (``failover`` / ``node_down`` /
``node_up`` / ``rebalance``) — ``ClusterRouter.get`` never raises for it.
"""

from repro.cluster.config import ClusterConfig, build_cluster
from repro.cluster.faults import FaultAction, FaultPlan
from repro.cluster.node import ClusterNode
from repro.cluster.rebalance import Rebalancer
from repro.cluster.router import ClusterMetrics, ClusterOutcome, ClusterRouter

__all__ = [
    "ClusterConfig",
    "build_cluster",
    "FaultAction",
    "FaultPlan",
    "ClusterNode",
    "Rebalancer",
    "ClusterMetrics",
    "ClusterOutcome",
    "ClusterRouter",
]
