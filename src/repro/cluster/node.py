"""One cluster node: a cold-startable cache service with liveness state.

A node owns nothing but a factory: :meth:`ClusterNode.start` builds a
fresh :class:`~repro.serve.service.CacheService` (its own shards, its own
policy instances), and :meth:`ClusterNode.stop` closes and *discards* it.
A kill/restart cycle therefore restarts the node **cold** — exactly the
dynamics a cluster bench needs to show recovery ramps — while a planned
drain can first hand resident metadata off through the
:class:`~repro.cluster.rebalance.Rebalancer`.

Slow-node degradation is a per-node additive latency (``slow_s``) applied
in front of every data-plane call, modelling an overloaded or
link-degraded box that still answers correctly, just late.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Optional

from repro.serve.results import ServeOutcome
from repro.serve.service import CacheService
from repro.sim.request import Request

__all__ = ["ClusterNode"]


class ClusterNode:
    """One cache node of the cluster.

    Parameters
    ----------
    node_id:
        Ring identifier (metric label, probe field).
    service_factory:
        Zero-arg factory building a **fresh, cold** ``CacheService``; the
        node calls it on every (re)start.  Services must share the
        cluster's origin if origin accounting is to stay cluster-wide.
    """

    def __init__(self, node_id: str, service_factory: Callable[[], CacheService]):
        self.node_id = node_id
        self._factory = service_factory
        self.service: Optional[CacheService] = None
        self.up = False
        #: Injected extra latency per data-plane call, seconds (0 = healthy).
        self.slow_s = 0.0
        #: Lifecycle counters: ``starts`` counts every (re)build; ``kills``
        #: counts crash-stops only (the router increments it — a graceful
        #: cluster shutdown or drain is not a kill).
        self.starts = 0
        self.kills = 0

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> "ClusterNode":
        """(Re)build the service cold and mark the node up (idempotent)."""
        if not self.up:
            self.service = self._factory()
            await self.service.start()
            self.up = True
            self.starts += 1
        return self

    async def stop(self) -> None:
        """Close and discard the service; the node's cache state is gone."""
        if self.up:
            service, self.service = self.service, None
            self.up = False
            await service.close()

    # -- data plane --------------------------------------------------------
    async def get(self, req: Request, span=None) -> ServeOutcome:
        """Serve one request (the router checks :attr:`up` first)."""
        if not self.up:
            raise RuntimeError(f"get on down node {self.node_id!r}")
        if self.slow_s > 0:
            await asyncio.sleep(self.slow_s)
        return await self.service.get(req, span)

    async def fill(self, req: Request) -> bool:
        """Replication fill (see :meth:`CacheService.fill`)."""
        if not self.up:
            raise RuntimeError(f"fill on down node {self.node_id!r}")
        if self.slow_s > 0:
            await asyncio.sleep(self.slow_s)
        return await self.service.fill(req)

    # -- introspection -----------------------------------------------------
    def health(self) -> dict:
        doc = {
            "node": self.node_id,
            "up": self.up,
            "slow_s": self.slow_s,
            "starts": self.starts,
            "kills": self.kills,
        }
        if self.up:
            doc["service"] = self.service.health()
        return doc

    def stats(self) -> dict:
        doc = self.health()
        if self.up:
            doc["cache"] = self.service.cache_stats()
        return doc

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "up" if self.up else "down"
        return f"ClusterNode({self.node_id!r}, {state})"
