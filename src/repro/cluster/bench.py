"""``repro cluster-bench`` — replication vs. node loss, quantified.

One scenario, run once per replication factor on the *same* trace, ring
and fault schedule: a flash-crowd drift trace replayed through the
cluster while the busiest node is killed partway in and restarted (cold)
later.  Three numbers summarise what replication buys:

* **dip depth** — pre-kill baseline hit ratio minus the worst post-kill
  window.  R=1 loses the dead node's whole keyspace slice (every key a
  cold miss at its failover successor); R=2's write-all fills mean the
  successor already holds most of it, so the dip is shallower.
* **recovery time** — requests until a post-kill window climbs back
  within tolerance of the baseline.
* **served-error rate** — requests that errored out of ``ClusterRouter.
  get``; graceful degradation means this stays 0 through kill *and*
  restart (there is always a live owner or the origin).

The resulting ``BENCH_cluster.json`` (schema :data:`CLUSTER_BENCH_SCHEMA`)
embeds a run manifest whose ``extra.cluster`` block carries the complete
bench configuration — :func:`config_from_doc` rebuilds the keyword set,
and the tests round-trip it — so the run is reproducible from the
artifact alone.
"""

from __future__ import annotations

import asyncio
import json
from typing import List, Optional, Sequence

from repro.cluster.config import ClusterConfig, build_cluster
from repro.cluster.faults import FaultPlan
from repro.obs.manifest import build_manifest
from repro.tdc.hashring import HashRing
from repro.traces.drift import make_drift_trace

__all__ = [
    "CLUSTER_BENCH_SCHEMA",
    "run_cluster_bench",
    "config_from_doc",
    "format_cluster_doc",
    "write_cluster_doc",
]

#: Version of the ``BENCH_cluster.json`` layout; bump on breaking changes.
CLUSTER_BENCH_SCHEMA = 1

#: A post-kill window counts as "recovered" when its hit ratio is back
#: within this absolute tolerance of the pre-kill baseline.
RECOVERY_TOLERANCE = 0.02


def _window_series(flags: Sequence[bool], window: int) -> List[float]:
    """Hit ratio per fixed-size window (the tail partial window dropped)."""
    out = []
    for start in range(0, len(flags) - window + 1, window):
        chunk = flags[start : start + window]
        out.append(sum(chunk) / window)
    return out


def _dip_metrics(series: List[float], window: int, kill_at: int) -> dict:
    """Baseline / dip / recovery read off the windowed hit-ratio series."""
    kill_window = kill_at // window
    # Baseline: the settled pre-kill plateau (skip the cold first half of
    # the pre-kill span so warmup doesn't drag the baseline down).
    pre = series[:kill_window]
    settled = pre[len(pre) // 2 :] if pre else []
    baseline = sum(settled) / len(settled) if settled else 0.0
    post = series[kill_window:]
    min_post = min(post) if post else baseline
    dip = max(baseline - min_post, 0.0)
    recovery: Optional[int] = None
    for i, ratio in enumerate(post):
        if ratio >= baseline - RECOVERY_TOLERANCE:
            # Requests from the kill to the end of the recovered window.
            recovery = (kill_window + i + 1) * window - kill_at
            break
    return {
        "baseline_hit_ratio": baseline,
        "min_post_kill_hit_ratio": min_post,
        "dip_depth": dip,
        "recovery_requests": recovery,
    }


async def _run_scenario(
    config: ClusterConfig,
    trace,
    plan: FaultPlan,
    window: int,
    kill_at: int,
    trace_sample: float = 0.0,
    span_out: Optional[str] = None,
) -> dict:
    router = build_cluster(config)
    tracer = None
    if trace_sample > 0.0 or span_out is not None:
        from repro.obs.span import SpanSink, TraceConfig, Tracer

        tracer = Tracer(
            sinks=[SpanSink(span_out)] if span_out is not None else [],
            config=TraceConfig(sample=trace_sample, seed=config.seed),
            registry=router.metrics.registry,
        )
    hit_flags: List[bool] = []
    served = errors = shed = 0
    async with router:
        for req in trace:
            await router.apply_faults(plan)
            span = (
                tracer.start_trace("request", key=req.key)
                if tracer is not None
                else None
            )
            out = await router.get(req, span)
            if span is not None:
                span.end(
                    "shed" if out.shed else ("error" if out.error else "ok"),
                    served_from=out.served_from,
                )
            if out.shed:
                shed += 1
                continue
            served += 1
            if out.error is not None:
                errors += 1
            hit_flags.append(out.hit)
        stats = router.stats()
    series = _window_series(hit_flags, window)
    doc = {
        "replication": config.replication,
        "requests": stats["requests"],
        "served": served,
        "shed": shed,
        "errors": errors,
        "served_error_rate": errors / served if served else 0.0,
        "hit_ratio": stats["hit_ratio"],
        "failovers": stats["failovers"],
        "origin_direct": stats["origin_direct"],
        "fills": stats["fills"],
        "node_downs": stats["node_downs"],
        "node_ups": stats["node_ups"],
        "unhandled_exceptions": stats["unhandled_exceptions"],
        "window": window,
        "hit_ratio_series": [round(r, 4) for r in series],
    }
    doc.update(_dip_metrics(series, window, kill_at))
    if tracer is not None:
        tracer.close()
        stages = tracer.stage_breakdown()
        doc["tracing"] = {
            "traces": tracer.stats(),
            "stages": stages,
            # Spans are aggregated for every finished trace regardless of
            # sampling, so this count must equal the failovers counter.
            "failover_hop_spans": stages.get("failover_hop", {}).get("count", 0),
            "span_out": span_out,
        }
    return doc


def run_cluster_bench(
    trace: str = "flash",
    n_requests: int = 60_000,
    n_nodes: int = 3,
    policy: str = "LRU",
    fraction: float = 0.1,
    n_shards: int = 1,
    vnodes: int = 64,
    kill_frac: float = 0.4,
    restart_frac: float = 0.7,
    window: int = 2_000,
    replications: Sequence[int] = (1, 2),
    seed: int = 0,
    output: Optional[str] = "BENCH_cluster.json",
    quick: bool = False,
    trace_sample: float = 0.0,
    span_out: Optional[str] = None,
) -> dict:
    """Run the cluster bench; returns (and optionally persists) the doc.

    Every replication factor replays the identical trace against an
    identical fleet (same total capacity, same ring, same fault schedule)
    — the *only* variable is R, so the dip-depth delta is attributable to
    replication alone.  The victim is the node the ring sends the most
    trace keys to, maximising the failure's blast radius.

    ``trace_sample``/``span_out`` turn on request tracing per scenario
    (see :mod:`repro.obs.span`); with multiple replication factors the
    span path gains an ``.R<r>`` infix so scenarios don't clobber each
    other.  Each scenario doc then embeds the per-stage breakdown and the
    failover-hop span count (which reconciles with its failover counter).
    """
    if quick:
        n_requests = min(n_requests, 24_000)
        window = min(window, 1_000)
    tr = make_drift_trace(trace, n_requests=n_requests, seed=seed)
    capacity = max(int(tr.working_set_size * fraction), n_nodes * n_shards)
    n = len(tr.requests)
    kill_at = int(n * kill_frac)
    restart_at = int(n * restart_frac)

    # Deterministic victim: the node owning the largest share of the trace.
    ring = HashRing([f"n{i}" for i in range(n_nodes)], vnodes=vnodes)
    load = ring.load_distribution([req.key for req in tr.requests])
    victim = max(load, key=lambda node: load[node])

    scenarios = {}
    for r in replications:
        config = ClusterConfig(
            n_nodes=n_nodes,
            replication=r,
            policy=policy,
            capacity_bytes=capacity,
            n_shards=n_shards,
            vnodes=vnodes,
            seed=seed,
        )
        plan = FaultPlan().kill(victim, at=kill_at).restart(victim, at=restart_at)
        scenario_span_out = span_out
        if span_out is not None and len(replications) > 1:
            stem, dot, ext = span_out.partition(".")
            scenario_span_out = f"{stem}.R{r}{dot}{ext}" if dot else f"{span_out}.R{r}"
        scenarios[f"R{r}"] = asyncio.run(
            _run_scenario(
                config,
                tr.requests,
                plan,
                window,
                kill_at,
                trace_sample=trace_sample,
                span_out=scenario_span_out,
            )
        )

    bench_config = {
        "trace": trace,
        "n_requests": n_requests,
        "n_nodes": n_nodes,
        "policy": policy,
        "cache_fraction": fraction,
        "capacity_bytes": capacity,
        "n_shards": n_shards,
        "vnodes": vnodes,
        "kill_frac": kill_frac,
        "restart_frac": restart_frac,
        "window": window,
        "replications": list(replications),
        "victim": victim,
        "kill_at": kill_at,
        "restart_at": restart_at,
        "seed": seed,
    }
    manifest = build_manifest(trace=tr, seed=seed, extra={"cluster": bench_config})
    doc = {
        "schema": CLUSTER_BENCH_SCHEMA,
        "config": bench_config,
        "scenarios": scenarios,
        "comparison": _compare(scenarios),
        "manifest": manifest,
    }
    if output:
        write_cluster_doc(doc, output)
    return doc


def _compare(scenarios: dict) -> dict:
    """The acceptance summary across replication factors."""
    dips = {name: s["dip_depth"] for name, s in scenarios.items()}
    comparison = {
        "dip_depth": dips,
        "recovery_requests": {
            name: s["recovery_requests"] for name, s in scenarios.items()
        },
        "served_error_rate": {
            name: s["served_error_rate"] for name, s in scenarios.items()
        },
        "errors_zero": all(s["errors"] == 0 for s in scenarios.values()),
        "unhandled_exceptions_zero": all(
            s["unhandled_exceptions"] == 0 for s in scenarios.values()
        ),
    }
    if "R1" in scenarios and "R2" in scenarios:
        comparison["r2_dip_shallower"] = dips["R2"] < dips["R1"]
        comparison["dip_reduction"] = dips["R1"] - dips["R2"]
    return comparison


def config_from_doc(doc: dict) -> dict:
    """Rebuild ``run_cluster_bench`` keywords from a persisted doc.

    The reproducibility contract: everything needed to re-run the bench
    lives in the embedded manifest's ``extra.cluster`` block (derived
    fields — capacity, victim, offsets — are recomputed, not replayed).
    """
    cfg = dict(doc["manifest"]["extra"]["cluster"])
    cfg["fraction"] = cfg.pop("cache_fraction")
    for derived in ("capacity_bytes", "victim", "kill_at", "restart_at"):
        cfg.pop(derived, None)
    return cfg


def write_cluster_doc(doc: dict, path: str) -> str:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return str(path)


def format_cluster_doc(doc: dict) -> str:
    """Human-readable summary of one cluster-bench document."""
    cfg = doc["config"]
    cmp_ = doc["comparison"]
    lines = [
        (
            f"cluster bench — drift '{cfg['trace']}' x {cfg['n_requests']:,} "
            f"requests over {cfg['n_nodes']} nodes ({cfg['policy']}, "
            f"{cfg['capacity_bytes'] / 1e6:.1f} MB total), kill {cfg['victim']} "
            f"@ {cfg['kill_at']:,}, restart @ {cfg['restart_at']:,}"
        ),
    ]
    for name, s in sorted(doc["scenarios"].items()):
        rec = s["recovery_requests"]
        lines.append(
            f"  {name}: hit={s['hit_ratio']:.4f} baseline={s['baseline_hit_ratio']:.4f} "
            f"dip={s['dip_depth']:.4f} recovery={rec if rec is not None else '-'} req "
            f"failovers={s['failovers']} fills={s['fills']} errors={s['errors']}"
        )
        if "tracing" in s:
            ts = s["tracing"]["traces"]
            lines.append(
                f"      tracing: {ts['traces_kept']:,}/{ts['traces_started']:,} "
                f"traces kept · failover_hop spans "
                f"{s['tracing']['failover_hop_spans']} (counter {s['failovers']})"
            )
    if "r2_dip_shallower" in cmp_:
        lines.append(
            f"  R=2 dip shallower than R=1: {cmp_['r2_dip_shallower']} "
            f"(reduction {cmp_['dip_reduction']:+.4f}); "
            f"errors zero: {cmp_['errors_zero']}"
        )
    return "\n".join(lines)
