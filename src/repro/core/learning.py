"""Adaptive learning-rate controller — Algorithm 2 (``UPDATELR``).

The learning rate ``λ`` scales the multiplicative-weights updates applied to
the insertion probabilities.  Every ``i`` requests the controller compares
the hit-rate delta ``Δ = Π_t − Π_{t−i}`` against the learning-rate delta
``δ = λ_{t−i} − λ_{t−2i}`` and follows a gradient-based stochastic
hill-climbing rule:

* ``Δ/δ > 0`` — the last λ move helped; amplify it:
  ``λ ← min(λ + λ·Δ/δ, 1)``;
* ``Δ/δ < 0`` — it hurt; back off: ``λ ← max(λ + λ·Δ/δ, λ_min)``;
* ``δ == 0`` with stagnant or zero hit rate for ``unlearn_limit``
  consecutive windows — random restart: λ is redrawn uniformly from
  ``[λ_min, 1]`` (the paper's "reset to initial value", supporting the
  random restarts of stochastic hill climbing).

The controller is policy-agnostic and reused verbatim by SCIP, SCI and the
enhancement wrappers, and independently exercised by the ablation benches.
"""

from __future__ import annotations

import random
from typing import Optional

__all__ = ["LearningRateController", "LAMBDA_MIN", "LAMBDA_MAX"]

LAMBDA_MIN = 0.001
LAMBDA_MAX = 1.0


class LearningRateController:
    """Implements ``UPDATELR`` with the paper's default constants.

    Parameters
    ----------
    initial:
        λ at t=0 (the paper restarts into [0.001, 1]; 0.1 is a neutral
        starting point within that band and is swept by the ablation bench).
    unlearn_limit:
        Consecutive stagnant windows tolerated before a random restart
        (paper: 10).
    rng:
        Seeded RNG for the random restarts.
    """

    #: Observability hook (see :class:`repro.obs.probe.Probe`); class-level
    #: no-op until :meth:`attach_probe` shadows it.
    _probe = None

    def __init__(
        self,
        initial: float = 0.1,
        unlearn_limit: int = 10,
        rng: Optional[random.Random] = None,
    ):
        if not LAMBDA_MIN <= initial <= LAMBDA_MAX:
            raise ValueError(
                f"initial λ must be in [{LAMBDA_MIN}, {LAMBDA_MAX}], got {initial}"
            )
        self.rng = rng or random.Random(0)
        self.unlearn_limit = unlearn_limit
        self.value = initial          # λ_t
        self._prev = initial          # λ_{t-i}
        self._prev2 = initial         # λ_{t-2i}
        self.unlearn_count = 0
        self.updates = 0
        self.restarts = 0

    def update(self, hit_rate_now: float, hit_rate_prev: float) -> float:
        """One ``UPDATELR`` step; returns the new λ.

        Parameters mirror Algorithm 2: ``Π_t`` and ``Π_{t−i}``.
        """
        delta = hit_rate_now - hit_rate_prev          # Δ_t
        d_lambda = self._prev - self._prev2           # δ_t
        new = self._prev
        restarted = False
        if d_lambda != 0.0:
            ratio = delta / d_lambda
            if ratio > 0:
                new = min(self._prev + self._prev * ratio, LAMBDA_MAX)
            else:
                new = max(self._prev + self._prev * ratio, LAMBDA_MIN)
            self.unlearn_count = 0
        else:
            if hit_rate_now == 0.0 or delta <= 0.0:
                self.unlearn_count += 1
            if self.unlearn_count >= self.unlearn_limit:
                self.unlearn_count = 0
                new = self.rng.uniform(LAMBDA_MIN, LAMBDA_MAX)
                self.restarts += 1
                restarted = True
        self._prev2 = self._prev
        self._prev = new
        self.value = new
        self.updates += 1
        if self._probe is not None:
            if restarted:
                self._probe.emit("lambda_restart", value=new, update=self.updates)
            self._probe.emit(
                "lambda_update",
                value=new,
                delta=delta,
                hit_rate=hit_rate_now,
                update=self.updates,
            )
        return new

    # -- observability ---------------------------------------------------------
    def attach_probe(self, probe) -> None:
        """Emit ``lambda_update`` / ``lambda_restart`` events per UPDATELR."""
        self._probe = probe

    def detach_probe(self) -> None:
        self._probe = None
